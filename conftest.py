"""Root conftest: makes ``src/`` importable and registers the
``--audit`` plugin (:mod:`repro.analysis.pytest_plugin`), which arms
the CP-time invariant auditor for every engine a test constructs."""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

pytest_plugins = ["repro.analysis.pytest_plugin"]
