"""Shared fixtures: small, fast simulator configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fs import MediaType, RAIDGroupConfig, VolSpec, WaflSim


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def small_ssd_sim(
    *,
    aggregate_policy=None,
    vol_policy=None,
    n_groups: int = 1,
    seed: int = 7,
) -> WaflSim:
    """A small all-SSD system: n_groups x (3+1) x 32768-block devices,
    two volumes totalling ~38% of physical capacity."""
    from repro.fs import PolicyKind

    ap = aggregate_policy or PolicyKind.CACHE
    vp = vol_policy or PolicyKind.CACHE
    groups = [
        RAIDGroupConfig(
            ndata=3,
            nparity=1,
            blocks_per_disk=32768,
            media=MediaType.SSD,
            stripes_per_aa=2048,
        )
        for _ in range(n_groups)
    ]
    phys = n_groups * 3 * 32768
    vols = [
        VolSpec("volA", logical_blocks=phys // 4),
        VolSpec("volB", logical_blocks=phys // 8),
    ]
    return WaflSim.build_raid(
        groups, vols, aggregate_policy=ap, vol_policy=vp, seed=seed
    )


@pytest.fixture
def ssd_sim() -> WaflSim:
    return small_ssd_sim()
