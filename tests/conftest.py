"""Shared fixtures: small, fast simulator configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import WaflSim


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def small_ssd_sim(
    *,
    aggregate_policy=None,
    vol_policy=None,
    n_groups: int = 1,
    seed: int = 7,
) -> WaflSim:
    """A small all-SSD system: n_groups x (3+1) x 32768-block devices,
    two volumes totalling ~38% of physical capacity."""
    from repro.fs import PolicyKind

    ap = aggregate_policy or PolicyKind.CACHE
    vp = vol_policy or PolicyKind.CACHE
    phys = n_groups * 3 * 32768
    spec = AggregateSpec(
        tiers=(
            TierSpec(label="ssd", media="ssd", n_groups=n_groups, ndata=3,
                     blocks_per_disk=32768, stripes_per_aa=2048),
        ),
        volumes=(
            VolumeDecl("volA", logical_blocks=phys // 4),
            VolumeDecl("volB", logical_blocks=phys // 8),
        ),
        policy=ap.value,
        vol_policy=vp.value,
    )
    return WaflSim.build(spec, seed=seed)


@pytest.fixture
def ssd_sim() -> WaflSim:
    return small_ssd_sim()
