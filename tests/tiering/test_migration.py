"""Tier-migration tests: block conservation (copied == freed == used),
recommendation/rebalance plumbing, and the refusal cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.common.errors import TieringError
from repro.fs import CPBatch, WaflSim
from repro.tiering import (
    migrate_volume_tier,
    rebalance_tiers,
    recommend_tiers,
    volume_tier_blocks,
)
from repro.workloads import fill_volumes


def tiered_sim(seed: int = 9) -> WaflSim:
    spec = AggregateSpec(
        tiers=(
            TierSpec(label="flash", media="ssd", raid="mirror", ndata=4,
                     blocks_per_disk=4096),
            TierSpec(label="disk", media="hdd", raid="raid4", ndata=6,
                     blocks_per_disk=4096),
        ),
        volumes=(
            VolumeDecl("hot", logical_blocks=4096, workload="oltp"),
            VolumeDecl("cold", logical_blocks=8192, workload="sequential"),
        ),
    )
    return WaflSim.build(spec, seed=seed)


class TestConservation:
    def test_migration_conserves_blocks(self):
        sim = tiered_sim()
        fill_volumes(sim, ops_per_cp=4096, seed=2)
        vol = sim.vols["hot"]
        mapped = int((vol.l2v >= 0).sum())
        assert volume_tier_blocks(sim, "hot")["flash"] == mapped

        report = migrate_volume_tier(sim, "hot", "disk")
        assert report.copied == report.freed == report.used == mapped
        residency = volume_tier_blocks(sim, "hot")
        assert residency["disk"] == mapped
        assert residency.get("flash", 0) == 0
        sim.verify_consistency()

    def test_migration_to_current_tier_is_still_conserving(self):
        sim = tiered_sim()
        fill_volumes(sim, ops_per_cp=4096, seed=2)
        report = migrate_volume_tier(sim, "hot", "flash")
        assert report.copied == report.freed == report.used

    def test_empty_volume_migrates_trivially(self):
        sim = tiered_sim()
        report = migrate_volume_tier(sim, "hot", "disk")
        assert report.copied == report.freed == report.used == 0


class TestRefusals:
    def test_unknown_target_tier(self):
        sim = tiered_sim()
        with pytest.raises(TieringError, match="tape"):
            migrate_volume_tier(sim, "hot", "tape")

    def test_unknown_volume(self):
        sim = tiered_sim()
        with pytest.raises(TieringError, match="nope"):
            migrate_volume_tier(sim, "nope", "disk")

    def test_snapshotted_volume_is_refused(self):
        sim = tiered_sim()
        fill_volumes(sim, ops_per_cp=4096, seed=2)
        sim.create_snapshot("hot", "pin")
        with pytest.raises(TieringError, match="snapshot"):
            migrate_volume_tier(sim, "hot", "disk")

    def test_untierd_sim_is_refused(self):
        flat = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                                blocks_per_disk=8192, stripes_per_aa=1024),),
                volumes=(VolumeDecl("v", logical_blocks=8192),),
            ),
            seed=0,
        )
        with pytest.raises(TieringError):
            migrate_volume_tier(flat, "v", "ssd")


class TestRebalance:
    def test_rebalance_corrects_a_misplacement(self):
        sim = tiered_sim()
        fill_volumes(sim, ops_per_cp=4096, seed=2)
        # Misplace the OLTP volume on the capacity tier.
        migrate_volume_tier(sim, "hot", "disk")
        assert recommend_tiers(sim)["hot"] == "flash"
        reports = rebalance_tiers(sim)
        moved = {r.volume: r.target for r in reports}
        assert moved.get("hot") == "flash"
        assert volume_tier_blocks(sim, "hot").get("disk", 0) == 0
        sim.verify_consistency()

    def test_rebalance_is_idempotent(self):
        sim = tiered_sim()
        fill_volumes(sim, ops_per_cp=4096, seed=2)
        rebalance_tiers(sim)
        assert rebalance_tiers(sim) == []
