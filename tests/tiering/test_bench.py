"""Tier bench determinism: the mixed SSD+HDD+SMR demo is a pure
function of (quick, seed) — same-seed runs are byte-identical — and
its payload carries the acceptance assertions (chooser placements,
migration conservation, clean audit and Iron scan)."""

from __future__ import annotations

import json

from repro.tiering import build_tiered_sim, run_tier_bench, tier_demo_spec


class TestDemoSpec:
    def test_quick_and_full_share_shape(self):
        for quick in (True, False):
            spec = tier_demo_spec(quick)
            assert [t.label for t in spec.tiers] == ["flash", "disk", "smr"]
            assert {v.workload for v in spec.volumes} == {
                "oltp", "sequential", "mixed",
            }

    def test_same_seed_builds_identical_sims(self):
        a = build_tiered_sim(quick=True, seed=55)
        b = build_tiered_sim(quick=True, seed=55)
        assert a.store.nblocks == b.store.nblocks
        for ga, gb in zip(a.store.groups, b.store.groups):
            assert (ga.metafile.bitmap.raw_bytes == gb.metafile.bitmap.raw_bytes).all()


class TestReplayIdentity:
    def test_same_seed_same_digest(self):
        a = run_tier_bench(quick=True, seed=55, audit=False)["metrics"]
        b = run_tier_bench(quick=True, seed=55, audit=False)["metrics"]
        assert a["digest"] == b["digest"]
        # Byte-identical payloads, not merely equal digests.
        ka = json.dumps({k: v for k, v in a.items()}, sort_keys=True)
        kb = json.dumps({k: v for k, v in b.items()}, sort_keys=True)
        assert ka == kb

    def test_different_seed_different_digest(self):
        a = run_tier_bench(quick=True, seed=55, audit=False)["metrics"]
        b = run_tier_bench(quick=True, seed=56, audit=False)["metrics"]
        assert a["digest"] != b["digest"]

    def test_payload_carries_the_acceptance_claims(self):
        m = run_tier_bench(quick=True, seed=55)["metrics"]
        assert m["placements"]["oltp0"] == "flash"
        assert m["placements"]["stream0"] == "smr"
        # The misplacement was corrected by the rebalance pass.
        assert m["placements_final"]["oltp0"] == "flash"
        assert m["audit_ok"] and m["iron_clean"]
        for rep in m["migrations"]:
            assert rep["copied"] == rep["freed"] == rep["used"]
