"""TieredStore unit tests: global VBN composition, per-tier capacity
accounting, tier-pinned allocation, and the workload chooser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.common.errors import GeometryError, TieringError
from repro.fs import WaflSim
from repro.tiering import (
    StaticTierPolicy,
    Tier,
    TieredStore,
    choose_tier,
    make_tiered_store,
    media_role,
    serviceable_tiers,
)


def two_tier_spec(**vol_kw) -> AggregateSpec:
    return AggregateSpec(
        tiers=(
            TierSpec(label="flash", media="ssd", raid="mirror", ndata=4,
                     blocks_per_disk=4096),
            TierSpec(label="disk", media="hdd", raid="raid4", ndata=6,
                     blocks_per_disk=4096),
        ),
        volumes=tuple(vol_kw.get("volumes", (
            VolumeDecl("a", logical_blocks=4096, workload="oltp"),
            VolumeDecl("b", logical_blocks=8192, workload="sequential"),
        ))),
    )


class TestComposition:
    def test_build_returns_tiered_store(self):
        sim = WaflSim.build(two_tier_spec(), seed=1)
        store = sim.store
        assert isinstance(store, TieredStore)
        assert store.labels == ["flash", "disk"]
        # Mirror: 4 data + 4 copies -> 4*4096 usable; RAID4: 6*4096.
        assert store.nblocks == 4 * 4096 + 6 * 4096
        assert store.member("flash").nblocks == 4 * 4096
        assert store.bases == [0, 4 * 4096]

    def test_tier_index_of_maps_global_vbns(self):
        store = make_tiered_store(two_tier_spec(), seed=1)
        split = store.bases[1]
        vbns = np.array([0, split - 1, split, store.nblocks - 1])
        assert store.tier_index_of(vbns).tolist() == [0, 0, 1, 1]

    def test_allocate_in_stays_inside_the_tier(self):
        store = make_tiered_store(two_tier_spec(), seed=1)
        split = store.bases[1]
        fast = store.allocate_in("flash", 128)
        slow = store.allocate_in("disk", 128)
        assert (fast < split).all()
        assert (slow >= split).all()
        usage = store.tier_usage()
        assert usage["flash"]["used"] == 128
        assert usage["disk"]["used"] == 128
        assert usage["flash"]["free"] == usage["flash"]["nblocks"] - 128

    def test_unknown_tier_label_raises(self):
        store = make_tiered_store(two_tier_spec(), seed=1)
        with pytest.raises(TieringError, match="unknown tier"):
            store.member("tape")

    def test_physical_instances_are_base_shifted(self):
        store = make_tiered_store(two_tier_spec(), seed=1)
        bases = [base for _, _, base in store.physical_instances()]
        assert bases[0] == 0
        # The disk tier's groups start at the flash member's span.
        assert store.bases[1] in bases

    def test_free_blocks_return_to_their_tier(self):
        store = make_tiered_store(two_tier_spec(), seed=1)
        fast = store.allocate_in("flash", 64)
        slow = store.allocate_in("disk", 64)
        store.log_free(np.concatenate([fast, slow]))
        store.cp_boundary()
        usage = store.tier_usage()
        assert usage["flash"]["used"] == 0
        assert usage["disk"]["used"] == 0


class TestCapacity:
    def test_overcommit_names_per_tier_capacity(self):
        spec = two_tier_spec(volumes=(
            VolumeDecl("huge", logical_blocks=10 * 4096 + 1),
        ))
        with pytest.raises(GeometryError, match="per-tier capacity"):
            WaflSim.build(spec, seed=1)

    def test_exact_fit_is_accepted(self):
        spec = two_tier_spec(volumes=(
            VolumeDecl("fits", logical_blocks=10 * 4096),
        ))
        sim = WaflSim.build(spec, seed=1)
        assert sim.store.nblocks == 10 * 4096


class TestChooser:
    TIERS = (
        TierSpec(label="flash", media="ssd", raid="mirror", ndata=4,
                 blocks_per_disk=4096),
        TierSpec(label="disk", media="hdd", raid="raid4", ndata=6,
                 blocks_per_disk=4096),
        TierSpec(label="smr", media="smr", raid="raid_dp", ndata=8,
                 blocks_per_disk=4032, stripes_per_aa=504),
    )

    def test_oltp_prefers_mirrored_flash(self):
        assert choose_tier(self.TIERS, "oltp") == "flash"

    def test_sequential_prefers_parity_smr(self):
        assert choose_tier(self.TIERS, "sequential") == "smr"

    def test_archive_prefers_the_slowest_media(self):
        assert choose_tier(self.TIERS, "archive") == "smr"

    def test_media_roles(self):
        assert media_role("ssd") is Tier.FAST
        assert media_role("hdd") is Tier.CAPACITY
        assert media_role("object") is Tier.ARCHIVE
        roles = serviceable_tiers(self.TIERS)
        assert roles[Tier.FAST] == ["flash"]
        assert roles[Tier.CAPACITY] == ["disk", "smr"]


class TestStaticPolicy:
    def test_assignments_route_and_reassign(self):
        policy = StaticTierPolicy({"a": "flash"}, default="disk")
        assert policy.tier_of("a") == "flash"
        assert policy.tier_of("other") == "disk"
        policy.assign("a", "disk")
        assert policy.tier_of("a") == "disk"

    def test_build_attaches_chooser_assignments(self):
        sim = WaflSim.build(two_tier_spec(), seed=1)
        policy = sim.store.tier_policy
        assert isinstance(policy, StaticTierPolicy)
        assert policy.tier_of("a") == "flash"   # oltp -> mirrored SSD
        assert policy.tier_of("b") == "disk"    # sequential, no SMR tier
