"""MetricsLog.query(): the unified metric accessor (the deprecated
per-metric accessors it replaced are gone)."""

from __future__ import annotations

import pytest

from repro.sim.cpu import CpuModel
from repro.sim.stats import CPStats, MetricsLog


def small_log() -> MetricsLog:
    log = MetricsLog()
    log.add(CPStats(cp_index=0, ops=100, physical_blocks=50, cpu_us=200.0))
    log.add(CPStats(cp_index=1, ops=300, physical_blocks=150, cpu_us=600.0))
    log.record_point("traffic.gold.p99_ms", 1.5)
    log.record_point("traffic.gold.p99_ms", 2.5)
    log.record_point("queue_depth", 4.0)
    return log


class TestQuery:
    def test_summary_scalars(self):
        log = small_log()
        assert log.query("total_ops") == 400
        assert log.query("total_physical_blocks") == 200
        assert log.query("cpu_us_per_op") == pytest.approx(2.0)

    def test_raw_series_by_full_name(self):
        assert small_log().query("queue_depth") == [4.0]

    def test_tenant_tag_resolves_traffic_series(self):
        assert small_log().query("p99_ms", tenant="gold") == [1.5, 2.5]

    def test_series_returned_as_copies(self):
        log = small_log()
        log.query("queue_depth").append(99.0)
        assert log.query("queue_depth") == [4.0]

    def test_unknown_metric_raises_keyerror_listing_choices(self):
        with pytest.raises(KeyError, match="queue_depth"):
            small_log().query("nope")

    def test_default_suppresses_keyerror(self):
        assert small_log().query("nope", default=[0]) == [0]
        assert small_log().query("p99_ms", tenant="iron", default=None) is None

    def test_unknown_tags_raise_typeerror(self):
        with pytest.raises(TypeError, match="color"):
            small_log().query("total_ops", color="red")

    def test_cpu_phase_breakdown(self):
        log = small_log()
        model = CpuModel()
        phases = log.query("cpu_phase_us", model=model)
        assert isinstance(phases, dict) and phases
        one = next(iter(sorted(phases)))
        assert log.query("cpu_phase_us", model=model, phase=one) == phases[one]

    def test_cpu_phase_requires_model(self):
        with pytest.raises(TypeError, match="model"):
            small_log().query("cpu_phase_us")

    def test_unknown_phase_raises_unless_default(self):
        log = small_log()
        model = CpuModel()
        with pytest.raises(KeyError):
            log.query("cpu_phase_us", model=model, phase="nope")
        assert (
            log.query("cpu_phase_us", model=model, phase="nope", default=0.0)
            == 0.0
        )


class TestDeprecatedAccessorsRemoved:
    def test_series_property_removed(self):
        # The PR-5 deprecation shim served its release; raw series
        # access now goes through query().
        assert not hasattr(small_log(), "series")

    def test_cpu_phase_us_method_removed(self):
        assert not hasattr(small_log(), "cpu_phase_us")

    def test_reset_series_drops_series_keeps_cps(self):
        log = small_log()
        log.reset_series()
        assert log.query("queue_depth", default=None) is None
        assert log.query("total_ops") == 400
