"""Unit tests for the measurement layer (stats, CPU model, latency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import (
    CpuModel,
    CPStats,
    MetricsLog,
    latency_throughput_curve,
    peak_throughput,
    system_curve,
)


class TestCpuModel:
    def test_components_sum(self):
        m = CpuModel(
            base_us_per_op=100,
            us_per_block=1,
            us_per_metafile_block=10,
            us_per_aa_switch=5,
            us_per_cache_op=0.5,
            us_per_spanned_block=2,
        )
        us = m.cp_cpu_us(
            ops=10, blocks=20, metafile_blocks=3, aa_switches=2, cache_ops=4,
            spanned_blocks=5,
        )
        assert us == 1000 + 20 + 30 + 10 + 2 + 10

    def test_cache_maintenance_isolated(self):
        m = CpuModel(us_per_cache_op=0.5)
        assert m.cache_maintenance_us(100) == 50


class TestMetricsLog:
    def make_log(self):
        log = MetricsLog()
        log.add(CPStats(ops=100, physical_blocks=200, cpu_us=1000,
                        device_busy_us=500, metafile_blocks_dirtied=4,
                        full_stripes=8, partial_stripes=2, write_chains=10))
        log.add(CPStats(ops=100, physical_blocks=200, cpu_us=3000,
                        device_busy_us=500, metafile_blocks_dirtied=6,
                        full_stripes=2, partial_stripes=8, write_chains=40))
        return log

    def test_per_op_metrics(self):
        log = self.make_log()
        assert log.cpu_us_per_op == 20.0
        assert log.device_us_per_op == 5.0
        assert log.service_us_per_op == 25.0
        assert log.metafile_blocks_per_op == 0.05

    def test_stripe_metrics(self):
        log = self.make_log()
        assert log.full_stripe_fraction == 0.5
        assert log.mean_chain_length == 8.0

    def test_tail_window(self):
        log = self.make_log()
        tail = log.tail(1)
        assert tail.total_ops == 100
        assert tail.cpu_us_per_op == 30.0

    def test_empty_log(self):
        log = MetricsLog()
        assert log.cpu_us_per_op == 0.0
        assert log.full_stripe_fraction == 0.0
        assert log.summary()["ops"] == 0.0

    def test_cp_stats_fraction(self):
        assert CPStats(full_stripes=3, partial_stripes=1).full_stripe_fraction == 0.75
        assert CPStats().full_stripe_fraction == 0.0


class TestLatencyCurves:
    def test_hockey_stick_shape(self):
        pts = latency_throughput_curve(100.0, [1000, 5000, 20000], nclients=1)
        lats = [p.latency_ms for p in pts]
        assert lats == sorted(lats)
        assert pts[0].achieved_per_client == 1000
        assert pts[-1].achieved_per_client < 20000

    def test_saturation_pins_throughput(self):
        pts = latency_throughput_curve(100.0, [20000, 40000], nclients=1)
        assert pts[0].achieved_per_client == pts[1].achieved_per_client
        assert pts[1].latency_ms > pts[0].latency_ms

    def test_peak_selection(self):
        pts = latency_throughput_curve(100.0, [1000, 5000, 9000], nclients=1)
        pk = peak_throughput(pts)
        assert pk.achieved_per_client == max(p.achieved_per_client for p in pts)

    def test_peak_empty_raises(self):
        with pytest.raises(ValueError):
            peak_throughput([])

    def test_bad_service_raises(self):
        with pytest.raises(ValueError):
            latency_throughput_curve(0.0, [100])

    def test_lower_service_dominates(self):
        """A configuration with lower service time achieves at least the
        throughput of a slower one at every offered load."""
        fast = latency_throughput_curve(80.0, [1000, 10000, 14000], nclients=1)
        slow = latency_throughput_curve(100.0, [1000, 10000, 14000], nclients=1)
        for f, s in zip(fast, slow):
            assert f.achieved_per_client >= s.achieved_per_client
            assert f.latency_ms <= s.latency_ms


class TestSystemCurve:
    def test_cpu_bound(self):
        # cpu 20us/op on 20 cores -> 1M ops/s; device 0.5us -> 2M ops/s.
        pts = system_curve(20.0, 0.5, [2_000_000], nclients=1, cores=20)
        assert pts[0].achieved_per_client == pytest.approx(1e6, rel=0.05)

    def test_device_bound(self):
        pts = system_curve(1.0, 100.0, [100000], nclients=1, cores=20)
        assert pts[0].achieved_per_client == pytest.approx(1e4, rel=0.05)

    def test_device_improvement_moves_knee(self):
        """The Figure 6/8 mechanism: lower device cost -> higher peak."""
        loads = np.linspace(1000, 100000, 30)
        better = peak_throughput(system_curve(15.0, 10.0, loads, nclients=1))
        worse = peak_throughput(system_curve(15.0, 20.0, loads, nclients=1))
        assert better.achieved_per_client > worse.achieved_per_client
        assert better.latency_ms <= worse.latency_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            system_curve(-1.0, 1.0, [100])
