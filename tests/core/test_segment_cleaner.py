"""Unit tests for AA segment cleaning (paper section 3.3.1 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import CacheError
from repro.core.segment_cleaner import clean_best_aas
from repro.fs import PolicyKind
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def aged():
    sim = small_ssd_sim()
    fill_volumes(sim, ops_per_cp=8192)
    wl = RandomOverwriteWorkload(sim, ops_per_cp=2048, seed=4)
    sim.run(wl, 10)
    return sim


class TestCleaning:
    def test_produces_empty_aas(self, aged):
        g = aged.store.groups[0]
        before = g.topology.scores_from_bitmap(g.metafile.bitmap)
        empties_before = int((before == g.topology.aa_blocks).sum())
        rep = clean_best_aas(aged, 0, n_aas=2)
        after = g.topology.scores_from_bitmap(g.metafile.bitmap)
        empties_after = int((after == g.topology.aa_blocks).sum())
        assert rep.aas_cleaned == 2
        assert empties_after >= empties_before + (2 - rep.aas_already_empty) - 1

    def test_moves_fewest_blocks_first(self, aged):
        """Just-in-time cleaning of cache-provided AAs relocates the
        fewest in-use blocks (the paper's ROI argument)."""
        g = aged.store.groups[0]
        scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
        best = int(scores.max())
        rep = clean_best_aas(aged, 0, n_aas=1)
        assert rep.selected_scores
        # The selected AA was (close to) the emptiest one.
        assert rep.selected_scores[0] >= best - g.topology.aa_blocks // 10

    def test_preserves_consistency(self, aged):
        clean_best_aas(aged, 0, n_aas=3)
        aged.verify_consistency()
        for g in aged.store.groups:
            g.keeper.verify_against(g.metafile.bitmap)
            g.cache.check_invariants()

    def test_data_survives_relocation(self, aged):
        """Every mapped logical block still resolves to a live physical
        block after cleaning (the container-map rewrite worked)."""
        vol = aged.vols["volA"]
        mapped = np.flatnonzero(vol.l2v >= 0)[:500]
        clean_best_aas(aged, 0, n_aas=3)
        p = vol.lookup_physical(mapped)
        assert p.size == mapped.size
        g = aged.store.groups[0]
        local = p - g.offset
        assert bool(np.all(g.metafile.bitmap.test(local)))

    def test_cleaning_then_workload(self, aged):
        clean_best_aas(aged, 0, n_aas=2)
        wl = RandomOverwriteWorkload(aged, ops_per_cp=1024, seed=5)
        aged.run(wl, 5)
        aged.verify_consistency()

    def test_report_accounting(self, aged):
        rep = clean_best_aas(aged, 0, n_aas=2)
        assert rep.blocks_moved >= rep.map_updates
        assert rep.aas_cleaned <= 2

    def test_requires_cache(self):
        sim = small_ssd_sim(aggregate_policy=PolicyKind.RANDOM)
        fill_volumes(sim, ops_per_cp=8192)
        with pytest.raises(CacheError):
            clean_best_aas(sim, 0, n_aas=1)

    def test_improves_subsequent_stripe_quality(self, aged):
        """Cleaned AAs give the next CPs fuller stripes."""
        wl = RandomOverwriteWorkload(aged, ops_per_cp=2048, seed=6)
        aged.run(wl, 3)
        before = aged.metrics.tail(3).full_stripe_fraction
        clean_best_aas(aged, 0, n_aas=4)
        aged.run(wl, 3)
        after = aged.metrics.tail(3).full_stripe_fraction
        # At this small sim's utilization stripes are already near-full;
        # cleaning must not make them worse (the bench ablates the gain
        # at realistic utilization).
        assert after >= before - 0.01
