"""Unit tests for the RAID-aware (max-heap) AA cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import CacheError
from repro.core import RAIDAwareAACache


def full_cache(scores):
    return RAIDAwareAACache(len(scores), np.asarray(scores, dtype=np.int64))


class TestFullBuild:
    def test_pop_best_order(self):
        c = full_cache([10, 50, 30, 40, 20])
        order = [c.pop_best() for _ in range(5)]
        assert order == [1, 3, 2, 4, 0]
        assert c.pop_best() is None

    def test_best_score_peeks(self):
        c = full_cache([10, 50, 30])
        assert c.best_score() == 50
        assert c.pop_best() == 1
        assert c.best_score() == 30

    def test_fully_populated(self):
        c = full_cache([1, 2, 3])
        assert c.fully_populated
        assert c.known_count == 3

    def test_memory_model(self):
        c = RAIDAwareAACache(1_000_000, np.zeros(1_000_000, dtype=np.int64))
        # Paper: ~1 MiB for 1M AAs (section 3.3.1).
        assert c.memory_bytes == 8_000_000

    def test_length_mismatch_rejected(self):
        with pytest.raises(CacheError):
            RAIDAwareAACache(4, np.zeros(3, dtype=np.int64))


class TestCheckout:
    def test_popped_aa_not_returned_twice(self):
        c = full_cache([5, 5, 5])
        seen = {c.pop_best(), c.pop_best(), c.pop_best()}
        assert seen == {0, 1, 2}

    def test_push_back_restores(self):
        c = full_cache([10, 20])
        aa = c.pop_best()
        assert aa == 1
        c.push_back(1)
        assert c.pop_best() == 1

    def test_push_back_requires_checkout(self):
        c = full_cache([10, 20])
        with pytest.raises(CacheError):
            c.push_back(0)

    def test_checked_out_tracking(self):
        c = full_cache([10, 20])
        c.pop_best()
        assert c.checked_out == frozenset({1})


class TestApplyChanges:
    def test_rebalance_after_score_change(self):
        c = full_cache([10, 20, 30])
        c.apply_changes([(0, 10, 99)])
        assert c.pop_best() == 0

    def test_checked_out_aa_reinstated_by_change(self):
        c = full_cache([10, 20])
        aa = c.pop_best()
        assert aa == 1
        c.apply_changes([(1, 20, 5)])
        assert c.checked_out == frozenset()
        assert c.pop_best() == 0  # 10 > 5
        assert c.pop_best() == 1

    def test_stale_entries_invalidated(self):
        c = full_cache([10, 20, 30])
        c.apply_changes([(2, 30, 1)])
        c.apply_changes([(2, 1, 25)])
        assert [c.pop_best() for _ in range(3)] == [2, 1, 0]

    def test_invariants_after_many_changes(self):
        rng = np.random.default_rng(0)
        scores = rng.integers(0, 1000, size=50)
        c = full_cache(scores)
        snapshot = scores.copy()
        for _ in range(200):
            aa = int(rng.integers(50))
            if aa in c.checked_out:
                continue
            new = int(rng.integers(0, 1000))
            c.apply_changes([(aa, int(snapshot[aa]), new)])
            snapshot[aa] = new
        c.check_invariants()
        # Drain: must be non-increasing and complete.
        out = []
        while True:
            aa = c.pop_best()
            if aa is None:
                break
            out.append(int(snapshot[aa]))
        assert out == sorted(out, reverse=True)
        assert len(out) == 50

    def test_compaction_bounds_heap(self):
        c = full_cache(list(range(8)))
        for i in range(1000):
            c.apply_changes([(i % 8, 0, i % 100)])
        assert len(c._heap) <= 4 * 8 + 16
        assert c.compactions > 0


class TestSeededMode:
    def test_starts_unknown(self):
        c = RAIDAwareAACache(10)
        assert not c.fully_populated
        assert c.known_count == 0
        assert c.pop_best() is None

    def test_populate_makes_available(self):
        c = RAIDAwareAACache(10)
        c.populate(3, 50)
        c.populate(7, 80)
        assert c.pop_best() == 7
        assert c.pop_best() == 3

    def test_populate_twice_rejected(self):
        c = RAIDAwareAACache(10)
        c.populate(3, 50)
        with pytest.raises(CacheError):
            c.populate(3, 60)

    def test_changes_for_unknown_aas_skipped(self):
        """Score transitions for not-yet-populated AAs are deferred to
        the background rebuild (TopAA mount path)."""
        c = RAIDAwareAACache(10)
        c.populate(0, 5)
        c.apply_changes([(9, 100, 50)])  # unknown AA: ignored
        assert c.known_count == 1
        assert c.score_of(9) == -1

    def test_background_population_completes(self):
        c = RAIDAwareAACache(6)
        for aa, s in [(0, 10), (1, 60)]:
            c.populate(aa, s)
        for aa in range(2, 6):
            c.populate(aa, aa * 10)
        assert c.fully_populated
        assert c.pop_best() == 1  # 60
        assert c.pop_best() == 5  # 50
