"""Unit tests for the write allocator (paper sections 3.1, 3.3.1, 4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import BitmapMetafile
from repro.core import (
    AggregateAllocator,
    CacheSource,
    LinearAATopology,
    LinearAllocator,
    RAIDAgnosticAACache,
    RAIDAwareAACache,
    RAIDGroupAllocator,
    RandomSource,
    ScoreKeeper,
    StripeAATopology,
)
from repro.raid import RAIDGeometry, analyze_raid_writes


def make_linear(nblocks=4096, per_aa=512):
    topo = LinearAATopology(nblocks, per_aa)
    mf = BitmapMetafile(nblocks)
    keeper = ScoreKeeper(topo, mf.bitmap)
    cache = RAIDAgnosticAACache(topo.num_aas, topo.aa_blocks, keeper.scores)
    src = CacheSource(cache, lambda: topo.scores_from_bitmap(mf.bitmap))
    return LinearAllocator(topo, mf, src, keeper), topo, mf, keeper, cache


def make_raid(ndata=3, blocks_per_disk=1024, stripes_per_aa=128, offset=0):
    g = RAIDGeometry(ndata, 1, blocks_per_disk)
    topo = StripeAATopology(g, stripes_per_aa)
    mf = BitmapMetafile(g.data_blocks)
    keeper = ScoreKeeper(topo, mf.bitmap)
    cache = RAIDAwareAACache(topo.num_aas, keeper.scores)
    alloc = RAIDGroupAllocator(topo, mf, CacheSource(cache), keeper, store_offset=offset)
    return alloc, topo, mf, keeper, cache


class TestLinearAllocator:
    def test_sequential_within_aa(self):
        alloc, topo, mf, keeper, _ = make_linear()
        v = alloc.allocate(100)
        assert v.size == 100
        assert np.all(np.diff(v) == 1)
        assert len(np.unique(topo.aa_of_vbn(v))) == 1

    def test_spans_aas_when_needed(self):
        alloc, topo, *_ = make_linear()
        v = alloc.allocate(600)  # AA holds 512
        assert v.size == 600
        assert len(np.unique(topo.aa_of_vbn(v))) == 2

    def test_exhausts_space_gracefully(self):
        alloc, *_ = make_linear(nblocks=1024, per_aa=512)
        v = alloc.allocate(2000)
        assert v.size == 1024
        assert alloc.allocate(10).size == 0

    def test_bitmap_and_keeper_updated(self):
        alloc, topo, mf, keeper, _ = make_linear()
        v = alloc.allocate(100)
        # Bitmap updates are pending-span batched; the CP boundary is a
        # synchronization point.
        alloc.cp_flush()
        assert mf.bitmap.test(v).all()
        keeper.verify_against(mf.bitmap)

    def test_flush_pending_syncs_bitmap(self):
        alloc, topo, mf, keeper, _ = make_linear()
        v = alloc.allocate(100)
        alloc.flush_pending()
        assert mf.bitmap.test(v).all()
        # Idempotent: a second flush changes nothing.
        before = mf.bitmap.allocated_count
        alloc.flush_pending()
        assert mf.bitmap.allocated_count == before

    def test_scalar_flush_updates_bitmap_eagerly(self):
        alloc, topo, mf, keeper, _ = make_linear()
        alloc.batch_flush = False
        v = alloc.allocate(100)
        assert mf.bitmap.test(v).all()

    def test_store_offset_applied(self):
        topo = LinearAATopology(1024, 512)
        mf = BitmapMetafile(1024)
        keeper = ScoreKeeper(topo, mf.bitmap)
        cache = RAIDAgnosticAACache(2, 512, keeper.scores)
        alloc = LinearAllocator(topo, mf, CacheSource(cache), keeper, store_offset=10_000)
        v = alloc.allocate(5)
        assert (v >= 10_000).all()
        # The metafile tracks local VBNs.
        alloc.flush_pending()
        assert mf.bitmap.allocated_count == 5

    def test_selected_scores_recorded(self):
        alloc, *_ = make_linear()
        alloc.allocate(10)
        assert alloc.selected_aa_scores == [512]
        assert alloc.mean_selected_score() == 512

    def test_current_aa_held_across_cps(self):
        """The allocator keeps filling its AA across CP boundaries
        (section 3.1); the cache keeps it checked out."""
        alloc, topo, mf, keeper, cache = make_linear()
        v1 = alloc.allocate(10)
        aa = alloc.current_aa
        alloc.cp_flush()
        assert alloc.current_aa == aa
        assert aa in cache.checked_out
        v2 = alloc.allocate(10)
        # Sequential continuation within the same AA.
        assert v2[0] == v1[-1] + 1

    def test_explicit_release_returns_aa(self):
        alloc, topo, mf, keeper, cache = make_linear()
        alloc.allocate(10)
        aa = alloc.current_aa
        alloc.cp_flush()
        alloc.release()
        alloc.cp_flush()
        assert cache.checked_out == frozenset()
        assert alloc.current_aa is None

    def test_span_counter_tracks_density(self):
        alloc, topo, mf, keeper, _ = make_linear()
        # Pre-fragment every AA: every other block allocated, so any
        # selected AA is 50% dense.
        taken = np.arange(0, 4096, 2)
        mf.allocate(taken)
        keeper.recompute(mf.bitmap)
        v = alloc.allocate(50)
        # 50 blocks at 50% density span ~100 VBNs of bitmap.
        assert alloc.spanned_blocks >= 90


class TestRAIDGroupAllocator:
    def test_full_stripes_on_empty_aa(self):
        alloc, topo, mf, keeper, _ = make_raid()
        v = alloc.take_stripes(10, 10**9)
        stats = analyze_raid_writes(topo.geometry, v)
        assert stats.full_stripes == 10
        assert stats.partial_stripes == 0

    def test_block_budget_respected(self):
        alloc, topo, *_ = make_raid()
        v = alloc.take_stripes(100, 7)
        assert v.size == 7

    def test_stripe_budget_respected(self):
        alloc, topo, *_ = make_raid(ndata=3)
        v = alloc.take_stripes(5, 10**9)
        assert v.size == 15  # 5 stripes x 3 disks

    def test_continues_across_aas(self):
        alloc, topo, mf, keeper, _ = make_raid(blocks_per_disk=256, stripes_per_aa=64)
        v = alloc.take_stripes(100, 10**9)
        assert np.unique(topo.aa_of_vbn(v)).size == 2

    def test_fragmented_aa_yields_fewer_blocks_per_stripe(self):
        """A fragmented AA yields partial stripes: the mechanism behind
        Figure 7's per-group write bias."""
        alloc, topo, mf, keeper, cache = make_raid()
        # Fragment every AA identically: on two of three disks, all
        # blocks are taken, leaving one free block per stripe.
        for aa in range(topo.num_aas):
            for start, stop in topo.aa_extents(aa)[:2]:
                mf.set_range(start, stop)
        keeper.recompute(mf.bitmap)
        cache.apply_changes(
            [(aa, topo.aa_blocks, keeper.score(aa)) for aa in range(topo.num_aas)]
        )
        v = alloc.take_stripes(4, 10**9)
        stats = analyze_raid_writes(topo.geometry, v)
        assert stats.data_blocks == 4  # one free block per stripe
        assert stats.partial_stripes == 4

    def test_dry_group_returns_empty(self):
        alloc, topo, mf, keeper, cache = make_raid(blocks_per_disk=256, stripes_per_aa=64)
        alloc.take_stripes(10**6, 10**9)
        assert alloc.take_stripes(10, 10) .size == 0


class TestAggregateAllocator:
    def make_agg(self, n_groups=2, threshold=0.0, **kw):
        allocs = []
        parts = []
        offset = 0
        for i in range(n_groups):
            a, topo, mf, keeper, cache = make_raid(offset=offset, **kw)
            allocs.append(a)
            parts.append((a, topo, mf, keeper, cache))
            offset += topo.nblocks
        return AggregateAllocator(allocs, threshold_fraction=threshold), parts

    def test_spreads_across_groups(self):
        agg, parts = self.make_agg()
        v = agg.allocate(600)
        assert v.size == 600
        per_rg = agg.drain_cp_writes()
        assert all(w.size > 0 for w in per_rg)

    def test_exact_count(self):
        agg, _ = self.make_agg()
        assert agg.allocate(1001).size == 1001

    def test_empty_request(self):
        agg, _ = self.make_agg()
        assert agg.allocate(0).size == 0

    def test_out_of_space_partial(self):
        agg, parts = self.make_agg(n_groups=1, blocks_per_disk=256, stripes_per_aa=64)
        total = parts[0][1].nblocks
        v = agg.allocate(total + 100)
        assert v.size == total

    def test_global_vbns_disjoint_per_group(self):
        agg, parts = self.make_agg()
        v = agg.allocate(1000)
        bound = parts[0][1].nblocks
        g0 = v[v < bound]
        g1 = v[v >= bound]
        assert g0.size > 0 and g1.size > 0
        assert np.unique(v).size == v.size

    def test_threshold_skips_fragmented_group(self):
        agg, parts = self.make_agg(threshold=0.5)
        # Fragment group 0 to ~25% free per AA.
        a0, topo0, mf0, keeper0, cache0 = parts[0]
        rng = np.random.default_rng(0)
        taken = rng.choice(topo0.nblocks, size=int(topo0.nblocks * 0.75), replace=False)
        mf0.allocate(taken)
        keeper0.recompute(mf0.bitmap)
        cache0.apply_changes(
            [(aa, topo0.aa_blocks, keeper0.score(aa)) for aa in range(topo0.num_aas)]
        )
        agg.allocate(300)
        per_rg = agg.drain_cp_writes()
        assert per_rg[0].size == 0  # skipped
        assert per_rg[1].size == 300
        assert agg.threshold_skips >= 1

    def test_all_below_threshold_still_writes(self):
        agg, parts = self.make_agg(threshold=1.1)  # impossible bar
        v = agg.allocate(100)
        assert v.size == 100

    def test_cp_flush_returns_changes(self):
        agg, parts = self.make_agg()
        agg.allocate(10)
        changes = agg.cp_flush()
        assert any(changes)
        for a, topo, mf, keeper, cache in parts:
            keeper.verify_against(mf.bitmap)
