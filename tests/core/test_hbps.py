"""Unit tests for the histogram-based partial sort (paper section 3.3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import CacheError
from repro.core import HBPS
from repro.core.hbps import PAGE_SIZE


class TestBinMapping:
    def test_paper_bin_layout(self):
        """32K max score with 1K bins: bin 0 is the best range, plus a
        final bin for completely full AAs (score 0)."""
        h = HBPS(32768, bin_width=1024)
        assert h.nbins == 33
        assert h.bin_of(32768) == 0
        assert h.bin_of(31745) == 0
        assert h.bin_of(31744) == 1
        assert h.bin_of(1) == 31
        assert h.bin_of(0) == 32

    def test_bin_bounds_roundtrip(self):
        h = HBPS(32768, bin_width=1024)
        for b in range(h.nbins):
            lo, hi = h.bin_bounds(b)
            assert h.bin_of(lo) == b
            assert h.bin_of(hi) == b

    def test_bin_bounds_non_dividing_width(self):
        h = HBPS(100, bin_width=30)
        assert h.nbins == 5
        assert h.bin_bounds(4) == (0, 0)
        lo, hi = h.bin_bounds(3)
        assert (lo, hi) == (1, 10)

    def test_score_out_of_range_raises(self):
        h = HBPS(100, bin_width=10)
        with pytest.raises(CacheError):
            h.bin_of(101)
        with pytest.raises(CacheError):
            h.bin_of(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HBPS(0)
        with pytest.raises(ValueError):
            HBPS(100, bin_width=0)
        with pytest.raises(ValueError):
            HBPS(100, bin_width=101)
        with pytest.raises(ValueError):
            HBPS(100, list_capacity=0)


class TestInsertPop:
    def test_pop_returns_best_bin(self):
        h = HBPS(32768)
        h.insert(1, 100)
        h.insert(2, 32000)
        h.insert(3, 16000)
        item, b = h.pop_best()
        assert item == 2 and b == 0
        item, b = h.pop_best()
        assert item == 3
        item, b = h.pop_best()
        assert item == 1
        assert h.pop_best() is None
        assert h.total_count == 0

    def test_pop_error_margin(self):
        """Popped item is always within one bin width of the max —
        the paper's 3.125% guarantee."""
        h = HBPS(32768, bin_width=1024)
        scores = {i: int(s) for i, s in enumerate(
            np.random.default_rng(0).integers(0, 32769, size=500))}
        for i, s in scores.items():
            h.insert(i, s)
        remaining = dict(scores)
        while remaining:
            popped = h.pop_best()
            if popped is None:
                break
            item, b = popped
            true_max = max(remaining.values())
            assert remaining[item] >= true_max - 1024
            del remaining[item]

    def test_duplicate_listed_insert_raises(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        with pytest.raises(CacheError):
            h.insert(1, 100)

    def test_peek_does_not_remove(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        assert h.peek_best() == (1, 0)
        assert h.total_count == 1
        assert h.pop_best() == (1, 0)


class TestUpdate:
    def test_update_moves_bins(self):
        h = HBPS(32768)
        h.insert(1, 100)
        h.update(1, 100, 32768)
        assert h.pop_best() == (1, 0)

    def test_update_within_bin_is_noop(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        h.update(1, 32768, 32700)
        assert h.counts[0] == 1
        h.check_invariants()

    def test_update_unlisted_item_counts_only(self):
        h = HBPS(32768, list_capacity=2)
        h.insert(1, 32768)
        h.insert(2, 32760)
        h.insert(3, 100)  # bin 31; not listed (capacity 2, worse bin)
        assert not h.is_listed(3)
        h.update(3, 100, 5000)  # moves bins while staying unlisted
        assert h.counts[31] == 0
        assert h.counts[h.bin_of(5000)] == 1
        h.check_invariants()

    def test_rising_item_gets_listed_with_eviction(self):
        h = HBPS(32768, list_capacity=2)
        h.insert(1, 32768)
        h.insert(2, 31000)
        h.insert(3, 100)
        assert h.listed_count == 2
        h.update(3, 100, 32768)  # rises into the best bin
        assert h.is_listed(3)
        assert h.listed_count == 2  # someone was evicted
        assert h.evictions == 1
        h.check_invariants()

    def test_histogram_underflow_detected(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        with pytest.raises(CacheError):
            h.update(2, 100, 200)  # bin 31 is empty


class TestRemove:
    def test_remove_listed(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        h.remove(1, 32768)
        assert h.total_count == 0
        assert h.pop_best() is None

    def test_remove_unlisted(self):
        h = HBPS(32768, list_capacity=1)
        h.insert(1, 32768)
        h.insert(2, 100)
        assert not h.is_listed(2)
        h.remove(2, 100)
        assert h.total_count == 1
        h.check_invariants()


class TestReplenish:
    def test_needs_replenish_signals(self):
        h = HBPS(32768, list_capacity=1)
        h.insert(1, 32768)
        h.insert(2, 100)
        h.pop_best()
        assert h.pop_best() is None
        assert h.needs_replenish

    def test_rebuild_restores_best_first(self):
        h = HBPS(32768, list_capacity=3)
        h.rebuild([(i, i * 100) for i in range(300)])
        assert h.total_count == 300
        item, b = h.pop_best()
        assert item == 299
        h.check_invariants()

    def test_rebuild_empty(self):
        h = HBPS(32768)
        h.insert(1, 5)
        h.rebuild(())
        assert h.total_count == 0
        assert not h.needs_replenish


class TestCapacityInvariant:
    def test_list_never_exceeds_capacity(self):
        h = HBPS(32768, list_capacity=10)
        rng = np.random.default_rng(1)
        for i in range(200):
            h.insert(i, int(rng.integers(0, 32769)))
            assert h.listed_count <= 10
        h.check_invariants()

    def test_better_bins_fully_listed(self):
        """The error-margin precondition: every bin strictly better
        than the worst listed bin is completely listed."""
        h = HBPS(32768, list_capacity=5)
        rng = np.random.default_rng(2)
        for i in range(100):
            h.insert(i, int(rng.integers(0, 32769)))
        h.check_invariants()  # includes the full-listing check

    def test_memory_is_two_pages(self):
        h = HBPS(32768)
        for i in range(10000):
            h.insert(i, i % 32769)
        assert h.memory_bytes == 2 * PAGE_SIZE


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        h = HBPS(32768, list_capacity=100)
        rng = np.random.default_rng(3)
        for i in range(500):
            h.insert(i, int(rng.integers(0, 32769)))
        h2 = HBPS.from_pages(h.to_pages(), list_capacity=100)
        assert h2.total_count == h.total_count
        assert np.array_equal(h2.counts, h.counts)
        assert h2.listed_count == h.listed_count
        h2.check_invariants()

    def test_pages_are_exactly_two_blocks(self):
        h = HBPS(32768)
        assert len(h.to_pages()) == 2 * PAGE_SIZE

    def test_bad_magic_rejected(self):
        from repro.common import SerializationError

        with pytest.raises(SerializationError):
            HBPS.from_pages(b"\x00" * (2 * PAGE_SIZE))

    def test_bad_length_rejected(self):
        from repro.common import SerializationError

        with pytest.raises(SerializationError):
            HBPS.from_pages(b"\x00" * 100)

    def test_loaded_pop_respects_bins(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        h.insert(2, 50)
        h2 = HBPS.from_pages(h.to_pages())
        item, b = h2.pop_best()
        assert item == 1 and b == 0

    def test_empty_roundtrip(self):
        h = HBPS(32768)
        h2 = HBPS.from_pages(h.to_pages())
        assert h2.total_count == 0


class TestCounters:
    def test_operation_counters(self):
        h = HBPS(32768)
        h.insert(1, 32768)
        h.update(1, 32768, 100)
        h.pop_best()
        assert h.updates == 1
        assert h.pops == 1


class TestInvariantFailurePaths:
    """check_invariants must *fail* on corrupted internals — these are
    the detections the whole-system auditor builds on."""

    def _populated(self) -> HBPS:
        h = HBPS(32768, list_capacity=4)
        for item, score in ((1, 32768), (2, 31000), (3, 5000), (4, 100)):
            h.insert(item, score)
        h.check_invariants()
        return h

    def test_corrupt_bin_count_detected(self):
        h = self._populated()
        h._counts[0] += 1
        with pytest.raises(CacheError, match="sum to total"):
            h.check_invariants()

    def test_negative_bin_count_detected(self):
        h = self._populated()
        h._counts[0] -= 1
        h._counts[31] += 1  # keep the total consistent
        b = h.bin_of(100)
        h._counts[b] -= 2  # drive one bin negative
        h._counts[0] += 2
        with pytest.raises(CacheError):
            h.check_invariants()

    def test_partially_listed_better_bin_detected(self):
        h = self._populated()
        # Unlist an item from the best bin while a worse bin stays
        # listed: breaks the full-listing property the error margin
        # depends on.
        h._unlist(1)
        with pytest.raises(CacheError, match="not fully"):
            h.check_invariants()

    def test_position_map_divergence_detected(self):
        h = self._populated()
        h._pos[1] = 31
        with pytest.raises(CacheError, match="mapped elsewhere"):
            h.check_invariants()
