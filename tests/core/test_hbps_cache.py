"""Unit tests for the RAID-agnostic (HBPS-backed) AA cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import CacheError
from repro.core import RAIDAgnosticAACache
from repro.core.hbps import PAGE_SIZE


def make_cache(scores, **kw):
    scores = np.asarray(scores, dtype=np.int64)
    return RAIDAgnosticAACache(len(scores), 32768, scores, **kw)


class TestSelection:
    def test_pop_best_is_near_optimal(self):
        c = make_cache([100, 32000, 16000, 31000])
        aa = c.pop_best()
        # Both 32000 and 31000 land in top bins; popped AA must be
        # within one bin (1024) of the max.
        assert aa in (1, 3)

    def test_pop_marks_checked_out(self):
        c = make_cache([10, 20])
        aa = c.pop_best()
        assert aa in c.checked_out

    def test_best_bin_score(self):
        c = make_cache([100, 32768])
        assert c.best_bin_score() == 32768

    def test_memory_independent_of_size(self):
        small = make_cache([1] * 4)
        big = RAIDAgnosticAACache(1_000_000, 32768)
        assert small.memory_bytes == big.memory_bytes == 2 * PAGE_SIZE


class TestReturnAndChanges:
    def test_return_unchanged(self):
        c = make_cache([10, 32768])
        aa = c.pop_best()
        c.return_aa(aa, 32768)
        assert c.pop_best() == aa

    def test_return_requires_checkout(self):
        c = make_cache([10, 20])
        with pytest.raises(CacheError):
            c.return_aa(0, 10)

    def test_changes_reinstate_checked_out(self):
        c = make_cache([10, 32768])
        aa = c.pop_best()
        c.apply_changes([(aa, 32768, 5)])
        assert aa not in c.checked_out
        c.check_invariants()

    def test_changes_move_tracked_items(self):
        c = make_cache([10, 20])
        c.apply_changes([(0, 10, 32768)])
        assert c.pop_best() == 0

    def test_invariants_after_random_traffic(self):
        rng = np.random.default_rng(0)
        scores = rng.integers(0, 32769, size=200)
        c = make_cache(scores, list_capacity=20)
        snapshot = scores.copy()
        for _ in range(300):
            if rng.random() < 0.3:
                aa = c.pop_best()
                if aa is not None:
                    new = int(rng.integers(0, 32769))
                    c.apply_changes([(aa, int(snapshot[aa]), new)])
                    snapshot[aa] = new
            else:
                aa = int(rng.integers(200))
                if aa in c.checked_out:
                    continue
                new = int(rng.integers(0, 32769))
                c.apply_changes([(aa, int(snapshot[aa]), new)])
                snapshot[aa] = new
            c.check_invariants()


class TestReplenish:
    def test_replenish_refills_list(self):
        c = make_cache([100, 200], list_capacity=2)
        c.pop_best()
        c.pop_best()
        assert c.pop_best() is None
        # Both AAs checked out; replenish keeps them out.
        c.replenish(np.array([100, 200]))
        assert c.pop_best() is None

    def test_replenish_after_returns(self):
        scores = np.arange(0, 32000, 1000)
        c = make_cache(scores, list_capacity=4)
        popped = [c.pop_best() for _ in range(4)]
        for aa in popped:
            c.apply_changes([(aa, int(scores[aa]), 0)])
            scores[aa] = 0
        c.replenish(scores)
        aa = c.pop_best()
        assert scores[aa] >= scores.max() - 1024
        c.check_invariants()

    def test_replenish_length_mismatch(self):
        c = make_cache([1, 2])
        with pytest.raises(CacheError):
            c.replenish(np.array([1, 2, 3]))


class TestSeededPages:
    def test_roundtrip_seeding(self):
        c = make_cache(np.arange(0, 32768, 100))
        pages = c.to_pages()
        s = RAIDAgnosticAACache.from_pages(pages, c.num_aas)
        assert s.seeded
        aa = s.pop_best()
        assert aa is not None
        s.check_invariants()

    def test_seeded_sustains_pops_and_changes(self):
        """The TopAA property: a seeded cache keeps the allocator fed
        while score changes stream in (paper section 3.4)."""
        base = np.arange(0, 32768, 330)
        c = make_cache(base)
        s = RAIDAgnosticAACache.from_pages(c.to_pages(), c.num_aas)
        for i in range(20):
            aa = s.pop_best()
            assert aa is not None
            s.apply_changes([(aa, 0, int(base[aa]) // 2)])
            s.check_invariants()

    def test_seeded_update_unlisted_dropped(self):
        c = make_cache(np.arange(0, 32768, 330), list_capacity=5)
        s = RAIDAgnosticAACache.from_pages(c.to_pages(), c.num_aas, list_capacity=5)
        # Change an AA that is not listed in the seed: dropped silently.
        s.apply_changes([(0, 0, 32768)])
        s.check_invariants()

    def test_replenish_clears_seeded(self):
        c = make_cache(np.arange(0, 32768, 330))
        s = RAIDAgnosticAACache.from_pages(c.to_pages(), c.num_aas)
        s.replenish(np.arange(0, 32768, 330))
        assert not s.seeded
