"""Unit tests for allocation-area topologies (paper section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import Bitmap
from repro.common import GeometryError
from repro.core import LinearAATopology, StripeAATopology
from repro.raid import RAIDGeometry


class TestLinearTopology:
    def test_basic_mapping(self):
        t = LinearAATopology(nblocks=1024, blocks_per_aa=256)
        assert t.num_aas == 4
        assert t.aa_blocks == 256
        assert t.aa_of_vbn(np.array([0, 255, 256, 1023])).tolist() == [0, 0, 1, 3]

    def test_extents(self):
        t = LinearAATopology(1024, 256)
        assert t.aa_extents(2) == [(512, 768)]

    def test_validation(self):
        with pytest.raises(GeometryError):
            LinearAATopology(1000, 256)  # not divisible
        with pytest.raises(GeometryError):
            LinearAATopology(1024, 10)  # not multiple of 8
        with pytest.raises(GeometryError):
            LinearAATopology(1024, 0)

    def test_scores_from_bitmap(self):
        t = LinearAATopology(1024, 256)
        bm = Bitmap(1024)
        bm.set_range(0, 100)
        bm.set_range(512, 768)
        assert t.scores_from_bitmap(bm).tolist() == [156, 256, 0, 256]

    def test_free_vbns_ascending(self):
        t = LinearAATopology(1024, 256)
        bm = Bitmap(1024)
        bm.allocate(np.array([256, 258]))
        free = t.free_vbns(bm, 1, limit=3)
        assert free.tolist() == [257, 259, 260]

    def test_aa_score_single(self):
        t = LinearAATopology(1024, 256)
        bm = Bitmap(1024)
        bm.set_range(0, 10)
        assert t.aa_score(bm, 0) == 246
        assert t.aa_score(bm, 1) == 256

    def test_aa_out_of_range(self):
        t = LinearAATopology(1024, 256)
        bm = Bitmap(1024)
        with pytest.raises(GeometryError):
            t.aa_extents(4)
        with pytest.raises(GeometryError):
            t.free_vbns(bm, -1)


class TestStripeTopology:
    @pytest.fixture
    def topo(self):
        g = RAIDGeometry(ndata=3, nparity=1, blocks_per_disk=256)
        return StripeAATopology(g, stripes_per_aa=64)

    def test_basic_mapping(self, topo):
        assert topo.num_aas == 4
        assert topo.aa_blocks == 3 * 64
        assert topo.nblocks == 3 * 256

    def test_aa_of_vbn_uses_stripe(self, topo):
        # VBN 0 = disk 0 stripe 0 -> AA 0; VBN 256 = disk 1 stripe 0 -> AA 0.
        assert topo.aa_of_vbn(np.array([0, 256, 512])).tolist() == [0, 0, 0]
        # Stripe 64 (first of AA 1) on every disk.
        assert topo.aa_of_vbn(np.array([64, 320, 576])).tolist() == [1, 1, 1]

    def test_extents_one_per_disk(self, topo):
        ext = topo.aa_extents(1)
        assert ext == [(64, 128), (320, 384), (576, 640)]

    def test_scores_fold_disks(self, topo):
        bm = Bitmap(topo.nblocks)
        bm.set_range(0, 64)  # disk 0, all of AA 0's stripes
        bm.set_range(320, 330)  # disk 1, 10 blocks of AA 1
        scores = topo.scores_from_bitmap(bm)
        assert scores.tolist() == [192 - 64, 192 - 10, 192, 192]

    def test_free_vbns_stripe_major(self, topo):
        bm = Bitmap(topo.nblocks)
        free = topo.free_vbns(bm, 0, limit=7)
        # Stripe 0 across disks 0,1,2 then stripe 1 across disks...
        assert free.tolist() == [0, 256, 512, 1, 257, 513, 2]

    def test_free_vbns_skips_allocated(self, topo):
        bm = Bitmap(topo.nblocks)
        bm.allocate(np.array([256]))  # disk 1, stripe 0
        free = topo.free_vbns(bm, 0, limit=5)
        assert free.tolist() == [0, 512, 1, 257, 513]

    def test_validation(self):
        g = RAIDGeometry(ndata=3, nparity=1, blocks_per_disk=256)
        with pytest.raises(GeometryError):
            StripeAATopology(g, stripes_per_aa=100)  # does not divide 256
        with pytest.raises(GeometryError):
            StripeAATopology(g, stripes_per_aa=12)  # not multiple of 8

    def test_bitmap_size_mismatch(self, topo):
        with pytest.raises(GeometryError):
            topo.scores_from_bitmap(Bitmap(64))

    def test_scores_match_per_aa_queries(self, topo):
        rng = np.random.default_rng(5)
        bm = Bitmap(topo.nblocks)
        bm.allocate(rng.choice(topo.nblocks, size=300, replace=False))
        scores = topo.scores_from_bitmap(bm)
        for aa in range(topo.num_aas):
            assert scores[aa] == topo.aa_score(bm, aa)
            assert scores[aa] == topo.free_vbns(bm, aa).size
