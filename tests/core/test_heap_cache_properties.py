"""Property-based tests: the RAID-aware cache against a reference model.

The reference is a plain dict of scores plus a checked-out set.  After
any sequence of pops, push-backs, and CP-boundary score changes:

* ``pop_best`` must return an AA of maximal score among available ones;
* no AA is ever handed out twice concurrently;
* draining the cache yields every available AA exactly once, in
  non-increasing score order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RAIDAwareAACache

N_AAS = 24
MAX_SCORE = 500


@st.composite
def op_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["pop", "push_back", "change"]),
                st.integers(0, N_AAS - 1),
                st.integers(0, MAX_SCORE),
            ),
            max_size=120,
        )
    )


@given(
    initial=st.lists(
        st.integers(0, MAX_SCORE), min_size=N_AAS, max_size=N_AAS
    ),
    ops=op_sequences(),
)
@settings(max_examples=300, deadline=None)
def test_heap_cache_against_reference(initial, ops):
    cache = RAIDAwareAACache(N_AAS, np.asarray(initial, dtype=np.int64))
    scores = dict(enumerate(initial))
    out: set[int] = set()

    for kind, aa, score in ops:
        if kind == "pop":
            got = cache.pop_best()
            if got is None:
                assert len(out) == N_AAS
                continue
            assert got not in out
            available = [s for a, s in scores.items() if a not in out]
            assert scores[got] == max(available)
            out.add(got)
        elif kind == "push_back":
            if aa in out:
                cache.push_back(aa)
                out.discard(aa)
        else:  # change
            # Score transitions always reinstate non-held checkouts.
            cache.apply_changes([(aa, scores[aa], score)])
            scores[aa] = score
            out.discard(aa)
        assert cache.checked_out == frozenset(out)

    # Drain: every available AA exactly once, non-increasing scores.
    drained = []
    while True:
        aa = cache.pop_best()
        if aa is None:
            break
        drained.append(aa)
    assert sorted(drained) == sorted(a for a in range(N_AAS) if a not in out)
    drained_scores = [scores[a] for a in drained]
    assert drained_scores == sorted(drained_scores, reverse=True)
    cache.check_invariants()


@given(
    initial=st.lists(st.integers(0, MAX_SCORE), min_size=N_AAS, max_size=N_AAS),
    held_changes=st.lists(st.integers(0, MAX_SCORE), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_held_aa_not_reissued(initial, held_changes):
    """An AA held across CP boundaries never re-enters the heap while
    held, no matter how its score changes."""
    cache = RAIDAwareAACache(N_AAS, np.asarray(initial, dtype=np.int64))
    held = cache.pop_best()
    score = initial[held]
    for new in held_changes:
        cache.apply_changes([(held, score, new)], held=frozenset((held,)))
        score = new
        assert held in cache.checked_out
        got = cache.pop_best()
        if got is not None:
            assert got != held
            cache.push_back(got)
    # Returning it re-inserts at the latest score.
    cache.push_back(held)
    assert cache.score_of(held) == score
    cache.check_invariants()
