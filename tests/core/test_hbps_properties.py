"""Property-based tests for HBPS against a reference multiset model.

The reference model tracks every (item, score) pair exactly.  After any
sequence of inserts, updates, removes and pops:

* histogram counts must partition the tracked items;
* every pop must return an item within one bin width of the reference
  maximum (the 3.125% guarantee), *as long as the list is non-empty*;
* the list page never exceeds capacity;
* ``check_invariants`` (full-listing of better bins) always holds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HBPS

MAX_SCORE = 1024
BIN_W = 64


@st.composite
def operation_sequences(draw):
    n_items = draw(st.integers(1, 40))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "remove", "pop"]),
                st.integers(0, n_items - 1),
                st.integers(0, MAX_SCORE),
            ),
            max_size=120,
        )
    )
    return ops


@given(ops=operation_sequences(), capacity=st.integers(1, 30))
@settings(max_examples=300, deadline=None)
def test_hbps_against_reference(ops, capacity):
    h = HBPS(MAX_SCORE, bin_width=BIN_W, list_capacity=capacity)
    ref: dict[int, int] = {}

    for kind, item, score in ops:
        if kind == "insert":
            if item in ref:
                continue
            h.insert(item, score)
            ref[item] = score
        elif kind == "update":
            if item not in ref:
                continue
            h.update(item, ref[item], score)
            ref[item] = score
        elif kind == "remove":
            if item not in ref:
                continue
            h.remove(item, ref[item])
            del ref[item]
        else:  # pop
            popped = h.pop_best()
            if popped is None:
                assert h.listed_count == 0
                continue
            it, b = popped
            assert it in ref
            true_max = max(ref.values())
            # Guarantee: within one bin of the best tracked score.
            assert ref[it] >= true_max - BIN_W
            lo, hi = h.bin_bounds(b)
            assert lo <= ref[it] <= hi
            del ref[it]

        # Structural invariants after every operation.
        h.check_invariants()
        assert h.total_count == len(ref)
        assert h.listed_count <= capacity

    # Histogram counts partition the reference multiset.
    for b in range(h.nbins):
        expect = sum(1 for s in ref.values() if h.bin_of(s) == b)
        assert h.counts[b] == expect


@given(ops=operation_sequences())
@settings(max_examples=100, deadline=None)
def test_serialization_roundtrip_any_state(ops):
    h = HBPS(MAX_SCORE, bin_width=BIN_W, list_capacity=16)
    ref: dict[int, int] = {}
    for kind, item, score in ops:
        if kind == "insert" and item not in ref:
            h.insert(item, score)
            ref[item] = score
        elif kind == "update" and item in ref:
            h.update(item, ref[item], score)
            ref[item] = score
        elif kind == "remove" and item in ref:
            h.remove(item, ref[item])
            del ref[item]
        elif kind == "pop":
            popped = h.pop_best()
            if popped:
                del ref[popped[0]]
    h2 = HBPS.from_pages(h.to_pages(), list_capacity=16)
    h2.check_invariants()
    assert h2.total_count == h.total_count
    assert list(h2.counts) == list(h.counts)
    listed_items = {i for i, _ in h.iter_listed()}
    listed_items2 = {i for i, _ in h2.iter_listed()}
    assert listed_items == listed_items2


@given(
    scores=st.lists(st.integers(0, MAX_SCORE), min_size=1, max_size=200),
    capacity=st.integers(1, 50),
)
@settings(max_examples=150, deadline=None)
def test_rebuild_then_drain_is_near_sorted(scores, capacity):
    """Draining a rebuilt HBPS yields scores in near-descending order:
    each popped score is within one bin width of the remaining max."""
    h = HBPS(MAX_SCORE, bin_width=BIN_W, list_capacity=capacity)
    pairs = list(enumerate(scores))
    h.rebuild(pairs)
    remaining = dict(pairs)
    while remaining:
        popped = h.pop_best()
        if popped is None:
            # List dry: replenish from the reference (background scan).
            h.rebuild(remaining.items())
            popped = h.pop_best()
            assert popped is not None
        item, _b = popped
        assert remaining[item] >= max(remaining.values()) - BIN_W
        del remaining[item]
    assert h.total_count == 0
