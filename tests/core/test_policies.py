"""Unit tests for AA selection policy adapters (paper section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CacheSource,
    LinearScanSource,
    RAIDAgnosticAACache,
    RAIDAwareAACache,
    RandomSource,
)


class TestCacheSourceHeap:
    def test_delegates(self):
        cache = RAIDAwareAACache(3, np.array([10, 30, 20]))
        src = CacheSource(cache)
        assert src.best_score() == 30
        assert src.next_aa() == 1
        src.return_aa(1, 30)
        assert src.next_aa() == 1
        src.cp_flush([(1, 30, 0)])
        assert src.next_aa() == 2


class TestCacheSourceHBPS:
    def test_auto_replenish(self):
        scores = np.array([100, 200], dtype=np.int64)
        cache = RAIDAgnosticAACache(2, 32768, scores, list_capacity=1)
        calls = []

        def replenisher():
            calls.append(1)
            return scores

        src = CacheSource(cache, replenisher)
        a = src.next_aa()
        assert a is not None
        src.cp_flush([(a, int(scores[a]), int(scores[a]))])
        b = src.next_aa()  # list dry -> replenish kicks in
        assert b is not None
        assert calls and src.replenish_count >= 1

    def test_no_replenisher_returns_none(self):
        cache = RAIDAgnosticAACache(2, 32768, np.array([100, 200]), list_capacity=1)
        src = CacheSource(cache)
        src.next_aa()
        # Second pop: the one remaining AA is unlisted -> None.
        assert src.next_aa() is None


class TestRandomSource:
    def test_never_hands_out_twice_concurrently(self):
        src = RandomSource(8, seed=1)
        seen = [src.next_aa() for _ in range(8)]
        assert sorted(seen) == list(range(8))
        assert src.next_aa() is None

    def test_return_allows_reissue(self):
        src = RandomSource(1, seed=1)
        assert src.next_aa() == 0
        src.return_aa(0, 0)
        assert src.next_aa() == 0

    def test_cp_flush_releases_changed(self):
        src = RandomSource(2, seed=1)
        a = src.next_aa()
        src.cp_flush([(a, 10, 5)])
        got = {src.next_aa(), src.next_aa()}
        assert got == {0, 1}

    def test_no_score_knowledge(self):
        assert RandomSource(4).best_score() is None

    def test_deterministic_with_seed(self):
        s1 = [RandomSource(100, seed=5).next_aa() for _ in range(1)]
        s2 = [RandomSource(100, seed=5).next_aa() for _ in range(1)]
        assert s1 == s2


class TestLinearScanSource:
    def test_in_order(self):
        src = LinearScanSource(4)
        assert [src.next_aa() for _ in range(4)] == [0, 1, 2, 3]
        assert src.next_aa() is None

    def test_wraps_after_returns(self):
        src = LinearScanSource(3)
        a = src.next_aa()
        src.return_aa(a, 0)
        assert src.next_aa() == 1
        assert src.next_aa() == 2
        assert src.next_aa() == 0  # wrapped to the returned one

    def test_validation(self):
        from repro.common import CacheError

        with pytest.raises(CacheError):
            LinearScanSource(0)
        with pytest.raises(CacheError):
            RandomSource(0)
