"""Shared conformance suite for the unified AACache protocol.

Every test in ``TestConformance`` runs against both implementations —
the RAID-aware max-heap and the RAID-agnostic HBPS — through nothing
but the protocol surface (``select`` / ``invalidate`` / ``consume`` /
``refill`` / ``stats`` and the probe properties).  The factory tests
pin :func:`make_aa_cache`'s topology dispatch and config plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import CacheError
from repro.common.config import CacheConfig, SimConfig
from repro.core import (
    AACache,
    CacheSource,
    LinearAATopology,
    RAIDAgnosticAACache,
    RAIDAwareAACache,
    StripeAATopology,
    make_aa_cache,
)
from repro.raid import RAIDGeometry

N_AAS = 8
AA_BLOCKS = 256
SCORES = [40, 200, 120, 250, 90, 10, 180, 60]


def make_heap(scores=SCORES) -> RAIDAwareAACache:
    return RAIDAwareAACache(len(scores), np.asarray(scores, dtype=np.int64))


def make_hbps(scores=SCORES) -> RAIDAgnosticAACache:
    return RAIDAgnosticAACache(
        len(scores), AA_BLOCKS, np.asarray(scores, dtype=np.int64)
    )


@pytest.fixture(params=["heap", "hbps"])
def cache(request) -> AACache:
    return {"heap": make_heap, "hbps": make_hbps}[request.param]()


class TestConformance:
    def test_satisfies_runtime_protocol(self, cache):
        assert isinstance(cache, AACache)
        assert cache.num_aas == N_AAS

    def test_select_hands_out_each_aa_at_most_once(self, cache):
        out = []
        while (aa := cache.select()) is not None:
            out.append(aa)
        assert len(out) == len(set(out))
        assert all(0 <= aa < N_AAS for aa in out)

    def test_selected_aas_are_checked_out(self, cache):
        aa = cache.select()
        assert aa in cache.checked_out

    def test_invalidate_returns_aa_for_reselection(self, cache):
        aa = cache.select()
        cache.invalidate(aa, SCORES[aa])
        assert aa not in cache.checked_out
        reselected = []
        while (got := cache.select()) is not None:
            reselected.append(got)
        assert aa in reselected

    def test_consume_respects_held_set(self, cache):
        aa = cache.select()
        held = frozenset([aa])
        cache.consume([(aa, SCORES[aa], SCORES[aa] + 4)], held)
        assert aa in cache.checked_out

    def test_consume_releases_unheld_aas(self, cache):
        aa = cache.select()
        cache.consume([(aa, SCORES[aa], SCORES[aa] + 4)])
        assert aa not in cache.checked_out

    def test_refill_rejects_length_mismatch(self, cache):
        with pytest.raises(CacheError):
            cache.refill(np.zeros(N_AAS + 1, dtype=np.int64))

    def test_refill_resets_needs_refill(self, cache):
        while cache.select() is not None:
            pass
        cache.refill(np.asarray(SCORES, dtype=np.int64))
        assert not cache.needs_refill

    def test_best_available_score_tracks_best(self, cache):
        best = cache.best_available_score()
        assert best is not None
        # Exact for the heap; bin resolution (either side) for HBPS.
        assert abs(best - max(SCORES)) <= AA_BLOCKS

    def test_stats_contract(self, cache):
        stats = cache.stats()
        assert {"selects", "maintenance_ops", "checked_out"} <= set(stats)
        cache.select()
        after = cache.stats()
        assert after["selects"] == stats["selects"] + 1
        assert after["checked_out"] == 1

    def test_maintenance_ops_monotone(self, cache):
        seen = [cache.maintenance_ops]
        aa = cache.select()
        seen.append(cache.maintenance_ops)
        cache.invalidate(aa, SCORES[aa])
        seen.append(cache.maintenance_ops)
        cache.refill(np.asarray(SCORES, dtype=np.int64))
        seen.append(cache.maintenance_ops)
        assert seen == sorted(seen)


class TestCacheSource:
    def test_adapts_any_cache(self, cache):
        src = CacheSource(cache)
        aa = src.next_aa()
        assert aa is not None
        src.return_aa(aa, SCORES[aa])
        assert cache.checked_out == frozenset()

    def test_background_refill_triggers_once_dry(self):
        cache = make_hbps()
        calls = []

        def replenisher():
            calls.append(1)
            return np.asarray(SCORES, dtype=np.int64)

        src = CacheSource(cache, replenisher)
        drained = set()
        for _ in range(3 * N_AAS):
            aa = src.next_aa()
            if aa is None:
                break
            drained.add(aa)
            cache.consume([(aa, SCORES[aa], 0)])
        assert src.replenish_count == len(calls)


class TestFactory:
    def test_stripe_topology_builds_heap_cache(self):
        topo = StripeAATopology(RAIDGeometry(3, 1, 32768), 2048)
        cache = make_aa_cache(topo, np.zeros(topo.num_aas, dtype=np.int64))
        assert isinstance(cache, RAIDAwareAACache)
        assert cache.num_aas == topo.num_aas

    def test_linear_topology_builds_hbps_cache(self):
        topo = LinearAATopology(4096, 256)
        cache = make_aa_cache(topo, np.zeros(topo.num_aas, dtype=np.int64))
        assert isinstance(cache, RAIDAgnosticAACache)

    def test_cache_config_tunes_hbps(self):
        topo = LinearAATopology(4096, 256)
        cfg = CacheConfig(hbps_bin_width=64, hbps_list_capacity=10)
        cache = make_aa_cache(topo, config=cfg)
        assert cache.hbps.bin_width == 64
        assert cache.hbps.list_capacity == 10

    def test_sim_config_is_accepted(self):
        # aa_blocks >= the default bin width, so no clamping applies.
        topo = LinearAATopology(16384, 2048)
        cache = make_aa_cache(topo, config=SimConfig.default())
        assert cache.hbps.bin_width == SimConfig.default().cache.hbps_bin_width


class TestShimsRemoved:
    def test_old_adapters_are_gone(self):
        import repro.core.policies as policies

        assert not hasattr(policies, "HeapSource")
        assert not hasattr(policies, "HBPSSource")
