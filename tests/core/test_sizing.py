"""Unit tests for media-aware AA sizing (paper section 3.2)."""

from __future__ import annotations

import pytest

from repro.common import GeometryError
from repro.core import (
    aa_size_for_hdd,
    aa_size_for_smr,
    aa_size_for_ssd,
    aa_size_raid_agnostic,
    fit_aa_size,
)
from repro.core.aa import LinearAATopology, StripeAATopology
from repro.raid import RAIDGeometry


class TestFitAASize:
    def test_exact_target(self):
        assert fit_aa_size(65536, 4096) == 4096

    def test_rounds_down_to_divisor(self):
        assert fit_aa_size(65536, 5000) == 4096

    def test_falls_back_to_smallest_divisor(self):
        assert fit_aa_size(65536, 4) == 8

    def test_target_above_total(self):
        assert fit_aa_size(4096, 100000) == 4096

    def test_alignment(self):
        assert fit_aa_size(63 * 64, 200, align=63) % 63 == 0

    def test_bad_total_raises(self):
        with pytest.raises(GeometryError):
            fit_aa_size(100, 10, align=63)


class TestHDD:
    def test_default_is_4k_stripes(self):
        g = RAIDGeometry(6, 1, 65536)
        size = aa_size_for_hdd(g)
        assert size.size == 4096
        assert size.policy == "hdd"

    def test_small_disk_adjusts(self):
        g = RAIDGeometry(6, 1, 2048)
        assert aa_size_for_hdd(g).size == 2048

    def test_topology_accepts_result(self):
        g = RAIDGeometry(6, 1, 65536)
        StripeAATopology(g, aa_size_for_hdd(g).size)


class TestSSD:
    def test_multiple_of_erase_block(self):
        g = RAIDGeometry(6, 1, 65536)
        size = aa_size_for_ssd(g, erase_block_blocks=512, min_erase_blocks=4)
        assert size.size % 512 == 0
        assert size.size >= 4 * 512

    def test_larger_than_hdd_default(self):
        """SSD AAs cover several erase blocks (Figure 4B) so they are
        at least the HDD default here."""
        g = RAIDGeometry(6, 1, 65536)
        assert aa_size_for_ssd(g).size >= 2048

    def test_bad_erase_block_rejected(self):
        g = RAIDGeometry(6, 1, 65536)
        with pytest.raises(GeometryError):
            aa_size_for_ssd(g, erase_block_blocks=100)

    def test_topology_accepts_result(self):
        g = RAIDGeometry(6, 1, 65536)
        StripeAATopology(g, aa_size_for_ssd(g).size)


class TestSMR:
    def test_azcs_alignment(self):
        """AZCS-aligned AAs are multiples of 63 data blocks (and of 8
        for the topology), per Figure 4C."""
        stripes = 63 * 8 * 128  # admits 504-aligned divisors
        g = RAIDGeometry(4, 1, stripes)
        size = aa_size_for_smr(g, zone_blocks=4096, azcs=True, min_zones=2)
        assert size.size % 63 == 0
        assert size.size % 8 == 0
        # Alignment rounding may shave a fraction of a zone.
        assert size.size >= 1.9 * 4096

    def test_without_azcs_no_63_alignment(self):
        g = RAIDGeometry(4, 1, 65536)
        size = aa_size_for_smr(g, zone_blocks=4096, azcs=False, min_zones=2)
        assert size.size >= 2 * 4096
        assert size.size % 8 == 0

    def test_default_hdd_size_is_misaligned(self):
        """The premise of Figure 4A: the historical 4k-stripe AA is not
        a multiple of the 63-block AZCS payload."""
        assert 4096 % 63 != 0

    def test_topology_accepts_result(self):
        stripes = 63 * 8 * 128
        g = RAIDGeometry(4, 1, stripes)
        StripeAATopology(g, aa_size_for_smr(g, zone_blocks=4096).size)


class TestRAIDAgnostic:
    def test_default_is_32k(self):
        size = aa_size_raid_agnostic(32768 * 100)
        assert size.size == 32768
        assert size.policy == "raid-agnostic"

    def test_small_space(self):
        assert aa_size_raid_agnostic(1024).size == 1024

    def test_topology_accepts_result(self):
        LinearAATopology(32768 * 4, aa_size_raid_agnostic(32768 * 4).size)

    def test_int_conversion(self):
        assert int(aa_size_raid_agnostic(32768)) == 32768
