"""Unit tests for CP-batched AA score tracking (paper section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import Bitmap
from repro.common import CacheError
from repro.core import LinearAATopology, ScoreKeeper


def make_keeper(nblocks=1024, per_aa=256, bitmap=None):
    topo = LinearAATopology(nblocks, per_aa)
    return ScoreKeeper(topo, bitmap), topo


class TestInit:
    def test_empty_space_scores_full(self):
        k, t = make_keeper()
        assert k.scores.tolist() == [256] * 4

    def test_init_from_bitmap(self):
        bm = Bitmap(1024)
        bm.set_range(0, 100)
        k, _ = make_keeper(bitmap=bm)
        assert k.scores.tolist() == [156, 256, 256, 256]

    def test_scores_readonly(self):
        k, _ = make_keeper()
        with pytest.raises(ValueError):
            k.scores[0] = 1


class TestDeltas:
    def test_deltas_are_delayed(self):
        k, _ = make_keeper()
        k.note_alloc(np.arange(10))
        assert k.score(0) == 256  # not yet applied
        assert k.effective_score(0) == 246
        assert k.has_pending(0)
        assert k.pending_aa_count == 1

    def test_flush_applies_and_reports(self):
        k, _ = make_keeper()
        k.note_alloc(np.arange(10))
        k.note_free(np.array([5]))  # net -9 on AA 0
        changes = k.flush()
        assert changes == [(0, 256, 247)]
        assert k.score(0) == 247
        assert not k.has_pending(0)

    def test_flush_empty(self):
        k, _ = make_keeper()
        assert k.flush() == []
        assert k.flushes == 1

    def test_cancelling_deltas_not_reported(self):
        k, _ = make_keeper()
        k.note_alloc_aa(1, 7)
        k.note_free_aa(1, 7)
        assert k.flush() == []

    def test_cross_aa_batches(self):
        k, _ = make_keeper()
        k.note_alloc(np.array([0, 1, 256, 257, 258, 768]))
        changes = dict((aa, (o, n)) for aa, o, n in k.flush())
        assert changes == {0: (256, 254), 1: (256, 253), 3: (256, 255)}

    def test_out_of_range_delta_raises(self):
        k, _ = make_keeper()
        k.note_free_aa(0, 1)  # would exceed capacity
        with pytest.raises(CacheError):
            k.flush()

    def test_negative_score_raises(self):
        k, _ = make_keeper()
        k.note_alloc_aa(0, 300)
        with pytest.raises(CacheError):
            k.flush()


class TestVerification:
    def test_verify_against_matching_bitmap(self):
        bm = Bitmap(1024)
        k, _ = make_keeper(bitmap=bm)
        bm.allocate(np.arange(20))
        k.note_alloc(np.arange(20))
        k.flush()
        k.verify_against(bm)  # no raise

    def test_verify_detects_divergence(self):
        bm = Bitmap(1024)
        k, _ = make_keeper(bitmap=bm)
        bm.allocate(np.arange(20))  # bitmap moved, keeper not told
        with pytest.raises(CacheError, match="divergence"):
            k.verify_against(bm)

    def test_recompute_resyncs(self):
        bm = Bitmap(1024)
        k, _ = make_keeper(bitmap=bm)
        bm.allocate(np.arange(20))
        k.note_alloc_aa(2, 5)  # bogus pending delta
        k.recompute(bm)
        assert k.score(0) == 236
        assert k.pending_aa_count == 0
        k.verify_against(bm)
