"""Unit tests for TopAA metafile (de)serialization (paper section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import BLOCK_SIZE, SerializationError, TOPAA_RAID_AWARE_ENTRIES
from repro.core import (
    RAIDAgnosticAACache,
    deserialize_heap_seed,
    load_hbps_cache,
    seed_heap_cache,
    serialize_heap_seed,
    serialize_hbps_cache,
)


class TestHeapSeed:
    def test_block_is_4kib(self):
        blk = serialize_heap_seed(np.arange(100))
        assert len(blk) == BLOCK_SIZE

    def test_best_first_order(self):
        scores = np.array([5, 50, 25, 75])
        pairs = deserialize_heap_seed(serialize_heap_seed(scores))
        assert pairs == [(3, 75), (1, 50), (2, 25), (0, 5)]

    def test_caps_at_512_entries(self):
        scores = np.arange(2000)
        pairs = deserialize_heap_seed(serialize_heap_seed(scores))
        assert len(pairs) == TOPAA_RAID_AWARE_ENTRIES
        # The 512 *best* AAs made it in.
        assert min(s for _, s in pairs) == 2000 - 512

    def test_fewer_aas_than_capacity(self):
        pairs = deserialize_heap_seed(serialize_heap_seed(np.array([7])))
        assert pairs == [(0, 7)]

    def test_bad_block_size_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_heap_seed(b"\x00" * 100)

    def test_too_many_entries_rejected(self):
        with pytest.raises(SerializationError):
            serialize_heap_seed(np.arange(10), max_entries=1024)

    def test_seed_heap_cache(self):
        scores = np.arange(1000)
        cache = seed_heap_cache(1000, serialize_heap_seed(scores))
        assert cache.known_count == 512
        assert not cache.fully_populated
        assert cache.pop_best() == 999

    def test_seed_ignores_out_of_range_aas(self):
        """A TopAA block from a larger group (e.g. before shrink) must
        not corrupt a smaller cache."""
        blk = serialize_heap_seed(np.arange(1000))
        cache = seed_heap_cache(600, blk)
        assert cache.known_count <= 512
        best = cache.pop_best()
        assert best is not None and best < 600


class TestHBPSPages:
    def test_roundtrip(self):
        scores = np.arange(0, 32768, 64)
        cache = RAIDAgnosticAACache(scores.size, 32768, scores)
        pages = serialize_hbps_cache(cache)
        assert len(pages) == 2 * BLOCK_SIZE
        loaded = load_hbps_cache(pages, scores.size)
        assert loaded.seeded
        assert loaded.hbps.total_count == scores.size
        aa = loaded.pop_best()
        assert scores[aa] >= scores.max() - 1024
