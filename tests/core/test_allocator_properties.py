"""Property-based tests: allocators against bitmap/keeper ground truth.

For arbitrary interleavings of allocations, frees, and CP boundaries:

* the allocator never hands out an in-use VBN (the metafile's
  double-allocation check would throw);
* after every CP flush, keeper scores match the bitmap exactly;
* total allocated block counts balance.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import BitmapMetafile
from repro.core import (
    AggregateAllocator,
    CacheSource,
    LinearAATopology,
    LinearAllocator,
    RAIDAgnosticAACache,
    RAIDAwareAACache,
    RAIDGroupAllocator,
    ScoreKeeper,
    StripeAATopology,
)
from repro.raid import RAIDGeometry


@st.composite
def op_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["alloc", "free", "cp"]),
                st.integers(1, 300),
            ),
            min_size=1,
            max_size=40,
        )
    )


def run_ops(alloc, metafile, keeper, ops, rng):
    """Drive an allocator through (op, n) pairs with a live set model."""
    live: list[int] = []
    for kind, n in ops:
        if kind == "alloc":
            got = alloc.allocate(n) if hasattr(alloc, "allocate") else None
            if got is None:  # RAID group allocator
                got = alloc.take_stripes(10**9, n)
            assert np.unique(got).size == got.size
            live.extend(got.tolist())
        elif kind == "free" and live:
            take = min(n, len(live))
            idx = rng.choice(len(live), size=take, replace=False)
            idx = np.sort(idx)[::-1]
            freed = np.asarray([live[i] for i in idx], dtype=np.int64)
            for i in idx:
                live.pop(i)
            # Sync the allocator's pending span first: this model frees
            # directly against the metafile, something the real pipeline
            # only does at CP boundaries (which are flush points).  The
            # delayed-free discipline guarantees a block allocated in a
            # CP is never freed in that same CP, so the pending span and
            # a CP's frees are always disjoint.
            alloc.flush_pending()
            metafile.free(freed)
            keeper.note_free(freed)
        else:  # cp
            alloc.cp_flush()
            keeper.verify_against(metafile.bitmap)
    alloc.cp_flush()
    keeper.verify_against(metafile.bitmap)
    assert metafile.bitmap.allocated_count == len(live)


@given(ops=op_sequences(), seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_linear_allocator_random_interleavings(ops, seed):
    topo = LinearAATopology(4096, 512)
    mf = BitmapMetafile(4096, bits_per_block=512)
    keeper = ScoreKeeper(topo, mf.bitmap)
    cache = RAIDAgnosticAACache(topo.num_aas, topo.aa_blocks, keeper.scores)
    src = CacheSource(cache, lambda: topo.scores_from_bitmap(mf.bitmap))
    alloc = LinearAllocator(topo, mf, src, keeper)
    run_ops(alloc, mf, keeper, ops, np.random.default_rng(seed))
    cache.check_invariants()


@given(ops=op_sequences(), seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_raid_allocator_random_interleavings(ops, seed):
    g = RAIDGeometry(3, 1, 1024)
    topo = StripeAATopology(g, 128)
    mf = BitmapMetafile(g.data_blocks, bits_per_block=512)
    keeper = ScoreKeeper(topo, mf.bitmap)
    cache = RAIDAwareAACache(topo.num_aas, keeper.scores)
    alloc = RAIDGroupAllocator(topo, mf, CacheSource(cache), keeper)
    run_ops(alloc, mf, keeper, ops, np.random.default_rng(seed))
    cache.check_invariants()


@given(
    requests=st.lists(st.integers(1, 400), min_size=1, max_size=15),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=100, deadline=None)
def test_aggregate_allocator_never_duplicates(requests, seed):
    parts = []
    allocs = []
    offset = 0
    for _ in range(2):
        g = RAIDGeometry(3, 1, 512)
        topo = StripeAATopology(g, 64)
        mf = BitmapMetafile(g.data_blocks, bits_per_block=512)
        keeper = ScoreKeeper(topo, mf.bitmap)
        cache = RAIDAwareAACache(topo.num_aas, keeper.scores)
        a = RAIDGroupAllocator(topo, mf, CacheSource(cache), keeper,
                               store_offset=offset)
        allocs.append(a)
        parts.append((mf, keeper))
        offset += topo.nblocks
    agg = AggregateAllocator(allocs)
    seen: set[int] = set()
    total_capacity = offset
    for n in requests:
        got = agg.allocate(n)
        got_list = got.tolist()
        assert len(set(got_list)) == len(got_list)
        assert not (seen & set(got_list))
        seen.update(got_list)
        agg.cp_flush()
        for mf, keeper in parts:
            keeper.verify_against(mf.bitmap)
        if len(seen) >= total_capacity:
            break
    assert len(seen) == min(sum(requests), total_capacity)
