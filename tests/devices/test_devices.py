"""Unit tests for the device cost models (DESIGN.md substitutions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import (
    HDD,
    SSD,
    HDDConfig,
    ObjectStore,
    ObjectStoreConfig,
    SMRConfig,
    SMRDrive,
    SSDConfig,
)


class TestHDD:
    def test_chain_cost_model(self):
        cfg = HDDConfig(seek_us=1000, transfer_us_per_block=10)
        d = HDD(10000, cfg)
        us = d.write_blocks(np.array([0, 1, 2, 50, 51]))
        assert us == 2 * 1000 + 5 * 10
        assert d.stats.seeks == 2
        assert d.stats.host_blocks_written == 5
        assert d.stats.write_amplification == 1.0

    def test_fragmentation_costs_more(self):
        cfg = HDDConfig()
        a, b = HDD(100000, cfg), HDD(100000, cfg)
        contiguous = a.write_blocks(np.arange(64))
        scattered = b.write_blocks(np.arange(64) * 100)
        assert scattered > 4 * contiguous

    def test_read_costs(self):
        cfg = HDDConfig(seek_us=1000, transfer_us_per_block=10)
        d = HDD(10000, cfg)
        assert d.read_blocks(2) == 2 * 1010
        assert d.read_blocks(0, 10) == 1000 + 100

    def test_empty_write_free(self):
        d = HDD(100)
        assert d.write_blocks(np.array([], dtype=np.int64)) == 0.0


class TestSSD:
    def make(self, eb=64, nblocks=4096, open_units=4):
        return SSD(nblocks, SSDConfig(erase_block_blocks=eb,
                                      max_open_units=open_units))

    def test_fresh_aligned_write_no_amplification(self):
        d = self.make()
        d.write_blocks(np.arange(128))  # two whole erase units
        d.flush_open_units()
        assert d.write_amplification == 1.0
        assert d.relocated_blocks == 0

    def test_streaming_across_calls_no_relocation(self):
        """Consecutive CPs filling the same open unit stream for free —
        the open-unit behaviour WAFL's sequential AA fill relies on."""
        d = self.make()
        d.write_blocks(np.arange(0, 32))
        d.write_blocks(np.arange(32, 64))  # same unit, still open
        d.flush_open_units()
        assert d.relocated_blocks == 0

    def test_stranded_partial_unit_relocates(self):
        """Figure 4A: an AA smaller than the erase unit strands the
        unit; reopening it later relocates the live remainder."""
        d = self.make()
        d.write_blocks(np.arange(0, 32))
        d.flush_open_units()  # unit closed with 32 live pages
        d.write_blocks(np.arange(32, 64))  # reopen: 32-page liability
        d.flush_open_units()
        assert d.relocated_blocks == 32
        assert d.write_amplification == pytest.approx(96 / 64)

    def test_trim_prevents_relocation(self):
        d = self.make()
        d.write_blocks(np.arange(0, 64))
        d.flush_open_units()
        d.trim(np.arange(0, 64))
        d.write_blocks(np.arange(0, 32))
        d.flush_open_units()
        assert d.relocated_blocks == 0

    def test_trim_during_session_pays_down(self):
        d = self.make()
        d.write_blocks(np.arange(0, 64))
        d.flush_open_units()
        d.write_blocks(np.arange(0, 16))  # reopen with 64-page liability
        d.trim(np.arange(16, 64))  # the rest is freed mid-session
        d.flush_open_units()
        assert d.relocated_blocks == 0

    def test_trim_disabled(self):
        d = SSD(4096, SSDConfig(erase_block_blocks=64, trim_enabled=False))
        d.write_blocks(np.arange(0, 64))
        d.flush_open_units()
        d.trim(np.arange(0, 64))
        d.write_blocks(np.arange(0, 32))
        d.flush_open_units()
        assert d.relocated_blocks == 32

    def test_full_overwrite_no_relocation(self):
        d = self.make()
        d.write_blocks(np.arange(0, 64))
        d.flush_open_units()
        d.write_blocks(np.arange(0, 64))  # overwrite pays the liability
        d.flush_open_units()
        assert d.relocated_blocks == 0
        assert d.erase_counts[0] == 2

    def test_lru_eviction_closes_units(self):
        d = self.make(open_units=2)
        d.write_blocks(np.arange(0, 32))        # open unit 0 (no liability)
        d.flush_open_units()
        d.write_blocks(np.arange(32, 48))       # reopen 0: liability 32
        d.write_blocks(np.arange(64, 80))       # open unit 1
        assert d.relocated_blocks == 0
        d.write_blocks(np.arange(128, 144))     # open unit 2 -> evict unit 0
        assert d.relocated_blocks == 32
        assert set(d.open_units) == {1, 2}

    def test_erase_counts_accumulate(self):
        d = self.make()
        for _ in range(5):
            d.write_blocks(np.arange(0, 64))
            d.flush_open_units()
        assert d.erase_counts[0] == 5
        assert d.erase_counts[1] == 0

    def test_live_fraction(self):
        d = self.make(nblocks=128)
        d.write_blocks(np.arange(64))
        assert d.live_fraction() == pytest.approx(0.5)

    def test_wa_inverse_density_law(self):
        """WA ~ 1/(1-u) when filling u-occupied erase units — the
        quantitative core of the section 4.1.1 result."""
        for live_frac in (0.25, 0.5, 0.75):
            d = self.make(eb=64, nblocks=64 * 64)
            live_per_eb = int(64 * live_frac)
            prime = np.concatenate(
                [np.arange(e * 64, e * 64 + live_per_eb) for e in range(64)]
            )
            d.write_blocks(prime)
            d.flush_open_units()
            # Measure: write the free remainder of every erase unit.
            d.stats.host_blocks_written = 0
            d.stats.device_blocks_written = 0
            fill = np.concatenate(
                [np.arange(e * 64 + live_per_eb, (e + 1) * 64) for e in range(64)]
            )
            d.write_blocks(fill)
            d.flush_open_units()
            expect = 1.0 / (1.0 - live_frac)
            assert d.write_amplification == pytest.approx(expect, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SSD(100, SSDConfig(erase_block_blocks=0))
        with pytest.raises(ValueError):
            SSD(100, SSDConfig(max_open_units=0))


class TestSMR:
    def make(self, zone=1000):
        return SMRDrive(100000, SMRConfig(zone_blocks=zone, seek_us=100,
                                          transfer_us_per_block=1,
                                          rewrite_penalty_us=10000))

    def test_sequential_append_no_penalty(self):
        d = self.make()
        d.write_blocks(np.arange(0, 500))
        d.write_blocks(np.arange(500, 900))
        assert d.rewrites == 0

    def test_rewrite_behind_pointer_penalized(self):
        d = self.make()
        d.write_blocks(np.arange(0, 500))
        us = d.write_blocks(np.array([100]))
        assert d.rewrites == 1
        assert us >= 10000

    def test_new_zone_fresh_pointer(self):
        d = self.make()
        d.write_blocks(np.arange(0, 500))  # zone 0
        d.write_blocks(np.arange(1000, 1100))  # zone 1: fresh
        assert d.rewrites == 0

    def test_chain_accounting(self):
        d = self.make()
        d.write_blocks(np.array([0, 1, 2, 700, 701]))
        assert d.stats.seeks == 2

    def test_multi_zone_batch_updates_pointers(self):
        d = self.make()
        d.write_blocks(np.concatenate([np.arange(0, 10), np.arange(1000, 1010)]))
        d.write_blocks(np.array([5, 1005]))
        assert d.rewrites == 2


class TestObjectStore:
    def test_put_coalescing(self):
        cfg = ObjectStoreConfig(put_us=1000, transfer_us_per_block=1,
                                max_blocks_per_put=1024, concurrency=1)
        d = ObjectStore(100000, cfg)
        one_chain = d.write_blocks(np.arange(100))
        d2 = ObjectStore(100000, cfg)
        scattered = d2.write_blocks(np.arange(100) * 10)
        assert scattered > one_chain

    def test_concurrency_divides_cost(self):
        base = ObjectStoreConfig(concurrency=1)
        par = ObjectStoreConfig(concurrency=8)
        a = ObjectStore(100000, base).write_blocks(np.arange(100))
        b = ObjectStore(100000, par).write_blocks(np.arange(100))
        assert a == pytest.approx(8 * b)

    def test_reads(self):
        d = ObjectStore(100000)
        assert d.read_blocks(5) > 0
