"""Fault-injection and recovery tests."""
