"""Unit tests for the deterministic fault injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import FaultError
from repro.core import PAGE_KIND_HBPS, seal_page, unseal_page
from repro.common.errors import SerializationError
from repro.faults import FaultInjector, FaultKind, corrupt_bytes, flip_bitmap_bits
from repro.bitmap.metafile import BitmapMetafile


class TestOneShots:
    def test_armed_faults_fire_exactly_count_times(self):
        inj = FaultInjector(seed=1)
        inj.arm("vol:a", FaultKind.TRANSIENT_READ, count=2)
        fired = [inj.consume("vol:a", FaultKind.TRANSIENT_READ) for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert inj.injected[("vol:a", FaultKind.TRANSIENT_READ)] == 2

    def test_targets_are_independent(self):
        inj = FaultInjector(seed=1)
        inj.arm("group:0", FaultKind.UNRECONSTRUCTABLE)
        assert not inj.consume("group:1", FaultKind.UNRECONSTRUCTABLE)
        assert not inj.consume("group:0", FaultKind.TRANSIENT_READ)
        assert inj.consume("group:0", FaultKind.UNRECONSTRUCTABLE)

    def test_roll_drains_armed_then_samples(self):
        inj = FaultInjector(seed=1)
        inj.arm("vol:a", FaultKind.LATENT_SECTOR_ERROR, count=3)
        assert inj.roll("vol:a", FaultKind.LATENT_SECTOR_ERROR, 10) == 3
        assert inj.roll("vol:a", FaultKind.LATENT_SECTOR_ERROR, 10) == 0

    def test_roll_bounded_by_n(self):
        inj = FaultInjector(seed=1)
        inj.arm("vol:a", FaultKind.LATENT_SECTOR_ERROR, count=100)
        assert inj.roll("vol:a", FaultKind.LATENT_SECTOR_ERROR, 4) == 4

    def test_invalid_configuration_rejected(self):
        inj = FaultInjector(seed=1)
        with pytest.raises(FaultError):
            inj.arm("vol:a", FaultKind.TRANSIENT_READ, count=0)
        with pytest.raises(FaultError):
            inj.set_rate("vol:a", FaultKind.TRANSIENT_READ, 1.5)


class TestRates:
    def test_rate_one_always_fires(self):
        inj = FaultInjector(seed=1)
        inj.set_rate("store", FaultKind.TRANSIENT_READ, 1.0)
        assert all(inj.consume("store", FaultKind.TRANSIENT_READ) for _ in range(10))

    def test_rate_zero_clears(self):
        inj = FaultInjector(seed=1)
        inj.set_rate("store", FaultKind.TRANSIENT_READ, 0.5)
        inj.set_rate("store", FaultKind.TRANSIENT_READ, 0.0)
        assert not any(inj.consume("store", FaultKind.TRANSIENT_READ) for _ in range(20))

    def test_binomial_roll_plausible(self):
        inj = FaultInjector(seed=1)
        inj.set_rate("store", FaultKind.LATENT_SECTOR_ERROR, 0.1)
        hits = inj.roll("store", FaultKind.LATENT_SECTOR_ERROR, 10_000)
        assert 800 < hits < 1200

    def test_same_seed_same_draws(self):
        def draws(seed):
            inj = FaultInjector(seed=seed)
            inj.set_rate("store", FaultKind.TRANSIENT_READ, 0.3)
            inj.set_rate("vol:a", FaultKind.LATENT_SECTOR_ERROR, 0.05)
            out = []
            for _ in range(50):
                out.append(inj.consume("store", FaultKind.TRANSIENT_READ))
                out.append(inj.roll("vol:a", FaultKind.LATENT_SECTOR_ERROR, 64))
            return out

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)


class TestSchedule:
    def test_due_pops_in_order_and_once(self):
        inj = FaultInjector(seed=1)
        inj.schedule(3, "group:0", FaultKind.DISK_FAIL, arg=1)
        inj.schedule(1, "vol:a", FaultKind.TORN_WRITE, count=8)
        assert inj.due(0) == []
        first = inj.due(2)
        assert [f.kind for f in first] == [FaultKind.TORN_WRITE]
        assert [f.kind for f in inj.due(3)] == [FaultKind.DISK_FAIL]
        assert inj.due(99) == []
        assert inj.pending == 0

    def test_due_records_tallies(self):
        inj = FaultInjector(seed=1)
        inj.schedule(1, "vol:a", FaultKind.LOST_WRITE, count=5)
        inj.due(1)
        assert inj.injected[("vol:a", FaultKind.LOST_WRITE)] == 5
        assert inj.injected_total == 5


class TestDamageHelpers:
    def test_corrupt_bytes_breaks_sealed_page_crc(self):
        payload = bytes(range(256)) * 16
        page = seal_page(payload, PAGE_KIND_HBPS, num_aas=32)
        bad = corrupt_bytes(page, 4, rng=3)
        assert bad != page
        with pytest.raises(SerializationError):
            unseal_page(bad, PAGE_KIND_HBPS, num_aas=32)
        # The pristine page still verifies.
        assert unseal_page(page, PAGE_KIND_HBPS, num_aas=32) == payload

    def test_corrupt_bytes_deterministic(self):
        data = b"x" * 4096
        assert corrupt_bytes(data, 8, rng=5) == corrupt_bytes(data, 8, rng=5)

    def test_flip_clear_direction(self):
        mf = BitmapMetafile(4096)
        mf.allocate(np.arange(1000, dtype=np.int64))
        before = mf.bitmap.allocated_count
        out = flip_bitmap_bits(mf.bitmap, 10, rng=1, direction="clear")
        assert out == {"set": 0, "cleared": 10}
        assert mf.bitmap.allocated_count == before - 10

    def test_flip_set_direction(self):
        mf = BitmapMetafile(4096)
        mf.allocate(np.arange(1000, dtype=np.int64))
        before = mf.bitmap.allocated_count
        out = flip_bitmap_bits(mf.bitmap, 10, rng=1, direction="set")
        assert out == {"set": 10, "cleared": 0}
        assert mf.bitmap.allocated_count == before + 10

    def test_flip_both_splits(self):
        mf = BitmapMetafile(4096)
        mf.allocate(np.arange(1000, dtype=np.int64))
        out = flip_bitmap_bits(mf.bitmap, 10, rng=1, direction="both")
        assert out["cleared"] == 5 and out["set"] == 5

    def test_flip_rejects_bad_direction(self):
        mf = BitmapMetafile(128)
        with pytest.raises(FaultError):
            flip_bitmap_bits(mf.bitmap, 1, rng=1, direction="sideways")
