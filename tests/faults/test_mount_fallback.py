"""Self-healing mount: checksummed TopAA pages, per-FS fallback,
bounded retries, media-error escalation (satellites of the
fault-injection PR)."""

from __future__ import annotations

import pytest

from repro.common import RecoveryExhaustedError, TransientIOError
from repro.core import PAGE_KIND_HBPS, seal_page, unseal_page
from repro.core.topaa import serialize_hbps_cache
from repro.faults import FaultInjector, FaultKind, attach_everywhere, corrupt_bytes
from repro.fs import export_topaa, simulate_mount
from repro.fs.iron import scan
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def aged_sim():
    s = small_ssd_sim()
    fill_volumes(s, ops_per_cp=8192)
    s.run(RandomOverwriteWorkload(s, ops_per_cp=2048, seed=3), 6)
    return s


class TestPageVerification:
    def test_corrupt_page_falls_back_only_that_fs(self, aged_sim):
        img = export_topaa(aged_sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks == {"vol:volB": "bad-crc"}
        assert rep.caches_built == 3
        # volB was rebuilt from its bitmap (exact scores, not seeded);
        # the corrupt page never installed a cache.
        assert aged_sim.vol("volB").cache.seeded is False
        # The others really did load from TopAA (seeded).
        assert aged_sim.vol("volA").cache.seeded is True
        # Fallback pays the full metafile walk for volB only.
        expected = (img.total_blocks - 2) + aged_sim.vol(
            "volB"
        ).metafile.metafile_block_count
        assert rep.blocks_read == expected

    def test_missing_vol_page_falls_back(self, aged_sim):
        """A volume present in the simulator but absent from the TopAA
        image must not crash the mount (regression: KeyError)."""
        img = export_topaa(aged_sim)
        del img.vol_pages["volA"]
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks == {"vol:volA": "missing-page"}
        assert rep.caches_built == 3
        aged_sim.run(RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=5), 3)
        aged_sim.verify_consistency()

    def test_truncated_page_detected(self, aged_sim):
        img = export_topaa(aged_sim)
        img.vol_pages["volB"] = img.vol_pages["volB"][:100]
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks["vol:volB"] == "truncated"

    def test_stale_page_detected(self, aged_sim):
        """A page exported for a different AA count (pre-grow image)
        must not seed a cache of the wrong shape."""
        img = export_topaa(aged_sim)
        vol = aged_sim.vol("volB")
        img.vol_pages["volB"] = seal_page(
            serialize_hbps_cache(vol.cache), PAGE_KIND_HBPS, vol.topology.num_aas + 1
        )
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks["vol:volB"] == "stale"

    def test_wrong_kind_detected(self, aged_sim):
        img = export_topaa(aged_sim)
        vol = aged_sim.vol("volB")
        payload = unseal_page(
            img.vol_pages["volB"], PAGE_KIND_HBPS, vol.topology.num_aas
        )
        img.vol_pages["volB"] = seal_page(payload, 1, vol.topology.num_aas)
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks["vol:volB"] == "wrong-kind"

    def test_corrupt_group_block_falls_back(self, aged_sim):
        img = export_topaa(aged_sim)
        img.group_blocks[0] = corrupt_bytes(img.group_blocks[0], 8, rng=2)
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks == {"group:0": "bad-crc"}
        assert aged_sim.store.groups[0].cache.fully_populated

    def test_pristine_image_has_no_fallbacks(self, aged_sim):
        img = export_topaa(aged_sim)
        rep = simulate_mount(aged_sim, img)
        assert rep.fallbacks == {}
        assert rep.repairs == []
        assert rep.blocks_read == img.total_blocks


class TestFaultyMountReads:
    def test_transient_read_retries_with_backoff(self, aged_sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(aged_sim, inj)
        img = export_topaa(aged_sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        inj.arm("vol:volB", FaultKind.TRANSIENT_READ, count=2)
        rep = simulate_mount(aged_sim, img)
        assert rep.transient_retries == 2
        assert rep.retry_backoff_us > 0
        assert rep.modeled_read_us > rep.blocks_read * 250.0
        assert rep.fallbacks == {"vol:volB": "bad-crc"}

    def test_retries_exhausted_raises(self, aged_sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(aged_sim, inj)
        img = export_topaa(aged_sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        inj.arm("vol:volB", FaultKind.TRANSIENT_READ, count=10)
        # The typed exhaustion error subclasses TransientIOError, so
        # callers keyed on the old class keep working.
        with pytest.raises(RecoveryExhaustedError) as exc_info:
            simulate_mount(aged_sim, img, max_retries=2)
        assert isinstance(exc_info.value, TransientIOError)
        assert "budget exhausted" in str(exc_info.value)

    def test_media_error_escalates_to_scoped_repair(self, aged_sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(aged_sim, inj)
        img = export_topaa(aged_sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        inj.arm("vol:volB", FaultKind.UNRECONSTRUCTABLE)
        rep = simulate_mount(aged_sim, img)
        assert rep.repairs == ["vol:volB"]
        assert rep.caches_built == 3
        assert scan(aged_sim).clean
        aged_sim.run(RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=5), 3)
        aged_sim.verify_consistency()

    def test_cps_run_after_degraded_mount(self, aged_sim):
        img = export_topaa(aged_sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        del img.vol_pages["volA"]
        simulate_mount(aged_sim, img)
        aged_sim.run(RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=7), 5)
        aged_sim.verify_consistency()
