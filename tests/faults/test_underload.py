"""Chaos under load: a disk failure and rebuild beneath live
multi-tenant traffic must cost latency, never operations."""

from __future__ import annotations

import json

import pytest

from repro.faults import PHASES, run_chaos_under_load

FAST = dict(n_tenants=2, seed=7, n_cps=18, blocks_per_disk=16_384)


class TestChaosUnderLoad:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_chaos_under_load(scenario="uniform", **FAST)

    def test_no_tenant_loses_an_operation(self, outcome):
        metrics, _ = outcome
        assert metrics.failed_allocations == 0
        assert metrics.cps_completed == FAST["n_cps"]

    def test_failure_and_repair_happened(self, outcome):
        metrics, _ = outcome
        assert metrics.disk_failures == 1
        assert metrics.disks_replaced == 1
        assert metrics.rebuild_us > 0

    def test_degraded_reads_were_reconstructed(self, outcome):
        metrics, _ = outcome
        assert metrics.reconstruction_reads > 0
        assert metrics.degraded_stripes > 0

    def test_every_phase_serves_every_tenant(self, outcome):
        metrics, _ = outcome
        assert tuple(metrics.phase_p99_ms) == PHASES
        for phase in PHASES:
            for name in ("t0", "t1"):
                assert metrics.phase_completed[phase][name] > 0
                assert metrics.phase_p99_ms[phase][name] > 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="fail_at_cp"):
            run_chaos_under_load(
                n_tenants=2, n_cps=10, fail_at_cp=8, replace_at_cp=4,
                blocks_per_disk=16_384,
            )

    def test_same_seed_replays(self):
        a, _ = run_chaos_under_load(scenario="uniform", **FAST)
        b, _ = run_chaos_under_load(scenario="uniform", **FAST)
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )
