"""Iron under injected corruption: exact detection, scoped repair,
graceful degradation (satellite of the fault-injection PR)."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultInjector,
    degraded_instances,
    escalate,
    exit_degraded,
    flip_bitmap_bits,
)
from repro.fs.iron import repair, scan
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def sim():
    s = small_ssd_sim()
    fill_volumes(s, ops_per_cp=8192)
    s.run(RandomOverwriteWorkload(s, ops_per_cp=1024, seed=3), 5)
    return s


class TestDetection:
    def test_scan_finds_exact_flip_counts(self, sim):
        inj = FaultInjector(seed=9)
        vol = sim.vol("volA")
        g = sim.store.groups[0]
        flip_bitmap_bits(vol.metafile.bitmap, 20, inj.rng, direction="set")
        flip_bitmap_bits(g.metafile.bitmap, 12, inj.rng, direction="clear")
        report = scan(sim)
        # Set bits on the vol = allocated-but-unreferenced = leaked;
        # cleared bits on the group = referenced-but-free = corrupt.
        by_where = report.by_where()
        vol_kinds = {f.kind: f.count for f in by_where[vol.where]}
        grp_kinds = {f.kind: f.count for f in by_where[g.where]}
        assert vol_kinds["leaked"] == 20
        assert grp_kinds["corrupt"] == 12
        # Undamaged file systems report nothing.
        assert sim.vol("volB").where not in by_where

    def test_scoped_scan_ignores_out_of_scope_damage(self, sim):
        inj = FaultInjector(seed=9)
        flip_bitmap_bits(sim.vol("volA").metafile.bitmap, 8, inj.rng, "set")
        flip_bitmap_bits(sim.vol("volB").metafile.bitmap, 8, inj.rng, "set")
        report = scan(sim, scope={"vol:volA"})
        assert set(report.by_where()) == {"vol:volA"}


class TestScopedRepair:
    def test_repair_returns_only_fixed_findings(self, sim):
        inj = FaultInjector(seed=9)
        flip_bitmap_bits(sim.vol("volA").metafile.bitmap, 8, inj.rng, "set")
        flip_bitmap_bits(sim.vol("volB").metafile.bitmap, 6, inj.rng, "clear")
        fixed = repair(sim, scope={"vol:volA"})
        assert fixed.repaired
        assert set(fixed.by_where()) == {"vol:volA"}
        # volA is clean now; volB's damage is untouched.
        assert scan(sim, scope={"vol:volA"}).clean
        assert not scan(sim, scope={"vol:volB"}).clean
        # A follow-up full repair clears the rest.
        assert set(repair(sim).by_where()) == {"vol:volB"}
        assert scan(sim).clean

    def test_repair_then_cps_consistent(self, sim):
        inj = FaultInjector(seed=9)
        flip_bitmap_bits(sim.store.groups[0].metafile.bitmap, 16, inj.rng, "both")
        repair(sim)
        assert scan(sim).clean
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=4), 3)
        sim.verify_consistency()


class TestEscalation:
    def test_escalate_serves_degraded_then_recovers(self, sim):
        inj = FaultInjector(seed=9)
        vol = sim.vol("volA")
        g = sim.store.groups[0]
        flip_bitmap_bits(vol.metafile.bitmap, 24, inj.rng, "set")
        flip_bitmap_bits(g.metafile.bitmap, 24, inj.rng, "clear")
        report = scan(sim)
        wheres = sorted(report.by_where())
        fixed = escalate(sim, wheres)
        assert set(fixed.by_where()) == set(wheres)
        assert sorted(degraded_instances(sim)) == wheres
        assert vol.cache is None and g.cache is None
        # Allocation keeps succeeding on the bitmap walk: zero failed
        # allocations while the caches are offline.
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=5), 3)
        assert vol.source.selects > 0
        assert vol.source.bits_scanned > 0
        blocks = exit_degraded(sim)
        assert blocks > 0
        assert degraded_instances(sim) == []
        assert vol.cache is not None and g.cache is not None
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=6), 3)
        assert scan(sim).clean
        sim.verify_consistency()

    def test_escalate_empty_scope_is_noop(self, sim):
        report = escalate(sim, [])
        assert report.repaired and report.clean
        assert degraded_instances(sim) == []
