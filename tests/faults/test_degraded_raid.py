"""Degraded-RAID behaviour: reconstruction, budgets, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import DegradedError, MediaError, TransientIOError
from repro.faults import FaultInjector, FaultKind, attach_everywhere
from repro.raid.geometry import RAIDGeometry
from repro.raid.parity import analyze_raid_writes
from repro.sim.latency import degraded_curve, degraded_read_amplification
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def sim():
    s = small_ssd_sim()
    fill_volumes(s, ops_per_cp=8192)
    s.run(RandomOverwriteWorkload(s, ops_per_cp=1024, seed=3), 3)
    return s


class TestDegradedWrites:
    def test_degraded_analysis_charges_reconstruction(self):
        geom = RAIDGeometry(ndata=3, nparity=1, blocks_per_disk=1024)
        # 10 full stripes: the same 10 DBNs on every data disk.
        vbns = np.concatenate(
            [d * 1024 + np.arange(10, dtype=np.int64) for d in range(3)]
        )
        healthy = analyze_raid_writes(geom, vbns)
        degraded = analyze_raid_writes(geom, vbns, failed_disks=1)
        assert healthy.full_stripes == 10
        assert healthy.reconstruction_reads == 0
        assert healthy.degraded_stripes == 0
        # Full stripes: 3 of 3 data blocks written, 3 survivors
        # (4 disks - 1 failed) => 0 extra reads per stripe.
        assert degraded.degraded_stripes == 10
        assert degraded.reconstruction_reads == 0
        partial = analyze_raid_writes(
            geom, np.arange(10, dtype=np.int64), failed_disks=1
        )
        # 1 of 3 data blocks per stripe => read the other 2 survivors.
        assert partial.reconstruction_reads == 2 * partial.stripes_written
        assert partial.parity_blocks_read == partial.reconstruction_reads

    def test_cps_run_degraded_and_charge_stats(self, sim):
        sim.store.fail_disk(0, 1)
        g = sim.store.groups[0]
        assert g.failed_disks == 1 and g.within_parity_budget
        stats = sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=5), 3)
        assert sum(s.degraded_stripes for s in stats) > 0
        assert sim.metrics.total_degraded_stripes > 0
        sim.verify_consistency()

    def test_degraded_client_reads_reconstruct(self, sim):
        sim.store.fail_disk(0, 1)
        g = sim.store.groups[0]
        sim.store.charge_reads(4000)
        assert g.reconstruction_reads > 0
        assert g.degraded_reads > 0

    def test_replace_disk_rebuilds(self, sim):
        sim.store.fail_disk(0, 1)
        g = sim.store.groups[0]
        busy = g.replace_disk(1)
        assert busy > 0
        assert g.failed_disks == 0
        assert g.blocks_reconstructed == g.config.blocks_per_disk
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=6), 2)
        sim.verify_consistency()

    def test_beyond_parity_budget_raises(self, sim):
        sim.store.fail_disk(0, 0)
        sim.store.fail_disk(0, 1)
        g = sim.store.groups[0]
        assert not g.within_parity_budget
        with pytest.raises(MediaError):
            g.read_metafile()
        with pytest.raises(DegradedError):
            g.replace_disk(0)


class TestFaultyMetafileReads:
    def test_transient_then_success(self, sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(sim, inj)
        g = sim.store.groups[0]
        inj.arm(g.where, FaultKind.TRANSIENT_READ)
        with pytest.raises(TransientIOError):
            g.read_metafile()
        assert g.read_metafile() == g.metafile.metafile_block_count

    def test_latent_sector_errors_reconstructed_within_budget(self, sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(sim, inj)
        g = sim.store.groups[0]
        inj.arm(g.where, FaultKind.LATENT_SECTOR_ERROR, count=4)
        before = g.reconstruction_reads
        g.read_metafile()
        assert g.reconstruction_reads > before

    def test_unreconstructable_is_media_error(self, sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(sim, inj)
        g = sim.store.groups[0]
        inj.arm(g.where, FaultKind.LATENT_SECTOR_ERROR)
        inj.arm(g.where, FaultKind.UNRECONSTRUCTABLE)
        with pytest.raises(MediaError):
            g.read_metafile()

    def test_vol_unreconstructable_is_media_error(self, sim):
        inj = FaultInjector(seed=1)
        attach_everywhere(sim, inj)
        vol = sim.vol("volA")
        inj.arm(vol.where, FaultKind.UNRECONSTRUCTABLE)
        with pytest.raises(MediaError):
            vol.read_metafile()


class TestLatencyModel:
    def test_amplification_bounds(self):
        assert degraded_read_amplification(3, 1, 0) == 1.0
        amp = degraded_read_amplification(3, 1, 1)
        assert 1.0 < amp <= 3.0
        with pytest.raises(ValueError):
            degraded_read_amplification(3, 1, 2)

    def test_degraded_curve_slower_than_healthy(self):
        from repro.sim.latency import latency_throughput_curve

        loads = [100.0, 500.0, 1000.0]
        healthy = latency_throughput_curve(50.0, loads)
        degraded = degraded_curve(50.0, loads, ndata=3, nparity=1, failed_disks=1)
        for h, d in zip(healthy, degraded):
            assert d.latency_ms > h.latency_ms
