"""End-to-end chaos scenario: inject, run CPs, scrub, recover, report."""

from __future__ import annotations

import pytest

from repro.faults import ChaosScenario, default_scenario, run_chaos
from repro.faults.injector import FaultKind, ScheduledFault


@pytest.fixture(scope="module")
def quick_run():
    return run_chaos(default_scenario(seed=1234, quick=True))


class TestAcceptance:
    def test_all_cps_complete_with_zero_failed_allocations(self, quick_run):
        metrics, _sim = quick_run
        assert metrics.cps_completed == default_scenario(quick=True).n_cps
        assert metrics.failed_allocations == 0

    def test_corrupt_topaa_page_fell_back(self, quick_run):
        metrics, _sim = quick_run
        assert metrics.mount_fallbacks == {"vol:volB": "bad-crc"}

    def test_silent_damage_detected_and_repaired(self, quick_run):
        metrics, _sim = quick_run
        assert metrics.findings_detected.get("leaked", 0) >= 48
        assert metrics.findings_detected.get("corrupt", 0) >= 48
        assert metrics.findings_repaired == metrics.findings_detected
        assert "vol:volA" in metrics.escalations
        assert "group:0" in metrics.escalations

    def test_degraded_raid_charged(self, quick_run):
        metrics, sim = quick_run
        assert metrics.disk_failures == 1
        assert metrics.disks_replaced == 1
        assert metrics.degraded_stripes > 0
        assert metrics.reconstruction_reads > 0
        assert metrics.blocks_reconstructed > 0
        assert sim.metrics.total_reconstruction_reads == metrics.reconstruction_reads

    def test_degraded_allocation_served_from_bitmap_walk(self, quick_run):
        metrics, _sim = quick_run
        assert metrics.degraded_cps > 0
        assert metrics.degraded_selects > 0
        assert metrics.walk_bits_scanned > 0
        assert metrics.rebuild_blocks_read > 0

    def test_final_state_clean_and_consistent(self, quick_run):
        metrics, sim = quick_run
        assert metrics.final_clean
        # No file system left degraded.
        from repro.faults import degraded_instances

        assert degraded_instances(sim) == []
        sim.verify_consistency()


class TestDeterminism:
    def test_same_seed_identical_recovery_metrics(self):
        m1, _ = run_chaos(default_scenario(seed=77, quick=True))
        m2, _ = run_chaos(default_scenario(seed=77, quick=True))
        assert m1 == m2

    def test_different_seed_differs(self):
        m1, _ = run_chaos(default_scenario(seed=77, quick=True))
        m2, _ = run_chaos(default_scenario(seed=78, quick=True))
        assert m1 != m2


class TestCustomScenario:
    def test_no_faults_is_a_clean_run(self):
        sc = ChaosScenario(seed=5, n_cps=3, ops_per_cp=512, warmup_cps=1)
        metrics, _sim = run_chaos(sc)
        assert metrics.cps_completed == 3
        assert metrics.failed_allocations == 0
        assert metrics.mount_fallbacks == {}
        assert metrics.escalations == []
        assert metrics.final_clean

    def test_armed_read_faults_flow_through_schedule(self):
        sc = ChaosScenario(seed=5, n_cps=4, ops_per_cp=512, warmup_cps=1)
        sc.faults = [
            ScheduledFault(0, "vol:volA", FaultKind.TOPAA_CORRUPT, count=4),
            ScheduledFault(2, "group:0", FaultKind.TORN_WRITE, count=16),
        ]
        metrics, _sim = run_chaos(sc)
        assert metrics.failed_allocations == 0
        assert "vol:volA" in metrics.mount_fallbacks
        assert metrics.escalations == ["group:0"]
        assert metrics.final_clean


class TestCLI:
    def test_faults_command_passes(self, capsys):
        from repro.cli import main

        rc = main(["faults", "--quick", "--seed", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovery PASSED" in out
        assert "0 failed allocations" in out
