"""Scenario acceptance tests: the noisy-neighbor isolation story, QoS
throttling, uniform steady state, and byte-identical replay (including
across process-pool worker counts via the bench runner)."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import run_bench, strip_timing
from repro.traffic import SCENARIOS, build_scenario, build_traffic_sim, run_traffic

#: Small testbed for fast scenario runs (the bench quick config uses
#: the full 65_536-block disks).
FAST = dict(blocks_per_disk=16_384, n_cps=30)


class TestScenarioBuilding:
    def test_unknown_scenario_rejected(self):
        sim = build_traffic_sim(2, blocks_per_disk=16_384)
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("rogue", sim, 10_000.0)

    def test_contended_needs_two_tenants(self):
        sim = build_traffic_sim(1, blocks_per_disk=16_384)
        with pytest.raises(ValueError, match="aggressor and a victim"):
            build_scenario("noisy-neighbor", sim, 10_000.0, n_tenants=1)

    def test_catalogue(self):
        assert SCENARIOS == ("uniform", "noisy-neighbor", "throttled")


class TestNoisyNeighbor:
    """The ISSUE acceptance bar: the QoS-throttled victim's p99 is
    demonstrably bounded while the unthrottled aggressor saturates."""

    @pytest.fixture(scope="class")
    def run(self):
        return run_traffic("noisy-neighbor", n_tenants=4, seed=7, **FAST)

    def test_victim_p99_bounded_by_qos_contract(self, run):
        victim = run.result.tenants["t1-victim"]
        # Bounded queue: an admitted op waits at most queue_depth/iops
        # behind earlier admissions (64 ops at 4% of capacity).
        bound_ms = 64 / (0.04 * run.calibration.capacity_ops) * 1e3
        assert 0.0 < victim.p99_ms <= 1.2 * bound_ms

    def test_victim_sheds_load_instead_of_latency(self, run):
        victim = run.result.tenants["t1-victim"]
        assert victim.rejected > 0
        assert victim.completed > 0

    def test_aggressor_saturates_the_backend(self, run):
        aggressor = run.result.tenants["t0-aggressor"]
        # Offered 1.5x capacity, unthrottled: it eats most of the
        # backend and its own backlog shows up as a heavy tail.
        assert aggressor.achieved_ops_s > 0.5 * run.result.capacity_ops
        assert aggressor.p99_ms > 5 * run.result.tenants["t1-victim"].p99_ms
        total_achieved = sum(
            t.achieved_ops_s for t in run.result.tenants.values()
        )
        assert total_achieved > 0.8 * run.result.capacity_ops

    def test_bystanders_stay_fast(self, run):
        for name in ("t2", "t3"):
            t = run.result.tenants[name]
            assert t.completed > 0
            assert t.p99_ms < run.result.tenants["t0-aggressor"].p99_ms


class TestThrottled:
    def test_throttling_the_aggressor_restores_the_backend(self):
        run = run_traffic("throttled", n_tenants=3, seed=7, **FAST)
        cap = run.calibration.capacity_ops
        aggressor = run.result.tenants["t0-aggressor"]
        # The cap holds: achieved collapses to the QoS limit...
        assert aggressor.achieved_ops_s == pytest.approx(0.25 * cap, rel=0.15)
        # ...and its tail is bounded by its own queue, not the backlog
        # of 1.5x-capacity offered load.
        bound_ms = 128 / (0.25 * cap) * 1e3
        assert aggressor.p99_ms <= 1.3 * bound_ms
        # The backend comes off saturation.
        total = sum(t.achieved_ops_s for t in run.result.tenants.values())
        assert total < 0.8 * run.result.capacity_ops


class TestUniform:
    def test_every_tenant_gets_its_offered_throughput(self):
        run = run_traffic("uniform", n_tenants=4, seed=7, **FAST)
        for t in run.result.tenants.values():
            assert t.rejected == 0
            assert t.achieved_ops_s == pytest.approx(t.offered_ops_s, rel=0.1)
            assert t.p99_ms < 5.0


class TestReplay:
    def test_same_seed_byte_identical_metrics(self):
        kwargs = dict(n_tenants=3, seed=11, blocks_per_disk=16_384, n_cps=20)
        a = run_traffic("noisy-neighbor", **kwargs).result.as_dict()
        b = run_traffic("noisy-neighbor", **kwargs).result.as_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_differs(self):
        a = run_traffic(
            "uniform", n_tenants=2, seed=1, blocks_per_disk=16_384, n_cps=15
        ).result.as_dict()
        b = run_traffic(
            "uniform", n_tenants=2, seed=2, blocks_per_disk=16_384, n_cps=15
        ).result.as_dict()
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_bench_runner_workers_do_not_change_results(self):
        serial = run_bench(quick=True, workers=1, experiments=["traffic"])
        parallel = run_bench(quick=True, workers=2, experiments=["traffic"])
        a = json.dumps(strip_timing(serial), indent=2, sort_keys=True)
        b = json.dumps(strip_timing(parallel), indent=2, sort_keys=True)
        assert a == b
        assert set(serial["units"]) == {
            "traffic/uniform",
            "traffic/noisy-neighbor",
            "traffic/throttled",
        }
