"""Unit tests for the discrete-event traffic engine: admission, CP
batching and charge-back, SFQ backend behaviour, series recording, and
replay determinism."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.traffic import (
    PoissonArrivals,
    QosLimits,
    TenantSpec,
    TrafficEngine,
)
from repro.workloads import UniformOverwriteMix

from ..conftest import small_ssd_sim


def two_tenant_engine(
    *,
    rate_a: float = 8_000.0,
    rate_b: float = 4_000.0,
    qos_b: QosLimits | None = None,
    depth_b: int | None = None,
    cp_interval_us: float = 25_000.0,
    seed: int = 7,
):
    sim = small_ssd_sim(seed=seed)
    tenants = [
        TenantSpec(
            name="a",
            volume="volA",
            arrivals=PoissonArrivals(rate_a, seed=seed),
            mix=UniformOverwriteMix(
                sim.vols["volA"].spec.logical_blocks, seed=seed + 1
            ),
        ),
        TenantSpec(
            name="b",
            volume="volB",
            arrivals=PoissonArrivals(rate_b, seed=seed + 2),
            mix=UniformOverwriteMix(
                sim.vols["volB"].spec.logical_blocks, seed=seed + 3
            ),
            qos=qos_b,
            queue_depth=depth_b,
        ),
    ]
    return sim, TrafficEngine(sim, tenants, cp_interval_us=cp_interval_us)


class TestConstruction:
    def test_rejects_empty_tenant_list(self):
        sim = small_ssd_sim()
        with pytest.raises(ValueError, match="at least one"):
            TrafficEngine(sim, [])

    def test_rejects_duplicate_names(self):
        sim = small_ssd_sim()
        spec = TenantSpec(
            name="a",
            volume="volA",
            arrivals=PoissonArrivals(100, seed=0),
            mix=UniformOverwriteMix(1_000, seed=0),
        )
        with pytest.raises(ValueError, match="duplicate"):
            TrafficEngine(sim, [spec, spec])

    def test_rejects_unknown_volume(self):
        sim = small_ssd_sim()
        spec = TenantSpec(
            name="a",
            volume="nope",
            arrivals=PoissonArrivals(100, seed=0),
            mix=UniformOverwriteMix(1_000, seed=0),
        )
        with pytest.raises(ValueError, match="unknown volume"):
            TrafficEngine(sim, [spec])

    def test_rejects_nonpositive_interval(self):
        sim = small_ssd_sim()
        spec = TenantSpec(
            name="a",
            volume="volA",
            arrivals=PoissonArrivals(100, seed=0),
            mix=UniformOverwriteMix(1_000, seed=0),
        )
        with pytest.raises(ValueError, match="positive"):
            TrafficEngine(sim, [spec], cp_interval_us=0.0)

    def test_default_interval_targets_ops_per_cp(self):
        sim = small_ssd_sim()
        spec = TenantSpec(
            name="a",
            volume="volA",
            arrivals=PoissonArrivals(10_000, seed=0),
            mix=UniformOverwriteMix(1_000, seed=0),
        )
        engine = TrafficEngine(sim, [spec], target_ops_per_cp=500)
        assert engine.cp_interval_us == pytest.approx(50_000.0)


class TestServiceAndCharging:
    def test_light_load_latency_is_service_time(self):
        _, engine = two_tenant_engine(rate_a=2_000.0, rate_b=1_000.0)
        result = engine.run(12).summary()
        for t in result.tenants.values():
            assert t.completed > 0
            # Far below saturation: tails stay near per-op service, i.e.
            # well under a millisecond on this SSD testbed.
            assert 0.0 < t.p99_ms < 2.0

    def test_cp_stats_carry_ops_by_source(self):
        sim, engine = two_tenant_engine()
        engine.run(8)
        assert sim.metrics.cps, "expected at least one CP"
        for stats in sim.metrics.cps:
            assert set(stats.ops_by_source) <= {"a", "b"}
            assert sum(stats.ops_by_source.values()) == stats.ops

    def test_charge_back_sums_to_cp_costs(self):
        sim, engine = two_tenant_engine()
        engine.run(10)
        total_cpu = sum(c.cpu_us for c in sim.metrics.cps)
        total_dev = sum(c.device_busy_us for c in sim.metrics.cps)
        charged_cpu = sum(st.charged_cpu_us for st in engine.states)
        charged_dev = sum(st.charged_device_us for st in engine.states)
        assert charged_cpu == pytest.approx(total_cpu, rel=1e-9)
        assert charged_dev == pytest.approx(total_dev, rel=1e-9)

    def test_capacity_matches_occupancy_model(self):
        _, engine = two_tenant_engine()
        engine.run(10)
        assert engine.capacity_ops > 0
        result = engine.summary()
        assert result.capacity_ops == pytest.approx(engine.capacity_ops)
        assert result.total_ops == sum(
            int(st.latency_array().size) + st.backend_pending()
            for st in engine.states
        )

    def test_accounting_identity_per_tenant(self):
        _, engine = two_tenant_engine()
        result = engine.run(10).summary()
        for t in result.tenants.values():
            assert t.arrived == t.admitted + t.rejected
            assert t.in_flight == t.arrived - t.rejected - t.completed
            assert t.in_flight >= 0


class TestQosAndQueueing:
    def test_iops_cap_bounds_admission(self):
        _, engine = two_tenant_engine(
            rate_b=4_000.0, qos_b=QosLimits(iops=1_000.0, iops_burst=16.0)
        )
        result = engine.run(20).summary()
        b = result.tenants["b"]
        # Completions can't outrun the cap plus the banked burst (the
        # queue holds everything else with future admission times).
        horizon_s = result.horizon_s
        assert b.completed <= 1_000.0 * horizon_s + 16 + 1
        assert b.achieved_ops_s == pytest.approx(1_000.0, rel=0.1)

    def test_bounded_queue_sheds_load(self):
        _, engine = two_tenant_engine(
            rate_b=4_000.0,
            qos_b=QosLimits(iops=500.0, iops_burst=8.0),
            depth_b=16,
        )
        result = engine.run(20).summary()
        b = result.tenants["b"]
        assert b.rejected > 0
        # The bound the bounded queue buys: an admitted op waits at most
        # queue_depth / iops behind earlier admissions.
        assert b.p99_ms <= 1.3 * (16 / 500.0) * 1e3

    def test_unbounded_queue_never_rejects(self):
        _, engine = two_tenant_engine(
            rate_b=4_000.0, qos_b=QosLimits(iops=500.0, iops_burst=8.0)
        )
        result = engine.run(10).summary()
        assert result.tenants["b"].rejected == 0


class TestSeriesAndSummary:
    def test_series_recorded_per_cp_interval(self):
        sim, engine = two_tenant_engine()
        n_cps = 9
        engine.run(n_cps).summary()
        for name in ("a", "b"):
            for metric in ("achieved_ops_s", "p99_ms", "queue_depth"):
                series = sim.metrics.query(metric, tenant=name)
                assert len(series) == n_cps

    def test_summary_is_idempotent(self):
        sim, engine = two_tenant_engine()
        engine.run(6)
        first = engine.summary()
        second = engine.summary()
        assert asdict(first.tenants["a"]) == asdict(second.tenants["a"])
        # Series are not double-appended by the second call.
        assert len(sim.metrics.query("p99_ms", tenant="a")) == 6


class TestDeterminism:
    def test_same_seed_replays_byte_identical(self):
        _, e1 = two_tenant_engine(seed=13)
        _, e2 = two_tenant_engine(seed=13)
        a = json.dumps(e1.run(8).summary().as_dict(), sort_keys=True)
        b = json.dumps(e2.run(8).summary().as_dict(), sort_keys=True)
        assert a == b

    def test_different_seeds_differ(self):
        _, e1 = two_tenant_engine(seed=13)
        _, e2 = two_tenant_engine(seed=14)
        a = json.dumps(e1.run(8).summary().as_dict(), sort_keys=True)
        b = json.dumps(e2.run(8).summary().as_dict(), sort_keys=True)
        assert a != b
