"""Byte-identity of the scalar and vectorized traffic pipelines.

The batch CP pipeline (``TrafficConfig.vectorized``) must be a pure
performance transformation: same seed, same scenario, bit-for-bit the
same summary, per-tenant latency percentiles, and MetricsLog series as
the scalar reference path it replaces.  Equality here is exact — no
tolerances — because every batched float expression was chosen to
reproduce the scalar evaluation order (np.add.accumulate chains,
np.maximum tail recurrences), not merely approximate it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.traffic.scenarios import SCENARIOS, run_traffic

SERIES_METRICS = ("achieved_ops_s", "p99_ms", "queue_depth")


def _series(run) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for st in run.engine.states:
        name = st.spec.name
        for metric in SERIES_METRICS:
            out[f"{name}.{metric}"] = np.asarray(
                run.sim.metrics.query(metric, tenant=name, default=[])
            )
    return out


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
class TestScalarVectorIdentity:
    def test_summary_is_byte_identical(self, scenario):
        docs = {}
        for vec in (False, True):
            run = run_traffic(scenario, quick=True, seed=7, vectorized=vec)
            docs[vec] = run.result.as_dict()
        assert json.dumps(docs[False], sort_keys=True) == json.dumps(
            docs[True], sort_keys=True
        )

    def test_metrics_series_are_byte_identical(self, scenario):
        series = {}
        for vec in (False, True):
            run = run_traffic(scenario, quick=True, seed=11, vectorized=vec)
            series[vec] = _series(run)
        assert set(series[False]) == set(series[True])
        for key, scalar in series[False].items():
            batched = series[True][key]
            assert scalar.shape == batched.shape, key
            assert np.array_equal(scalar, batched), key


class TestEngineStateIdentity:
    def test_per_tenant_raw_series_match(self):
        """Beyond the summary: the raw per-op arrays (arrival, rejection,
        completion, latency) the series are computed from must agree."""
        runs = {
            vec: run_traffic("noisy-neighbor", quick=True, seed=3, vectorized=vec)
            for vec in (False, True)
        }
        scalar_states = {st.spec.name: st for st in runs[False].engine.states}
        for st in runs[True].engine.states:
            ref = scalar_states[st.spec.name]
            assert np.array_equal(ref.arrivals_array(), st.arrivals_array())
            assert np.array_equal(ref.rejected_array(), st.rejected_array())
            assert np.array_equal(
                np.sort(ref.complete_array()), np.sort(st.complete_array())
            )
            assert np.array_equal(
                np.sort(ref.latency_array()), np.sort(st.latency_array())
            )
            assert ref.arrived_count() == st.arrived_count()
            assert ref.rejected_count() == st.rejected_count()
            assert ref.admitted == st.admitted
