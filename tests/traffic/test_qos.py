"""Unit tests for QoS token buckets and per-tenant admission limits."""

from __future__ import annotations

import pytest

from repro.traffic import QosLimits, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        b = TokenBucket(rate_per_s=1_000, burst=10)
        assert b.ready_time_us(0.0, 10.0) == 0.0

    def test_drained_bucket_waits_for_refill(self):
        b = TokenBucket(rate_per_s=1_000, burst=10)
        b.take(0.0, 10.0)
        # 1 token at 1000/s = 1ms.
        assert b.ready_time_us(0.0, 1.0) == pytest.approx(1_000.0)

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate_per_s=1_000, burst=10)
        b.take(0.0, 10.0)
        # After 1 simulated minute the bucket holds burst, not 60k.
        assert b.ready_time_us(60_000_000.0, 10.0) == 60_000_000.0
        assert b.ready_time_us(60_000_000.0, 11.0) > 60_000_000.0

    def test_request_above_burst_served_at_linear_delay(self):
        b = TokenBucket(rate_per_s=1_000, burst=10)
        # 25 tokens: 10 banked + 15 more at the refill rate (15ms).
        assert b.ready_time_us(0.0, 25.0) == pytest.approx(15_000.0)

    def test_take_tracks_partial_refill(self):
        b = TokenBucket(rate_per_s=1_000, burst=10)
        b.take(0.0, 10.0)
        b.take(5_000.0, 5.0)  # 5 refilled by then, all consumed
        assert b.ready_time_us(5_000.0, 1.0) == pytest.approx(6_000.0)

    def test_sustained_rate_is_enforced(self):
        b = TokenBucket(rate_per_s=10_000, burst=4)
        t = 0.0
        for _ in range(1_000):
            t = b.ready_time_us(t, 1.0)
            b.take(t, 1.0)
        # 1000 ops after the 4-op burst: >= 996 refill periods of 100us.
        assert t >= 996 * 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 10)
        with pytest.raises(ValueError):
            TokenBucket(100, 0.0)


class TestQosLimits:
    def test_no_limits_no_buckets(self):
        assert QosLimits().make_buckets() == []

    def test_iops_bucket_tagged_ops(self):
        buckets = QosLimits(iops=500, iops_burst=8).make_buckets()
        assert len(buckets) == 1
        bucket, dim = buckets[0]
        assert dim == "ops"
        assert bucket.rate_per_s == 500
        assert bucket.burst == 8

    def test_dirty_block_bucket_tagged_blocks(self):
        buckets = QosLimits(
            dirty_blocks_per_s=2_000, dirty_burst_blocks=32
        ).make_buckets()
        assert len(buckets) == 1
        bucket, dim = buckets[0]
        assert dim == "blocks"
        assert bucket.rate_per_s == 2_000

    def test_both_dimensions(self):
        buckets = QosLimits(iops=500, dirty_blocks_per_s=2_000).make_buckets()
        assert [dim for _, dim in buckets] == ["ops", "blocks"]

    def test_buckets_are_fresh_per_call(self):
        limits = QosLimits(iops=100, iops_burst=4)
        first, _ = limits.make_buckets()[0]
        first.take(0.0, 4.0)
        second, _ = limits.make_buckets()[0]
        assert second.ready_time_us(0.0, 4.0) == 0.0
