"""Unit tests for tenant arrival processes: rates, monotonicity,
determinism, and parameter validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic import OnOffArrivals, PoissonArrivals


def drain(proc, horizon_us: float) -> list[float]:
    """All arrivals in [0, horizon_us)."""
    times = []
    t = proc.next_after(0.0)
    while t < horizon_us:
        times.append(t)
        t = proc.next_after(t)
    return times


class TestPoisson:
    def test_arrivals_strictly_increase(self):
        p = PoissonArrivals(10_000, seed=1)
        t = 0.0
        for _ in range(1000):
            nxt = p.next_after(t)
            assert nxt > t
            t = nxt

    def test_empirical_rate_matches_mean(self):
        p = PoissonArrivals(50_000, seed=2)
        times = drain(p, 1_000_000.0)  # one simulated second
        assert len(times) == pytest.approx(50_000, rel=0.05)

    def test_mean_rate_property(self):
        assert PoissonArrivals(1234.5, seed=0).mean_rate_ops_s == 1234.5

    def test_same_seed_replays(self):
        a = drain(PoissonArrivals(5_000, seed=9), 200_000.0)
        b = drain(PoissonArrivals(5_000, seed=9), 200_000.0)
        assert a == b

    def test_different_seeds_decorrelate(self):
        a = drain(PoissonArrivals(5_000, seed=9), 200_000.0)
        b = drain(PoissonArrivals(5_000, seed=10), 200_000.0)
        assert a != b

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-5.0)


class TestOnOff:
    def test_mean_rate_is_duty_cycle_weighted(self):
        p = OnOffArrivals(
            10_000, mean_on_us=100_000.0, mean_off_us=300_000.0, seed=0
        )
        assert p.mean_rate_ops_s == pytest.approx(2_500.0)

    def test_off_rate_contributes(self):
        p = OnOffArrivals(
            10_000,
            mean_on_us=100_000.0,
            mean_off_us=100_000.0,
            off_rate_ops_s=2_000,
            seed=0,
        )
        assert p.mean_rate_ops_s == pytest.approx(6_000.0)

    def test_empirical_rate_near_mean(self):
        p = OnOffArrivals(
            20_000, mean_on_us=50_000.0, mean_off_us=50_000.0, seed=3
        )
        # Long horizon: many on/off cycles so the duty cycle averages out.
        times = drain(p, 10_000_000.0)
        rate = len(times) / 10.0
        assert rate == pytest.approx(p.mean_rate_ops_s, rel=0.2)

    def test_bursts_exceed_mean_rate(self):
        p = OnOffArrivals(
            20_000, mean_on_us=50_000.0, mean_off_us=50_000.0, seed=3
        )
        gaps = np.diff(np.asarray(drain(p, 2_000_000.0)))
        # ON-phase gaps cluster near 1/on_rate, far below 1/mean_rate.
        assert np.median(gaps) < 0.6 * (1e6 / p.mean_rate_ops_s)

    def test_arrivals_strictly_increase(self):
        p = OnOffArrivals(5_000, mean_on_us=10_000.0, mean_off_us=30_000.0, seed=4)
        t = 0.0
        for _ in range(500):
            nxt = p.next_after(t)
            assert nxt > t
            t = nxt

    def test_same_seed_replays(self):
        mk = lambda: OnOffArrivals(
            8_000, mean_on_us=20_000.0, mean_off_us=20_000.0, seed=11
        )
        assert drain(mk(), 500_000.0) == drain(mk(), 500_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(0.0)
        with pytest.raises(ValueError):
            OnOffArrivals(100, off_rate_ops_s=-1.0)
        with pytest.raises(ValueError):
            OnOffArrivals(100, mean_on_us=0.0)
        with pytest.raises(ValueError):
            OnOffArrivals(100, mean_off_us=-1.0)
