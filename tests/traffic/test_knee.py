"""Cross-validation: the event-driven engine's saturation knee must
agree with the closed-form M/M/1-shaped model (they derive capacity
from the same measured per-op service costs)."""

from __future__ import annotations

import pytest

from repro.traffic import knee_validation


class TestKneeCrossValidation:
    @pytest.fixture(scope="class")
    def report(self):
        # The fig6 quick configuration (65_536-block SSDs).
        return knee_validation(seed=7)

    def test_event_knee_within_10pct_of_mm1(self, report):
        assert report["mm1_knee_ops"] > 0
        assert report["event_knee_ops"] > 0
        assert 0.9 <= report["knee_ratio"] <= 1.1

    def test_knees_sit_at_calibrated_capacity(self, report):
        assert report["mm1_knee_ops"] == pytest.approx(
            report["capacity_ops"], rel=0.1
        )

    def test_sweep_shape(self, report):
        points = report["points"]
        assert [p["offered_fraction"] for p in points] == [0.5, 0.8, 1.2, 2.0]
        # Below the knee the engine keeps up with offered load; above it
        # achieved throughput pins at capacity while p99 blows up.
        below = points[0]
        above = points[-1]
        assert below["achieved_ops_s"] == pytest.approx(
            below["offered_ops_s"], rel=0.1
        )
        assert above["achieved_ops_s"] < 0.75 * above["offered_ops_s"]
        assert above["p99_ms"] > 10 * below["p99_ms"]
