"""Unit tests for workload generators and the aging harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    FileChurnWorkload,
    OLTPWorkload,
    RandomOverwriteWorkload,
    SequentialWriteWorkload,
    age_filesystem,
    churn,
    fill_volumes,
    reset_measurement_state,
)

from ..conftest import small_ssd_sim


class TestRandomOverwrite:
    def test_batch_shape(self):
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(sim, ops_per_cp=100, blocks_per_op=2, seed=0)
        b = wl.next_batch()
        assert b.ops == 100
        total = sum(ids.size for ids in b.writes.values())
        assert total == pytest.approx(200, abs=4)

    def test_adjacent_blocks_per_op(self):
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(sim, ops_per_cp=10, blocks_per_op=2, seed=0)
        b = wl.next_batch()
        for ids in b.writes.values():
            pairs = ids.reshape(-1, 2)
            assert np.all(pairs[:, 1] - pairs[:, 0] == 1)

    def test_working_set_restricts_range(self):
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(
            sim, ops_per_cp=500, working_set_fraction=0.1, seed=0
        )
        b = wl.next_batch()
        for name, ids in b.writes.items():
            assert ids.max() <= sim.vols[name].spec.logical_blocks * 0.1 + 2

    def test_ids_within_bounds(self):
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(sim, ops_per_cp=1000, seed=1)
        for _ in range(5):
            b = wl.next_batch()
            for name, ids in b.writes.items():
                assert ids.min() >= 0
                assert ids.max() < sim.vols[name].spec.logical_blocks

    def test_validation(self):
        sim = small_ssd_sim()
        with pytest.raises(ValueError):
            RandomOverwriteWorkload(sim, ops_per_cp=0)
        with pytest.raises(ValueError):
            RandomOverwriteWorkload(sim, working_set_fraction=0.0)


class TestSequential:
    def test_covers_in_order(self):
        sim = small_ssd_sim()
        wl = SequentialWriteWorkload(sim, ops_per_cp=64, wrap=False)
        b = wl.next_batch()
        for ids in b.writes.values():
            assert np.all(np.diff(ids) == 1)
            assert ids[0] == 0

    def test_exhausts_without_wrap(self):
        sim = small_ssd_sim()
        wl = SequentialWriteWorkload(sim, ops_per_cp=10**6, wrap=False)
        wl.next_batch()
        assert wl.exhausted
        assert not wl.next_batch().writes

    def test_wraps(self):
        sim = small_ssd_sim()
        wl = SequentialWriteWorkload(sim, ops_per_cp=10**6, wrap=True)
        wl.next_batch()
        b2 = wl.next_batch()
        assert b2.writes  # keeps producing


class TestOLTP:
    def test_read_write_split(self):
        sim = small_ssd_sim()
        wl = OLTPWorkload(sim, ops_per_cp=1000, read_fraction=0.6, seed=0)
        b = wl.next_batch()
        assert b.reads == 600
        assert b.ops == 1000
        assert sum(i.size for i in b.writes.values()) > 0

    def test_validation(self):
        sim = small_ssd_sim()
        with pytest.raises(ValueError):
            OLTPWorkload(sim, read_fraction=1.0)


class TestFileChurn:
    def test_creates_and_deletes(self):
        sim = small_ssd_sim()
        wl = FileChurnWorkload(sim, ops_per_cp=32, min_file_blocks=8,
                               max_file_blocks=64, seed=0)
        seen_delete = False
        for _ in range(10):
            b = wl.next_batch()
            sim.engine.run_cp(b)
            if b.deletes:
                seen_delete = True
        assert seen_delete
        sim.verify_consistency()

    def test_population_tracking(self):
        sim = small_ssd_sim()
        wl = FileChurnWorkload(sim, ops_per_cp=16, create_bias=1.0,
                               max_file_blocks=64, seed=0)
        wl.next_batch()
        assert wl.live_files("volA") + wl.live_files("volB") > 0

    def test_validation(self):
        sim = small_ssd_sim()
        with pytest.raises(ValueError):
            FileChurnWorkload(sim, min_file_blocks=10, max_file_blocks=5)


class TestAging:
    def test_fill_reaches_logical_ratio(self):
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        expect = sim.total_logical_blocks / sim.store.nblocks
        assert sim.utilization == pytest.approx(expect, rel=0.01)

    def test_churn_preserves_utilization(self):
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        u0 = sim.utilization
        churn(sim, 20000, ops_per_cp=2048)
        assert sim.utilization == pytest.approx(u0, abs=0.05)

    def test_age_filesystem_fragments(self):
        """After aging, per-AA free space is nonuniform — the property
        the AA cache exploits (section 4.1.1)."""
        sim = small_ssd_sim()
        rep = age_filesystem(sim, churn_factor=1.0, ops_per_cp=8192)
        assert rep["utilization"] > 0.3
        g = sim.store.groups[0]
        scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
        frac = scores / g.topology.aa_blocks
        assert frac.std() > 0.01  # genuinely nonuniform

    def test_reset_measurement_state(self):
        sim = small_ssd_sim()
        age_filesystem(sim, churn_factor=0.2, ops_per_cp=8192)
        reset_measurement_state(sim)
        assert sim.metrics.cps == []
        assert sim.store.groups[0].allocator.selected_aa_scores == []
        for g in sim.store.groups:
            for d in g.devices:
                assert d.stats.host_blocks_written == 0
        # The system still runs correctly afterwards.
        wl = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=2)
        sim.run(wl, 2)
        sim.verify_consistency()
