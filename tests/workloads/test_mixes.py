"""Unit tests for per-tenant op mixes: block ranges, adjacency, skew,
and the Workload adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    RandomOverwriteWorkload,
    UniformOverwriteMix,
    WorkloadOpMix,
    ZipfOverwriteMix,
)

from ..conftest import small_ssd_sim


class TestUniformMix:
    def test_block_count_and_bounds(self):
        mix = UniformOverwriteMix(10_000, blocks_per_op=2, seed=0)
        writes, deletes = mix.next_ops(500)
        assert writes.size == 1_000
        assert deletes.size == 0
        assert writes.min() >= 0
        assert writes.max() < 10_000

    def test_ops_dirty_adjacent_blocks(self):
        mix = UniformOverwriteMix(10_000, blocks_per_op=2, seed=0)
        writes, _ = mix.next_ops(100)
        pairs = writes.reshape(-1, 2)
        assert np.all(pairs[:, 1] - pairs[:, 0] == 1)

    def test_working_set_restricts_range(self):
        mix = UniformOverwriteMix(
            10_000, working_set_fraction=0.1, blocks_per_op=2, seed=0
        )
        writes, _ = mix.next_ops(2_000)
        assert writes.max() <= 10_000 * 0.1 + 2

    def test_zero_ops_yields_empty(self):
        mix = UniformOverwriteMix(10_000, seed=0)
        writes, deletes = mix.next_ops(0)
        assert writes.size == 0 and deletes.size == 0

    def test_same_seed_replays(self):
        a, _ = UniformOverwriteMix(10_000, seed=5).next_ops(200)
        b, _ = UniformOverwriteMix(10_000, seed=5).next_ops(200)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformOverwriteMix(0)
        with pytest.raises(ValueError):
            UniformOverwriteMix(100, blocks_per_op=0)
        with pytest.raises(ValueError):
            UniformOverwriteMix(100, working_set_fraction=0.0)
        with pytest.raises(ValueError):
            UniformOverwriteMix(100, working_set_fraction=1.5)


class TestZipfMix:
    def test_bounds_and_shape(self):
        mix = ZipfOverwriteMix(10_000, seed=1)
        writes, deletes = mix.next_ops(1_000)
        assert writes.size == 2_000
        assert deletes.size == 0
        assert writes.min() >= 0
        assert writes.max() < 10_000

    def test_traffic_is_skewed(self):
        n_ops = 20_000
        zipf_w, _ = ZipfOverwriteMix(50_000, seed=2).next_ops(n_ops)
        uni_w, _ = UniformOverwriteMix(50_000, seed=2).next_ops(n_ops)
        # The hottest block absorbs a visible share of all traffic, and
        # far fewer distinct blocks are touched than under uniform load.
        _, counts = np.unique(zipf_w, return_counts=True)
        assert counts.max() / zipf_w.size > 0.05
        assert np.unique(zipf_w).size < 0.5 * np.unique(uni_w).size

    def test_hot_set_is_scattered(self):
        mix = ZipfOverwriteMix(50_000, seed=3)
        writes, _ = mix.next_ops(20_000)
        blocks, counts = np.unique(writes, return_counts=True)
        hot = np.sort(blocks[np.argsort(counts)[-8:]])
        # Hottest blocks span the volume, not one contiguous extent.
        assert hot.max() - hot.min() > 50_000 // 4

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ZipfOverwriteMix(100, alpha=1.0)
        with pytest.raises(ValueError):
            ZipfOverwriteMix(100, alpha=0.5)


class TestWorkloadAdapter:
    def test_writes_confined_to_tenant_volume(self):
        sim = small_ssd_sim()
        mix = WorkloadOpMix(RandomOverwriteWorkload, sim, "volB", seed=6)
        writes, _ = mix.next_ops(300)
        assert writes.size == 300 * mix.blocks_per_op
        assert writes.min() >= 0
        assert writes.max() < sim.vols["volB"].spec.logical_blocks

    def test_retargets_ops_per_call(self):
        sim = small_ssd_sim()
        mix = WorkloadOpMix(RandomOverwriteWorkload, sim, "volA", seed=6)
        for n in (1, 17, 256):
            writes, _ = mix.next_ops(n)
            assert writes.size == n * mix.blocks_per_op

    def test_zero_ops_yields_empty(self):
        sim = small_ssd_sim()
        mix = WorkloadOpMix(RandomOverwriteWorkload, sim, "volA", seed=6)
        writes, deletes = mix.next_ops(0)
        assert writes.size == 0 and deletes.size == 0
