"""Tests for HBPS-budgeted delayed-free application (paper's second
HBPS use: delayed-free scores)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fs import CPBatch
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


class TestFreeBudget:
    def test_budget_defers_frees(self):
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        sim.set_free_budget(1)
        size = sim.vols["volA"].spec.logical_blocks
        rng = np.random.default_rng(0)
        ids = rng.integers(0, size, size=3000)
        sim.engine.run_cp(CPBatch(writes={"volA": ids}, ops=3000))
        sim.engine.run_cp(CPBatch(writes={"volA": ids}, ops=3000))
        # With a 1-metafile-block budget, random frees cannot all drain.
        pending = sum(g.delayed_frees.pending_count for g in sim.store.groups)
        assert pending > 0

    def test_budget_eventually_drains(self):
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        sim.set_free_budget(4)
        size = sim.vols["volA"].spec.logical_blocks
        rng = np.random.default_rng(1)
        sim.engine.run_cp(
            CPBatch(writes={"volA": rng.integers(0, size, 2000)}, ops=2000)
        )
        # Idle CPs keep applying the backlog.
        for _ in range(40):
            sim.engine.run_cp(CPBatch(ops=0))
        pending = sum(g.delayed_frees.pending_count for g in sim.store.groups)
        pending += sum(v.delayed_frees.pending_count for v in sim.vols.values())
        assert pending == 0
        sim.verify_consistency()

    def test_budget_prefers_dense_blocks(self):
        """The budgeted path frees more blocks per metafile block
        touched than FIFO order would: it picks the fullest logs."""
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        sim.set_free_budget(1)
        vol = sim.vols["volA"]
        # One dense run of frees and a scattering.
        dense = np.arange(0, 1000)
        rng = np.random.default_rng(2)
        sparse = rng.integers(5000, vol.spec.logical_blocks, size=50)
        sim.engine.run_cp(
            CPBatch(writes={"volA": np.concatenate([dense, sparse])}, ops=1050)
        )
        # This CP logged 1050 virtual frees (dense old VBNs from the
        # sequential fill plus scattered ones) and its boundary applied
        # one metafile block's worth: the dense population goes first.
        applied = vol.delayed_frees.total_logged - vol.delayed_frees.pending_count
        assert applied >= 500

    def test_unset_budget_restores_full_drain(self):
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        sim.set_free_budget(1)
        sim.set_free_budget(None)
        size = sim.vols["volA"].spec.logical_blocks
        rng = np.random.default_rng(3)
        sim.engine.run_cp(
            CPBatch(writes={"volA": rng.integers(0, size, 2000)}, ops=2000)
        )
        sim.engine.run_cp(CPBatch(ops=0))
        pending = sum(g.delayed_frees.pending_count for g in sim.store.groups)
        assert pending == 0

    def test_consistency_under_budgeted_churn(self):
        sim = small_ssd_sim()
        fill_volumes(sim, ops_per_cp=8192)
        sim.set_free_budget(2)
        wl = RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=4)
        sim.run(wl, 10)
        for _ in range(60):  # drain
            sim.engine.run_cp(CPBatch(ops=0))
        sim.verify_consistency()
