"""Unit tests for the AZCS device layout (paper section 3.2.4)."""

from __future__ import annotations

import numpy as np

from repro.fs import azcs_device_blocks, azcs_expand


class TestAzcsExpand:
    def test_full_region_is_contiguous(self):
        """Writing all 63 data blocks of a region plus its checksum
        covers LBAs 0..63 with no holes (Figure 4C's good case)."""
        lbas = azcs_expand(np.arange(63))
        assert lbas.tolist() == list(range(64))

    def test_single_block_touches_checksum(self):
        lbas = azcs_expand(np.array([0]))
        assert lbas.tolist() == [0, 63]

    def test_second_region(self):
        lbas = azcs_expand(np.array([63]))  # first data block of region 1
        assert lbas.tolist() == [64, 127]

    def test_straddling_regions(self):
        lbas = azcs_expand(np.array([62, 63]))
        assert 63 in lbas and 127 in lbas

    def test_empty(self):
        assert azcs_expand(np.array([], dtype=np.int64)).size == 0

    def test_output_sorted_unique(self):
        lbas = azcs_expand(np.arange(0, 200, 3))
        assert np.array_equal(lbas, np.unique(lbas))

    def test_device_blocks(self):
        assert azcs_device_blocks(63) == 64
        assert azcs_device_blocks(126) == 128
        assert azcs_device_blocks(64) == 66  # 2 regions, second partial

    def test_aligned_aa_no_checksum_rewrites(self):
        """Consecutive AZCS-aligned extents never share checksum blocks."""
        a = azcs_expand(np.arange(0, 63 * 4))
        b = azcs_expand(np.arange(63 * 4, 63 * 8))
        assert np.intersect1d(a, b).size == 0

    def test_misaligned_aa_shares_checksum(self):
        """Consecutive misaligned extents write the same checksum block
        twice — the Figure 4B problem."""
        a = azcs_expand(np.arange(0, 100))
        b = azcs_expand(np.arange(100, 200))
        assert np.intersect1d(a, b).size > 0
