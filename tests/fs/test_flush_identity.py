"""Identity of the batched and scalar bitmap-flush paths.

``AllocatorConfig.scalar_bitmap_flush`` keeps the per-block scalar
flush as the permanent reference implementation; the fused batch
pass must reach bit-for-bit the same state (per-CP stats, bitmap bytes,
free counts) on the same workload and seed.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import numpy as np

from repro.common.config import SimConfig
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import WaflSim
from repro.workloads import RandomOverwriteWorkload


def _build(scalar_flush: bool) -> WaflSim:
    cfg = SimConfig.default()
    cfg = replace(cfg, allocator=replace(cfg.allocator,
                                         scalar_bitmap_flush=scalar_flush))
    phys = 3 * 32768
    spec = AggregateSpec(
        tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                        blocks_per_disk=32768, stripes_per_aa=2048),),
        volumes=(
            VolumeDecl("volA", logical_blocks=phys // 4),
            VolumeDecl("volB", logical_blocks=phys // 8),
        ),
    )
    return WaflSim.build(spec, config=cfg, seed=7)


class TestFlushModeIdentity:
    def test_cp_stats_and_bitmap_state_match(self):
        sims = {flag: _build(flag) for flag in (False, True)}
        workloads = {
            flag: iter(RandomOverwriteWorkload(sim, ops_per_cp=512, seed=5))
            for flag, sim in sims.items()
        }
        for _ in range(6):
            stats = {
                flag: sims[flag].engine.run_cp(next(workloads[flag]))
                for flag in (False, True)
            }
            assert asdict(stats[False]) == asdict(stats[True])
        batched, scalar = sims[False], sims[True]
        assert batched.store.free_count == scalar.store.free_count
        for gb, gs in zip(batched.store.groups, scalar.store.groups):
            assert np.array_equal(
                gb.metafile.bitmap.raw_bytes, gs.metafile.bitmap.raw_bytes
            )
        for name, vb in batched.vols.items():
            vs = scalar.vols[name]
            assert np.array_equal(
                vb.metafile.bitmap.raw_bytes, vs.metafile.bitmap.raw_bytes
            )
            assert np.array_equal(vb.l2v, vs.l2v)
            assert np.array_equal(vb.v2p, vs.v2p)
