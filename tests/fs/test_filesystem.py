"""Unit tests for the WaflSim facade and builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import GeometryError
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import (
    CPBatch,
    MediaType,
    PolicyKind,
    RAIDGroupConfig,
    VolSpec,
    WaflSim,
)
from repro.workloads import RandomOverwriteWorkload, SequentialWriteWorkload

from ..conftest import small_ssd_sim


class TestBuilders:
    def test_build_raid_tier(self, ssd_sim):
        assert ssd_sim.store.nblocks == 3 * 32768
        assert set(ssd_sim.vols) == {"volA", "volB"}
        assert ssd_sim.utilization == 0.0

    def test_build_object_tier(self):
        sim = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="s3", media="object", raid="none",
                                nblocks=32768 * 4),),
                volumes=(VolumeDecl("v", logical_blocks=32768),),
            ),
            seed=0,
        )
        assert sim.store.nblocks == 32768 * 4
        wl = SequentialWriteWorkload(sim, ops_per_cp=1024, wrap=False)
        sim.run(wl, 2)
        assert sim.utilization > 0

    def test_overcommit_rejected(self):
        with pytest.raises(GeometryError):
            WaflSim.build(
                AggregateSpec(
                    tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                                    blocks_per_disk=8192,
                                    stripes_per_aa=1024),),
                    volumes=(VolumeDecl("v", logical_blocks=3 * 8192 + 1),),
                ),
            )

    def test_shim_is_byte_identical_to_build(self):
        """Pins the deprecation contract: for the same geometry and
        seed, the legacy classmethods and WaflSim.build construct
        byte-identical systems and replay byte-identically."""
        import warnings as _warnings

        spec = AggregateSpec(
            tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                            blocks_per_disk=8192, stripes_per_aa=1024,
                            erase_block_blocks=512,
                            program_us_per_block=16.0),),
            volumes=(VolumeDecl("v", logical_blocks=12288),),
        )
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DeprecationWarning)
            from repro.devices.ssd import SSDConfig
            legacy = WaflSim.build_raid(
                [RAIDGroupConfig(
                    ndata=3, nparity=1, blocks_per_disk=8192,
                    media=MediaType.SSD, stripes_per_aa=1024,
                    ssd_config=SSDConfig(erase_block_blocks=512,
                                         program_us_per_block=16.0),
                )],
                [VolSpec("v", logical_blocks=12288)],
                seed=42,
            )
        modern = WaflSim.build(spec, seed=42)
        for sim in (legacy, modern):
            wl = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=9)
            sim.run(wl, 4)
        assert legacy.metrics.summary() == modern.metrics.summary()
        for ga, gb in zip(legacy.store.groups, modern.store.groups):
            assert (ga.metafile.bitmap.raw_bytes
                    == gb.metafile.bitmap.raw_bytes).all()
        for va, vb in zip(legacy.vols.values(), modern.vols.values()):
            assert (va.l2v == vb.l2v).all()

    def test_object_shim_is_byte_identical_to_build(self):
        import warnings as _warnings

        spec = AggregateSpec(
            tiers=(TierSpec(label="s3", media="object", raid="none",
                            nblocks=32768),),
            volumes=(VolumeDecl("v", logical_blocks=16384),),
        )
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DeprecationWarning)
            legacy = WaflSim.build_object(
                32768, [VolSpec("v", logical_blocks=16384)], seed=42
            )
        modern = WaflSim.build(spec, seed=42)
        for sim in (legacy, modern):
            wl = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=9)
            sim.run(wl, 4)
        assert legacy.metrics.summary() == modern.metrics.summary()
        assert (legacy.store.metafile.bitmap.raw_bytes
                == modern.store.metafile.bitmap.raw_bytes).all()

    def test_deprecated_shims_still_build(self):
        with pytest.warns(DeprecationWarning, match="build_raid"):
            raid = WaflSim.build_raid(
                [RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=8192,
                                 media=MediaType.SSD, stripes_per_aa=1024)],
                [VolSpec("v", logical_blocks=8192)],
                seed=3,
            )
        assert raid.store.nblocks == 3 * 8192
        with pytest.warns(DeprecationWarning, match="build_object"):
            obj = WaflSim.build_object(
                32768, [VolSpec("v", logical_blocks=16384)], seed=3
            )
        assert obj.store.nblocks == 32768

    def test_mixed_policies(self):
        sim = small_ssd_sim(aggregate_policy=PolicyKind.CACHE,
                            vol_policy=PolicyKind.RANDOM)
        assert sim.store.groups[0].cache is not None
        assert sim.vols["volA"].cache is None


class TestRun:
    def test_run_n_cps(self, ssd_sim):
        wl = RandomOverwriteWorkload(ssd_sim, ops_per_cp=256, seed=0)
        out = ssd_sim.run(wl, 5)
        assert len(out) == 5
        assert len(ssd_sim.metrics.cps) == 5

    def test_run_until(self, ssd_sim):
        wl = SequentialWriteWorkload(ssd_sim, ops_per_cp=1024, wrap=False)
        cps = ssd_sim.run_until(wl, lambda s: s.utilization > 0.1)
        assert ssd_sim.utilization > 0.1
        assert cps > 0

    def test_verify_consistency_clean(self, ssd_sim):
        wl = RandomOverwriteWorkload(ssd_sim, ops_per_cp=256, seed=0)
        ssd_sim.run(wl, 3)
        ssd_sim.verify_consistency()

    def test_vol_accessor(self, ssd_sim):
        assert ssd_sim.vol("volA").name == "volA"
        with pytest.raises(KeyError):
            ssd_sim.vol("nope")

    def test_utilization_tracks_writes(self, ssd_sim):
        wl = SequentialWriteWorkload(ssd_sim, ops_per_cp=1024, wrap=False)
        ssd_sim.run(wl, 3)
        used = ssd_sim.store.nblocks - ssd_sim.store.free_count
        assert used == 3 * 1024
