"""Integration tests: whole-system invariants under mixed workloads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import CPBatch, PolicyKind, WaflSim
from repro.workloads import (
    FileChurnWorkload,
    OLTPWorkload,
    RandomOverwriteWorkload,
    SequentialWriteWorkload,
    fill_volumes,
)

from ..conftest import small_ssd_sim


class TestConservation:
    def test_block_conservation_random_overwrites(self):
        """Physical used blocks == live mapped blocks + pending frees,
        at every CP boundary."""
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=0)
        it = iter(wl)
        for _ in range(10):
            sim.engine.run_cp(next(it))
            used = sim.store.nblocks - sim.store.free_count
            live = sum(int((v.l2v >= 0).sum()) for v in sim.vols.values())
            pending = sum(
                g.delayed_frees.pending_count for g in sim.store.groups
            )
            assert used == live + pending
        sim.verify_consistency()

    def test_virtual_physical_mapping_bijective(self):
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=1)
        sim.run(wl, 8)
        all_p = []
        for v in sim.vols.values():
            mapped_v = v.l2v[v.l2v >= 0]
            p = v.v2p[mapped_v]
            assert (p >= 0).all()
            all_p.append(p)
        all_p = np.concatenate(all_p)
        assert np.unique(all_p).size == all_p.size  # no double-mapped physical

    def test_scores_match_bitmaps_after_every_cp(self):
        sim = small_ssd_sim()
        wl = OLTPWorkload(sim, ops_per_cp=512, seed=2)
        it = iter(wl)
        for _ in range(6):
            sim.engine.run_cp(next(it))
            for g in sim.store.groups:
                g.keeper.verify_against(g.metafile.bitmap)
            for v in sim.vols.values():
                v.keeper.verify_against(v.metafile.bitmap)

    def test_cache_invariants_after_every_cp(self):
        sim = small_ssd_sim()
        wl = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=3)
        it = iter(wl)
        for _ in range(6):
            sim.engine.run_cp(next(it))
            for g in sim.store.groups:
                g.cache.check_invariants()
            for v in sim.vols.values():
                v.cache.check_invariants()


class TestMixedWorkloads:
    def test_churn_then_overwrite_then_delete_all(self):
        sim = small_ssd_sim()
        churn = FileChurnWorkload(sim, ops_per_cp=16, max_file_blocks=256, seed=4)
        sim.run(churn, 10)
        over = RandomOverwriteWorkload(sim, ops_per_cp=512, seed=5)
        sim.run(over, 5)
        # Delete everything still mapped.
        for name, vol in sim.vols.items():
            mapped = np.flatnonzero(vol.l2v >= 0)
            sim.engine.run_cp(CPBatch(deletes={name: mapped}, ops=1))
        sim.engine.run_cp(CPBatch(ops=0))  # flush boundary
        assert sim.store.free_count == sim.store.nblocks
        for vol in sim.vols.values():
            assert vol.used_blocks == 0
        sim.verify_consistency()

    def test_all_policies_complete_same_workload(self):
        for ap in (PolicyKind.CACHE, PolicyKind.RANDOM, PolicyKind.LINEAR_SCAN):
            sim = small_ssd_sim(aggregate_policy=ap, vol_policy=ap)
            fill_volumes(sim, ops_per_cp=8192)
            wl = RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=6)
            sim.run(wl, 5)
            sim.verify_consistency()

    def test_hdd_and_smr_media_run(self):
        for media, azcs in [("hdd", False), ("smr", True)]:
            tier = TierSpec(
                label=media, media=media, ndata=3, blocks_per_disk=16128,
                stripes_per_aa=2016, azcs=azcs,
            )
            sim = WaflSim.build(
                AggregateSpec(
                    tiers=(tier,),
                    volumes=(VolumeDecl("v", logical_blocks=10000),),
                ),
                seed=0,
            )
            wl = SequentialWriteWorkload(sim, ops_per_cp=2048, wrap=False)
            sim.run(wl, 3)
            sim.verify_consistency()

    def test_object_store_end_to_end(self):
        sim = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="s3", media="object", raid="none",
                                nblocks=32768 * 4),),
                volumes=(VolumeDecl("v", logical_blocks=40000),),
            ),
            seed=0,
        )
        fill_volumes(sim, ops_per_cp=8192)
        wl = RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=7)
        sim.run(wl, 5)
        sim.verify_consistency()
        assert sim.metrics.total_ops > 0


class TestPaperEffects:
    """Coarse end-to-end checks of the paper's directional claims."""

    def test_cache_selects_emptier_aas_than_random(self):
        def measure(policy):
            sim = small_ssd_sim(aggregate_policy=policy, vol_policy=policy, seed=9)
            fill_volumes(sim, ops_per_cp=8192)
            wl = RandomOverwriteWorkload(sim, ops_per_cp=2048, seed=10)
            sim.run(wl, 15)
            return sim.store.selected_aa_free_fractions().mean()

        cached = measure(PolicyKind.CACHE)
        randomized = measure(PolicyKind.RANDOM)
        assert cached > randomized

    def test_cache_lowers_ssd_write_amplification(self):
        def wa(policy):
            sim = small_ssd_sim(aggregate_policy=policy, vol_policy=policy, seed=11)
            fill_volumes(sim, ops_per_cp=8192)
            wl = RandomOverwriteWorkload(sim, ops_per_cp=2048, seed=12)
            sim.run(wl, 15)
            return float(np.mean([
                d.write_amplification
                for g in sim.store.groups for d in g.data_devices
            ]))

        assert wa(PolicyKind.CACHE) < wa(PolicyKind.RANDOM)


@st.composite
def cp_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["write", "delete"]),
                st.integers(0, 4000),
                st.integers(1, 400),
            ),
            min_size=1,
            max_size=12,
        )
    )


class TestPropertyIntegration:
    @given(seq=cp_sequences())
    @settings(max_examples=25, deadline=None)
    def test_any_cp_sequence_stays_consistent(self, seq):
        sim = small_ssd_sim(seed=13)
        name = "volA"
        size = sim.vols[name].spec.logical_blocks
        for kind, start, length in seq:
            ids = (np.arange(length) + start) % size
            if kind == "write":
                sim.engine.run_cp(CPBatch(writes={name: ids}, ops=length))
            else:
                sim.engine.run_cp(CPBatch(deletes={name: ids}, ops=length))
        sim.verify_consistency()
        for g in sim.store.groups:
            g.cache.check_invariants()
        used = sim.store.nblocks - sim.store.free_count
        live = sum(int((v.l2v >= 0).sum()) for v in sim.vols.values())
        assert used == live
