"""Unit tests for physical stores (RAID aggregates, linear stores)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import GeometryError
from repro.fs import (
    LinearStore,
    MediaType,
    PolicyKind,
    RAIDGroupConfig,
    RAIDStore,
)


def make_store(n_groups=2, media=MediaType.SSD, **kw):
    cfgs = [
        RAIDGroupConfig(
            ndata=3, nparity=1, blocks_per_disk=8192, media=media, stripes_per_aa=1024
        )
        for _ in range(n_groups)
    ]
    return RAIDStore(cfgs, **kw)


class TestRAIDStore:
    def test_global_space_concatenates_groups(self):
        st = make_store()
        assert st.nblocks == 2 * 3 * 8192
        assert st.free_count == st.nblocks

    def test_group_of(self):
        st = make_store()
        bound = 3 * 8192
        assert st.group_of(np.array([0, bound - 1, bound])).tolist() == [0, 0, 1]

    def test_allocate_and_free_roundtrip(self):
        st = make_store()
        v = st.allocate(1000)
        assert v.size == 1000
        assert st.free_count == st.nblocks - 1000
        st.log_free(v)
        st.cp_boundary()
        assert st.free_count == st.nblocks

    def test_cp_report_contents(self):
        st = make_store()
        st.allocate(600)
        rep = st.cp_boundary()
        assert rep.blocks_written == 600
        assert rep.device_busy_us > 0
        assert rep.full_stripes == 200  # 600 blocks / 3 disks
        assert rep.partial_stripes == 0
        assert len(rep.groups) == 2
        assert rep.metafile_blocks >= 2
        assert rep.spanned_blocks >= 600

    def test_devices_priced_per_group(self):
        st = make_store()
        st.allocate(600)
        rep = st.cp_boundary()
        assert sum(g.blocks for g in rep.groups) == 600
        for grp in rep.groups:
            assert grp.blocks > 0
            assert grp.busy_us > 0
            # Empty AAs fill stripe-major: blocks spread evenly on disks.
            assert grp.blocks_per_disk.max() - grp.blocks_per_disk.min() <= 1

    def test_parity_device_writes(self):
        st = make_store(n_groups=1)
        st.allocate(300)
        st.cp_boundary()
        parity = st.groups[0].parity_devices[0]
        assert parity.stats.host_blocks_written == 100  # stripes touched

    def test_ssd_trim_on_free(self):
        st = make_store(n_groups=1)
        v = st.allocate(3000)
        st.cp_boundary()
        dev = st.groups[0].data_devices[0]
        assert dev.live_fraction() > 0
        st.log_free(v)
        st.cp_boundary()
        assert dev.live_fraction() == 0.0

    def test_selected_fraction_trace(self):
        st = make_store()
        st.allocate(10)
        fr = st.selected_aa_free_fractions()
        assert fr.size >= 1
        assert np.all((fr >= 0) & (fr <= 1))

    def test_charge_reads(self):
        st = make_store()
        st.charge_reads(300)
        rep = st.cp_boundary()
        assert rep.device_busy_us > 0

    def test_empty_config_rejected(self):
        with pytest.raises(GeometryError):
            RAIDStore([])

    def test_random_policy_store(self):
        st = make_store(policy=PolicyKind.RANDOM, seed=3)
        v = st.allocate(500)
        assert v.size == 500
        st.cp_boundary()

    def test_object_media_rejected_in_raid(self):
        with pytest.raises(GeometryError):
            RAIDStore([RAIDGroupConfig(media=MediaType.OBJECT)])


class TestLinearStore:
    def test_allocate_sequential(self):
        st = LinearStore(32768 * 2, policy=PolicyKind.CACHE)
        v = st.allocate(100)
        assert np.all(np.diff(v) == 1)

    def test_cp_boundary_prices_device(self):
        st = LinearStore(32768 * 2)
        st.allocate(500)
        rep = st.cp_boundary()
        assert rep.blocks_written == 500
        assert rep.chains == 1
        assert rep.device_busy_us > 0

    def test_free_path(self):
        st = LinearStore(32768 * 2)
        v = st.allocate(100)
        st.log_free(v)
        rep = st.cp_boundary()
        assert rep.blocks_freed == 100
        assert st.free_count == st.nblocks

    def test_metafile_accounting(self):
        st = LinearStore(32768 * 4)
        st.allocate(10)
        rep = st.cp_boundary()
        assert rep.metafile_blocks == 1
