"""Unit tests for the TopAA mount path (paper section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fs import (
    CPBatch,
    background_rebuild,
    export_topaa,
    simulate_mount,
)
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def aged_sim():
    sim = small_ssd_sim()
    fill_volumes(sim, ops_per_cp=8192)
    wl = RandomOverwriteWorkload(sim, ops_per_cp=2048, seed=3)
    sim.run(wl, 10)
    return sim


class TestExport:
    def test_image_shape(self, aged_sim):
        img = export_topaa(aged_sim)
        assert len(img.group_blocks) == 1
        assert set(img.vol_pages) == {"volA", "volB"}
        assert img.total_blocks == 1 + 2 * 2

    def test_blocks_are_4k_plus_checksum_header(self, aged_sim):
        from repro.core import TOPAA_HEADER_BYTES

        img = export_topaa(aged_sim)
        assert all(len(b) == 4096 + TOPAA_HEADER_BYTES for b in img.group_blocks)
        assert all(len(p) == 8192 + TOPAA_HEADER_BYTES for p in img.vol_pages.values())


class TestMountPaths:
    def test_topaa_mount_reads_constant_blocks(self, aged_sim):
        img = export_topaa(aged_sim)
        rep = simulate_mount(aged_sim, img)
        assert rep.used_topaa
        assert rep.blocks_read == img.total_blocks
        assert rep.caches_built == 3

    def test_full_rebuild_reads_all_metafiles(self, aged_sim):
        expected = sum(
            g.metafile.metafile_block_count for g in aged_sim.store.groups
        ) + sum(v.metafile.metafile_block_count for v in aged_sim.vols.values())
        rep = simulate_mount(aged_sim, None)
        assert not rep.used_topaa
        assert rep.blocks_read == expected
        assert rep.modeled_read_us > 0

    def test_cps_run_after_topaa_mount(self, aged_sim):
        img = export_topaa(aged_sim)
        simulate_mount(aged_sim, img)
        wl = RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=5)
        aged_sim.run(wl, 5)
        aged_sim.verify_consistency()

    def test_cps_run_after_full_rebuild(self, aged_sim):
        simulate_mount(aged_sim, None)
        wl = RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=5)
        aged_sim.run(wl, 5)
        aged_sim.verify_consistency()

    def test_seeded_selection_quality(self, aged_sim):
        """AAs selected right after a TopAA mount are high quality —
        the whole point of persisting the best AAs."""
        img = export_topaa(aged_sim)
        simulate_mount(aged_sim, img)
        from repro.workloads import reset_measurement_state

        reset_measurement_state(aged_sim)
        wl = RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=5)
        aged_sim.run(wl, 3)
        sel = aged_sim.store.selected_aa_free_fractions()
        overall_free = 1 - aged_sim.utilization
        assert sel.size > 0
        assert sel.mean() >= overall_free * 0.9


class TestBackgroundRebuild:
    def test_rebuild_completes_seeded_state(self, aged_sim):
        img = export_topaa(aged_sim)
        simulate_mount(aged_sim, img)
        rep = background_rebuild(aged_sim)
        assert rep["hbps_caches_refreshed"] == 2
        for vol in aged_sim.vols.values():
            assert not vol.cache.seeded
        for g in aged_sim.store.groups:
            assert g.cache.fully_populated

    def test_rebuild_then_cps_consistent(self, aged_sim):
        img = export_topaa(aged_sim)
        simulate_mount(aged_sim, img)
        background_rebuild(aged_sim)
        wl = RandomOverwriteWorkload(aged_sim, ops_per_cp=1024, seed=6)
        aged_sim.run(wl, 5)
        aged_sim.verify_consistency()

    def test_rebuild_noop_after_full_mount(self, aged_sim):
        simulate_mount(aged_sim, None)
        rep = background_rebuild(aged_sim)
        assert rep == {"heap_aas_populated": 0, "hbps_caches_refreshed": 0}
