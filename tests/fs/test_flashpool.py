"""Tests for Flash Pool-style mixed-media tiering (extension;
paper section 2.1).

A Flash Pool is one :class:`RAIDStore` whose groups mix SSD and
capacity media, carrying a :class:`repro.tiering.FlashPoolPolicy` that
routes hot overwrites to the SSD groups.  Contrast with the multi-tier
aggregates of :mod:`repro.tiering`, which compose one store per tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.common.rng import make_rng
from repro.fs import CPBatch, MediaType, RAIDGroupConfig, VolSpec, WaflSim
from repro.fs.aggregate import RAIDStore
from repro.fs.flexvol import FlexVol
from repro.tiering import FlashPoolPolicy


def build_flash_pool(seed=0):
    groups = [
        RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=16384,
                        media=MediaType.SSD, stripes_per_aa=2048),
        RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=32768,
                        media=MediaType.HDD, stripes_per_aa=4096),
        RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=32768,
                        media=MediaType.HDD, stripes_per_aa=4096),
    ]
    rng = make_rng(seed)
    store = RAIDStore(groups, seed=rng)
    store.tier_policy = FlashPoolPolicy()
    vols = {"db": FlexVol(VolSpec("db", logical_blocks=60_000), seed=rng)}
    return WaflSim(store, vols)


class TestTiering:
    def test_policy_and_media(self):
        sim = build_flash_pool()
        assert isinstance(sim.store.tier_policy, FlashPoolPolicy)
        assert sim.store.media_kinds == [MediaType.SSD, MediaType.HDD, MediaType.HDD]

    def test_all_ssd_carries_no_policy(self):
        sim = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                                blocks_per_disk=16384, stripes_per_aa=2048),),
                volumes=(VolumeDecl("v", logical_blocks=10000),),
            ),
        )
        assert sim.store.tier_policy is None

    def test_shim_attaches_flash_pool_policy(self):
        # The deprecated builder auto-detects the mixed-media shape.
        groups = [
            RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=16384,
                            media=MediaType.SSD, stripes_per_aa=2048),
            RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=32768,
                            media=MediaType.HDD, stripes_per_aa=4096),
        ]
        with pytest.warns(DeprecationWarning, match="build_raid"):
            sim = WaflSim.build_raid(
                groups, [VolSpec("db", logical_blocks=30_000)], seed=0
            )
        assert isinstance(sim.store.tier_policy, FlashPoolPolicy)

    def test_first_writes_land_on_capacity_tier(self):
        sim = build_flash_pool()
        sim.engine.run_cp(CPBatch(writes={"db": np.arange(5000)}, ops=5000))
        ssd_used = sim.store.groups[0].metafile.bitmap.allocated_count
        hdd_used = sum(
            g.metafile.bitmap.allocated_count for g in sim.store.groups[1:]
        )
        assert ssd_used == 0
        assert hdd_used == 5000

    def test_overwrites_land_on_ssd_tier(self):
        sim = build_flash_pool()
        sim.engine.run_cp(CPBatch(writes={"db": np.arange(5000)}, ops=5000))
        sim.engine.run_cp(CPBatch(writes={"db": np.arange(2000)}, ops=2000))
        ssd_used = sim.store.groups[0].metafile.bitmap.allocated_count
        assert ssd_used == 2000

    def test_fallback_when_ssd_full(self):
        sim = build_flash_pool()
        ssd_capacity = sim.store.groups[0].topology.nblocks
        sim.engine.run_cp(CPBatch(writes={"db": np.arange(60_000)}, ops=60_000))
        # Overwrite more than the SSD tier can hold: spills to HDD.
        sim.engine.run_cp(CPBatch(writes={"db": np.arange(56_000)}, ops=56_000))
        ssd_used = sim.store.groups[0].metafile.bitmap.allocated_count
        assert ssd_used <= ssd_capacity
        assert sim.utilization > 0
        sim.verify_consistency()

    def test_mixed_batch_splits(self):
        sim = build_flash_pool()
        sim.engine.run_cp(CPBatch(writes={"db": np.arange(1000)}, ops=1000))
        # Half overwrites (hot), half fresh (cold).
        ids = np.arange(500, 1500)
        sim.engine.run_cp(CPBatch(writes={"db": ids}, ops=1000))
        ssd_used = sim.store.groups[0].metafile.bitmap.allocated_count
        assert ssd_used == 500
        sim.verify_consistency()

    def test_explicit_group_allocation(self):
        sim = build_flash_pool()
        fast = sim.store.allocate(100, groups=[0])
        cap = sim.store.allocate(100, groups=[1, 2])
        ssd_span = sim.store.groups[0].topology.nblocks
        assert (fast < ssd_span).all()
        assert (cap >= ssd_span).all()

    def test_tiered_consistency_under_churn(self):
        sim = build_flash_pool(seed=3)
        rng = np.random.default_rng(4)
        for _ in range(10):
            ids = rng.integers(0, 60_000, size=2000)
            sim.engine.run_cp(CPBatch(writes={"db": ids}, ops=2000))
        sim.verify_consistency()
        for g in sim.store.groups:
            g.keeper.verify_against(g.metafile.bitmap)
