"""Smoke tests for the library-level experiment runners (quick mode)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    fig9_tables,
    fig10_tables,
    run_fig9,
    run_fig10,
)


class TestQuickRunners:
    def test_fig9_quick_shape(self):
        results = run_fig9(quick=True)
        small = results["HDD-sized AA (4k stripes)"]
        aligned = results["SMR AA (zone + AZCS aligned)"]
        assert small["rewrites"] > aligned["rewrites"]
        assert aligned["drive_mbps"] > small["drive_mbps"]
        tables = fig9_tables(results)
        assert len(tables) == 2
        assert "Figure 9" in tables[0]

    def test_fig10_quick_shape(self):
        size_rows, size_series, count_rows, count_series = run_fig10(quick=True)
        # TopAA flat in size, walk linear.
        assert (
            size_series[(4, True)]["blocks_read"]
            == size_series[(16, True)]["blocks_read"]
        )
        assert (
            size_series[(16, False)]["blocks_read"]
            > 2 * size_series[(4, False)]["blocks_read"]
        )
        assert (
            count_series[(16, False)]["blocks_read"]
            > 10 * count_series[(16, True)]["blocks_read"]
        )
        tables = fig10_tables(size_rows, count_rows)
        assert "Figure 10(A)" in tables[0]
        assert "Figure 10(B)" in tables[1]
