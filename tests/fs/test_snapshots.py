"""Tests for COW snapshots (extension; paper sections 1, 4.1.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import AllocationError
from repro.fs import CPBatch

from ..conftest import small_ssd_sim


def write(sim, name, ids, ops=None):
    sim.engine.run_cp(CPBatch(writes={name: np.asarray(ids)}, ops=ops or len(ids)))


class TestSnapshotLifecycle:
    def test_create_pins_blocks(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(100))
        pinned = sim.create_snapshot("volA", "hourly.0")
        assert pinned == 100
        assert sim.vols["volA"].snapshot_names == ("hourly.0",)

    def test_duplicate_name_rejected(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(10))
        sim.create_snapshot("volA", "s")
        with pytest.raises(AllocationError):
            sim.create_snapshot("volA", "s")

    def test_delete_unknown_rejected(self):
        sim = small_ssd_sim()
        with pytest.raises(AllocationError):
            sim.delete_snapshot("volA", "nope")

    def test_overwrite_of_snapped_block_defers_free(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(100))
        used_before = sim.store.nblocks - sim.store.free_count
        sim.create_snapshot("volA", "s")
        write(sim, "volA", np.arange(100))  # overwrite everything
        used_after = sim.store.nblocks - sim.store.free_count
        # Old blocks pinned: usage grew by the full overwrite.
        assert used_after == used_before + 100

    def test_overwrite_without_snapshot_frees(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(100))
        used_before = sim.store.nblocks - sim.store.free_count
        write(sim, "volA", np.arange(100))
        used_after = sim.store.nblocks - sim.store.free_count
        assert used_after == used_before  # COW freed the old copies

    def test_delete_releases_unreferenced(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(100))
        sim.create_snapshot("volA", "s")
        write(sim, "volA", np.arange(50))  # half diverges
        released = sim.delete_snapshot("volA", "s")
        assert released == 50  # only the diverged half was snapshot-only
        sim.engine.run_cp(CPBatch(ops=0))  # apply delayed frees
        sim.verify_consistency()

    def test_overlapping_snapshots(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(100))
        sim.create_snapshot("volA", "a")
        sim.create_snapshot("volA", "b")  # pins the same blocks
        write(sim, "volA", np.arange(100))
        # Deleting one snapshot frees nothing: the other still pins.
        assert sim.delete_snapshot("volA", "a") == 0
        assert sim.delete_snapshot("volA", "b") == 100
        sim.engine.run_cp(CPBatch(ops=0))
        sim.verify_consistency()

    def test_delete_of_deleted_data(self):
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(100))
        sim.create_snapshot("volA", "s")
        sim.engine.run_cp(CPBatch(deletes={"volA": np.arange(100)}, ops=1))
        # Blocks survive the file deletion thanks to the snapshot.
        used = sim.store.nblocks - sim.store.free_count
        assert used == 100
        assert sim.delete_snapshot("volA", "s") == 100
        sim.engine.run_cp(CPBatch(ops=0))
        assert sim.store.free_count == sim.store.nblocks

    def test_consistency_with_snapshots_under_churn(self):
        sim = small_ssd_sim()
        rng = np.random.default_rng(0)
        size = sim.vols["volA"].spec.logical_blocks
        write(sim, "volA", np.arange(2000))
        sim.create_snapshot("volA", "s0")
        for i in range(8):
            ids = rng.integers(0, size, size=1500)
            write(sim, "volA", ids)
            if i == 3:
                sim.create_snapshot("volA", "s1")
            if i == 6:
                sim.delete_snapshot("volA", "s0")
        sim.delete_snapshot("volA", "s1")
        sim.engine.run_cp(CPBatch(ops=0))
        sim.verify_consistency()

    def test_snapshot_delete_frees_in_bulk_nonuniformly(self):
        """The paper's observation: snapshot deletion mass-frees blocks
        written around the same epoch, adding nonuniformity for the AA
        cache to exploit."""
        sim = small_ssd_sim()
        write(sim, "volA", np.arange(4000))
        sim.create_snapshot("volA", "epoch")
        rng = np.random.default_rng(1)
        for _ in range(4):
            write(sim, "volA", rng.integers(0, 4000, size=2000))
        g = sim.store.groups[0]
        before = g.topology.scores_from_bitmap(g.metafile.bitmap)
        sim.delete_snapshot("volA", "epoch")
        sim.engine.run_cp(CPBatch(ops=0))
        after = g.topology.scores_from_bitmap(g.metafile.bitmap)
        # The mass free increased total free space and changed the
        # per-AA distribution unevenly.
        assert after.sum() > before.sum()
        deltas = after - before
        assert deltas.max() > 0
        assert deltas.std() > 0
