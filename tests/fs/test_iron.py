"""Tests for the Iron checker/repair tool (extension; paper section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fs import CPBatch
from repro.fs.iron import repair, scan
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def sim():
    s = small_ssd_sim()
    fill_volumes(s, ops_per_cp=8192)
    s.run(RandomOverwriteWorkload(s, ops_per_cp=1024, seed=3), 5)
    return s


class TestScan:
    def test_clean_system_scans_clean(self, sim):
        rep = scan(sim)
        assert rep.clean, [str(f) for f in rep.findings]

    def test_detects_virtual_leak(self, sim):
        vol = sim.vols["volA"]
        free = vol.topology.free_vbns(vol.metafile.bitmap, vol.topology.num_aas - 1,
                                      limit=7)
        vol.metafile.bitmap.allocate(free)  # orphan allocations
        rep = scan(sim)
        assert rep.count("leaked") == 7

    def test_detects_virtual_corruption(self, sim):
        vol = sim.vols["volA"]
        mapped = vol.l2v[vol.l2v >= 0][:5]
        vol.metafile.bitmap.free(mapped)  # referenced blocks marked free
        rep = scan(sim)
        assert rep.count("corrupt") == 5

    def test_detects_physical_corruption(self, sim):
        g = sim.store.groups[0]
        vol = sim.vols["volA"]
        p = vol.v2p[vol.v2p >= 0][:3] - g.offset
        g.metafile.bitmap.free(p)
        rep = scan(sim)
        assert rep.count("corrupt") == 3

    def test_detects_score_divergence(self, sim):
        g = sim.store.groups[0]
        g.keeper._scores[0] += 1  # simulated memory scribble
        rep = scan(sim)
        assert rep.count("score-divergence") >= 1

    def test_snapshot_held_blocks_are_not_leaks(self, sim):
        sim.create_snapshot("volA", "s")
        size = sim.vols["volA"].spec.logical_blocks
        rng = np.random.default_rng(1)
        sim.engine.run_cp(
            CPBatch(writes={"volA": rng.integers(0, size, 500)}, ops=500)
        )
        rep = scan(sim)
        assert rep.clean, [str(f) for f in rep.findings]


class TestRepair:
    def test_repair_fixes_corruption(self, sim):
        vol = sim.vols["volA"]
        mapped = vol.l2v[vol.l2v >= 0][:5]
        vol.metafile.bitmap.free(mapped)
        g = sim.store.groups[0]
        g.keeper._scores[0] += 3
        rep = repair(sim)
        assert rep.repaired
        assert not rep.clean  # it found the damage...
        assert scan(sim).clean  # ...and fixed it
        sim.verify_consistency()

    def test_repair_reclaims_leaks(self, sim):
        g = sim.store.groups[0]
        free_before = g.metafile.free_count
        # Orphan 64 physical blocks (allocated, never referenced).
        orphans = g.topology.free_vbns(g.metafile.bitmap, 0, limit=64)
        g.metafile.bitmap.allocate(orphans)
        repair(sim)
        assert g.metafile.free_count == free_before
        assert scan(sim).clean

    def test_system_runs_after_repair(self, sim):
        vol = sim.vols["volA"]
        mapped = vol.l2v[vol.l2v >= 0][:10]
        vol.metafile.bitmap.free(mapped)
        repair(sim)
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=5), 5)
        sim.verify_consistency()
        assert scan(sim).clean

    def test_repair_on_clean_system_is_idempotent(self, sim):
        u_before = sim.utilization
        rep = repair(sim)
        assert rep.clean
        assert sim.utilization == pytest.approx(u_before)
        sim.verify_consistency()

    def test_repair_object_store(self):
        from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
        from repro.fs import WaflSim

        s = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="s3", media="object", raid="none",
                                nblocks=32768 * 2),),
                volumes=(VolumeDecl("v", logical_blocks=20000),),
            ),
            seed=0,
        )
        fill_volumes(s, ops_per_cp=8192)
        vol = s.vols["v"]
        mapped = vol.l2v[vol.l2v >= 0][:5]
        s.store.metafile.bitmap.free(vol.v2p[mapped])
        assert scan(s).count("corrupt") == 5
        repair(s)
        assert scan(s).clean
        s.run(RandomOverwriteWorkload(s, ops_per_cp=512, seed=1), 3)
        s.verify_consistency()
