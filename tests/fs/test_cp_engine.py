"""Unit tests for the consistency-point engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import OutOfSpaceError
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import CPBatch, WaflSim

from ..conftest import small_ssd_sim


def batch(sim, n, seed=0, reads=0):
    rng = np.random.default_rng(seed)
    name = next(iter(sim.vols))
    size = sim.vols[name].spec.logical_blocks
    return CPBatch(
        writes={name: rng.integers(0, size, size=n)}, ops=n, reads=reads
    )


class TestRunCP:
    def test_basic_cp(self, ssd_sim):
        stats = ssd_sim.engine.run_cp(batch(ssd_sim, 500))
        assert stats.ops == 500
        assert stats.physical_blocks > 0
        assert stats.physical_blocks == stats.virtual_blocks
        assert stats.cpu_us > 0
        assert stats.device_busy_us > 0

    def test_duplicate_writes_coalesce(self, ssd_sim):
        name = next(iter(ssd_sim.vols))
        ids = np.array([7, 7, 7, 8])
        stats = ssd_sim.engine.run_cp(CPBatch(writes={name: ids}, ops=4))
        assert stats.physical_blocks == 2

    def test_overwrites_free_previous(self, ssd_sim):
        name = next(iter(ssd_sim.vols))
        ids = np.arange(100)
        ssd_sim.engine.run_cp(CPBatch(writes={name: ids}, ops=100))
        s2 = ssd_sim.engine.run_cp(CPBatch(writes={name: ids}, ops=100))
        # Old virtual + physical pairs freed at the second CP boundary.
        assert s2.blocks_freed == 200

    def test_deletes_free_both_spaces(self, ssd_sim):
        name = next(iter(ssd_sim.vols))
        ids = np.arange(50)
        ssd_sim.engine.run_cp(CPBatch(writes={name: ids}, ops=50))
        before = ssd_sim.store.free_count
        s = ssd_sim.engine.run_cp(CPBatch(deletes={name: ids}, ops=50))
        assert s.blocks_freed == 100  # 50 virtual + 50 physical
        assert ssd_sim.store.free_count == before + 50

    def test_reads_charge_devices(self, ssd_sim):
        s0 = ssd_sim.engine.run_cp(batch(ssd_sim, 10))
        s1 = ssd_sim.engine.run_cp(batch(ssd_sim, 10, reads=5000))
        assert s1.device_busy_us > s0.device_busy_us

    def test_out_of_space(self):
        phys = 3 * 8192
        sim = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                                blocks_per_disk=8192, stripes_per_aa=1024),),
                # Virtual space far exceeds physical so the aggregate
                # exhausts first.
                volumes=(VolumeDecl("v", logical_blocks=phys - 100,
                                    virtual_blocks=8 * phys - (8 * phys) % 32768),),
            ),
            seed=0,
        )
        with pytest.raises(OutOfSpaceError):
            for i in range(50):
                ids = np.arange(sim.vols["v"].spec.logical_blocks)
                sim.engine.run_cp(CPBatch(writes={"v": ids}, ops=10))
                # Defeat physical freeing so space leaks.
                for g in sim.store.groups:
                    g.delayed_frees._per_block.clear()
                    g.delayed_frees._pending.clear()

    def test_metrics_accumulate(self, ssd_sim):
        ssd_sim.engine.run_cp(batch(ssd_sim, 100))
        ssd_sim.engine.run_cp(batch(ssd_sim, 100))
        assert ssd_sim.metrics.total_ops == 200
        assert len(ssd_sim.metrics.cps) == 2
        assert ssd_sim.metrics.cps[1].cp_index == 1

    def test_cache_maintenance_tracked(self, ssd_sim):
        ssd_sim.engine.run_cp(batch(ssd_sim, 200))
        assert ssd_sim.engine.cache_maintenance_us > 0

    def test_empty_batch(self, ssd_sim):
        stats = ssd_sim.engine.run_cp(CPBatch(ops=0))
        assert stats.physical_blocks == 0
