"""Unit tests for FlexVol volumes (virtual VBN space, COW maps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import AllocationError
from repro.fs import FlexVol, PolicyKind, VolSpec


def make_vol(logical=1000, virtual=None, per_aa=512, policy=PolicyKind.CACHE):
    spec = VolSpec("v", logical_blocks=logical, virtual_blocks=virtual,
                   blocks_per_aa=per_aa)
    return FlexVol(spec, policy=policy, seed=0)


class TestSpec:
    def test_default_virtual_sizing(self):
        spec = VolSpec("v", logical_blocks=100_000)
        v = spec.resolve_virtual_blocks()
        assert v >= 150_000
        assert v % spec.blocks_per_aa == 0

    def test_explicit_virtual(self):
        spec = VolSpec("v", logical_blocks=100, virtual_blocks=32768)
        assert spec.resolve_virtual_blocks() == 32768


class TestWritePath:
    def test_first_write_maps(self):
        vol = make_vol(virtual=2048)
        ids = np.array([1, 2, 3])
        new_v, old_v, old_p = vol.stage_writes(ids)
        assert new_v.size == 3 and old_v.size == 0
        vol.commit_writes(ids, new_v, np.array([100, 101, 102]), old_v)
        assert vol.l2v[1] == new_v[0]
        assert vol.v2p[new_v[0]] == 100
        assert vol.used_blocks == 3

    def test_overwrite_frees_old_pair(self):
        vol = make_vol(virtual=2048)
        ids = np.array([5])
        nv, ov, op_ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv, np.array([7]), ov)
        nv2, ov2, op2 = vol.stage_writes(ids)
        assert ov2.tolist() == [nv[0]]
        assert op2.tolist() == [7]
        vol.commit_writes(ids, nv2, np.array([9]), ov2)
        assert vol.delayed_frees.pending_count == 1
        assert vol.v2p[nv[0]] == -1

    def test_virtual_exhaustion_raises(self):
        vol = make_vol(logical=600, virtual=512)
        with pytest.raises(AllocationError):
            vol.stage_writes(np.arange(600))

    def test_deletes_unmap(self):
        vol = make_vol(virtual=2048)
        ids = np.arange(10)
        nv, ov, _ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv, np.arange(100, 110), ov)
        old_p = vol.stage_deletes(np.arange(5))
        assert sorted(old_p.tolist()) == list(range(100, 105))
        assert (vol.l2v[:5] == -1).all()
        assert vol.delayed_frees.pending_count == 5

    def test_delete_unmapped_is_noop(self):
        vol = make_vol(virtual=2048)
        assert vol.stage_deletes(np.array([3])).size == 0

    def test_lookup_physical(self):
        vol = make_vol(virtual=2048)
        ids = np.array([0, 1])
        nv, ov, _ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv, np.array([55, 66]), ov)
        assert sorted(vol.lookup_physical(np.array([0, 1, 2])).tolist()) == [55, 66]


class TestCPBoundary:
    def test_boundary_applies_frees_and_counts(self):
        vol = make_vol(virtual=2048)
        ids = np.arange(20)
        nv, ov, _ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv, np.arange(100, 120), ov)
        rep = vol.cp_boundary()
        assert rep.metafile_blocks == 1
        assert rep.blocks_freed == 0
        nv2, ov2, _ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv2, np.arange(200, 220), ov2)
        rep2 = vol.cp_boundary()
        assert rep2.blocks_freed == 20
        vol.keeper.verify_against(vol.metafile.bitmap)

    def test_consistency_check_passes(self):
        vol = make_vol(virtual=2048)
        ids = np.arange(50)
        nv, ov, _ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv, np.arange(500, 550), ov)
        vol.cp_boundary()
        vol.verify_consistency()

    def test_consistency_detects_corruption(self):
        vol = make_vol(virtual=2048)
        ids = np.arange(5)
        nv, ov, _ = vol.stage_writes(ids)
        vol.commit_writes(ids, nv, np.arange(5), ov)
        vol.v2p[nv[0]] = -1  # corrupt the container map
        with pytest.raises(AllocationError):
            vol.verify_consistency()

    def test_random_policy_vol(self):
        vol = make_vol(virtual=2048, policy=PolicyKind.RANDOM)
        ids = np.arange(30)
        nv, ov, _ = vol.stage_writes(ids)
        assert nv.size == 30
