"""obs test fixtures: never leak an installed tracer across tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _uninstall_tracer():
    obs.uninstall()
    yield
    obs.uninstall()
