"""Exporter tests: JSON-lines and Chrome trace_event validity, and the
byte-for-byte determinism both formats guarantee."""

from __future__ import annotations

import json

from repro import obs


def traced_workload():
    """A small deterministic synthetic trace; returns the records."""
    t = obs.install()
    for cp in range(2):
        obs.set_cp(cp)
        obs.count("cp.begin", cp=cp)
        with obs.span("cp", interval=cp):
            with obs.span("cp.allocate", vol="v0", blocks=8):
                obs.advance_us(3.0)
                obs.count("cp.virtual_blocks", 8, where="vol:v0")
            with obs.span("cp.boundary"):
                obs.advance_us(11.0)
                obs.count("cp.physical_blocks", 8, where="store")
    records = t.records()
    obs.uninstall()
    return records


class TestJsonl:
    def test_one_valid_object_per_line(self):
        records = traced_workload()
        text = obs.export.to_jsonl(records)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == len(records)
        docs = [json.loads(line) for line in lines]
        assert docs[0]["name"] == "cp.begin"
        assert {d["kind"] for d in docs} == {"span", "counter"}

    def test_empty_records_empty_string(self):
        assert obs.export.to_jsonl([]) == ""

    def test_byte_identical_across_reruns(self):
        a = obs.export.to_jsonl(traced_workload())
        b = obs.export.to_jsonl(traced_workload())
        assert a == b


class TestChrome:
    def test_document_structure(self):
        doc = json.loads(obs.export.to_chrome(traced_workload()))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["format"] == "repro-trace/1"
        assert isinstance(doc["traceEvents"], list)

    def test_span_maps_to_complete_event(self):
        events = obs.export.chrome_events(traced_workload())
        spans = [e for e in events if e["ph"] == "X"]
        alloc = next(e for e in spans if e["name"] == "cp.allocate")
        assert alloc["ts"] == 0.0 and alloc["dur"] == 3.0
        assert alloc["pid"] == 0 and alloc["tid"] == 0
        assert alloc["args"]["vol"] == "v0"
        assert alloc["args"]["cp"] == 0

    def test_counter_maps_to_counter_event(self):
        events = obs.export.chrome_events(traced_workload())
        counters = [e for e in events if e["ph"] == "C"]
        vb = next(e for e in counters if e["name"] == "cp.virtual_blocks")
        assert vb["args"]["cp.virtual_blocks"] == 8.0
        assert vb["args"]["where"] == "vol:v0"

    def test_only_x_and_c_phases(self):
        events = obs.export.chrome_events(traced_workload())
        assert {e["ph"] for e in events} <= {"X", "C"}

    def test_byte_identical_across_reruns(self):
        a = obs.export.to_chrome(traced_workload())
        b = obs.export.to_chrome(traced_workload())
        assert a == b
