"""Unit tests for the structured tracer: the disabled no-op path, the
ring buffer, the deterministic sim clock, and CP association."""

from __future__ import annotations

from repro import obs
from repro.common.config import ObsConfig
from repro.obs.tracer import _NULL_SPAN, KIND_COUNTER, KIND_SPAN


class TestDisabled:
    def test_span_returns_shared_null_span(self):
        # Zero-cost path: no allocation, same object every call.
        assert obs.span("x") is _NULL_SPAN
        assert obs.span("y", vol="a") is _NULL_SPAN

    def test_null_span_is_reentrant_context_manager(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass

    def test_helpers_are_noops(self):
        obs.count("n", 4, tag="t")
        obs.advance_us(10.0)
        obs.sync_us(99.0)
        obs.set_cp(3)
        assert not obs.active()
        assert obs.get_tracer() is None
        assert list(obs.iter_records()) == []


class TestInstall:
    def test_install_returns_active_tracer(self):
        t = obs.install()
        assert obs.active()
        assert obs.get_tracer() is t

    def test_install_replaces_previous_tracer(self):
        obs.install()
        obs.count("stale")
        t = obs.install()
        assert len(t) == 0

    def test_uninstall_reverts_to_noops(self):
        obs.install()
        obs.uninstall()
        assert obs.span("x") is _NULL_SPAN


class TestRecording:
    def test_nested_spans_record_depth_and_duration(self):
        t = obs.install()
        with obs.span("outer", vol="v0"):
            obs.advance_us(5.0)
            with obs.span("inner"):
                obs.advance_us(7.0)
        outer, inner = t.records()
        assert (inner.name, inner.depth, inner.dur_us) == ("inner", 1, 7.0)
        assert (outer.name, outer.depth, outer.dur_us) == ("outer", 0, 12.0)
        assert outer.tags == (("vol", "v0"),)

    def test_records_are_seq_sorted_open_order(self):
        t = obs.install()
        with obs.span("a"):      # seq 0, closes last
            with obs.span("b"):  # seq 1, closes first
                pass
        assert [r.name for r in t.records()] == ["a", "b"]

    def test_counter_record_carries_value_and_tags(self):
        t = obs.install()
        obs.count("cp.physical_blocks", 42, where="group:0")
        (r,) = t.records()
        assert r.kind == KIND_COUNTER
        assert (r.name, r.value) == ("cp.physical_blocks", 42.0)
        assert r.tags == (("where", "group:0"),)

    def test_span_kind(self):
        t = obs.install()
        with obs.span("s"):
            pass
        assert t.records()[0].kind == KIND_SPAN

    def test_to_dict_omits_empty_tags(self):
        t = obs.install()
        obs.count("a")
        obs.count("b", tag="x")
        first, second = (r.to_dict() for r in t.records())
        assert "tags" not in first
        assert second["tags"] == {"tag": "x"}


class TestClock:
    def test_advance_accumulates(self):
        t = obs.install()
        obs.advance_us(3.0)
        obs.advance_us(4.5)
        assert t.clock_us == 7.5

    def test_sync_is_monotonic(self):
        t = obs.install()
        obs.sync_us(10.0)
        obs.sync_us(4.0)  # backwards: ignored
        assert t.clock_us == 10.0
        obs.sync_us(12.0)
        assert t.clock_us == 12.0

    def test_timestamps_come_from_sim_clock(self):
        t = obs.install()
        obs.advance_us(100.0)
        obs.count("n")
        assert t.records()[0].ts_us == 100.0


class TestCPAssociation:
    def test_records_tagged_with_current_cp(self):
        t = obs.install()
        assert t.cp == -1
        obs.set_cp(2)
        obs.count("n")
        assert t.records()[0].cp == 2

    def test_cp_totals_accumulate_and_reset(self):
        t = obs.install()
        obs.set_cp(0)
        obs.count("cp.virtual_blocks", 10)
        obs.count("cp.virtual_blocks", 5)
        assert t.cp_totals == {"cp.virtual_blocks": 15.0}
        obs.set_cp(1)
        assert t.cp_totals == {}


class TestRingBuffer:
    def test_eviction_is_fifo_and_counted(self):
        t = obs.install(ObsConfig(ring_capacity=4))
        for i in range(6):
            obs.count(f"c{i}")
        assert len(t) == 4
        assert t.dropped == 2
        assert [r.name for r in t.records()] == ["c2", "c3", "c4", "c5"]

    def test_no_drops_below_capacity(self):
        t = obs.install(ObsConfig(ring_capacity=8))
        for _ in range(8):
            obs.count("c")
        assert t.dropped == 0
