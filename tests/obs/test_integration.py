"""End-to-end tracing: a traced simulation reconciles exactly with its
CPStats log, the audit enforces it, and same-seed traced reruns are
byte-identical (ISSUE acceptance tests)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis import InvariantAuditor
from repro.faults.underload import run_chaos_under_load
from repro.obs.report import (
    RECONCILED_COUNTERS,
    complete_cps,
    cp_counter_totals,
    reconcile,
    span_tree_lines,
)
from repro.traffic import run_traffic
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


def traced_sim_run(n_cps: int = 3):
    """A small traced single-source run; returns (records, sim)."""
    tracer = obs.install()
    try:
        sim = small_ssd_sim()
        fill_volumes(sim)
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=512, seed=3), n_cps)
    finally:
        obs.uninstall()
    return tracer.records(), sim


class TestReconciliation:
    def test_traced_run_reconciles_with_cpstats(self):
        records, sim = traced_sim_run()
        intact = complete_cps(records)
        assert intact, "no complete CPs traced"
        assert reconcile(records, sim.metrics.cps) == []

    def test_every_reconciled_counter_is_emitted(self):
        records, _ = traced_sim_run()
        last = max(complete_cps(records))
        emitted = set(cp_counter_totals(records)[last])
        assert set(RECONCILED_COUNTERS) <= emitted

    def test_span_tree_covers_the_cp_pipeline(self):
        records, _ = traced_sim_run()
        tree = "\n".join(span_tree_lines(records))
        for name in ("cp.allocate", "cp.boundary", "rg.price_writes",
                     "raid.analyze", "cp.cache_flush"):
            assert name in tree, f"span {name} missing from tree"

    def test_traced_traffic_run_reconciles(self):
        tracer = obs.install()
        try:
            run = run_traffic("uniform", n_tenants=2, seed=11, quick=True)
        finally:
            obs.uninstall()
        records = tracer.records()
        assert reconcile(records, run.sim.metrics.cps) == []
        # Per-tenant span tags reach the trace.
        tagged = [
            r for r in records
            if r.name == "traffic.admitted_ops"
            and any(k == "tenant" for k, _ in r.tags)
        ]
        assert tagged


class TestAuditIntegration:
    def test_audited_traced_run_passes_trace_check(self):
        tracer = obs.install()
        try:
            sim = small_ssd_sim()
            fill_volumes(sim)
            sim.engine.auditor = InvariantAuditor()
            sim.run(RandomOverwriteWorkload(sim, ops_per_cp=512, seed=3), 2)
        finally:
            obs.uninstall()
        assert sim.engine.auditor.cps_audited >= 2
        assert all(r.ok for r in sim.engine.auditor.reports)
        assert len(tracer.records()) > 0

    def test_drifting_instrumentation_fails_the_audit(self):
        # Inject counter drift right before the boundary of the last CP:
        # the auditor's trace-vs-stats check must flag it.
        from repro.common.errors import AuditError

        obs.install()
        try:
            sim = small_ssd_sim()
            fill_volumes(sim)
            sim.engine.auditor = InvariantAuditor()
            sim.run(RandomOverwriteWorkload(sim, ops_per_cp=512, seed=3), 1)
            original_after = sim.engine.auditor.after_cp

            def corrupt_then_audit(engine, stats):
                obs.count("cp.physical_blocks", 1, where="store")
                return original_after(engine, stats)

            sim.engine.auditor.after_cp = corrupt_then_audit
            with pytest.raises(AuditError, match="trace-vs-stats"):
                sim.run(
                    RandomOverwriteWorkload(sim, ops_per_cp=512, seed=4), 1
                )
        finally:
            obs.uninstall()


class TestDeterminism:
    @staticmethod
    def chaos_trace() -> str:
        tracer = obs.install()
        try:
            run_chaos_under_load(
                scenario="uniform",
                n_tenants=2,
                seed=11,
                n_cps=9,
                blocks_per_disk=16384,
            )
        finally:
            obs.uninstall()
        return obs.export.to_jsonl(tracer.records())

    def test_chaos_trace_byte_identical_across_reruns(self):
        # ISSUE acceptance: an enabled trace of a chaos run is
        # byte-identical across reruns with the same seed.
        assert self.chaos_trace() == self.chaos_trace()
