"""Disabled-tracer overhead: tracing must be free when off.

Two guarantees back the <2% acceptance bar:

* the *deterministic metrics* of a bench unit are bit-identical traced
  vs untraced (the CI trace-smoke step diffs a traced quick sweep
  against the untraced baseline at rtol 1e-6);
* the disabled hot path — one module-global load plus a ``None``
  check — costs well under a microsecond per call.  bench_quick units
  issue on the order of 1e4-1e5 instrumentation calls in ~1 s of wall
  time, so <1 us/call keeps the disabled overhead under 2% with an
  order of magnitude to spare.
"""

from __future__ import annotations

import timeit
from dataclasses import replace

from repro import obs
from repro.bench.runner import plan_units, run_unit

#: Generous per-call ceiling (seconds) for the disabled no-op path;
#: ~10x a worst-case CI interpreter, ~50x a typical one.
MAX_DISABLED_CALL_S = 2e-6


class TestDisabledHotPath:
    def test_disabled_count_is_submicrosecond(self):
        n = 200_000
        total = timeit.timeit(
            "count('cp.virtual_blocks', 8)",
            globals={"count": obs.count},
            number=n,
        )
        assert total / n < MAX_DISABLED_CALL_S, (
            f"disabled obs.count costs {total / n * 1e9:.0f} ns/call"
        )

    def test_disabled_span_is_submicrosecond(self):
        n = 200_000
        total = timeit.timeit(
            "s = span('cp.allocate')\ns.__enter__()\ns.__exit__()",
            globals={"span": obs.span},
            number=n,
        )
        assert total / n < MAX_DISABLED_CALL_S, (
            f"disabled obs.span costs {total / n * 1e9:.0f} ns/call"
        )


class TestTracedMetricsUnchanged:
    def test_traced_unit_metrics_equal_untraced(self):
        # The strong form of "overhead <2%": instrumentation does not
        # move any simulated metric at all.
        spec = plan_units(quick=True, experiments=["fig6"])[0]
        plain = run_unit(spec)
        traced = run_unit(replace(spec, trace=True))
        assert traced["traced"] and traced["trace_records"] > 0
        assert traced["metrics"] == plain["metrics"]
