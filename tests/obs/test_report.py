"""Span-tree report and CPStats reconciliation tests."""

from __future__ import annotations

from repro import obs
from repro.obs.report import (
    CP_SENTINEL,
    RECONCILED_COUNTERS,
    complete_cps,
    cp_counter_totals,
    reconcile,
    reconcile_current_cp,
    span_tree_lines,
)
from repro.sim.stats import CPStats


def trace_cp(cp_index: int, *, virtual: int = 8, physical: int = 8):
    """Trace one synthetic CP on the installed tracer."""
    obs.set_cp(cp_index)
    obs.count(CP_SENTINEL, cp=cp_index)
    with obs.span("cp", interval=cp_index):
        with obs.span("cp.allocate", vol="v0"):
            obs.count("cp.virtual_blocks", virtual, where="vol:v0")
        with obs.span("cp.boundary"):
            obs.advance_us(10.0)
            obs.count("cp.physical_blocks", physical, where="store")


def matching_stats(cp_index: int, *, virtual: int = 8, physical: int = 8):
    return CPStats(
        cp_index=cp_index, virtual_blocks=virtual, physical_blocks=physical
    )


class TestTotals:
    def test_counter_totals_sum_per_cp(self):
        t = obs.install()
        trace_cp(0)
        trace_cp(1, virtual=3)
        totals = cp_counter_totals(t.records())
        assert totals[0]["cp.virtual_blocks"] == 8.0
        assert totals[1]["cp.virtual_blocks"] == 3.0

    def test_complete_cps_requires_sentinel(self):
        t = obs.install()
        trace_cp(0)
        obs.set_cp(1)  # no sentinel: simulates eviction of CP 1's head
        obs.count("cp.virtual_blocks", 4)
        assert complete_cps(t.records()) == {0}


class TestSpanTree:
    def test_tree_nests_by_depth_and_lists_counters(self):
        t = obs.install()
        trace_cp(0)
        lines = span_tree_lines(t.records())
        assert lines[0] == "CP 0:"
        tree = "\n".join(lines)
        assert "  cp " in tree
        assert "    cp.allocate" in tree  # nested one level deeper
        assert "cp.virtual_blocks = 8" in tree

    def test_cp_filter(self):
        t = obs.install()
        trace_cp(0)
        trace_cp(1)
        lines = span_tree_lines(t.records(), cp=1)
        assert lines[0] == "CP 1:"
        assert not any(line == "CP 0:" for line in lines)

    def test_sentinel_hidden_from_counter_listing(self):
        t = obs.install()
        trace_cp(0)
        assert CP_SENTINEL not in "\n".join(span_tree_lines(t.records()))


class TestReconcile:
    def test_matching_run_reconciles(self):
        t = obs.install()
        trace_cp(0)
        trace_cp(1, virtual=3, physical=3)
        cps = [matching_stats(0), matching_stats(1, virtual=3, physical=3)]
        assert reconcile(t.records(), cps) == []

    def test_mismatch_is_reported_per_counter(self):
        t = obs.install()
        trace_cp(0)
        problems = reconcile(t.records(), [matching_stats(0, virtual=9)])
        assert len(problems) == 1
        assert "cp.virtual_blocks" in problems[0]
        assert "9" in problems[0] and "8" in problems[0]

    def test_incomplete_cp_is_skipped(self):
        # Evicted sentinel => partial counters; reconciling them would
        # always fail, so the CP is excluded.
        t = obs.install()
        obs.set_cp(0)
        obs.count("cp.virtual_blocks", 2)  # no sentinel
        assert reconcile(t.records(), [matching_stats(0)]) == []

    def test_stats_missing_from_log_is_skipped(self):
        t = obs.install()
        trace_cp(5)
        assert reconcile(t.records(), []) == []

    def test_reconciled_counter_map_covers_block_accounting(self):
        # The contract in ISSUE terms: traced block counts == counted.
        assert RECONCILED_COUNTERS["cp.virtual_blocks"] == "virtual_blocks"
        assert RECONCILED_COUNTERS["cp.physical_blocks"] == "physical_blocks"
        assert set(RECONCILED_COUNTERS.values()) <= {
            f.name for f in CPStats.__dataclass_fields__.values()
        }


class TestReconcileCurrentCP:
    def test_matches_running_totals(self):
        t = obs.install()
        trace_cp(4)
        assert reconcile_current_cp(t, matching_stats(4)) == []

    def test_detects_drift(self):
        t = obs.install()
        trace_cp(4)
        problems = reconcile_current_cp(t, matching_stats(4, physical=7))
        assert len(problems) == 1 and "cp.physical_blocks" in problems[0]

    def test_cp_index_mismatch_returns_empty(self):
        t = obs.install()
        trace_cp(4)
        assert reconcile_current_cp(t, matching_stats(3, virtual=0)) == []
