"""Unit tests for stripe-write classification and parity accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.raid import RAIDGeometry, analyze_raid_writes, chain_lengths


@pytest.fixture
def g():
    return RAIDGeometry(ndata=4, nparity=1, blocks_per_disk=1024)


class TestChainLengths:
    def test_single_run(self):
        assert chain_lengths(np.array([3, 4, 5])).tolist() == [3]

    def test_multiple_runs(self):
        assert chain_lengths(np.array([0, 1, 5, 9, 10, 11])).tolist() == [2, 1, 3]

    def test_empty(self):
        assert chain_lengths(np.array([])).size == 0

    def test_sums_to_input(self):
        d = np.array([0, 2, 3, 4, 9])
        assert chain_lengths(d).sum() == d.size


class TestAnalyze:
    def test_full_stripe(self, g):
        stats = analyze_raid_writes(g, g.stripe_vbns(0))
        assert stats.full_stripes == 1
        assert stats.partial_stripes == 0
        assert stats.parity_blocks_read == 0
        assert stats.parity_blocks_written == 1
        assert stats.full_stripe_fraction == 1.0

    def test_partial_stripe_parity_reads(self, g):
        # One block of a 4-wide stripe: subtractive = 1+1=2 reads,
        # reconstructive = 3 reads -> 2.
        stats = analyze_raid_writes(g, np.array([0]))
        assert stats.partial_stripes == 1
        assert stats.parity_blocks_read == 2

    def test_nearly_full_stripe_uses_reconstruction(self, g):
        # 3 of 4 blocks: subtractive = 3+1 = 4; reconstructive = 1.
        v = g.stripe_vbns(0)[:3]
        stats = analyze_raid_writes(g, v)
        assert stats.parity_blocks_read == 1

    def test_blocks_per_disk(self, g):
        v = np.concatenate([g.stripe_vbns(0), np.array([1])])  # extra on disk 0
        stats = analyze_raid_writes(g, v)
        assert stats.blocks_per_disk.tolist() == [2, 1, 1, 1]

    def test_chains_per_disk(self, g):
        # Disk 0: dbns 0,1,2 and 10 -> 2 chains; disk 1: dbn 0 -> 1.
        v = np.array([0, 1, 2, 10, 1024])
        stats = analyze_raid_writes(g, v)
        assert stats.chains_per_disk.tolist() == [2, 1, 0, 0]
        assert stats.total_chains == 3
        assert stats.mean_chain_length == pytest.approx(5 / 3)

    def test_tetris_counting(self, g):
        # Stripes 0 and 63 share a tetris; stripe 64 starts the next.
        v = np.concatenate([g.stripe_vbns(0), g.stripe_vbns(63), g.stripe_vbns(64)])
        stats = analyze_raid_writes(g, v)
        assert stats.tetrises == 2

    def test_empty_input(self, g):
        stats = analyze_raid_writes(g, np.array([], dtype=np.int64))
        assert stats.data_blocks == 0
        assert stats.stripes_written == 0
        assert stats.mean_chain_length == 0.0

    def test_raid_dp_parity_writes(self):
        g2 = RAIDGeometry(ndata=4, nparity=2, blocks_per_disk=1024)
        stats = analyze_raid_writes(g2, g2.stripe_vbns(0))
        assert stats.parity_blocks_written == 2

    def test_fragmentation_raises_partial_fraction(self, g):
        """The Figure 1 story: scattered writes -> partial stripes."""
        rng = np.random.default_rng(0)
        scattered = rng.choice(g.data_blocks, size=64, replace=False)
        dense = np.concatenate([g.stripe_vbns(s) for s in range(16)])
        frag = analyze_raid_writes(g, scattered)
        tight = analyze_raid_writes(g, dense)
        assert frag.full_stripe_fraction < tight.full_stripe_fraction
        assert frag.parity_blocks_read > tight.parity_blocks_read
        assert frag.mean_chain_length < tight.mean_chain_length
