"""Unit tests for RAID geometry and VBN mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import GeometryError
from repro.raid import RAIDGeometry


class TestConstruction:
    def test_basic_properties(self):
        g = RAIDGeometry(ndata=6, nparity=1, blocks_per_disk=1024)
        assert g.ndisks == 7
        assert g.stripes == 1024
        assert g.data_blocks == 6144

    def test_raid_dp(self):
        g = RAIDGeometry(ndata=14, nparity=2, blocks_per_disk=1024)
        assert g.ndisks == 16

    @pytest.mark.parametrize(
        "kw",
        [
            dict(ndata=0, nparity=1, blocks_per_disk=1024),
            dict(ndata=3, nparity=-1, blocks_per_disk=1024),
            dict(ndata=3, nparity=1, blocks_per_disk=0),
            dict(ndata=3, nparity=1, blocks_per_disk=100),
        ],
    )
    def test_invalid_geometry(self, kw):
        with pytest.raises(GeometryError):
            RAIDGeometry(**kw)


class TestMapping:
    @pytest.fixture
    def g(self):
        return RAIDGeometry(ndata=3, nparity=1, blocks_per_disk=1024)

    def test_disk_major_layout(self, g):
        assert g.disk_of(np.array([0, 1023, 1024, 2048])).tolist() == [0, 0, 1, 2]
        assert g.dbn_of(np.array([0, 1023, 1024, 2048])).tolist() == [0, 1023, 0, 0]

    def test_vbn_inverse(self, g):
        vbns = np.arange(g.data_blocks)
        assert np.array_equal(g.vbn(g.disk_of(vbns), g.dbn_of(vbns)), vbns)

    def test_vbn_validation(self, g):
        with pytest.raises(GeometryError):
            g.vbn(3, 0)
        with pytest.raises(GeometryError):
            g.vbn(0, 1024)

    def test_stripe_vbns(self, g):
        assert g.stripe_vbns(5).tolist() == [5, 1029, 2053]

    def test_stripe_vbns_validation(self, g):
        with pytest.raises(GeometryError):
            g.stripe_vbns(1024)

    def test_stripe_range_vbns(self, g):
        ranges = g.stripe_range_vbns(10, 20)
        assert ranges == [(10, 20), (1034, 1044), (2058, 2068)]

    def test_stripe_range_validation(self, g):
        with pytest.raises(GeometryError):
            g.stripe_range_vbns(20, 10)
        with pytest.raises(GeometryError):
            g.stripe_range_vbns(0, 2000)

    def test_stripe_of_aliases_dbn(self, g):
        v = np.array([7, 1031])
        assert np.array_equal(g.stripe_of(v), g.dbn_of(v))
