"""Unit tests for tetris accounting (paper section 4.2)."""

from __future__ import annotations

import numpy as np

from repro.raid import TETRIS_STRIPES, count_tetrises, tetris_ids


class TestTetris:
    def test_default_is_64_stripes(self):
        assert TETRIS_STRIPES == 64

    def test_ids(self):
        assert tetris_ids(np.array([0, 63, 64, 200])).tolist() == [0, 1, 3]

    def test_count(self):
        assert count_tetrises(np.array([0, 1, 2])) == 1
        assert count_tetrises(np.array([0, 64, 128])) == 3

    def test_empty(self):
        assert count_tetrises(np.array([])) == 0
        assert tetris_ids(np.array([])).size == 0

    def test_custom_size(self):
        assert count_tetrises(np.array([0, 9, 10]), stripes_per_tetris=10) == 2

    def test_duplicates_collapse(self):
        assert count_tetrises(np.array([1, 2, 3, 1, 2])) == 1
