"""Unit tests for the whole-system invariant auditor: clean systems
audit clean, and each class of deliberate corruption is caught by the
check that owns it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import InvariantAuditor, arm_global, audit_sim, disarm_global
from repro.common.errors import AuditError, CacheError
from repro.core.delayed_frees import DelayedFreeLog
from repro.core.topaa import seed_heap_cache, serialize_heap_seed
from repro.fs.cp import CPEngine
from repro.sim.stats import CPStats
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


@pytest.fixture
def sim():
    s = small_ssd_sim()
    fill_volumes(s)
    s.run(RandomOverwriteWorkload(s, ops_per_cp=512, seed=3), 3)
    return s


def violations_by_check(report):
    return {v.check for v in report.violations}


class TestStructuralAudit:
    def test_clean_system_audits_clean(self, sim):
        report = audit_sim(sim)
        assert report.ok, report.format()
        assert report.checks_run > 0

    def test_broken_free_count_is_caught(self, sim):
        g = sim.store.groups[0]
        g.metafile.bitmap._allocated += 1
        report = audit_sim(sim)
        assert "bitmap-popcount" in violations_by_check(report)
        assert any(v.where == "group:0" for v in report.violations)

    def test_corrupted_hbps_bin_count_is_caught(self, sim):
        vol = sim.vols["volA"]
        vol.cache.hbps._counts[0] += 1
        report = audit_sim(sim)
        assert not report.ok
        assert any(v.where == "vol:volA" for v in report.violations)

    def test_broken_heap_order_is_caught(self, sim):
        g = sim.store.groups[0]
        heap = g.cache._heap
        neg, aa, ver = heap[0]
        heap[0] = (neg + 10**6, aa, ver)  # worst score at the root
        report = audit_sim(sim)
        assert "cache-structure" in violations_by_check(report)

    def test_diverged_keeper_is_caught(self, sim):
        g = sim.store.groups[0]
        g.keeper._scores[0] += 1
        report = audit_sim(sim)
        assert not report.ok

    def test_snapshot_pin_corruption_is_caught(self, sim):
        vol = sim.vols["volA"]
        free = vol.metafile.bitmap.free_in_range(0, vol.nblocks, limit=1)
        vol._snap_mask[free[0]] = True
        report = audit_sim(sim)
        assert not report.ok

    def test_raise_if_failed(self, sim):
        g = sim.store.groups[0]
        g.metafile.bitmap._allocated += 1
        with pytest.raises(AuditError, match="bitmap-popcount"):
            audit_sim(sim).raise_if_failed()

    def test_seeded_heap_cache_is_exempt_from_score_comparison(self, sim):
        # A TopAA-seeded cache carries export-time scores that lag the
        # keeper until the background rebuild; the audit must not flag
        # that as divergence.
        g = sim.store.groups[0]
        scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
        stale = scores.copy()
        stale[:8] += 1  # deliberately stale seed
        cache = seed_heap_cache(g.topology.num_aas, serialize_heap_seed(stale))
        assert cache.seeded
        g.adopt_cache(cache)
        report = audit_sim(sim)
        assert "heap-vs-scores" not in violations_by_check(report)


class TestDelayedFreeInvariants:
    def test_pending_count_mismatch_raises(self):
        log = DelayedFreeLog(bits_per_block=64)
        log.add(np.array([1, 2, 65]))
        log._ensure_counts()  # counts are folded lazily; corrupt after
        log._pending[0] += 1
        with pytest.raises(CacheError, match="pending count"):
            log.check_invariants()

    def test_duplicate_vbn_raises(self):
        log = DelayedFreeLog(bits_per_block=64)
        log.add(np.array([5]))
        log.add(np.array([5]))
        with pytest.raises(CacheError, match="duplicate"):
            log.check_invariants()

    def test_pending_vbn_already_free_in_bitmap_raises(self, sim):
        vol = sim.vols["volA"]
        log = DelayedFreeLog(bits_per_block=64)
        free = vol.metafile.bitmap.free_in_range(0, vol.nblocks, limit=1)
        log.add(free)
        with pytest.raises(CacheError, match="already"):
            log.check_invariants(bitmap=vol.metafile.bitmap)


class TestCPTimeAuditor:
    def test_audited_run_is_clean(self, sim):
        auditor = InvariantAuditor()
        sim.engine.auditor = auditor
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=256, seed=8), 2)
        assert auditor.cps_audited == 2
        assert all(r.ok for r in auditor.reports)

    def test_engine_raises_on_broken_free_count(self, sim):
        sim.engine.auditor = InvariantAuditor()
        g = sim.store.groups[0]
        g.metafile.bitmap._allocated -= 1
        with pytest.raises(AuditError):
            sim.run(RandomOverwriteWorkload(sim, ops_per_cp=128, seed=9), 1)

    def test_conservation_violation_detected(self, sim):
        auditor = InvariantAuditor()
        auditor.before_cp(sim.engine)
        sim.vols["volA"].delayed_frees.total_logged += 5
        with pytest.raises(AuditError, match="frees-vs-stats"):
            auditor.after_cp(sim.engine, CPStats())

    def test_collect_mode_accumulates_instead_of_raising(self, sim):
        auditor = InvariantAuditor(raise_on_violation=False)
        auditor.before_cp(sim.engine)
        sim.vols["volA"].delayed_frees.total_logged += 5
        report = auditor.after_cp(sim.engine, CPStats())
        assert not report.ok
        assert auditor.reports == [report]

    def test_stats_sanity_folded_into_audit(self, sim):
        auditor = InvariantAuditor(raise_on_violation=False)
        auditor.before_cp(sim.engine)
        report = auditor.after_cp(sim.engine, CPStats(ops=-1))
        assert "stats-sanity" in violations_by_check(report)


class TestStatsSanity:
    def test_clean_record_has_no_violations(self):
        assert CPStats(ops=10, physical_blocks=20).accounting_violations() == []

    def test_negative_counter_flagged(self):
        out = CPStats(blocks_freed=-3).accounting_violations()
        assert any("blocks_freed" in m for m in out)

    def test_busy_exceeding_total_flagged(self):
        out = CPStats(device_busy_us=10.0, device_total_us=5.0).accounting_violations()
        assert any("bottleneck" in m for m in out)


class TestGlobalArming:
    def test_arm_and_disarm(self):
        # Save the session state: under `pytest --audit` the plugin has
        # already armed the factory for every test.
        saved = CPEngine.default_auditor_factory
        try:
            arm_global()
            armed = small_ssd_sim()
            assert isinstance(armed.engine.auditor, InvariantAuditor)
            disarm_global()
            assert CPEngine.default_auditor_factory is None
            unarmed = small_ssd_sim()
            assert unarmed.engine.auditor is None
        finally:
            CPEngine.default_auditor_factory = saved

    def test_explicit_auditor_wins_over_factory(self):
        saved = CPEngine.default_auditor_factory
        try:
            arm_global(raise_on_violation=False)
            mine = InvariantAuditor()
            s = small_ssd_sim()
            engine = CPEngine(s.store, s.vols, auditor=mine)
            assert engine.auditor is mine
        finally:
            CPEngine.default_auditor_factory = saved
