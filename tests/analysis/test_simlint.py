"""Unit tests for simlint: every rule fires on a minimal synthetic
violation, clean idioms stay clean, pragmas waive, and the shipped
source tree itself lints clean (the dogfood gate)."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis import RULES, format_findings, lint_file, lint_paths, lint_source
from repro.analysis.rules import LAYER_RANK, ORDER_SAFE_CONSUMERS


def rules_of(source: str, package: str | None = None) -> list[str]:
    return [f.rule for f in lint_source(source, "mod.py", package)]


#: One minimal violation per rule id; a tuple adds the DAG package the
#: synthetic module pretends to live in.
VIOLATIONS: dict[str, str | tuple[str, str]] = {
    "D101": "import random\n",
    "D102": "import numpy as np\nrng = np.random.default_rng()\n",
    "D103": "import time\nt0 = time.time()\n",
    "D104": "s = {1, 2, 3}\nfor item in s:\n    print(item)\n",
    "L201": ("from ..fs.cp import CPEngine\n", "core"),
    "U301": "size_bytes = 1\nsize_blocks = 2\ntotal = size_bytes + size_blocks\n",
    "B501": "import numpy as np\nbits = np.unpackbits(buf, bitorder='little')\n",
    "B502": (
        "import numpy as np\n"
        "admits = np.empty(4)\n"
        "for i in range(4):\n"
        "    admits[i] = float(i)\n",
        "traffic",
    ),
    "E401": "try:\n    x = 1\nexcept:\n    pass\n",
    "E402": "try:\n    x = 1\nexcept Exception:\n    x = 2\n",
    "E403": (
        "from repro.common.errors import CacheError\n"
        "try:\n    x = 1\nexcept CacheError:\n    pass\n"
    ),
    "E404": ("print('loose output')\n", "core"),
    "C601": "model.committed = image\n",
    "T701": ("blocks = store.allocate(8, tier='fast')\n", "fs"),
    "P901": "x = 1  # simlint: disable=Z999\n",
}


class TestEveryRuleFires:
    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_rule_fires_on_minimal_violation(self, rule):
        spec = VIOLATIONS[rule]
        source, package = spec if isinstance(spec, tuple) else (spec, None)
        assert rule in rules_of(source, package)

    def test_catalogue_is_covered(self):
        assert set(VIOLATIONS) == set(RULES)


class TestDeterminismRules:
    def test_seeded_default_rng_is_clean(self):
        assert rules_of("import numpy as np\nrng = np.random.default_rng(42)\n") == []

    def test_default_rng_none_seed_fires(self):
        assert "D102" in rules_of(
            "import numpy as np\nrng = np.random.default_rng(None)\n"
        )

    def test_legacy_global_numpy_rng_fires(self):
        assert "D102" in rules_of("import numpy as np\nnp.random.seed(3)\n")

    def test_random_call_through_alias_fires(self):
        src = "import random as rnd\nx = rnd.choice([1, 2])\n"
        assert "D101" in rules_of(src)

    def test_perf_counter_is_allowed(self):
        assert rules_of("import time\nt0 = time.perf_counter()\n") == []

    def test_wall_clock_fires(self):
        assert "D103" in rules_of("import time\nt0 = time.monotonic()\n")

    def test_sorted_set_iteration_is_clean(self):
        assert rules_of("s = {3, 1}\nfor x in sorted(s):\n    print(x)\n") == []

    @pytest.mark.parametrize("consumer", sorted(ORDER_SAFE_CONSUMERS))
    def test_order_safe_consumers_are_clean(self, consumer):
        assert rules_of(f"s = {{3, 1}}\nx = {consumer}(s)\n") == []

    def test_list_materialization_of_set_fires(self):
        assert "D104" in rules_of("s = {3, 1}\nx = list(s)\n")

    def test_comprehension_over_set_fires(self):
        assert "D104" in rules_of("s = {3, 1}\nxs = [x + 1 for x in s]\n")

    def test_self_attribute_set_tracked_across_methods(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._out = set()\n"
            "    def walk(self):\n"
            "        for x in self._out:\n"
            "            print(x)\n"
        )
        assert "D104" in rules_of(src)

    def test_rebound_name_is_forgotten(self):
        src = "s = {1}\ns = [1]\nfor x in s:\n    print(x)\n"
        assert rules_of(src) == []


class TestBitmapDisciplineRules:
    def test_whole_array_unpack_fires(self):
        assert "B501" in rules_of("import numpy as np\nnp.unpackbits(arr)\n")

    def test_half_open_slice_fires(self):
        assert "B501" in rules_of("import numpy as np\nnp.unpackbits(buf[b0:])\n")
        assert "B501" in rules_of("import numpy as np\nnp.unpackbits(buf[:b1])\n")

    def test_bounded_window_is_clean(self):
        assert rules_of("import numpy as np\nnp.unpackbits(buf[b0:b1])\n") == []

    def test_bitmap_py_is_exempt(self):
        src = "import numpy as np\nnp.unpackbits(arr)\n"
        assert [f.rule for f in lint_source(src, "src/repro/bitmap/bitmap.py",
                                            "bitmap")] == []

    def test_aliased_import_fires(self):
        assert "B501" in rules_of(
            "import numpy as xp\nbits = xp.unpackbits(arr)\n"
        )


class TestElementwiseLoopRule:
    HOT_LOOP = (
        "import numpy as np\n"
        "vals = np.zeros(8)\n"
        "for i in range(8):\n"
        "    vals[i] = vals[i] + 1.0\n"
    )

    def test_fires_in_hot_path_packages(self):
        for pkg in ("fs", "bitmap", "traffic", "sim"):
            assert "B502" in rules_of(self.HOT_LOOP, pkg)

    def test_silent_outside_hot_paths(self):
        for pkg in ("bench", "analysis", "workloads", None):
            assert "B502" not in rules_of(self.HOT_LOOP, pkg)

    def test_whole_array_expression_is_clean(self):
        src = (
            "import numpy as np\n"
            "vals = np.zeros(8)\n"
            "vals += 1.0\n"
        )
        assert rules_of(src, "traffic") == []

    def test_python_list_indexing_is_clean(self):
        # Only names known to hold ndarrays fire; plain list loops are
        # the interpreter's job.
        src = "vals = [0.0] * 8\nfor i in range(8):\n    vals[i] = 1.0\n"
        assert rules_of(src, "traffic") == []

    def test_self_attribute_array_tracked(self):
        src = (
            "import numpy as np\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lat = np.empty(4)\n"
            "    def fill(self):\n"
            "        for i in range(4):\n"
            "            self._lat[i] = 0.0\n"
        )
        assert "B502" in rules_of(src, "traffic")

    def test_annotated_parameter_tracked(self):
        src = (
            "import numpy as np\n"
            "def f(xs: np.ndarray) -> float:\n"
            "    total = 0.0\n"
            "    for i in range(3):\n"
            "        total += xs[i]\n"
            "    return total\n"
        )
        assert "B502" in rules_of(src, "sim")

    def test_slice_view_of_array_tracked(self):
        src = (
            "import numpy as np\n"
            "base = np.arange(10)\n"
            "view = base[2:8]\n"
            "for i in range(6):\n"
            "    print(view[i])\n"
        )
        assert "B502" in [f.rule for f in lint_source(src, "m.py", "bitmap")]

    def test_rebound_to_list_is_forgotten(self):
        src = (
            "import numpy as np\n"
            "vals = np.zeros(4)\n"
            "vals = [0.0] * 4\n"
            "for i in range(4):\n"
            "    vals[i] = 1.0\n"
        )
        assert rules_of(src, "traffic") == []

    def test_fancy_index_scatter_is_clean(self):
        # `mask[idx_array] = True` batches the scatter; the loop variable
        # never appears as a scalar subscript.
        src = (
            "import numpy as np\n"
            "mask = np.zeros(16, dtype=bool)\n"
            "groups = [np.array([1, 2]), np.array([3])]\n"
            "for g in range(2):\n"
            "    mask[groups[g]] = True\n"
        )
        assert rules_of(src, "fs") == []

    def test_waivable_by_pragma(self):
        src = (
            "import numpy as np\n"
            "vals = np.zeros(4)\n"
            "for i in range(4):  # simlint: disable=B502\n"
            "    vals[i] = 1.0\n"
        )
        assert rules_of(src, "traffic") == []


class TestLayeringRules:
    def test_absolute_upward_import_fires(self):
        assert "L201" in rules_of("from repro.fs import WaflSim\n", "core")

    def test_old_bitmap_core_cycle_would_fire(self):
        # The exact edge this linter was dogfooded on (delayed_frees
        # lived in bitmap/ and imported core.hbps).
        assert "L201" in rules_of("from ..core.hbps import HBPS\n", "bitmap")

    def test_downward_import_is_clean(self):
        assert rules_of("from ..sim.stats import CPStats\n", "fs") == []

    def test_same_package_relative_import_is_clean(self):
        assert rules_of("from .hbps import HBPS\n", "core") == []

    def test_top_level_modules_are_unconstrained(self):
        assert rules_of("from repro.analysis import lint_paths\n", None) == []

    def test_substrate_importing_traffic_fires(self):
        # The traffic engine consumes workloads, never the reverse.
        assert "L201" in rules_of(
            "from ..traffic.engine import TrafficEngine\n", "workloads"
        )

    def test_traffic_importing_bench_fires(self):
        # Scenario builders re-create their testbed rather than reach up
        # into the bench harness.
        assert "L201" in rules_of(
            "from ..bench.harness import build_aged_ssd_sim\n", "traffic"
        )

    def test_faults_may_drive_traffic(self):
        assert rules_of("from ..traffic import run_traffic\n", "faults") == []

    def test_root_import_resolves_per_name(self):
        # ``from .. import obs`` reaches the obs *package*, not the
        # repro root: legal from any higher layer, illegal upward.
        assert rules_of("from .. import obs\n", "fs") == []
        assert "L201" in rules_of("from .. import traffic\n", "core")

    def test_nested_subpackage_relative_import_resolves(self):
        # Inside repro/analysis/flow/, ``from ..rules import`` reaches
        # repro.analysis.rules — not a phantom top-level repro.rules.
        src = "from ..rules import RULES\n"
        assert lint_source(src, "src/repro/analysis/flow/base.py",
                           "analysis", ("analysis", "flow")) == []

    def test_nested_subpackage_inferred_by_lint_file(self, tmp_path):
        mod = tmp_path / "repro" / "analysis" / "flow" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("from ..rules import RULES\n", encoding="utf-8")
        assert [f.rule for f in lint_file(mod)] == []

    def test_dag_matches_source_layout(self):
        pkg_dir = Path(repro.__file__).parent
        on_disk = {
            p.name for p in pkg_dir.iterdir() if (p / "__init__.py").exists()
        }
        assert set(LAYER_RANK) == on_disk


class TestCrashConsistencyRules:
    def test_structural_mutation_fires(self):
        assert "C601" in rules_of("model.committed.pages['g'] = page\n")

    def test_subscript_on_committed_fires(self):
        assert "C601" in rules_of("model.committed_images[3] = img\n")

    def test_augassign_fires(self):
        assert "C601" in rules_of("obj.committed_image += extra\n")

    def test_tuple_target_fires(self):
        assert "C601" in rules_of("a.committed, b = img, 1\n")

    def test_persistence_commit_path_is_sanctioned(self):
        src = "class M:\n    def commit(self):\n        self.committed = 1\n"
        findings = lint_source(src, "src/repro/crash/persistence.py", "crash")
        assert [f.rule for f in findings] == []

    def test_other_crash_modules_are_not_sanctioned(self):
        src = "class M:\n    def sneak(self):\n        self.committed = 1\n"
        findings = lint_source(src, "src/repro/crash/explorer.py", "crash")
        assert "C601" in [f.rule for f in findings]

    def test_bare_name_is_clean(self):
        assert rules_of("committed = 1\n") == []

    def test_reading_committed_is_clean(self):
        assert rules_of("x = model.committed.digest()\n") == []


class TestTierLiteralRule:
    def test_tier_keyword_string_fires(self):
        assert "T701" in rules_of("store.allocate(8, tier='fast')\n", "fs")

    def test_tier_compare_fires(self):
        assert "T701" in rules_of("ok = request.tier == 'capacity'\n", "cluster")

    def test_reversed_compare_fires(self):
        assert "T701" in rules_of("ok = 'archive' != vol.tier\n", "cluster")

    def test_tiering_package_is_sanctioned(self):
        src = "FAST = 'fast'\nok = role.tier == 'fast'\n"
        findings = lint_source(src, "src/repro/tiering/tiers.py", "tiering")
        assert [f.rule for f in findings] == []

    def test_tier_enum_member_is_clean(self):
        src = (
            "from repro.tiering import Tier\n"
            "req = VolumeRequest('v', tier=Tier.FAST.value)\n"
        )
        assert rules_of(src, "cluster") == []

    def test_unrelated_string_compare_is_clean(self):
        assert rules_of("ok = name == 'capacity'\n", "cluster") == []

    def test_non_role_tier_label_compare_is_clean(self):
        # Aggregate tier *labels* are data ("flash", "smr", ...), not
        # routing roles; comparing against them is fine.
        assert rules_of("ok = spec.tier == 'flash'\n", "cluster") == []


class TestUnitRules:
    def test_compare_across_units_fires(self):
        src = "cap_bytes = 10\nused_blocks = 5\nok = used_blocks < cap_bytes\n"
        assert "U301" in rules_of(src)

    def test_same_unit_arithmetic_is_clean(self):
        assert rules_of("a_blocks = 1\nb_blocks = 2\nc = a_blocks + b_blocks\n") == []

    def test_converter_result_carries_target_unit(self):
        src = (
            "from repro.common.units import blocks_to_bytes\n"
            "hdr_bytes = 24\n"
            "total = blocks_to_bytes(4) + hdr_bytes\n"
        )
        assert rules_of(src) == []

    def test_multiplicative_conversion_is_exempt(self):
        # Multiplication *is* the conversion; only +/-/comparisons flag.
        assert rules_of("n_blocks = 2\nsize_bytes = n_blocks * 4096\n") == []

    def test_augmented_assignment_fires(self):
        assert "U301" in rules_of("total_us = 0\nn_blocks = 5\ntotal_us += n_blocks\n")


class TestErrorRules:
    def test_handler_that_reraises_is_clean(self):
        src = (
            "from repro.common.errors import CacheError\n"
            "try:\n    x = 1\nexcept CacheError:\n    raise\n"
        )
        assert rules_of(src) == []

    def test_tuple_handler_with_repro_error_fires(self):
        src = (
            "from repro.common.errors import BitmapError\n"
            "try:\n    x = 1\nexcept (ValueError, BitmapError):\n    pass\n"
        )
        assert "E403" in rules_of(src)

    def test_docstring_only_body_counts_as_noop(self):
        src = (
            "from repro.common.errors import MountError\n"
            "try:\n    x = 1\nexcept MountError:\n    ...\n"
        )
        assert "E403" in rules_of(src)


class TestPrintRule:
    def test_print_inside_package_fires(self):
        assert "E404" in rules_of("print('status')\n", "fs")

    def test_print_in_top_level_module_is_exempt(self):
        # cli.py / __main__.py lint with package=None: user-facing
        # output is their job.
        assert rules_of("print('status')\n", None) == []

    def test_obs_counter_is_the_clean_idiom(self):
        src = "from .. import obs\nobs.count('cp.virtual_blocks', 4)\n"
        assert rules_of(src, "fs") == []

    def test_print_waivable_by_pragma(self):
        src = "print('x')  # simlint: disable=E404\n"
        assert rules_of(src, "bench") == []


class TestPragmas:
    def test_line_waiver(self):
        src = "s = {1, 2}\nfor x in s:  # simlint: disable=D104\n    print(x)\n"
        assert rules_of(src) == []

    def test_file_waiver(self):
        src = (
            "# simlint: disable-file=D104\n"
            "s = {1, 2}\nfor x in s:\n    print(x)\n"
        )
        assert rules_of(src) == []

    def test_waiver_names_specific_rules_only(self):
        src = "s = {1, 2}\nfor x in s:  # simlint: disable=E401\n    print(x)\n"
        assert "D104" in rules_of(src)

    def test_multi_rule_waiver(self):
        src = (
            "import time\n"
            "s = {1}\n"
            "xs = [time.time() for x in s]  # simlint: disable=D103,D104\n"
        )
        assert rules_of(src) == []

    def test_unknown_rule_in_waiver_fires_p901(self):
        findings = lint_source("x = 1  # simlint: disable=D99\n", "m.py")
        assert [f.rule for f in findings] == ["P901"]
        assert "'D99'" in findings[0].message

    def test_typo_waiver_still_waives_nothing(self):
        # The D104 violation survives AND the typo itself is flagged.
        src = "s = {1, 2}\nfor x in s:  # simlint: disable=D14\n    print(x)\n"
        assert sorted(rules_of(src)) == ["D104", "P901"]

    def test_unknown_rule_in_file_pragma_fires_p901(self):
        src = "# simlint: disable-file=Q123\nx = 1\n"
        assert rules_of(src) == ["P901"]

    def test_mixed_known_unknown_waiver(self):
        # Known ids keep waiving; each unknown id gets its own finding.
        src = "s = {1}\nfor x in s:  # simlint: disable=D104,Z1,Z2\n    print(x)\n"
        assert rules_of(src) == ["P901", "P901"]

    def test_p901_is_itself_waivable(self):
        # A deliberate forward-reference to a not-yet-shipped rule can
        # be annotated on its own line.
        src = (
            "# simlint: disable-file=P901\n"
            "x = 1  # simlint: disable=X777\n"
        )
        assert rules_of(src) == []


class TestReporting:
    def test_finding_str_is_clickable(self):
        findings = lint_source("import random\n", "pkg/mod.py")
        assert str(findings[0]).startswith("pkg/mod.py:1:")
        assert "D101" in str(findings[0])

    def test_format_findings_summarizes_by_rule(self):
        findings = lint_source("import random\nimport random\n", "m.py")
        text = format_findings(findings)
        assert "D101: 2" in text

    def test_lint_file_infers_package(self, tmp_path):
        mod = tmp_path / "repro" / "core" / "bad.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("from repro.fs import WaflSim\n", encoding="utf-8")
        assert [f.rule for f in lint_file(mod)] == ["L201"]


class TestDogfood:
    def test_shipped_tree_is_clean(self):
        pkg_dir = Path(repro.__file__).parent
        findings = lint_paths([pkg_dir])
        assert findings == [], format_findings(findings)
