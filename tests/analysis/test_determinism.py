"""Determinism regression tests: the property the D-rules guard.

Running the same scenario twice from one seed must yield bit-identical
per-CP statistics — any divergence means ambient entropy (set ordering,
unseeded RNG, wall clocks) leaked into the simulation."""

from __future__ import annotations

import dataclasses

from repro.faults import default_scenario, run_chaos
from repro.workloads import RandomOverwriteWorkload, fill_volumes

from ..conftest import small_ssd_sim


def test_chaos_same_seed_identical_cpstats():
    """The full chaos path — mount fallbacks, scrub, escalation,
    degraded allocation, rebuild — replayed from one seed."""
    m1, s1 = run_chaos(default_scenario(seed=77, quick=True))
    m2, s2 = run_chaos(default_scenario(seed=77, quick=True))
    assert dataclasses.asdict(m1) == dataclasses.asdict(m2)
    cps1, cps2 = s1.metrics.cps, s2.metrics.cps
    assert len(cps1) == len(cps2) and len(cps1) > 0
    for a, b in zip(cps1, cps2):
        assert a == b  # dataclass equality: every field, exact floats


def test_chaos_different_seed_diverges():
    """Sanity check on the test itself: a different seed must change
    *something* in the fault schedule or the workload."""
    sc1 = default_scenario(seed=77, quick=True)
    sc2 = default_scenario(seed=78, quick=True)
    _, s1 = run_chaos(sc1)
    _, s2 = run_chaos(sc2)
    assert s1.metrics.cps != s2.metrics.cps


def test_workload_same_seed_identical_cpstats():
    runs = []
    for _ in range(2):
        sim = small_ssd_sim()
        fill_volumes(sim)
        sim.run(RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=21), 6)
        runs.append(sim.metrics.cps)
    assert runs[0] == runs[1]
    assert len(runs[0]) > 0
