"""F802 unit typestate: unit tags crossing function boundaries into
differently-united parameters, bindings, and returns — the cases the
purely per-line U301 rule cannot see."""

from __future__ import annotations

from repro.analysis import deep_lint, lint_paths
from repro.analysis.flow import FlowConfig
from repro.analysis.flow.callgraph import build_graph, load_project
from repro.analysis.flow.unitflow import infer_return_units
from repro.analysis.rules import COMMITTED_IMAGE_ATTRS

CONFIG = FlowConfig(hot_root_modules=())


def f802(report):
    return [f for f in report.findings if f.rule == "F802"]


class TestCallSiteChecking:
    def test_blocks_into_bytes_parameter_cross_module(self, make_tree):
        # Each module is U301-clean on its own; only the call boundary
        # mixes units.
        root = make_tree({
            "app/geom.py": "def reserve(size_bytes):\n"
                           "    return size_bytes\n",
            "app/run.py": "from app.geom import reserve\n"
                          "def run():\n"
                          "    free_blocks = 12\n"
                          "    return reserve(free_blocks)\n",
        })
        assert lint_paths([root]) == []  # U301 is blind to this
        (finding,) = f802(deep_lint([root], CONFIG))
        assert finding.function == "app.run.run"
        assert "'size_bytes'" in finding.message
        assert finding.key == "app.geom.reserve:size_bytes:_blocks"

    def test_keyword_argument_mix(self, make_tree):
        root = make_tree({
            "app/geom.py": "def reserve(count, size_bytes=0):\n"
                           "    return size_bytes\n",
            "app/run.py": "from app.geom import reserve\n"
                          "def run(n_blocks):\n"
                          "    return reserve(1, size_bytes=n_blocks)\n",
        })
        (finding,) = f802(deep_lint([root], CONFIG))
        assert finding.key == "app.geom.reserve:size_bytes:_blocks"

    def test_method_call_skips_self(self, make_tree):
        root = make_tree({
            "app/mod.py": "class Pool:\n"
                          "    def grab(self, n_blocks):\n"
                          "        return n_blocks\n"
                          "def run():\n"
                          "    pool = Pool()\n"
                          "    chunk_bytes = 4096\n"
                          "    return pool.grab(chunk_bytes)\n",
        })
        (finding,) = f802(deep_lint([root], CONFIG))
        assert finding.key == "app.mod.Pool.grab:n_blocks:_bytes"

    def test_matching_units_are_clean(self, make_tree):
        root = make_tree({
            "app/geom.py": "def reserve(size_bytes):\n"
                           "    return size_bytes\n",
            "app/run.py": "from app.geom import reserve\n"
                          "def run():\n"
                          "    hdr_bytes = 24\n"
                          "    return reserve(hdr_bytes)\n",
        })
        assert f802(deep_lint([root], CONFIG)) == []

    def test_unitless_argument_is_clean(self, make_tree):
        root = make_tree({
            "app/geom.py": "def reserve(size_bytes):\n"
                           "    return size_bytes\n",
            "app/run.py": "from app.geom import reserve\n"
                          "def run(amount):\n"
                          "    return reserve(amount)\n",
        })
        assert f802(deep_lint([root], CONFIG)) == []


class TestReturnUnitInference:
    def _graph(self, make_tree, files):
        root = make_tree(files)
        project = load_project([root], COMMITTED_IMAGE_ATTRS)
        return build_graph(project)

    def test_fixpoint_propagates_through_return_chain(self, make_tree):
        graph = self._graph(make_tree, {
            "app/mod.py": "def leaf():\n"
                          "    elapsed_us = 5\n"
                          "    return elapsed_us\n"
                          "def mid():\n    return leaf()\n"
                          "def top():\n    return mid()\n",
        })
        units = infer_return_units(graph)
        assert units["app.mod.leaf"] == frozenset({"_us"})
        assert units["app.mod.mid"] == frozenset({"_us"})
        assert units["app.mod.top"] == frozenset({"_us"})

    def test_inferred_unit_feeds_call_site_check(self, make_tree):
        # run() passes latency() [us, two hops deep] into a _ms param.
        root = make_tree({
            "app/time.py": "def raw():\n"
                           "    delay_us = 9\n"
                           "    return delay_us\n"
                           "def latency():\n    return raw()\n",
            "app/sink.py": "def record(wait_ms):\n    return wait_ms\n",
            "app/run.py": "from app.sink import record\n"
                          "from app.time import latency\n"
                          "def run():\n"
                          "    return record(latency())\n",
        })
        assert lint_paths([root]) == []
        (finding,) = f802(deep_lint([root], CONFIG))
        assert finding.key == "app.sink.record:wait_ms:_us"

    def test_mixed_return_units_stay_ambiguous(self, make_tree):
        graph = self._graph(make_tree, {
            "app/mod.py": "def either(flag):\n"
                          "    n_blocks = 1\n"
                          "    n_bytes = 2\n"
                          "    if flag:\n        return n_blocks\n"
                          "    return n_bytes\n",
        })
        units = infer_return_units(graph)
        assert units["app.mod.either"] == frozenset({"_blocks", "_bytes"})


class TestAssignmentsAndSignatures:
    def test_binding_return_to_wrong_unit_name(self, make_tree):
        root = make_tree({
            "app/geom.py": "def free_blocks():\n"
                           "    n_blocks = 7\n"
                           "    return n_blocks\n",
            "app/run.py": "from app.geom import free_blocks\n"
                          "def run():\n"
                          "    total_bytes = free_blocks()\n"
                          "    return total_bytes\n",
        })
        assert lint_paths([root]) == []
        (finding,) = f802(deep_lint([root], CONFIG))
        assert finding.key == "assign:app.geom.free_blocks:_bytes"

    def test_function_name_contradicts_return_unit(self, make_tree):
        root = make_tree({
            "app/geom.py": "def capacity_bytes():\n"
                           "    n_blocks = 3\n"
                           "    return n_blocks\n",
        })
        (finding,) = f802(deep_lint([root], CONFIG))
        assert finding.function == "app.geom.capacity_bytes"
        assert finding.key == "return:_blocks"

    def test_converter_names_are_exempt(self, make_tree):
        # blocks_to_bytes *is* the conversion; its name ends in _bytes
        # while consuming blocks, and that is the point.
        root = make_tree({
            "app/units.py": "def blocks_to_bytes(n_blocks):\n"
                            "    return n_blocks * 4096\n",
        })
        assert f802(deep_lint([root], CONFIG)) == []

    def test_ambiguous_return_does_not_fire(self, make_tree):
        root = make_tree({
            "app/geom.py": "def either(flag):\n"
                           "    n_blocks = 1\n"
                           "    n_us = 2\n"
                           "    if flag:\n        return n_blocks\n"
                           "    return n_us\n",
            "app/run.py": "from app.geom import either\n"
                          "def run():\n"
                          "    total_bytes = either(True)\n"
                          "    return total_bytes\n",
        })
        assert f802(deep_lint([root], CONFIG)) == []
