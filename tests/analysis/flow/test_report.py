"""Deep-lint reporting: byte-identical JSON across runs (cold and warm
cache), deterministic finding order, and the dogfood gate — the shipped
tree must produce no finding that is not in the checked-in baseline."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.analysis import deep_lint
from repro.analysis.flow import (
    FlowConfig,
    default_baseline_path,
    load_baseline,
    report_to_json,
    split_findings,
)

CONFIG = FlowConfig(hot_root_modules=("app.hot",))

FILES = {
    "app/hot.py": "from app.util import stamp\n"
                  "def advance():\n    return stamp()\n",
    "app/util.py": "import time\n"
                   "def stamp():\n    return time.perf_counter()\n",
    "app/build.py": "def build_sim(n, seed=42):\n    return (n, seed)\n",
    "app/run.py": "from app.build import build_sim\n"
                  "def run(seed):\n    return build_sim(8)\n",
}


class TestDeterministicOutput:
    def test_json_is_byte_identical_across_runs(self, make_tree):
        root = make_tree(FILES)
        first = report_to_json(deep_lint([root], CONFIG))
        second = report_to_json(deep_lint([root], CONFIG))
        assert first == second

    def test_warm_cache_matches_cold_run(self, make_tree, tmp_path):
        root = make_tree(FILES)
        cache = tmp_path / "cache.json"
        cold = report_to_json(deep_lint([root], CONFIG, cache_path=cache))
        warm = report_to_json(deep_lint([root], CONFIG, cache_path=cache))
        assert cold == warm

    def test_findings_are_sorted(self, make_tree):
        report = deep_lint([make_tree(FILES)], CONFIG)
        keys = [(f.path, f.rule, f.line, f.fingerprint)
                for f in report.findings]
        assert keys == sorted(keys)

    def test_json_carries_no_volatile_fields(self, make_tree):
        doc = json.loads(report_to_json(deep_lint([make_tree(FILES)],
                                                  CONFIG)))
        assert set(doc) == {"version", "findings", "summary"}
        for f in doc["findings"]:
            assert "time" not in f and "timestamp" not in f


class TestDogfood:
    def test_shipped_tree_has_no_new_findings(self):
        pkg_dir = Path(repro.__file__).parent
        report = deep_lint([pkg_dir])
        baseline = load_baseline(default_baseline_path())
        diff = split_findings(list(report.findings), baseline)
        assert diff.ok, "\n".join(str(f) for f in diff.new)
        assert not diff.stale, diff.stale

    def test_every_waiver_is_justified(self):
        baseline = load_baseline(default_baseline_path())
        assert baseline, "dogfood baseline should exist"
        for fp, justification in baseline.items():
            assert justification.strip(), fp
            assert "unreviewed" not in justification, fp
