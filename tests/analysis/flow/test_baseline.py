"""The baseline ratchet: new findings fail, waived findings pass,
fixed findings leave stale waivers that --update-baseline prunes —
and justifications survive rewrites."""

from __future__ import annotations

import json

import pytest

from repro.analysis import deep_lint
from repro.analysis.flow import FlowConfig
from repro.analysis.flow.baseline import (
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.cli import main

CONFIG = FlowConfig(hot_root_modules=("app.hot",))

#: One F801: hot path reaches perf_counter.
DIRTY = {
    "app/hot.py": "from app.util import stamp\n"
                  "def advance():\n    return stamp()\n",
    "app/util.py": "import time\n"
                   "def stamp():\n    return time.perf_counter()\n",
}

CLEAN = {
    "app/hot.py": "from app.util import nop\n"
                  "def advance():\n    return nop()\n",
    "app/util.py": "def nop():\n    return 0\n",
}


class TestSplitAndWrite:
    def test_new_finding_fails_the_ratchet(self, make_tree):
        report = deep_lint([make_tree(DIRTY)], CONFIG)
        diff = split_findings(list(report.findings), {})
        assert not diff.ok
        assert len(diff.new) == 1 and not diff.waived and not diff.stale

    def test_baselined_finding_is_waived(self, make_tree, tmp_path):
        report = deep_lint([make_tree(DIRTY)], CONFIG)
        path = tmp_path / "baseline.json"
        write_baseline(path, list(report.findings))
        diff = split_findings(list(report.findings), load_baseline(path))
        assert diff.ok
        assert not diff.new and len(diff.waived) == 1 and not diff.stale

    def test_fingerprint_survives_line_shuffles(self, make_tree, tmp_path):
        report = deep_lint([make_tree(DIRTY)], CONFIG)
        path = tmp_path / "baseline.json"
        write_baseline(path, list(report.findings))
        # Unrelated edits move every line; the waiver must still hold.
        shifted = dict(DIRTY)
        shifted["app/util.py"] = (
            "import time\n\n\nHEADER = 1\n\n"
            "def stamp():\n    return time.perf_counter()\n"
        )
        root2 = make_tree(shifted)
        report2 = deep_lint([root2], CONFIG)
        diff = split_findings(list(report2.findings), load_baseline(path))
        assert diff.ok and len(diff.waived) == 1

    def test_fixed_finding_goes_stale_then_prunes(self, make_tree, tmp_path):
        report = deep_lint([make_tree(DIRTY)], CONFIG)
        path = tmp_path / "baseline.json"
        write_baseline(path, list(report.findings))
        root2 = make_tree(CLEAN)  # same tree root, violation fixed
        report2 = deep_lint([root2], CONFIG)
        diff = split_findings(list(report2.findings), load_baseline(path))
        assert diff.ok  # stale waivers never fail a run
        assert len(diff.stale) == 1
        write_baseline(path, list(report2.findings),
                       previous=load_baseline(path))
        assert load_baseline(path) == {}

    def test_justifications_are_preserved(self, make_tree, tmp_path):
        report = deep_lint([make_tree(DIRTY)], CONFIG)
        path = tmp_path / "baseline.json"
        write_baseline(path, list(report.findings))
        fp = report.findings[0].fingerprint
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["waivers"][0]["justification"] = "known reporting-only clock"
        path.write_text(json.dumps(doc), encoding="utf-8")
        write_baseline(path, list(report.findings),
                       previous=load_baseline(path))
        assert load_baseline(path)[fp] == "known reporting-only clock"

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_wrong_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "waivers": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)


class TestCliRatchet:
    """End-to-end through ``repro lint --deep``.

    The fixture tree deliberately has no hot modules matching the
    shipped FlowConfig, so only F804 (checked tree-wide) can fire.
    """

    FILES = {
        "app/build.py": "def build_sim(nblocks, seed=42):\n"
                        "    return (nblocks, seed)\n",
        "app/run.py": "from app.build import build_sim\n"
                      "def run(seed):\n"
                      "    return build_sim(1024)\n",
    }

    def _tree(self, make_tree):
        return str(make_tree(self.FILES))

    def test_unbaselined_finding_exits_nonzero(self, make_tree, capsys):
        assert main(["lint", "--deep", self._tree(make_tree),
                     "--cache", ""]) == 1
        out = capsys.readouterr().out
        assert "F804" in out

    def test_update_baseline_then_clean_run(self, make_tree, tmp_path,
                                            capsys):
        tree = self._tree(make_tree)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "--deep", tree, "--cache", "",
                     "--baseline", baseline, "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--deep", tree, "--cache", "",
                     "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "0 new, 1 waived" in out

    def test_new_violation_still_fails_with_baseline(self, make_tree,
                                                     tmp_path, capsys):
        tree = self._tree(make_tree)
        baseline = str(tmp_path / "baseline.json")
        main(["lint", "--deep", tree, "--cache", "",
              "--baseline", baseline, "--update-baseline"])
        files = dict(self.FILES)
        files["app/more.py"] = (
            "from app.build import build_sim\n"
            "def other(seed):\n"
            "    return build_sim(2048)\n"
        )
        tree2 = str(make_tree(files))
        capsys.readouterr()
        assert main(["lint", "--deep", tree2, "--cache", "",
                     "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "app.more.other" in out
        assert "FAIL THE RATCHET" in out

    def test_json_report_is_written(self, make_tree, tmp_path, capsys):
        tree = self._tree(make_tree)
        json_path = tmp_path / "deep.json"
        main(["lint", "--deep", tree, "--cache", "",
              "--json", str(json_path)])
        doc = json.loads(json_path.read_text(encoding="utf-8"))
        assert doc["summary"]["findings"] == 1
        assert doc["findings"][0]["rule"] == "F804"
