"""F804 seed threading: a function holding a seed or generator must
thread it into callees whose seed parameters would otherwise fall back
to a default and silently re-seed the subsystem."""

from __future__ import annotations

from repro.analysis import deep_lint, lint_paths
from repro.analysis.flow import FlowConfig

CONFIG = FlowConfig(hot_root_modules=())


def f804(report):
    return [f for f in report.findings if f.rule == "F804"]


class TestTruePositives:
    def test_dropped_seed_across_modules(self, make_tree):
        root = make_tree({
            "app/build.py": "def build_sim(nblocks, seed=42):\n"
                            "    return (nblocks, seed)\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def run(seed):\n"
                          "    return build_sim(1024)\n",
        })
        assert lint_paths([root]) == []  # no syntactic rule sees this
        (finding,) = f804(deep_lint([root], CONFIG))
        assert finding.function == "app.run.run"
        assert "'seed'" in finding.message
        assert finding.key == "app.build.build_sim"

    def test_local_rng_holder_counts(self, make_tree):
        root = make_tree({
            "app/build.py": "def shuffle(items, seed=7):\n"
                            "    return items\n",
            "app/run.py": "from app.build import shuffle\n"
                          "from repro.common.rng import make_rng\n"
                          "def run(items):\n"
                          "    rng = make_rng(3)\n"
                          "    rng.random()\n"
                          "    return shuffle(items)\n",
        })
        (finding,) = f804(deep_lint([root], CONFIG))
        assert "locally constructed rng" in finding.message

    def test_suffixed_seed_parameter_counts(self, make_tree):
        root = make_tree({
            "app/build.py": "def build(n, layout_seed=1):\n"
                            "    return (n, layout_seed)\n",
            "app/run.py": "from app.build import build\n"
                          "def run(sweep_seed):\n"
                          "    return build(4)\n",
        })
        (finding,) = f804(deep_lint([root], CONFIG))
        assert finding.key == "app.build.build"


class TestContractSatisfied:
    def test_seed_passed_by_keyword(self, make_tree):
        root = make_tree({
            "app/build.py": "def build_sim(nblocks, seed=42):\n"
                            "    return (nblocks, seed)\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def run(seed):\n"
                          "    return build_sim(1024, seed=seed)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []

    def test_seed_passed_positionally(self, make_tree):
        root = make_tree({
            "app/build.py": "def build_sim(seed=42):\n"
                            "    return seed\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def run(seed):\n"
                          "    return build_sim(seed)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []

    def test_explicit_constant_seed_is_deliberate(self, make_tree):
        # Pinning a canonical seed is visible at the call site and
        # reviewable; the contract only bans the silent default.
        root = make_tree({
            "app/build.py": "def build_sim(nblocks, seed=42):\n"
                            "    return (nblocks, seed)\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def run(seed):\n"
                          "    return build_sim(1024, seed=777)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []

    def test_threading_a_spawned_generator(self, make_tree):
        root = make_tree({
            "app/build.py": "def shuffle(items, rng=None):\n"
                            "    return items\n",
            "app/run.py": "from app.build import shuffle\n"
                          "from repro.common.rng import make_rng\n"
                          "def run(items):\n"
                          "    rng = make_rng(3)\n"
                          "    return shuffle(items, rng=rng)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []


class TestOutOfScope:
    def test_callee_without_seed_default_is_fine(self, make_tree):
        # A *required* seed parameter cannot silently default.
        root = make_tree({
            "app/build.py": "def build_sim(seed):\n"
                            "    return seed\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def run(seed):\n"
                          "    return build_sim(seed)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []

    def test_holderless_caller_is_fine(self, make_tree):
        # A caller with no seed in scope has nothing to thread; its
        # callee's default *is* the subsystem's seed.
        root = make_tree({
            "app/build.py": "def build_sim(nblocks, seed=42):\n"
                            "    return (nblocks, seed)\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def quick_demo():\n"
                          "    return build_sim(64)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []

    def test_star_args_are_not_second_guessed(self, make_tree):
        root = make_tree({
            "app/build.py": "def build_sim(nblocks, seed=42):\n"
                            "    return (nblocks, seed)\n",
            "app/run.py": "from app.build import build_sim\n"
                          "def run(seed, **kw):\n"
                          "    return build_sim(1024, **kw)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []

    def test_recursion_is_exempt(self, make_tree):
        root = make_tree({
            "app/run.py": "def run(depth, seed=9):\n"
                          "    if depth == 0:\n        return seed\n"
                          "    return run(depth - 1)\n",
        })
        assert f804(deep_lint([root], CONFIG)) == []
