"""F801 determinism taint: nondeterminism sources anywhere in the call
cone of a hot-path root, including laundering through modules, method
dispatch, and pool workers that per-line simlint cannot see."""

from __future__ import annotations

from repro.analysis import deep_lint, lint_paths
from repro.analysis.flow import FlowConfig


def hot(config_modules=("app.hot",), **kw):
    return FlowConfig(hot_root_modules=config_modules, **kw)


def f801(report):
    return [f for f in report.findings if f.rule == "F801"]


class TestTruePositives:
    def test_perf_counter_two_hops_from_hot_path(self, make_tree):
        # time.perf_counter is *allowed* by syntactic simlint (D103
        # permits it for bench timing), so only the flow pass can see
        # it leak into a simulation hot path.
        root = make_tree({
            "app/hot.py": "from app.util import stamp\n"
                          "def advance():\n    return stamp()\n",
            "app/util.py": "import time\n"
                           "def stamp():\n    return time.perf_counter()\n",
        })
        assert lint_paths([root]) == []  # simlint is blind to this
        report = deep_lint([root], hot())
        (finding,) = f801(report)
        assert finding.function == "app.util.stamp"
        assert "app.hot.advance" in finding.message
        assert finding.key == "wall-clock:time.perf_counter()"

    def test_trace_runs_root_to_source(self, make_tree):
        root = make_tree({
            "app/hot.py": "from app.mid import relay\n"
                          "def advance():\n    return relay()\n",
            "app/mid.py": "from app.leaf import noisy\n"
                          "def relay():\n    return noisy()\n",
            "app/leaf.py": "import time\n"
                           "def noisy():\n    return time.perf_counter_ns()\n",
        })
        (finding,) = f801(deep_lint([root], hot()))
        hops = [h.removeprefix("-> ").split(" ")[0] for h in finding.trace]
        assert hops == ["app.hot.advance", "app.mid.relay", "app.leaf.noisy"]
        # The last hop pins the source line in the source's own file.
        assert finding.trace[-1].endswith("leaf.py:3)")
        assert finding.line == 3

    def test_unseeded_rng_in_pool_worker(self, make_tree):
        # The worker only ever runs through submit(); no syntactic rule
        # connects it to the hot path.
        root = make_tree({
            "app/hot.py": "from app.work import worker\n"
                          "def advance(pool):\n"
                          "    return pool.submit(worker, 3)\n",
            "app/work.py": "import numpy as np\n"
                           "def worker(n):\n"
                           "    rng = np.random.default_rng()"
                           "  # simlint: disable=D102\n"
                           "    return rng.random()\n",
        })
        assert lint_paths([root]) == []
        (finding,) = f801(deep_lint([root], hot()))
        assert finding.function == "app.work.worker"
        assert finding.key.startswith("unseeded-rng:")

    def test_source_through_method_dispatch(self, make_tree):
        root = make_tree({
            "app/hot.py": "from app.eng import Engine\n"
                          "def advance():\n"
                          "    eng = Engine()\n"
                          "    return eng.tick()\n",
            "app/eng.py": "import os\n"
                          "class Engine:\n"
                          "    def __init__(self):\n        self.n = 0\n"
                          "    def tick(self):\n"
                          "        return os.urandom(4)\n",
        })
        (finding,) = f801(deep_lint([root], hot()))
        assert finding.function == "app.eng.Engine.tick"
        assert finding.key == "entropy:os.urandom()"


class TestNegatives:
    def test_source_outside_the_cone_is_ignored(self, make_tree):
        root = make_tree({
            "app/hot.py": "def advance():\n    return 1\n",
            "app/bench.py": "import time\n"
                            "def measure():\n    return time.perf_counter()\n",
        })
        assert f801(deep_lint([root], hot())) == []

    def test_clean_cone_is_clean(self, make_tree):
        root = make_tree({
            "app/hot.py": "from app.util import double\n"
                          "def advance():\n    return double(2)\n",
            "app/util.py": "def double(n):\n    return 2 * n\n",
        })
        assert f801(deep_lint([root], hot())) == []

    def test_purity_whitelist_suppresses_with_justification(self, make_tree):
        root = make_tree({
            "app/hot.py": "from app.util import stamp\n"
                          "def advance():\n    return stamp()\n",
            "app/util.py": "import time\n"
                           "def stamp():\n    return time.perf_counter()\n",
        })
        config = hot(pure_fqns={"app.util.stamp": "reporting only"})
        assert f801(deep_lint([root], config)) == []

    def test_whitelist_does_not_leak_to_other_functions(self, make_tree):
        root = make_tree({
            "app/hot.py": "from app.util import stamp, stamp2\n"
                          "def advance():\n    return stamp() + stamp2()\n",
            "app/util.py": "import time\n"
                           "def stamp():\n    return time.perf_counter()\n"
                           "def stamp2():\n    return time.perf_counter()\n",
        })
        config = hot(pure_fqns={"app.util.stamp": "reporting only"})
        (finding,) = f801(deep_lint([root], config))
        assert finding.function == "app.util.stamp2"

    def test_hot_root_fqns_extend_the_roots(self, make_tree):
        root = make_tree({
            "app/misc.py": "import time\n"
                           "def special():\n    return time.process_time()\n",
        })
        assert f801(deep_lint([root], hot(()))) == []
        config = FlowConfig(hot_root_modules=(),
                            hot_root_fqns=("app.misc.special",))
        (finding,) = f801(deep_lint([root], config))
        assert finding.function == "app.misc.special"
