"""Fixture-tree helpers for the flow-analyzer tests.

Each test builds a tiny synthetic package under ``tmp_path`` (with
``__init__.py`` chains so modules get real dotted names), then runs
:func:`repro.analysis.deep_lint` over it with a :class:`FlowConfig`
pointing at the toy modules.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.flow.callgraph import build_graph, load_project
from repro.analysis.rules import COMMITTED_IMAGE_ATTRS


@pytest.fixture()
def make_tree(tmp_path):
    """Write ``{relpath: source}`` files (creating ``__init__.py`` in
    every package directory) and return the tree root."""

    def _make(files: dict[str, str]) -> Path:
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            d = path.parent
            while d != tmp_path:
                (d / "__init__.py").touch()
                d = d.parent
            path.write_text(source, encoding="utf-8")
        return tmp_path

    return _make


@pytest.fixture()
def make_graph(make_tree):
    """Build a fixture tree and return its resolved call graph."""

    def _make(files: dict[str, str]):
        root = make_tree(files)
        project = load_project([root], COMMITTED_IMAGE_ATTRS)
        return build_graph(project)

    return _make


def edge_pairs(graph) -> set[tuple[str, str, str]]:
    """Every (caller, callee, kind) triple in the graph."""
    return {
        (e.caller, e.callee, e.kind)
        for edges in graph.edges.values()
        for e in edges
    }
