"""Call-graph construction: symbol extraction, import canonicalization,
method dispatch through the class hierarchy, indirect edges (partials,
pool submissions, process targets), and the content-hash cache."""

from __future__ import annotations

import json

from repro.analysis.flow.callgraph import (
    CACHE_VERSION,
    build_graph,
    load_project,
)
from repro.analysis.rules import COMMITTED_IMAGE_ATTRS

from .conftest import edge_pairs


class TestResolution:
    def test_same_module_call(self, make_graph):
        graph = make_graph({
            "app/mod.py": "def helper():\n    return 1\n"
                          "def run():\n    return helper()\n",
        })
        assert ("app.mod.run", "app.mod.helper", "direct") in edge_pairs(graph)

    def test_cross_module_from_import(self, make_graph):
        graph = make_graph({
            "app/util.py": "def helper():\n    return 1\n",
            "app/hot.py": "from app.util import helper\n"
                          "def run():\n    return helper()\n",
        })
        assert ("app.hot.run", "app.util.helper", "direct") in edge_pairs(graph)

    def test_relative_import_canonicalizes(self, make_graph):
        graph = make_graph({
            "app/util.py": "def helper():\n    return 1\n",
            "app/hot.py": "from .util import helper\n"
                          "def run():\n    return helper()\n",
        })
        assert ("app.hot.run", "app.util.helper", "direct") in edge_pairs(graph)

    def test_module_attribute_call(self, make_graph):
        graph = make_graph({
            "app/util.py": "def helper():\n    return 1\n",
            "app/hot.py": "from app import util\n"
                          "def run():\n    return util.helper()\n",
        })
        assert ("app.hot.run", "app.util.helper", "direct") in edge_pairs(graph)

    def test_constructor_resolves_to_init(self, make_graph):
        graph = make_graph({
            "app/mod.py": "class Engine:\n"
                          "    def __init__(self):\n        self.x = 1\n"
                          "def run():\n    return Engine()\n",
        })
        assert (
            "app.mod.run", "app.mod.Engine.__init__", "direct"
        ) in edge_pairs(graph)

    def test_unresolved_external_calls_counted(self, make_graph):
        graph = make_graph({
            "app/mod.py": "import math\n"
                          "def run():\n    return math.sqrt(4)\n",
        })
        assert graph.unresolved == 1
        assert edge_pairs(graph) == set()


class TestMethodDispatch:
    def test_self_call_resolves_within_class(self, make_graph):
        graph = make_graph({
            "app/mod.py": "class C:\n"
                          "    def helper(self):\n        return 1\n"
                          "    def run(self):\n        return self.helper()\n",
        })
        assert (
            "app.mod.C.run", "app.mod.C.helper", "direct"
        ) in edge_pairs(graph)

    def test_self_call_resolves_through_inheritance(self, make_graph):
        graph = make_graph({
            "app/base.py": "class Base:\n"
                           "    def helper(self):\n        return 1\n",
            "app/sub.py": "from app.base import Base\n"
                          "class Sub(Base):\n"
                          "    def run(self):\n        return self.helper()\n",
        })
        assert (
            "app.sub.Sub.run", "app.base.Base.helper", "direct"
        ) in edge_pairs(graph)

    def test_virtual_dispatch_includes_overrides(self, make_graph):
        graph = make_graph({
            "app/mod.py": "class Base:\n"
                          "    def step(self):\n        return 0\n"
                          "    def run(self):\n        return self.step()\n"
                          "class Sub(Base):\n"
                          "    def step(self):\n        return 1\n",
        })
        pairs = edge_pairs(graph)
        assert ("app.mod.Base.run", "app.mod.Base.step", "direct") in pairs
        assert ("app.mod.Base.run", "app.mod.Sub.step", "direct") in pairs

    def test_locally_typed_receiver(self, make_graph):
        graph = make_graph({
            "app/mod.py": "class Engine:\n"
                          "    def tick(self):\n        return 1\n"
                          "def run():\n"
                          "    eng = Engine()\n"
                          "    return eng.tick()\n",
        })
        assert (
            "app.mod.run", "app.mod.Engine.tick", "direct"
        ) in edge_pairs(graph)

    def test_cha_fallback_on_unknown_receiver(self, make_graph):
        graph = make_graph({
            "app/mod.py": "class Engine:\n"
                          "    def advance_cp(self):\n        return 1\n"
                          "def run(eng):\n    return eng.advance_cp()\n",
        })
        assert (
            "app.mod.run", "app.mod.Engine.advance_cp", "direct"
        ) in edge_pairs(graph)

    def test_cha_stoplist_suppresses_generic_names(self, make_graph):
        graph = make_graph({
            "app/mod.py": "class Bag:\n"
                          "    def append(self, x):\n        return x\n"
                          "def run(items):\n    items.append(1)\n",
        })
        # ``.append`` on an unknown receiver is almost surely a list.
        assert edge_pairs(graph) == set()


class TestIndirectEdges:
    def test_functools_partial(self, make_graph):
        graph = make_graph({
            "app/mod.py": "from functools import partial\n"
                          "def worker(n):\n    return n\n"
                          "def run():\n    return partial(worker, 3)\n",
        })
        assert ("app.mod.run", "app.mod.worker", "partial") in edge_pairs(graph)

    def test_executor_submit(self, make_graph):
        graph = make_graph({
            "app/mod.py": "def worker(n):\n    return n\n"
                          "def run(pool):\n    return pool.submit(worker, 3)\n",
        })
        assert ("app.mod.run", "app.mod.worker", "submit") in edge_pairs(graph)

    def test_pool_map(self, make_graph):
        graph = make_graph({
            "app/mod.py": "def worker(n):\n    return n\n"
                          "def run(pool):\n    return pool.map(worker, [1])\n",
        })
        assert ("app.mod.run", "app.mod.worker", "submit") in edge_pairs(graph)

    def test_process_target(self, make_graph):
        graph = make_graph({
            "app/mod.py": "from multiprocessing import Process\n"
                          "def worker():\n    return 1\n"
                          "def run():\n"
                          "    return Process(target=worker)\n",
        })
        assert ("app.mod.run", "app.mod.worker", "target") in edge_pairs(graph)


class TestCache:
    FILES = {
        "app/mod.py": "def helper():\n    return 1\n"
                      "def run():\n    return helper()\n",
    }

    def _load(self, root, cache):
        project = load_project([root], COMMITTED_IMAGE_ATTRS,
                               cache_path=cache)
        return build_graph(project)

    def test_warm_run_matches_cold_run(self, make_tree, tmp_path):
        root = make_tree(self.FILES)
        cache = tmp_path / "cache.json"
        cold = self._load(root, cache)
        assert cache.exists()
        warm = self._load(root, cache)
        assert edge_pairs(cold) == edge_pairs(warm)
        assert set(warm.project.functions) == set(cold.project.functions)

    def test_cache_file_is_versioned(self, make_tree, tmp_path):
        root = make_tree(self.FILES)
        cache = tmp_path / "cache.json"
        self._load(root, cache)
        doc = json.loads(cache.read_text(encoding="utf-8"))
        assert doc["version"] == CACHE_VERSION
        assert all("sha256" in e for e in doc["entries"].values())

    def test_edit_invalidates_only_that_entry(self, make_tree, tmp_path):
        root = make_tree(self.FILES)
        cache = tmp_path / "cache.json"
        self._load(root, cache)
        (root / "app" / "mod.py").write_text(
            "def helper():\n    return 1\n"
            "def helper2():\n    return 2\n"
            "def run():\n    return helper2()\n",
            encoding="utf-8",
        )
        graph = self._load(root, cache)
        pairs = edge_pairs(graph)
        assert ("app.mod.run", "app.mod.helper2", "direct") in pairs
        assert ("app.mod.run", "app.mod.helper", "direct") not in pairs

    def test_corrupt_cache_is_ignored(self, make_tree, tmp_path):
        root = make_tree(self.FILES)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        graph = self._load(root, cache)
        assert ("app.mod.run", "app.mod.helper", "direct") in edge_pairs(graph)
