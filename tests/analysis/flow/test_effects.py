"""F803 commit-path effects: committed-image writes are legal only on
call paths rooted at the sanctioned commit entry points.  The key true
positive is the "mutate via helper" hole: a helper *inside* the
sanctioned file is C601-clean syntactically, but becomes a launder
path the moment unsanctioned code can call it."""

from __future__ import annotations

from repro.analysis import deep_lint, lint_paths
from repro.analysis.flow import FlowConfig


def f803(report):
    return [f for f in report.findings if f.rule == "F803"]


#: Only the commit() entry point is sanctioned — not the whole module.
STRICT = FlowConfig(
    hot_root_modules=(),
    sanctioned_commit_modules=(),
    sanctioned_commit_fqns=("repro.crash.persistence.Model.commit",),
)

#: The persistence file, with a helper any code can call.  Its path
#: makes every write C601-clean for syntactic simlint.
PERSISTENCE = (
    "class Model:\n"
    "    def commit(self, image):\n"
    "        self.committed = image\n"
    "    def sneak_write(self, image):\n"
    "        self.committed = image\n"
)


class TestLaunderPathDetection:
    def test_helper_in_sanctioned_file_reached_from_outside(self, make_tree):
        root = make_tree({
            "repro/crash/persistence.py": PERSISTENCE,
            "repro/app.py": "from repro.crash.persistence import Model\n"
                            "def tamper(image):\n"
                            "    m = Model()\n"
                            "    m.sneak_write(image)\n",
        })
        # Syntactic C601 trusts the persistence.py path wholesale.
        assert lint_paths([root]) == []
        (finding,) = f803(deep_lint([root], STRICT))
        assert finding.function == "repro.crash.persistence.Model.sneak_write"
        assert "'repro.app.tamper'" in finding.message
        assert finding.key == "committed:repro.app.tamper"

    def test_cross_module_chain_names_the_entry_point(self, make_tree):
        root = make_tree({
            "repro/crash/persistence.py": PERSISTENCE,
            "repro/mid.py": "from repro.crash.persistence import Model\n"
                            "def relay(m, image):\n"
                            "    m.sneak_write(image)\n",
            "repro/app.py": "from repro.mid import relay\n"
                            "def outer(m, image):\n"
                            "    relay(m, image)\n",
        })
        (finding,) = f803(deep_lint([root], STRICT))
        assert finding.key == "committed:repro.app.outer"
        hops = [h.removeprefix("-> ").split(" ")[0] for h in finding.trace]
        assert hops == [
            "repro.app.outer",
            "repro.mid.relay",
            "repro.crash.persistence.Model.sneak_write",
        ]

    def test_writer_outside_sanctioned_tree(self, make_tree):
        config = FlowConfig(
            hot_root_modules=(),
            sanctioned_commit_modules=("app.persist",),
        )
        root = make_tree({
            "app/state.py": "def clobber(model, image):\n"
                            "    model.committed = image"
                            "  # simlint: disable=C601\n",
            "app/main.py": "from app.state import clobber\n"
                           "def run(model, image):\n"
                           "    clobber(model, image)\n",
        })
        (finding,) = f803(deep_lint([root], config))
        assert finding.function == "app.state.clobber"
        assert finding.key == "committed:app.main.run"


class TestSanctionedPaths:
    def test_commit_entry_point_itself_is_trusted(self, make_tree):
        root = make_tree({
            "repro/crash/persistence.py": (
                "class Model:\n"
                "    def commit(self, image):\n"
                "        self.committed = image\n"
            ),
            "repro/app.py": "from repro.crash.persistence import Model\n"
                            "def run(image):\n"
                            "    m = Model()\n"
                            "    m.commit(image)\n",
        })
        assert f803(deep_lint([root], STRICT)) == []

    def test_helper_called_only_through_commit(self, make_tree):
        # commit() -> _install() is a path *through* the sanctioned
        # entry: reach_up must stop climbing there.
        root = make_tree({
            "repro/crash/persistence.py": (
                "class Model:\n"
                "    def commit(self, image):\n"
                "        self._install(image)\n"
                "    def _install(self, image):\n"
                "        self.committed = image\n"
            ),
            "repro/app.py": "from repro.crash.persistence import Model\n"
                            "def run(image):\n"
                            "    m = Model()\n"
                            "    m.commit(image)\n",
        })
        assert f803(deep_lint([root], STRICT)) == []

    def test_mixed_paths_still_flag_the_unsanctioned_entry(self, make_tree):
        root = make_tree({
            "repro/crash/persistence.py": (
                "class Model:\n"
                "    def commit(self, image):\n"
                "        self._install(image)\n"
                "    def _install(self, image):\n"
                "        self.committed = image\n"
            ),
            "repro/app.py": "from repro.crash.persistence import Model\n"
                            "def bypass(m, image):\n"
                            "    m._install(image)\n",
        })
        (finding,) = f803(deep_lint([root], STRICT))
        assert finding.key == "committed:repro.app.bypass"

    def test_whole_sanctioned_module_is_trusted_by_default(self, make_tree):
        # Matches the shipped config: any writer inside the sanctioned
        # *module* is trusted, however it is reached.
        config = FlowConfig(
            hot_root_modules=(),
            sanctioned_commit_modules=("repro.crash.persistence",),
        )
        root = make_tree({
            "repro/crash/persistence.py": PERSISTENCE,
            "repro/app.py": "from repro.crash.persistence import Model\n"
                            "def tamper(m, image):\n"
                            "    m.sneak_write(image)\n",
        })
        assert f803(deep_lint([root], config)) == []
