"""Property-based tests: the bitmap agrees with a reference set model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import Bitmap

NBLOCKS = 512

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free", "set_range", "clear_range"]),
        st.integers(0, NBLOCKS - 1),
        st.integers(1, 64),
    ),
    max_size=40,
)


@given(ops=ops_strategy)
@settings(max_examples=200, deadline=None)
def test_bitmap_matches_reference_set(ops):
    bm = Bitmap(NBLOCKS)
    ref: set[int] = set()
    for kind, start, length in ops:
        stop = min(start + length, NBLOCKS)
        if kind == "alloc":
            vbns = np.array([v for v in range(start, stop) if v not in ref], dtype=np.int64)
            bm.allocate(vbns)
            ref.update(vbns.tolist())
        elif kind == "free":
            vbns = np.array([v for v in range(start, stop) if v in ref], dtype=np.int64)
            bm.free(vbns)
            ref.difference_update(vbns.tolist())
        elif kind == "set_range":
            got = bm.set_range(start, stop)
            expect = len([v for v in range(start, stop) if v not in ref])
            assert got == expect
            ref.update(range(start, stop))
        else:
            got = bm.clear_range(start, stop)
            expect = len([v for v in range(start, stop) if v in ref])
            assert got == expect
            ref.difference_update(range(start, stop))
        # Global invariants after every step.
        assert bm.allocated_count == len(ref)
        assert bm.free_count == NBLOCKS - len(ref)

    # Final deep comparison.
    all_v = np.arange(NBLOCKS)
    expect_mask = np.array([v in ref for v in range(NBLOCKS)])
    assert np.array_equal(bm.test(all_v), expect_mask)


@given(
    allocated=st.sets(st.integers(0, NBLOCKS - 1), max_size=100),
    start=st.integers(0, NBLOCKS),
    length=st.integers(0, NBLOCKS),
)
@settings(max_examples=200, deadline=None)
def test_count_and_search_consistency(allocated, start, length):
    stop = min(start + length, NBLOCKS)
    bm = Bitmap(NBLOCKS)
    bm.allocate(np.array(sorted(allocated), dtype=np.int64))
    expected_alloc = [v for v in range(start, stop) if v in allocated]
    expected_free = [v for v in range(start, stop) if v not in allocated]
    assert bm.count_range(start, stop) == len(expected_alloc)
    assert bm.allocated_in_range(start, stop).tolist() == expected_alloc
    assert bm.free_in_range(start, stop).tolist() == expected_free


@given(
    allocated=st.sets(st.integers(0, NBLOCKS - 1), max_size=200),
    chunk=st.sampled_from([8, 16, 32, 64, 128, 256, 512]),
)
@settings(max_examples=100, deadline=None)
def test_counts_per_chunk_partition(allocated, chunk):
    bm = Bitmap(NBLOCKS)
    bm.allocate(np.array(sorted(allocated), dtype=np.int64))
    counts = bm.counts_per_chunk(chunk)
    assert counts.size == NBLOCKS // chunk
    assert counts.sum() == len(allocated)
    for i, c in enumerate(counts):
        assert c == len([v for v in allocated if i * chunk <= v < (i + 1) * chunk])
