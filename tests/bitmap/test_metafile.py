"""Unit tests for bitmap metafiles (dirty-block accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import BitmapMetafile
from repro.common import BITS_PER_BITMAP_BLOCK


class TestGeometry:
    def test_block_count(self):
        mf = BitmapMetafile(BITS_PER_BITMAP_BLOCK * 3)
        assert mf.metafile_block_count == 3

    def test_block_count_rounds_up(self):
        mf = BitmapMetafile(BITS_PER_BITMAP_BLOCK + 8)
        assert mf.metafile_block_count == 2

    def test_custom_bits_per_block(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        assert mf.metafile_block_count == 4

    def test_rejects_bad_bits_per_block(self):
        with pytest.raises(ValueError):
            BitmapMetafile(1024, bits_per_block=10)


class TestDirtyTracking:
    def test_allocate_dirties_owning_blocks(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        mf.allocate(np.array([0, 255]))  # same metafile block
        assert mf.dirty_block_count == 1
        mf.allocate(np.array([256]))  # next block
        assert mf.dirty_block_count == 2

    def test_free_dirties_too(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        mf.allocate(np.array([700]))
        mf.drain_dirty()
        mf.free(np.array([700]))
        assert mf.dirty_block_count == 1

    def test_drain_resets_and_accumulates(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        mf.allocate(np.array([0, 300, 900]))
        assert mf.drain_dirty() == 3
        assert mf.dirty_block_count == 0
        assert mf.blocks_dirtied_total == 3
        assert mf.cp_drains == 1
        mf.allocate(np.array([1]))
        assert mf.drain_dirty() == 1
        assert mf.blocks_dirtied_total == 4

    def test_colocated_updates_touch_one_block(self):
        """The section 2.5 motivation: colocated allocations dirty a
        single metafile block."""
        mf = BitmapMetafile(BITS_PER_BITMAP_BLOCK * 4)
        mf.allocate(np.arange(1000))
        assert mf.dirty_block_count == 1

    def test_scattered_updates_touch_many_blocks(self):
        mf = BitmapMetafile(BITS_PER_BITMAP_BLOCK * 4)
        mf.allocate(np.arange(4) * BITS_PER_BITMAP_BLOCK)
        assert mf.dirty_block_count == 4

    def test_range_ops_dirty_covered_blocks(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        mf.set_range(200, 600)
        assert mf.dirty_block_count == 3  # blocks 0, 1, 2
        mf.drain_dirty()
        mf.clear_range(250, 260)
        assert mf.dirty_block_count == 2

    def test_scan_read_accounting(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        assert mf.note_scan_read() == 4
        assert mf.note_scan_read(2) == 2
        assert mf.blocks_read_total == 6


class TestDelegation:
    def test_free_count(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        mf.allocate(np.arange(100))
        assert mf.free_count == 924
        assert mf.nblocks == 1024

    def test_empty_batch_no_dirty(self):
        mf = BitmapMetafile(1024, bits_per_block=256)
        mf.allocate(np.empty(0, dtype=np.int64))
        assert mf.dirty_block_count == 0
