"""Unit tests for the delayed-free log and its HBPS prioritization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import BitmapMetafile
from repro.core import DelayedFreeLog


def make_pair(nblocks=4096, bits=256):
    mf = BitmapMetafile(nblocks, bits_per_block=bits)
    log = DelayedFreeLog(bits_per_block=bits)
    return mf, log


class TestLogging:
    def test_pending_counts(self):
        mf, log = make_pair()
        mf.allocate(np.array([1, 2, 300, 600]))
        log.add(np.array([1, 2, 300]))
        assert log.pending_count == 3
        assert log.pending_blocks == 2  # blocks 0 and 1
        assert log.total_logged == 3

    def test_empty_add_is_noop(self):
        _, log = make_pair()
        log.add(np.empty(0, dtype=np.int64))
        assert log.pending_count == 0

    def test_multiple_adds_accumulate(self):
        mf, log = make_pair()
        mf.allocate(np.arange(100))
        log.add(np.arange(50))
        log.add(np.arange(50, 100))
        assert log.pending_count == 100
        assert log.pending_blocks == 1


class TestApplyAll:
    def test_apply_all_frees_everything(self):
        mf, log = make_pair()
        vbns = np.array([5, 600, 2000])
        mf.allocate(vbns)
        log.add(vbns)
        freed = log.apply_all(mf)
        assert sorted(freed.tolist()) == sorted(vbns.tolist())
        assert mf.free_count == mf.nblocks
        assert log.pending_count == 0

    def test_apply_all_empty(self):
        mf, log = make_pair()
        assert log.apply_all(mf).size == 0

    def test_batched_frees_amortize_metafile_updates(self):
        """Frees to the same metafile block applied together dirty it
        once — the point of delaying (paper section 3.3)."""
        mf, log = make_pair()
        mf.allocate(np.arange(200))
        mf.drain_dirty()
        log.add(np.arange(0, 200, 2))
        log.apply_all(mf)
        assert mf.dirty_block_count == 1


class TestApplyBest:
    def test_prefers_fullest_blocks(self):
        """HBPS prioritization: the metafile block with the most
        pending frees is processed first."""
        mf, log = make_pair()
        few = np.array([0, 1])            # block 0: 2 pending
        many = np.arange(256, 356)        # block 1: 100 pending
        mf.allocate(np.concatenate([few, many]))
        log.add(few)
        log.add(many)
        freed = log.apply_best(mf, max_blocks=1)
        assert freed.size == 100
        assert log.pending_count == 2
        assert log.pending_blocks == 1

    def test_apply_best_drains_eventually(self):
        mf, log = make_pair()
        vbns = np.concatenate([np.arange(0, 10), np.arange(256, 356), np.arange(512, 530)])
        mf.allocate(vbns)
        log.add(vbns)
        total = 0
        while log.pending_count:
            total += log.apply_best(mf, max_blocks=1).size
        assert total == vbns.size
        assert mf.free_count == mf.nblocks

    def test_apply_best_respects_budget(self):
        mf, log = make_pair()
        vbns = np.concatenate([np.arange(0, 10), np.arange(256, 266), np.arange(512, 522)])
        mf.allocate(vbns)
        log.add(vbns)
        log.apply_best(mf, max_blocks=2)
        assert log.pending_blocks == 1

    def test_hbps_tracks_block_scores(self):
        mf, log = make_pair()
        mf.allocate(np.arange(0, 50))
        log.add(np.arange(0, 50))
        assert log.hbps.total_count == 1
        log.hbps.check_invariants()
