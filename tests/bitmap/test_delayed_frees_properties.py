"""Property-based tests for the delayed-free log."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import BitmapMetafile
from repro.core import DelayedFreeLog

NBLOCKS = 2048
BITS = 256


@st.composite
def free_batches(draw):
    """Disjoint batches of VBNs to log as frees."""
    universe = list(range(NBLOCKS))
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)
    n_batches = draw(st.integers(1, 6))
    total = draw(st.integers(1, NBLOCKS))
    chosen = rng.choice(NBLOCKS, size=total, replace=False)
    splits = np.sort(rng.integers(0, total + 1, size=n_batches - 1)) if n_batches > 1 else []
    return [np.asarray(b, dtype=np.int64) for b in np.split(chosen, splits)]


@given(batches=free_batches(), budgets=st.lists(st.integers(1, 4), min_size=1, max_size=50))
@settings(max_examples=150, deadline=None)
def test_apply_best_frees_everything_exactly_once(batches, budgets):
    mf = BitmapMetafile(NBLOCKS, bits_per_block=BITS)
    all_vbns = np.concatenate(batches)
    mf.allocate(all_vbns)
    log = DelayedFreeLog(bits_per_block=BITS)
    for b in batches:
        log.add(b)
    assert log.pending_count == all_vbns.size

    freed: list[int] = []
    i = 0
    while log.pending_count:
        budget = budgets[i % len(budgets)]
        i += 1
        chunk = log.apply_best(mf, budget)
        freed.extend(chunk.tolist())
        log.hbps.check_invariants()
        if i > 200:
            raise AssertionError("did not drain")
    assert sorted(freed) == sorted(all_vbns.tolist())
    assert mf.free_count == NBLOCKS


@given(batches=free_batches())
@settings(max_examples=100, deadline=None)
def test_apply_best_priority_is_densest_first(batches):
    """The first budgeted application always picks (one of) the
    metafile blocks with the most pending frees."""
    mf = BitmapMetafile(NBLOCKS, bits_per_block=BITS)
    all_vbns = np.concatenate(batches)
    mf.allocate(all_vbns)
    log = DelayedFreeLog(bits_per_block=BITS)
    for b in batches:
        log.add(b)
    per_block: dict[int, int] = {}
    for v in all_vbns.tolist():
        per_block[v // BITS] = per_block.get(v // BITS, 0) + 1
    best = max(per_block.values())
    first = log.apply_best(mf, 1)
    # HBPS guarantees within one bin width of the densest block.
    bin_width = max(BITS // 32, 1)
    assert first.size >= best - bin_width


@given(batches=free_batches())
@settings(max_examples=100, deadline=None)
def test_apply_all_equals_apply_best_union(batches):
    mf1 = BitmapMetafile(NBLOCKS, bits_per_block=BITS)
    mf2 = BitmapMetafile(NBLOCKS, bits_per_block=BITS)
    all_vbns = np.concatenate(batches)
    mf1.allocate(all_vbns)
    mf2.allocate(all_vbns)
    log1 = DelayedFreeLog(bits_per_block=BITS)
    log2 = DelayedFreeLog(bits_per_block=BITS)
    for b in batches:
        log1.add(b)
        log2.add(b)
    a = log1.apply_all(mf1)
    parts = []
    while log2.pending_count:
        parts.append(log2.apply_best(mf2, 2))
    b = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    assert sorted(a.tolist()) == sorted(b.tolist())
    assert np.array_equal(mf1.bitmap.raw_bytes, mf2.bitmap.raw_bytes)
