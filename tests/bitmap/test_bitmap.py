"""Unit tests for the NumPy-backed allocation bitmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import Bitmap
from repro.common import BitmapError


class TestConstruction:
    def test_starts_empty(self):
        bm = Bitmap(64)
        assert bm.allocated_count == 0
        assert bm.free_count == 64
        assert bm.nblocks == 64

    @pytest.mark.parametrize("n", [0, -8, 7, 12, 33])
    def test_rejects_bad_sizes(self, n):
        with pytest.raises(ValueError):
            Bitmap(n)

    def test_large_bitmap(self):
        bm = Bitmap(1 << 20)
        assert bm.free_count == 1 << 20


class TestAllocateFree:
    def test_allocate_sets_bits(self):
        bm = Bitmap(64)
        bm.allocate(np.array([0, 7, 8, 63]))
        assert bm.allocated_count == 4
        assert bm.test(np.array([0, 7, 8, 63])).all()
        assert not bm.test(np.array([1, 6, 9, 62])).any()

    def test_free_clears_bits(self):
        bm = Bitmap(64)
        bm.allocate(np.array([3, 4, 5]))
        bm.free(np.array([4]))
        assert bm.allocated_count == 2
        assert not bm.test(4)[0]
        assert bm.test(3)[0] and bm.test(5)[0]

    def test_double_allocate_raises(self):
        bm = Bitmap(64)
        bm.allocate(np.array([5]))
        with pytest.raises(BitmapError, match="double allocation"):
            bm.allocate(np.array([5]))

    def test_double_free_raises(self):
        bm = Bitmap(64)
        with pytest.raises(BitmapError, match="double free"):
            bm.free(np.array([5]))

    def test_out_of_range_raises(self):
        bm = Bitmap(64)
        with pytest.raises(BitmapError, match="out of range"):
            bm.allocate(np.array([64]))
        with pytest.raises(BitmapError, match="out of range"):
            bm.allocate(np.array([-1]))

    def test_empty_batch_is_noop(self):
        bm = Bitmap(64)
        bm.allocate(np.empty(0, dtype=np.int64))
        bm.free(np.empty(0, dtype=np.int64))
        assert bm.allocated_count == 0

    def test_unchecked_mode_skips_validation(self):
        bm = Bitmap(64, check=False)
        bm.allocate(np.array([5]))
        bm.allocate(np.array([5]))  # silently tolerated
        assert bm.test(5)[0]

    def test_same_byte_batch(self):
        """Duplicate byte indices in one batch must all apply."""
        bm = Bitmap(64)
        bm.allocate(np.array([0, 1, 2, 3, 4, 5, 6, 7]))
        assert bm.allocated_count == 8
        assert bm.count_range(0, 8) == 8


class TestRanges:
    def test_set_range_counts_transitions(self):
        bm = Bitmap(64)
        bm.allocate(np.array([10]))
        assert bm.set_range(8, 16) == 7  # 10 was already set
        assert bm.allocated_count == 8

    def test_clear_range_counts_transitions(self):
        bm = Bitmap(64)
        bm.set_range(0, 32)
        assert bm.clear_range(16, 48) == 16
        assert bm.allocated_count == 16

    def test_unaligned_ranges(self):
        bm = Bitmap(64)
        bm.set_range(3, 21)
        assert bm.allocated_count == 18
        assert bm.count_range(3, 21) == 18
        assert bm.count_range(0, 3) == 0
        assert bm.count_range(21, 64) == 0

    def test_range_within_one_byte(self):
        bm = Bitmap(64)
        bm.set_range(2, 5)
        assert bm.count_range(2, 5) == 3
        assert bm.count_range(0, 8) == 3
        assert bm.count_range(3, 4) == 1

    def test_empty_range(self):
        bm = Bitmap(64)
        assert bm.count_range(5, 5) == 0
        assert bm.set_range(5, 5) == 0

    def test_bad_range_raises(self):
        bm = Bitmap(64)
        with pytest.raises(BitmapError):
            bm.count_range(-1, 5)
        with pytest.raises(BitmapError):
            bm.count_range(0, 65)
        with pytest.raises(BitmapError):
            bm.count_range(10, 5)


class TestCountRangeEdges:
    """Byte-boundary cases of count_range: the fast path counts whole
    bytes with bitwise_count and unpacks only the edge bits, so every
    alignment combination of [start, stop) must agree with a naive
    per-bit count."""

    def _naive(self, bm: Bitmap, start: int, stop: int) -> int:
        return int(bm.test(np.arange(start, stop)).sum()) if stop > start else 0

    def test_sub_byte_straddling_boundary_no_full_byte(self):
        # [6, 10) crosses the byte 0/1 boundary but contains no whole
        # byte: full0 == full1 == 8 takes the single-unpack path.
        bm = Bitmap(64)
        bm.allocate(np.array([6, 7, 8, 9]))
        assert bm.count_range(6, 10) == 4
        assert bm.count_range(7, 9) == 2
        assert bm.count_range(5, 6) == 0

    def test_both_ends_byte_aligned(self):
        bm = Bitmap(64)
        bm.set_range(8, 24)
        assert bm.count_range(8, 24) == 16
        assert bm.count_range(0, 64) == 16

    def test_unaligned_head_aligned_tail(self):
        bm = Bitmap(64)
        bm.set_range(5, 32)
        assert bm.count_range(5, 32) == 27
        assert bm.count_range(6, 32) == 26

    def test_aligned_head_unaligned_tail(self):
        bm = Bitmap(64)
        bm.set_range(8, 29)
        assert bm.count_range(8, 29) == 21
        assert bm.count_range(8, 30) == 21

    def test_single_full_byte_between_edges(self):
        # [7, 17): edge bit 7, whole byte [8, 16), edge bit 16.
        bm = Bitmap(64)
        bm.allocate(np.array([7, 8, 15, 16]))
        assert bm.count_range(7, 17) == 4

    def test_every_alignment_matches_naive_count(self):
        rng = np.random.default_rng(7)
        bm = Bitmap(80)
        bm.allocate(np.flatnonzero(rng.random(80) < 0.4))
        for start in range(0, 18):
            for stop in range(start, 80, 7):
                assert bm.count_range(start, stop) == self._naive(bm, start, stop), (
                    start,
                    stop,
                )


class TestSearch:
    def test_free_in_range(self):
        bm = Bitmap(64)
        bm.allocate(np.array([1, 3, 5]))
        assert bm.free_in_range(0, 8).tolist() == [0, 2, 4, 6, 7]

    def test_free_in_range_limit(self):
        bm = Bitmap(64)
        assert bm.free_in_range(0, 64, limit=3).tolist() == [0, 1, 2]

    def test_free_in_range_unaligned(self):
        bm = Bitmap(64)
        bm.allocate(np.array([10, 12]))
        assert bm.free_in_range(9, 14).tolist() == [9, 11, 13]

    def test_allocated_in_range(self):
        bm = Bitmap(64)
        bm.allocate(np.array([10, 12, 40]))
        assert bm.allocated_in_range(0, 32).tolist() == [10, 12]
        assert bm.allocated_in_range(0, 64, limit=2).tolist() == [10, 12]

    def test_full_range_has_no_free(self):
        bm = Bitmap(16)
        bm.set_range(0, 16)
        assert bm.free_in_range(0, 16).size == 0


class TestCountsPerChunk:
    def test_basic(self):
        bm = Bitmap(64)
        bm.set_range(0, 10)
        assert bm.counts_per_chunk(16).tolist() == [10, 0, 0, 0]

    def test_chunk_must_divide(self):
        bm = Bitmap(64)
        with pytest.raises(ValueError):
            bm.counts_per_chunk(24)
        with pytest.raises(ValueError):
            bm.counts_per_chunk(4)

    def test_sums_match_total(self):
        bm = Bitmap(256)
        bm.allocate(np.arange(0, 256, 3))
        counts = bm.counts_per_chunk(32)
        assert counts.sum() == bm.allocated_count

    def test_raw_bytes_readonly(self):
        bm = Bitmap(64)
        with pytest.raises(ValueError):
            bm.raw_bytes[0] = 1
