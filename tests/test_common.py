"""Unit tests for the common helpers (units, RNG, constants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import constants as c
from repro.common.rng import make_rng, permute_in_chunks, spawn
from repro.common.units import (
    GIB,
    blocks_to_bytes,
    blocks_to_gib,
    bytes_to_blocks,
    fmt_bytes,
    fmt_count,
    gib_to_blocks,
    us_to_ms,
    us_to_s,
)


class TestConstants:
    def test_paper_values(self):
        """The paper's headline constants, verbatim."""
        assert c.BLOCK_SIZE == 4096
        assert c.BITS_PER_BITMAP_BLOCK == 32768
        assert c.DEFAULT_RAID_AA_STRIPES == 4096
        assert c.RAID_AGNOSTIC_AA_BLOCKS == 32768
        assert c.TETRIS_STRIPES == 64
        assert c.HBPS_BIN_WIDTH == 1024
        assert c.HBPS_LIST_CAPACITY == 1000
        assert c.TOPAA_RAID_AWARE_ENTRIES == 512
        assert c.AZCS_REGION_BLOCKS == 64
        assert c.AZCS_DATA_BLOCKS == 63

    def test_error_margin_arithmetic(self):
        """1K bins over a 32K score space = the 3.125% margin."""
        assert c.HBPS_BIN_WIDTH / c.RAID_AGNOSTIC_AA_BLOCKS == 0.03125

    def test_topaa_block_arithmetic(self):
        """512 entries x 8 bytes fill one 4 KiB block exactly."""
        assert c.TOPAA_RAID_AWARE_ENTRIES * 8 == c.BLOCK_SIZE

    def test_paper_memory_example(self):
        """Section 3.3.1's example: a 16 TiB device tracks ~1M AAs.

        (16 TiB / 4 KiB is 4G VBNs — the paper's "1G" intermediate is a
        typo — and 4G / 4k = 1M AAs, matching its 1 MiB-of-memory
        conclusion at 8 bytes per AA.)
        """
        vbns = 16 * 2**40 // c.BLOCK_SIZE
        assert vbns == 2**32
        aas = vbns // c.DEFAULT_RAID_AA_STRIPES
        assert aas == 2**20  # 1M AAs
        assert aas * 8 == 2**23  # ~8 MiB at 8 B/AA; paper rounds to ~1 MiB


class TestUnits:
    def test_roundtrips(self):
        assert bytes_to_blocks(blocks_to_bytes(77)) == 77
        assert gib_to_blocks(1) == GIB // 4096
        assert blocks_to_gib(gib_to_blocks(2.0)) == pytest.approx(2.0)

    def test_zero_is_a_fixed_point(self):
        assert bytes_to_blocks(0) == 0
        assert blocks_to_bytes(0) == 0
        assert gib_to_blocks(0) == 0
        assert blocks_to_gib(0) == 0.0

    def test_bytes_to_blocks_rejects_partial(self):
        with pytest.raises(ValueError):
            bytes_to_blocks(4097)

    @pytest.mark.parametrize("nbytes", [1, 4095, 2 * 4096 + 512])
    def test_non_block_aligned_sizes_rejected(self, nbytes):
        with pytest.raises(ValueError):
            bytes_to_blocks(nbytes)

    def test_time_conversions(self):
        assert us_to_ms(1500) == 1.5
        assert us_to_s(2_000_000) == 2.0

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(1536) == "1.50 KiB"
        assert "GiB" in fmt_bytes(3 * GIB)

    def test_fmt_count(self):
        assert fmt_count(100) == "100"
        assert fmt_count(256_000) == "256k"
        assert fmt_count(2_000_000) == "2M"


class TestRNG:
    def test_seed_determinism(self):
        a = make_rng(42).integers(0, 1 << 30, 10)
        b = make_rng(42).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, 4)
        b = make_rng(None).integers(0, 1 << 30, 4)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        g = make_rng(1)
        assert make_rng(g) is g

    def test_spawn_independent_streams(self):
        children = spawn(make_rng(7), 3)
        draws = [tuple(ch.integers(0, 1 << 30, 4)) for ch in children]
        assert len(set(draws)) == 3

    def test_permute_in_chunks_covers_everything(self):
        chunks = list(permute_in_chunks(make_rng(3), 100, 17))
        flat = np.concatenate(chunks)
        assert sorted(flat.tolist()) == list(range(100))
        assert all(len(ch) <= 17 for ch in chunks)
