"""Typed crash-error taxonomy (satellite a) and the shared retry
budget primitives behind recovery hardening."""

from __future__ import annotations

import pytest

from repro.common import (
    CrashError,
    MediaError,
    RecoveryExhaustedError,
    ReproError,
    RetryBudget,
    SerializationError,
    TornWriteError,
    TransientIOError,
    retry_with_backoff,
)


class TestErrorTaxonomy:
    def test_crash_error_is_a_repro_error(self):
        assert issubclass(CrashError, ReproError)
        assert not issubclass(CrashError, SerializationError)

    def test_torn_write_is_a_serialization_error(self):
        """Existing handlers keyed on SerializationError (mount page
        verification, fuzz harnesses) catch torn writes for free."""
        assert issubclass(TornWriteError, SerializationError)
        assert issubclass(TornWriteError, ReproError)

    def test_exhaustion_is_a_transient_io_error(self):
        """Callers keyed on the old TransientIOError keep working when
        the typed exhaustion error surfaces instead."""
        assert issubclass(RecoveryExhaustedError, TransientIOError)
        with pytest.raises(TransientIOError):
            raise RecoveryExhaustedError("dry")

    def test_classes_are_distinct(self):
        assert not issubclass(TornWriteError, CrashError)
        assert not issubclass(RecoveryExhaustedError, CrashError)


class TestRetryBudget:
    def test_consume_until_dry(self):
        budget = RetryBudget(2)
        budget.consume("vol:volA")
        budget.consume("vol:volB")
        assert budget.used == 2
        assert budget.remaining == 0
        with pytest.raises(RecoveryExhaustedError) as exc_info:
            budget.consume("vol:volB")
        assert "budget exhausted" in str(exc_info.value)
        assert "vol:volB" in str(exc_info.value)

    def test_retry_succeeds_within_budget(self):
        budget = RetryBudget(5)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 3:
                raise TransientIOError("blip")
            return "done"

        result, retries, backoff_us = retry_with_backoff(
            flaky, budget=budget, base_backoff_us=100.0
        )
        assert result == "done"
        assert retries == 3
        # Linear backoff: 100 + 200 + 300.
        assert backoff_us == pytest.approx(600.0)
        assert budget.used == 3

    def test_budget_is_shared_across_phases(self):
        """Two phases drawing from one pool are bounded *together* —
        the accounting bug the mount/rebuild split used to have."""
        budget = RetryBudget(3)
        state = {"n": 0}

        def fail_twice_then_ok():
            state["n"] += 1
            if state["n"] <= 2:
                raise TransientIOError("blip")
            return True

        retry_with_backoff(fail_twice_then_ok, budget=budget)
        assert budget.remaining == 1

        def always_fails():
            raise TransientIOError("blip")

        with pytest.raises(RecoveryExhaustedError) as exc_info:
            retry_with_backoff(always_fails, budget=budget)
        assert budget.used == 3
        assert isinstance(exc_info.value.__cause__, TransientIOError)

    def test_non_transient_errors_propagate_immediately(self):
        budget = RetryBudget(5)

        def broken():
            raise MediaError("unreconstructable")

        with pytest.raises(MediaError):
            retry_with_backoff(broken, budget=budget)
        assert budget.used == 0
