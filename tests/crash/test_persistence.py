"""Persistence-model unit tests and the seeded fuzz round-trips of
satellite (c): serialized FS images, sealed bitmap-metafile pages, and
TopAA pages either survive their round trip byte-exactly or fail with
a typed error — never deserialize into garbage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.auditor import audit_sim
from repro.common import (
    MountError,
    SerializationError,
    TornWriteError,
    make_rng,
)
from repro.core import PAGE_KIND_HBPS
from repro.core.topaa import PAGE_KIND_FS_IMAGE, seal_page, unseal_page
from repro.crash import (
    SECTOR_BYTES,
    PersistenceModel,
    capture_image,
    deserialize_fs,
    load_bitmap_page,
    seal_bitmap_page,
    serialize_fs,
    tear_page,
)
from repro.faults.recovery import instances
from repro.fs import export_topaa
from repro.workloads import RandomOverwriteWorkload


def churn(sim, *, cps=1, seed=13):
    sim.run(RandomOverwriteWorkload(sim, ops_per_cp=512, seed=seed), cps)


class TestSerializeRoundTrip:
    def test_every_instance_round_trips(self, aged_sim):
        for where, fs in instances(aged_sim).items():
            st = deserialize_fs(serialize_fs(fs))
            assert st.nblocks == fs.metafile.nblocks, where
            assert st.free_count == fs.metafile.free_count, where
            assert st.bitmap_bytes == fs.metafile.to_bytes(), where
            assert np.array_equal(st.pending, fs.delayed_frees.pending_vbns())
            if getattr(fs, "l2v", None) is not None:
                assert np.array_equal(st.l2v, fs.l2v)
                assert np.array_equal(st.v2p, fs.v2p)
                assert [n for n, _ in st.snapshots] == sorted(fs._snapshots)
            else:
                assert st.l2v is None and st.v2p is None

    def test_snapshot_pins_survive(self, aged_sim):
        vol = aged_sim.vol("volA")
        st = deserialize_fs(serialize_fs(vol))
        (name, held), *_ = st.snapshots
        assert name == "hourly.0"
        assert np.array_equal(held, vol._snapshots["hourly.0"])

    def test_serialization_is_deterministic(self, aged_sim):
        vol = aged_sim.vol("volA")
        assert serialize_fs(vol) == serialize_fs(vol)

    def test_measurement_counters_are_excluded(self, aged_sim):
        """Recovery itself performs metafile reads; they must not change
        what the instance re-serializes to."""
        vol = aged_sim.vol("volA")
        before = serialize_fs(vol)
        vol.read_metafile()
        assert serialize_fs(vol) == before


class TestFuzzRoundTrips:
    def test_truncation_always_raises_typed_error(self, aged_sim):
        rng = make_rng(5)
        for where, fs in instances(aged_sim).items():
            payload = serialize_fs(fs)
            cuts = rng.integers(0, len(payload), size=16)
            for cut in cuts:
                with pytest.raises(SerializationError):
                    deserialize_fs(payload[: int(cut)])

    def test_trailing_garbage_raises(self, aged_sim):
        payload = serialize_fs(aged_sim.vol("volB"))
        with pytest.raises(SerializationError, match="trailing"):
            deserialize_fs(payload + b"\x00" * 8)

    def test_bitflips_in_sealed_fs_page_are_detected(self, aged_sim):
        """Random bit flips anywhere in a sealed page trip the CRC32
        envelope before the payload is ever parsed."""
        rng = make_rng(6)
        vol = aged_sim.vol("volA")
        page = seal_page(serialize_fs(vol), PAGE_KIND_FS_IMAGE, vol.topology.num_aas)
        for _ in range(32):
            pos = int(rng.integers(0, len(page)))
            bit = 1 << int(rng.integers(0, 8))
            mutated = page[:pos] + bytes([page[pos] ^ bit]) + page[pos + 1 :]
            with pytest.raises(SerializationError):
                unseal_page(mutated, PAGE_KIND_FS_IMAGE, vol.topology.num_aas)

    def test_bitflips_in_payload_never_parse_to_garbage(self, aged_sim):
        """Even when damage bypasses the envelope (flips applied to the
        bare payload), the bounds-checked parser either reproduces a
        valid state or raises the typed error."""
        rng = make_rng(7)
        vol = aged_sim.vol("volB")
        payload = serialize_fs(vol)
        for _ in range(32):
            pos = int(rng.integers(0, len(payload)))
            bit = 1 << int(rng.integers(0, 8))
            mutated = payload[:pos] + bytes([payload[pos] ^ bit]) + payload[pos + 1 :]
            try:
                st = deserialize_fs(mutated)
            except SerializationError:
                continue
            # A flip the validators cannot see (e.g. inside an l2v
            # entry that stays in range) must still parse structurally.
            assert st.nblocks == vol.metafile.nblocks

    def test_topaa_page_damage_is_detected(self, aged_sim):
        img = export_topaa(aged_sim)
        vol = aged_sim.vol("volA")
        page = img.vol_pages["volA"]
        flipped = page[:40] + bytes([page[40] ^ 0x10]) + page[41:]
        with pytest.raises(SerializationError):
            unseal_page(flipped, PAGE_KIND_HBPS, vol.topology.num_aas)
        with pytest.raises(SerializationError, match="truncated"):
            unseal_page(page[:100], PAGE_KIND_HBPS, vol.topology.num_aas)


class TestBitmapPages:
    def test_round_trip_restores_bitmap(self, aged_sim):
        vol = aged_sim.vol("volB")
        before = vol.metafile.to_bytes()
        free_before = vol.metafile.free_count
        page = seal_bitmap_page(vol.metafile)
        churn(aged_sim)
        assert vol.metafile.to_bytes() != before
        load_bitmap_page(vol.metafile, page)
        assert vol.metafile.to_bytes() == before
        assert vol.metafile.free_count == free_before

    def test_truncated_page_raises_torn_write(self, aged_sim):
        vol = aged_sim.vol("volB")
        page = seal_bitmap_page(vol.metafile)
        with pytest.raises(TornWriteError):
            load_bitmap_page(vol.metafile, page[: len(page) // 2])

    def test_torn_page_raises_torn_write(self, aged_sim):
        """A mid-write page (new prefix, old tail) fails its checksum
        envelope and surfaces as the typed torn-write error."""
        vol = aged_sim.vol("volB")
        old = seal_bitmap_page(vol.metafile)
        churn(aged_sim)
        new = seal_bitmap_page(vol.metafile)
        torn = new[:SECTOR_BYTES] + old[SECTOR_BYTES : len(new)]
        assert torn != new
        with pytest.raises(TornWriteError):
            load_bitmap_page(vol.metafile, torn)


class TestTearPage:
    @staticmethod
    def variants(new: bytes, old: bytes | None) -> set[bytes]:
        out = set()
        n_sectors = -(-len(new) // SECTOR_BYTES)
        for s in range(n_sectors + 1):
            cut = s * SECTOR_BYTES
            if cut >= len(new):
                out.add(new)
                continue
            tail = (old or b"")[cut : len(new)]
            tail += b"\x00" * (len(new) - cut - len(tail))
            out.add(new[:cut] + tail)
        return out

    def test_cuts_only_at_sector_boundaries(self):
        rng = make_rng(8)
        new = bytes(rng.integers(0, 256, size=3 * SECTOR_BYTES + 77, dtype=np.uint8))
        old = bytes(rng.integers(0, 256, size=2 * SECTOR_BYTES, dtype=np.uint8))
        allowed = self.variants(new, old)
        for _ in range(24):
            torn = tear_page(new, old, rng)
            assert len(torn) == len(new)
            assert torn in allowed

    def test_missing_old_page_reads_as_zeros(self):
        rng = make_rng(9)
        new = bytes(rng.integers(0, 256, size=2 * SECTOR_BYTES, dtype=np.uint8))
        allowed = self.variants(new, None)
        for _ in range(16):
            assert tear_page(new, None, rng) in allowed

    def test_full_spectrum_reachable(self):
        """Both extremes occur: write never started (pure old page) and
        write completed (pure new page)."""
        rng = make_rng(10)
        new = bytes(range(256)) * 4
        old = bytes(reversed(new))
        seen = {tear_page(new, old, rng) for _ in range(64)}
        assert new in seen
        assert old[: len(new)] in seen

    def test_same_seed_same_tears(self):
        new = bytes(1000)
        old = bytes([1]) * 1000

        def draws(seed: int) -> list[bytes]:
            rng = make_rng(seed)
            return [tear_page(new, old, rng) for _ in range(8)]

        assert draws(21) == draws(21)


class TestCommitRecover:
    def test_recover_restores_committed_bytes(self, aged_sim):
        model = PersistenceModel(aged_sim, seed=3)
        committed = model.committed
        churn(aged_sim, cps=2, seed=14)
        diverged = capture_image(aged_sim, cp_index=committed.cp_index)
        assert diverged.pages != committed.pages
        report = model.recover()
        assert set(report.restored) == set(instances(aged_sim))
        assert report.mount.used_topaa
        assert report.rebuild["hbps_caches_refreshed"] >= 1
        recaptured = capture_image(aged_sim, cp_index=committed.cp_index)
        assert recaptured.pages == committed.pages
        assert audit_sim(aged_sim).ok

    def test_recovered_sim_keeps_working(self, aged_sim):
        model = PersistenceModel(aged_sim, seed=3)
        churn(aged_sim, seed=15)
        model.recover()
        churn(aged_sim, cps=2, seed=16)
        aged_sim.verify_consistency()

    def test_commit_adopts_new_image(self, aged_sim):
        model = PersistenceModel(aged_sim, seed=3)
        old_digest = model.committed.digest()
        old_cp = model.committed.cp_index
        churn(aged_sim, seed=17)
        image = model.commit()
        assert image is model.committed
        assert image.cp_index == old_cp + 1
        assert image.digest() != old_digest
        assert model.shadow is None and model.shadow_topaa is None

    def test_capture_shadow_tears_against_committed(self, aged_sim):
        model = PersistenceModel(aged_sim, seed=3)
        churn(aged_sim, seed=18)
        shadow = model.capture_shadow(aged_sim)
        assert shadow.cp_index == model.committed.cp_index + 1
        assert set(shadow.pages) == set(model.committed.pages)
        report = model.recover()
        # The same seed produced at least one mid-write page across the
        # whole image; each was detected, recorded, and discarded.
        assert report.torn_pages or report.shadow_intact

    def test_missing_committed_page_is_unrecoverable(self, aged_sim):
        model = PersistenceModel(aged_sim, seed=3)
        model.committed.pages.pop("vol:volA")
        with pytest.raises(MountError, match="no committed page"):
            model.recover()

    def test_damaged_committed_page_raises_torn_write(self, aged_sim):
        model = PersistenceModel(aged_sim, seed=3)
        page = model.committed.pages["vol:volA"]
        model.committed.pages["vol:volA"] = page[:-4] + bytes(
            b ^ 0xFF for b in page[-4:]
        )
        with pytest.raises(TornWriteError, match="vol:volA"):
            model.recover()
