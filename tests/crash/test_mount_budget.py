"""Satellite (b): the mount walk and the background rebuild draw from
ONE bounded retry budget, every retry is counted in the MountReport,
and exhaustion surfaces as the typed RecoveryExhaustedError — through
both the bare mount API and PersistenceModel.recover()."""

from __future__ import annotations

import pytest

from repro.common import RecoveryExhaustedError, RetryBudget
from repro.crash import PersistenceModel
from repro.faults import FaultInjector, FaultKind, attach_everywhere, corrupt_bytes
from repro.fs import background_rebuild, export_topaa, simulate_mount
from repro.fs.mount import DEFAULT_MOUNT_RETRIES


@pytest.fixture
def faulty(aged_sim):
    inj = FaultInjector(seed=1)
    attach_everywhere(aged_sim, inj)
    return aged_sim, inj


class TestSharedBudget:
    def test_mount_and_rebuild_share_one_pool(self, faulty):
        sim, inj = faulty
        img = export_topaa(sim)
        # Force volB onto the bitmap walk, then make that walk flaky.
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        inj.arm("vol:volB", FaultKind.TRANSIENT_READ, count=2)
        budget = RetryBudget(6)
        rep = simulate_mount(sim, img, budget=budget)
        assert rep.transient_retries == 2
        assert rep.retry_budget_limit == 6
        assert budget.used == 2

        # The rebuild re-reads volA (TopAA-seeded); its retries come out
        # of the *same* pool and land in the same report.
        inj.arm("vol:volA", FaultKind.TRANSIENT_READ, count=2)
        rebuild = background_rebuild(sim, budget=budget, report=rep)
        assert rebuild["hbps_caches_refreshed"] >= 1
        assert rep.rebuild_retries == 2
        assert rep.total_retries == 4
        assert budget.used == 4

    def test_combined_retries_are_bounded_together(self, faulty):
        """A mount that burned most of the budget leaves the rebuild
        almost none — the whole-recovery bound the per-phase loops used
        to miss."""
        sim, inj = faulty
        img = export_topaa(sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        inj.arm("vol:volB", FaultKind.TRANSIENT_READ, count=2)
        budget = RetryBudget(3)
        rep = simulate_mount(sim, img, budget=budget)
        assert budget.remaining == 1

        inj.arm("vol:volA", FaultKind.TRANSIENT_READ, count=2)
        with pytest.raises(RecoveryExhaustedError, match="budget exhausted"):
            background_rebuild(sim, budget=budget, report=rep)
        assert budget.used == 3

    def test_default_budget_per_call_still_bounds(self, faulty):
        sim, inj = faulty
        img = export_topaa(sim)
        img.vol_pages["volB"] = corrupt_bytes(img.vol_pages["volB"], 8, rng=2)
        inj.arm("vol:volB", FaultKind.TRANSIENT_READ, count=10)
        with pytest.raises(RecoveryExhaustedError):
            simulate_mount(sim, img, max_retries=2)


class TestRecoveryPath:
    def test_recover_absorbs_transient_faults(self, faulty):
        sim, inj = faulty
        model = PersistenceModel(sim, seed=1)
        inj.arm("vol:volA", FaultKind.TRANSIENT_READ, count=2)
        report = model.recover()
        assert report.mount.rebuild_retries == 2
        assert report.mount.total_retries == 2
        assert report.mount.retry_budget_limit == DEFAULT_MOUNT_RETRIES
        # Retried reads charge modeled backoff, never corrupt state.
        assert set(report.restored) == {"group:0", "vol:volA", "vol:volB"}

    def test_recover_exhaustion_is_typed(self, faulty):
        sim, inj = faulty
        model = PersistenceModel(sim, seed=1)
        inj.arm("vol:volA", FaultKind.TRANSIENT_READ, count=5)
        with pytest.raises(RecoveryExhaustedError):
            model.recover(max_retries=1)

    def test_caller_supplied_budget_threads_through(self, faulty):
        sim, inj = faulty
        model = PersistenceModel(sim, seed=1)
        inj.arm("vol:volA", FaultKind.TRANSIENT_READ, count=2)
        budget = RetryBudget(8)
        report = model.recover(budget=budget)
        assert budget.used == 2
        assert report.mount.retry_budget_limit == 8
