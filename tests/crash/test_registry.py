"""Crash-point registry: span edges of a real CP enumerate correctly,
an armed tracer kills the CP at exactly the chosen edge, and the
previous tracer is always restored."""

from __future__ import annotations

import copy

import pytest

from repro import obs
from repro.common import CrashError
from repro.crash import CrashTracer, record_crash_points
from repro.crash.registry import (
    BOUNDARY_SPAN,
    EDGE_ENTER,
    EDGE_EXIT,
    boundary_enter_index,
    commit_edge_index,
)
from repro.workloads import RandomOverwriteWorkload


@pytest.fixture
def batch(aged_sim):
    return next(iter(RandomOverwriteWorkload(aged_sim, ops_per_cp=256, seed=9)))


def record(sim, batch):
    probe = copy.deepcopy(sim)
    return record_crash_points(lambda: probe.engine.run_cp(batch))


class TestRecording:
    def test_edges_bracket_the_cp(self, aged_sim, batch):
        edges = record(aged_sim, batch)
        assert edges[0].name == "cp" and edges[0].edge == EDGE_ENTER
        assert edges[-1].name == "cp" and edges[-1].edge == EDGE_EXIT
        assert [e.index for e in edges] == list(range(len(edges)))

    def test_pipeline_spans_are_injectable(self, aged_sim, batch):
        """Every stage the CP engine instruments shows up as crash
        sites with no new hooks: per-volume allocation, the boundary
        flush, and the enclosing cp span."""
        edges = record(aged_sim, batch)
        names = {e.name for e in edges}
        assert {"cp", "cp.allocate", BOUNDARY_SPAN} <= names
        boundary = [e for e in edges if e.name == BOUNDARY_SPAN]
        assert {e.edge for e in boundary} == {EDGE_ENTER, EDGE_EXIT}

    def test_window_and_commit_indexes(self, aged_sim, batch):
        edges = record(aged_sim, batch)
        window = boundary_enter_index(edges)
        commit = commit_edge_index(edges)
        assert window is not None and commit is not None
        # The write window opens strictly inside the CP and the modeled
        # superblock switch is the last edge of a bare run_cp.
        assert 0 < window < commit == edges[-1].index

    def test_recording_is_deterministic(self, aged_sim, batch):
        a = [(e.name, e.edge) for e in record(aged_sim, batch)]
        b = [(e.name, e.edge) for e in record(aged_sim, batch)]
        assert a == b

    def test_previous_tracer_restored_even_on_error(self):
        sentinel = CrashTracer()
        prev = obs.install_tracer(sentinel)
        try:
            def boom():
                raise ValueError("inside the dry run")

            with pytest.raises(ValueError):
                record_crash_points(boom)
            assert obs.install_tracer(prev) is sentinel
        finally:
            obs.install_tracer(prev)


class TestInjection:
    def crash_at(self, sim, batch, index):
        trial = copy.deepcopy(sim)
        tracer = CrashTracer(crash_at=index)
        prev = obs.install_tracer(tracer)
        try:
            with pytest.raises(CrashError, match="injected crash"):
                trial.engine.run_cp(batch)
        finally:
            obs.install_tracer(prev)
        return trial, tracer

    def test_crash_at_first_edge_leaves_state_untouched(self, aged_sim, batch):
        before = {
            "cp": aged_sim.engine.cp_index,
            "free": aged_sim.vol("volA").metafile.free_count,
        }
        trial, tracer = self.crash_at(aged_sim, batch, 0)
        assert tracer.crashed is not None
        assert tracer.crashed.label == "#0 cp:enter"
        assert trial.engine.cp_index == before["cp"]
        assert trial.vol("volA").metafile.free_count == before["free"]

    def test_crash_in_write_window_keeps_old_cp_index(self, aged_sim, batch):
        """run_cp increments its counter only after the cp span closes,
        so every crash inside the CP recovers to CP N-1."""
        edges = record(aged_sim, batch)
        window = boundary_enter_index(edges)
        trial, tracer = self.crash_at(aged_sim, batch, window)
        assert tracer.crashed.name == BOUNDARY_SPAN
        assert trial.engine.cp_index == aged_sim.engine.cp_index

    def test_crash_at_commit_edge_completed_the_work(self, aged_sim, batch):
        """The cp exit edge fires after the span closed: the CP's
        writes are all done, only the counter bump was lost."""
        edges = record(aged_sim, batch)
        commit = commit_edge_index(edges)
        trial, tracer = self.crash_at(aged_sim, batch, commit)
        assert tracer.crashed.edge == EDGE_EXIT
        assert trial.engine.cp_index == aged_sim.engine.cp_index

    def test_unreached_edge_never_fires(self, aged_sim, batch):
        trial = copy.deepcopy(aged_sim)
        tracer = CrashTracer(crash_at=10_000)
        prev = obs.install_tracer(tracer)
        try:
            trial.engine.run_cp(batch)
        finally:
            obs.install_tracer(prev)
        assert tracer.crashed is None
        assert trial.engine.cp_index == aged_sim.engine.cp_index + 1
