"""Acceptance sweep for the crash-state explorer: every span edge of
consecutive aging CPs crashes, recovers to the last committed CP, and
passes the full verification triple — and the same seed reproduces the
whole matrix byte-identically."""

from __future__ import annotations

import pytest

from repro.crash import CrashMatrix, explore_aging
from repro.crash.explorer import CrashOutcome
from repro.crash.registry import BOUNDARY_SPAN, CrashPoint


@pytest.fixture(scope="module")
def matrix():
    return explore_aging(cps=3, seed=0)


class TestAgingAcceptance:
    def test_every_crash_point_recovers_clean(self, matrix):
        assert matrix.ok
        assert matrix.violations == []
        assert matrix.cps_swept == 3
        assert len(matrix.committed_digests) == 3

    def test_sweep_is_exhaustive(self, matrix):
        """Each CP contributes its full edge inventory (cp enter/exit,
        per-volume allocation, boundary, pricing, cache flush...)."""
        assert matrix.crash_points >= 3 * 10
        names = {o.point.name for o in matrix.outcomes}
        assert {"cp", "cp.allocate", BOUNDARY_SPAN} <= names
        assert all(o.crashed for o in matrix.outcomes)

    def test_torn_write_cases_are_exercised_and_recovered(self, matrix):
        """Crashes inside the write window tear shadow + TopAA pages;
        those very cases must still recover byte-exactly."""
        torn = [o for o in matrix.outcomes if o.torn_pages]
        assert torn
        assert all(o.ok for o in torn)
        assert all(o.in_write_window for o in torn)

    def test_both_sides_of_the_window_are_covered(self, matrix):
        assert any(o.in_write_window for o in matrix.outcomes)
        assert any(not o.in_write_window for o in matrix.outcomes)
        # A bare run_cp has no edges after the superblock switch.
        assert not any(o.post_commit for o in matrix.outcomes)

    def test_recovery_cost_is_modeled(self, matrix):
        assert all(o.recovery_us > 0 for o in matrix.outcomes)
        assert all(o.restored == 3 for o in matrix.outcomes)


class TestDeterminism:
    def test_same_seed_same_matrix(self):
        a = explore_aging(cps=2, seed=7)
        b = explore_aging(cps=2, seed=7)
        assert a.digest() == b.digest()
        assert [o.row() for o in a.outcomes] == [o.row() for o in b.outcomes]
        assert a.committed_digests == b.committed_digests

    def test_different_seed_different_matrix(self):
        a = explore_aging(cps=1, seed=7)
        b = explore_aging(cps=1, seed=8)
        assert a.digest() != b.digest()


class TestMatrixReporting:
    def outcome(self, **kw) -> CrashOutcome:
        base = dict(
            cp_index=4,
            point=CrashPoint(index=2, name=BOUNDARY_SPAN, edge="enter"),
            in_write_window=True,
            post_commit=False,
            crashed=True,
            torn_pages=("vol:volA",),
            restored=3,
            retries=0,
            recovery_us=1000.0,
            violations=(),
        )
        base.update(kw)
        return CrashOutcome(**base)

    def test_empty_matrix_is_not_ok(self):
        assert CrashMatrix(workload="x", seed=0).ok is False

    def test_violation_flips_matrix_and_digest(self):
        good = CrashMatrix(workload="x", seed=0, committed_digests=["d"])
        good.outcomes.append(self.outcome())
        bad = CrashMatrix(workload="x", seed=0, committed_digests=["d"])
        bad.outcomes.append(self.outcome(violations=("[vol:volA] leaked",)))
        assert good.ok and not bad.ok
        assert bad.violations == bad.outcomes
        assert good.digest() != bad.digest()

    def test_row_is_canonical(self):
        row = self.outcome().row()
        assert row == (
            "cp=4 #2 cp.boundary:enter window=1 post=0 "
            "torn=vol:volA restored=3 retries=0 ok"
        )

    def test_extend_merges_sweeps(self):
        a = CrashMatrix(workload="x", seed=0, committed_digests=["d1"])
        a.outcomes.append(self.outcome())
        b = CrashMatrix(workload="x", seed=0, committed_digests=["d2"])
        b.outcomes.append(self.outcome(cp_index=5))
        a.extend(b)
        assert a.crash_points == 2
        assert a.cps_swept == 2
        assert a.torn_write_cases == 2
