"""Fixtures for the crash-consistency tests: a small aged all-SSD sim
whose bitmaps, delayed-free logs, snapshot pins, and AA caches carry
real history — the state the persistence model must round-trip."""

from __future__ import annotations

import pytest

from repro.crash.explorer import _small_aged_sim
from repro.workloads import RandomOverwriteWorkload


@pytest.fixture
def aged_sim():
    sim = _small_aged_sim(blocks_per_disk=8192, seed=11)
    sim.create_snapshot("volA", "hourly.0")
    sim.run(RandomOverwriteWorkload(sim, ops_per_cp=512, seed=12), 2)
    return sim
