"""Crash consistency under live multi-tenant traffic: the noisy-
neighbor sweep covers post-commit edges, and mid-CP crashes under load
replay their admitted-but-uncommitted ops deterministically."""

from __future__ import annotations

import pytest

from repro.crash import explore_noisy_neighbor, run_crash_under_load


@pytest.fixture(scope="module")
def matrix():
    return explore_noisy_neighbor(cps=2, seed=0)


class TestNoisyNeighborSweep:
    def test_every_crash_point_recovers_clean(self, matrix):
        assert matrix.ok
        assert matrix.violations == []
        assert matrix.cps_swept == 2
        assert matrix.torn_write_cases > 0

    def test_traffic_edges_extend_the_inventory(self, matrix):
        """An engine step wraps run_cp in admission spans, so the sweep
        includes edges *after* the modeled superblock switch — crashes
        there must land on the NEW CP, and did."""
        names = {o.point.name for o in matrix.outcomes}
        assert "traffic.step" in names
        post = [o for o in matrix.outcomes if o.post_commit]
        assert post
        assert all(o.ok for o in post)


class TestCrashUnderLoad:
    def test_replay_is_deterministic(self):
        rep = run_crash_under_load(steps=4, crash_every=2, seed=5)
        assert rep.ok
        assert rep.steps == 4
        assert len(rep.crashes) == 2
        assert len(rep.committed_digests) == 4
        for crash in rep.crashes:
            assert crash.replay_consistent
            assert crash.violations == ()
            # The replayed CP re-applied the admitted ops.
            assert sum(crash.replayed_ops.values()) > 0

    def test_same_seed_same_report(self):
        a = run_crash_under_load(steps=2, crash_every=2, seed=9)
        b = run_crash_under_load(steps=2, crash_every=2, seed=9)
        assert a.digest() == b.digest()
        assert [c.row() for c in a.crashes] == [c.row() for c in b.crashes]

    def test_rejects_degenerate_schedules(self):
        with pytest.raises(ValueError):
            run_crash_under_load(steps=0)
        with pytest.raises(ValueError):
            run_crash_under_load(crash_every=0)
