"""SimConfig consolidation tests: the typed frozen dataclasses, the
single ``SimConfig.default()`` entry point, and the builders reading
their tunables from the config object."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.common.config import (
    AggregateSpec,
    AllocatorConfig,
    BenchConfig,
    CacheConfig,
    FaultConfig,
    ObsConfig,
    SimConfig,
    TrafficConfig,
)
from repro.common.config import TierSpec, VolumeDecl
from repro.fs import MediaType, RAIDGroupConfig, VolSpec, WaflSim
from repro.fs.aggregate import RAIDStore

GROUPS = [
    RAIDGroupConfig(
        ndata=3,
        nparity=1,
        blocks_per_disk=32768,
        media=MediaType.SSD,
        stripes_per_aa=2048,
    )
]
VOLS = [VolSpec("volA", 16384)]
SPEC = AggregateSpec(
    tiers=(TierSpec(label="ssd", media="ssd", ndata=3,
                    blocks_per_disk=32768, stripes_per_aa=2048),),
    volumes=(VolumeDecl("volA", 16384),),
)


class TestSimConfig:
    def test_default_is_a_singleton(self):
        assert SimConfig.default() is SimConfig.default()

    def test_sections_are_typed(self):
        cfg = SimConfig.default()
        assert isinstance(cfg.allocator, AllocatorConfig)
        assert isinstance(cfg.cache, CacheConfig)
        assert isinstance(cfg.traffic, TrafficConfig)
        assert isinstance(cfg.bench, BenchConfig)
        assert isinstance(cfg.faults, FaultConfig)
        assert isinstance(cfg.obs, ObsConfig)

    def test_frozen(self):
        cfg = SimConfig.default()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.allocator = AllocatorConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.allocator.threshold_fraction = 0.5

    def test_replace_derives_variants(self):
        cfg = dataclasses.replace(
            SimConfig.default(),
            allocator=AllocatorConfig(threshold_fraction=0.25),
        )
        assert cfg.allocator.threshold_fraction == 0.25
        # The shared default is untouched.
        assert SimConfig.default().allocator.threshold_fraction == 0.0

    def test_canonical_seeds_cover_all_experiments(self):
        from repro.bench.runner import ALL_EXPERIMENTS

        seeds = SimConfig.default().bench.canonical_seeds()
        assert set(seeds) == set(ALL_EXPERIMENTS)


class TestThresholdFromConfig:
    def test_raidstore_reads_config(self):
        cfg = dataclasses.replace(
            SimConfig.default(),
            allocator=AllocatorConfig(threshold_fraction=0.1),
        )
        store = RAIDStore(GROUPS, config=cfg, seed=7)
        assert store.allocator.threshold_fraction == 0.1

    def test_build_reads_config(self):
        cfg = dataclasses.replace(
            SimConfig.default(),
            allocator=AllocatorConfig(threshold_fraction=0.1),
        )
        sim = WaflSim.build(SPEC, config=cfg, seed=7)
        assert sim.store.allocator.threshold_fraction == 0.1

    def test_loose_kwarg_is_gone(self):
        with pytest.raises(TypeError):
            RAIDStore(GROUPS, threshold_fraction=0.1, seed=7)
        with pytest.raises(TypeError):
            WaflSim.build(SPEC, threshold_fraction=0.1, seed=7)

    def test_default_comes_from_sim_config(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            store = RAIDStore(GROUPS, seed=7)
        assert (
            store.allocator.threshold_fraction
            == SimConfig.default().allocator.threshold_fraction
        )
