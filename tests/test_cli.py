"""Tests for the command-line interface and bench harness helpers."""

from __future__ import annotations

import pytest

from repro.bench import ConfigResult, fmt_table
from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICPP 2018" in out
        assert "BLOCK_SIZE" in out

    def test_fig10_quick(self, capsys):
        assert main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10(A)" in out
        assert "Figure 10(B)" in out
        assert "TopAA" in out

    def test_fig9_quick(self, capsys):
        assert main(["fig9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "drive-throughput gain" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_lint_clean_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_lint_reports_violations(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        assert "D101" in capsys.readouterr().out

    def test_traffic_quick(self, capsys):
        assert main(
            ["traffic", "--quick", "--tenants", "2", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-tenant results" in out
        assert "t0-aggressor" in out
        assert "t1-victim" in out
        assert "p99 ms" in out
        assert "calibrated capacity" in out

    def test_traffic_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["traffic", "--scenario", "bogus"])

    def test_audit_quick(self, capsys):
        assert main(["audit", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "audit PASSED" in out
        assert "chaos sweep" in out


class TestHarness:
    def test_fmt_table_alignment(self):
        t = fmt_table(["a", "bee"], [[1, 2.5], [333, 0.001]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_fmt_table_thousands(self):
        t = fmt_table(["x"], [[123456.0]])
        assert "123,456" in t

    def test_config_result_capacity(self):
        r = ConfigResult(
            label="x", cpu_us_per_op=200.0, device_us_per_op=20.0,
            agg_selected_free=0, vol_selected_free=0, aggregate_free=0,
            write_amplification=1, metafile_blocks_per_op=0,
            full_stripe_fraction=0, mean_chain_length=0,
        )
        # 20 cores / 200us = 100k; device 1e6/20 = 50k -> device-bound.
        assert r.capacity_ops == pytest.approx(50_000)

    def test_config_result_curve_monotone_latency(self):
        import numpy as np

        r = ConfigResult(
            label="x", cpu_us_per_op=100.0, device_us_per_op=10.0,
            agg_selected_free=0, vol_selected_free=0, aggregate_free=0,
            write_amplification=1, metafile_blocks_per_op=0,
            full_stripe_fraction=0, mean_chain_length=0,
        )
        pts = r.curve(np.linspace(100, 20000, 10))
        lats = [p.latency_ms for p in pts]
        assert lats == sorted(lats)
