"""The aggregate-kill drill: tenants rehome through the scheduler,
audits and Iron stay clean, and victim tails stay under their bound."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster import run_cluster_chaos
from repro.common.config import SimConfig


@pytest.fixture(scope="module")
def report():
    base = SimConfig.default()
    cfg = replace(base, cluster=replace(base.cluster, epoch_cps=4))
    return run_cluster_chaos(
        n_shards=6, tenants_per_shard=2, seed=77, config=cfg
    )


def test_kill_rebalances_with_zero_findings(report):
    assert report.stranded == []
    assert report.iron_findings == 0
    assert report.audit_checks > 0
    # Every evacuee left the dead shard for a live one.
    assert all(sid != report.killed_shard for sid in report.evacuated.values())
    assert len(report.evacuated) > 0


def test_victim_p99_stays_bounded(report):
    assert report.victim_p99_ms, "drill must observe at least one victim"
    assert report.victims_bounded
    for name, p99 in report.victim_p99_ms.items():
        assert 0.0 < p99 <= report.victim_bound_ms[name]


def test_report_serializes_deterministically(report):
    d = report.as_dict()
    assert d["killed_shard"] == report.killed_shard
    assert list(d["evacuated"]) == sorted(d["evacuated"])
    assert d["victims_bounded"] is True
    assert {m["volume"] for m in d["migrations"]} == set(d["evacuated"])
