"""Fleet determinism: the cluster digest is a pure function of
(specs, placements, epochs) — byte-identical across pool worker counts
and across independently rebuilt clusters."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster import (
    Cluster,
    FilterScheduler,
    make_shard_specs,
    noisy_fleet_requests,
)
from repro.cluster.shard import ShardRuntime, _run_shard_task
from repro.common.config import SimConfig


@pytest.fixture(scope="module")
def cfg() -> SimConfig:
    base = SimConfig.default()
    return replace(base, cluster=replace(base.cluster, epoch_cps=3))


@pytest.fixture(scope="module")
def fleet(cfg):
    specs = make_shard_specs(4, seed=123, config=cfg)
    requests = noisy_fleet_requests(8, seed=9)
    cluster = Cluster(specs, scheduler=FilterScheduler(config=cfg), config=cfg)
    result = cluster.schedule(requests, rounds=1)
    return cluster, requests, result


def test_digests_identical_across_worker_counts(fleet):
    cluster, _, result = fleet
    for workers in (2, 8):
        cluster.workers = workers
        again = cluster.evaluate(result.epochs)
        assert again.digest == result.digest
        assert again.shard_digests == result.shard_digests
        assert again.tenant_p99_ms == result.tenant_p99_ms
    cluster.workers = None


def test_rebuilt_cluster_reproduces_the_digest(cfg, fleet):
    _, requests, result = fleet
    specs = make_shard_specs(4, seed=123, config=cfg)
    rebuilt = Cluster(specs, scheduler=FilterScheduler(config=cfg), config=cfg)
    again = rebuilt.schedule(requests, rounds=1)
    assert again.digest == result.digest
    assert again.placements == result.placements


def test_seed_changes_the_digest(cfg, fleet):
    _, requests, result = fleet
    specs = make_shard_specs(4, seed=124, config=cfg)
    other = Cluster(specs, scheduler=FilterScheduler(config=cfg), config=cfg)
    assert other.schedule(requests, rounds=1).digest != result.digest


def test_shard_task_replay_is_byte_identical(cfg):
    spec = make_shard_specs(1, seed=55, config=cfg)[0]
    reqs = tuple((r, 0) for r in noisy_fleet_requests(3, seed=4))
    args = (spec, reqs, 2, 3, True)
    sid_a, payload_a = _run_shard_task(args)
    sid_b, payload_b = _run_shard_task(args)
    assert sid_a == sid_b == spec.shard_id
    assert payload_a == payload_b
    assert payload_a["digest"] == payload_b["digest"]


def test_tenant_streams_independent_of_co_tenants(cfg):
    """Placing an extra tenant must not perturb an existing tenant's
    arrival/mix streams (seeds derive from the volume name, not the
    shard population) — the property that makes placement comparisons
    meaningful."""
    spec = make_shard_specs(1, seed=77, config=cfg)[0]
    [probe] = noisy_fleet_requests(1, seed=3)

    def arrivals_of(extra):
        rt = ShardRuntime(spec, config=cfg)
        rt.add_volume(probe)
        for r in extra:
            rt.add_volume(r)
        specs = {s.name: s for s in rt._tenant_specs(0)}
        arr = specs[probe.name].arrivals
        return [arr.next_after(float(t) * 1e4) for t in range(20)]

    alone = arrivals_of([])
    crowded = arrivals_of(noisy_fleet_requests(4, seed=8)[1:])
    assert alone == crowded
