"""Online migration: drain + replay bookkeeping, block conservation,
and a round-trip that leaves the invariant audit and Iron scan clean."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster import (
    ShardRuntime,
    ShardSpec,
    VolumeRequest,
    migrate_volume,
    run_rebalance,
)
from repro.common.config import SimConfig
from repro.fs import iron


@pytest.fixture(scope="module")
def cfg() -> SimConfig:
    base = SimConfig.default()
    return replace(base, cluster=replace(base.cluster, epoch_cps=3))


@pytest.fixture()
def pair(cfg):
    source = ShardRuntime(ShardSpec(shard_id=0, seed=101), config=cfg)
    target = ShardRuntime(ShardSpec(shard_id=1, seed=202), config=cfg)
    return source, target


def test_migration_conserves_blocks_and_state(pair):
    source, target = pair
    vol = VolumeRequest("mover", 640, offered_fraction=0.08)
    source.add_volume(vol)
    source.run_epoch(3)
    used = int(source.sim.vols["mover"].used_blocks)
    assert used > 0
    source.carryover["mover"] = source.carryover.get("mover", 0) + 17

    free_src = int(source.sim.store.free_count)
    free_tgt = int(target.sim.store.free_count)
    report = migrate_volume(source, target, "mover")

    assert report.blocks_copied == report.blocks_freed == used
    assert report.ops_drained == report.ops_replayed == 17
    assert report.iron_findings == 0
    assert report.audit_checks > 0
    # The source got every block back; the target paid exactly them.
    assert int(source.sim.store.free_count) == free_src + used
    assert int(target.sim.store.free_count) == free_tgt - used
    # Registries moved with the volume.
    assert "mover" not in source.tenants
    assert "mover" not in source.sim.vols
    assert source.carryover == {}
    assert target.tenants["mover"] is vol
    assert target.carryover["mover"] == 17
    assert int(target.sim.vols["mover"].used_blocks) == used


def test_target_replays_drained_ops(pair):
    source, target = pair
    source.add_volume(VolumeRequest("mover", 640, offered_fraction=0.08))
    source.run_epoch(3)
    migrate_volume(source, target, "mover")
    drained = target.carryover.get("mover", 0)
    result = target.run_epoch(3)
    assert result is not None
    summary = result.tenants["mover"]
    # Replayed ops ride the target's CPs on top of the epoch's own
    # arrivals (admitted counts them; completions include them).
    assert summary.admitted >= drained
    assert summary.completed > 0
    assert target.carryover.get("mover", 0) >= 0


def test_round_trip_leaves_both_aggregates_clean(pair):
    source, target = pair
    source.add_volume(VolumeRequest("mover", 640, offered_fraction=0.08))
    source.run_epoch(3)
    migrate_volume(source, target, "mover")
    target.run_epoch(3)
    back = migrate_volume(target, source, "mover")
    assert back.blocks_copied == back.blocks_freed
    assert back.iron_findings == 0
    source.run_epoch(3)
    for rt in (source, target):
        assert iron.scan(rt.sim).findings == []
        for vol in rt.sim.vols.values():
            vol.verify_consistency()


def test_migrating_unknown_volume_raises(pair):
    source, target = pair
    with pytest.raises(KeyError):
        migrate_volume(source, target, "ghost")


def test_run_rebalance_reports_conservation(cfg):
    out = run_rebalance(
        n_shards=3, tenants_per_shard=2, seed=31, epoch_cps=3, config=cfg
    )
    mig = out["migration"]
    assert mig["blocks_copied"] == mig["blocks_freed"] > 0
    assert mig["iron_findings"] == 0
    assert set(out["worst_p99_before"]) == set(out["worst_p99_after"]) == {0, 1, 2}
