"""The cluster package sits at the top of the simlint DAG: it may
import every simulation layer, and nothing below may import it."""

from __future__ import annotations

from repro.analysis import lint_source
from repro.analysis.rules import LAYER_RANK


def rules_of(source: str, package: str) -> list[str]:
    return [f.rule for f in lint_source(source, "mod.py", package)]


def test_cluster_is_the_top_rank():
    assert LAYER_RANK["cluster"] == max(LAYER_RANK.values())


def test_lower_layers_cannot_import_cluster():
    for pkg in ("traffic", "fs", "bench", "workloads", "faults", "crash"):
        assert "L201" in rules_of("from .. import cluster\n", pkg)
        assert "L201" in rules_of(
            "from repro.cluster import FilterScheduler\n", pkg
        )


def test_cluster_may_import_everything_below():
    src = (
        "from ..traffic.engine import TrafficEngine\n"
        "from ..fs.filesystem import WaflSim\n"
        "from ..analysis import audit_sim\n"
        "from ..faults import default_scenario\n"
    )
    assert "L201" not in rules_of(src, "cluster")


def test_cluster_cannot_import_itself_sideways():
    # Same-rank imports are still forbidden from other hypothetical
    # rank-14 code; cluster's own relative imports stay legal.
    assert "L201" not in rules_of("from .stats import ShardSpec\n", "cluster")
