"""Filter/weigher scheduler unit tests: every filter prunes for its
own reason, weighing is order-independent with a stable tie-break, and
placements project into the stats snapshot."""

from __future__ import annotations

import pytest

from repro.cluster import (
    CapacityFilter,
    FilterScheduler,
    FreeSpaceWeigher,
    HeadroomWeigher,
    MediaTypeFilter,
    QosHeadroomFilter,
    RaidGeometryFilter,
    RandomPlacer,
    ShardStats,
    TierFilter,
    VolumeRequest,
)
from repro.common.errors import PlacementError
from repro.tiering import Tier, media_role


def mkstats(
    shard_id: int,
    *,
    free: int = 10_000,
    total: int = 32_768,
    committed: float = 0.0,
    media: tuple[str, ...] = ("ssd",),
    tiers: tuple[str, ...] = (),
    ndata: int = 4,
    aa: float = 1.0,
    p99: float = 0.0,
    alive: bool = True,
) -> ShardStats:
    return ShardStats(
        shard_id=shard_id,
        total_blocks=total,
        free_blocks=free,
        projected_free_blocks=free,
        committed_fraction=committed,
        n_volumes=0,
        media=media,
        tiers=tiers or tuple(sorted({media_role(m).value for m in media})),
        ndata=ndata,
        capacity_ops=90_000.0,
        aa_free_fraction=aa,
        worst_p99_ms=p99,
        alive=alive,
    )


def req(**kw) -> VolumeRequest:
    base = dict(name="vol", logical_blocks=640)
    base.update(kw)
    return VolumeRequest(**base)


class TestFilters:
    def test_capacity_filter_applies_slack(self):
        f = CapacityFilter(slack=0.5)
        assert f.passes(req(logical_blocks=400), mkstats(0, free=1000))
        assert not f.passes(req(logical_blocks=600), mkstats(0, free=1000))

    def test_media_filter(self):
        f = MediaTypeFilter()
        assert f.passes(req(), mkstats(0, media=("hdd",)))
        assert f.passes(req(media="ssd"), mkstats(0, media=("hdd", "ssd")))
        assert not f.passes(req(media="ssd"), mkstats(0, media=("hdd",)))

    def test_tier_filter(self):
        f = TierFilter()
        assert f.passes(req(), mkstats(0, media=("hdd",)))
        assert f.passes(
            req(tier=Tier.FAST.value), mkstats(0, media=("hdd", "ssd"))
        )
        assert not f.passes(
            req(tier=Tier.FAST.value), mkstats(0, media=("hdd",))
        )
        assert f.passes(
            req(tier=Tier.CAPACITY.value), mkstats(0, media=("smr",))
        )

    def test_tier_request_validates_role(self):
        with pytest.raises(ValueError, match="tier role"):
            req(tier="turbo")

    def test_raid_geometry_filter(self):
        f = RaidGeometryFilter()
        assert f.passes(req(min_ndata=4), mkstats(0, ndata=4))
        assert not f.passes(req(min_ndata=6), mkstats(0, ndata=4))

    def test_qos_headroom_filter(self):
        f = QosHeadroomFilter(headroom=1.0)
        assert f.passes(req(offered_fraction=0.4), mkstats(0, committed=0.5))
        assert not f.passes(req(offered_fraction=0.6), mkstats(0, committed=0.5))


class TestWeighers:
    def test_free_space_is_a_fraction_of_total(self):
        w = FreeSpaceWeigher()
        small = mkstats(0, free=500, total=1000)
        big = mkstats(1, free=600, total=10_000)
        # 50% free beats 6% free even though 600 > 500 blocks.
        assert w.weigh(req(), small) > w.weigh(req(), big)

    def test_headroom_prefers_less_committed(self):
        w = HeadroomWeigher()
        assert w.weigh(req(), mkstats(0, committed=0.1)) > w.weigh(
            req(), mkstats(1, committed=1.2)
        )


class TestFilterScheduler:
    def test_winner_is_least_loaded(self):
        sched = FilterScheduler()
        stats = [
            mkstats(0, committed=1.2, p99=9.0),
            mkstats(1, committed=0.1),
            mkstats(2, committed=0.6),
        ]
        decision = sched.place(req(), stats)
        assert decision.shard_id == 1
        assert decision.candidates == (0, 1, 2)

    def test_tie_breaks_on_lowest_shard_id(self):
        sched = FilterScheduler()
        stats = [mkstats(2), mkstats(0), mkstats(1)]
        assert sched.place(req(), stats).shard_id == 0

    def test_order_independent(self):
        def run(order):
            sched = FilterScheduler()
            stats = [
                mkstats(0, committed=0.9),
                mkstats(1, committed=0.2, free=9_000),
                mkstats(2, committed=0.2, free=9_500),
                mkstats(3, committed=1.5),
            ]
            reordered = [stats[i] for i in order]
            return sched.place(req(), reordered).shard_id

        winners = {run(order) for order in ([0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1])}
        assert len(winners) == 1

    def test_placement_projects_into_stats(self):
        sched = FilterScheduler()
        stats = [mkstats(0), mkstats(1)]
        first = sched.place(req(name="a", offered_fraction=0.5), stats)
        winner = next(s for s in stats if s.shard_id == first.shard_id)
        assert winner.projected_free_blocks == 10_000 - 640
        assert winner.committed_fraction == pytest.approx(0.5)
        assert winner.placed == ["a"]
        # The projection steers the second placement elsewhere.
        second = sched.place(req(name="b", offered_fraction=0.5), stats)
        assert second.shard_id != first.shard_id

    def test_dead_shards_are_never_candidates(self):
        sched = FilterScheduler()
        stats = [mkstats(0, alive=False), mkstats(1, committed=2.0)]
        assert sched.place(req(), stats).shard_id == 1

    def test_no_survivor_raises_with_filter_detail(self):
        sched = FilterScheduler()
        stats = [mkstats(0, free=100), mkstats(1, free=100)]
        with pytest.raises(PlacementError, match="capacity"):
            sched.place(req(logical_blocks=640), stats)

    def test_rejections_are_recorded_per_filter(self):
        sched = FilterScheduler()
        stats = [mkstats(0, free=100), mkstats(1)]
        decision = sched.place(req(), stats)
        assert decision.rejected == {"capacity": (0,)}


class TestRandomPlacer:
    def test_deterministic_given_seed_and_order(self):
        def run():
            placer = RandomPlacer(seed=42)
            stats = [mkstats(i) for i in range(8)]
            return [placer.place(req(name=f"v{i}"), stats).shard_id for i in range(16)]

        assert run() == run()

    def test_respects_capacity(self):
        placer = RandomPlacer(seed=0)
        stats = [mkstats(0, free=100), mkstats(1)]
        for i in range(4):
            assert placer.place(req(name=f"v{i}"), stats).shard_id == 1


class TestVolumeRequest:
    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="profile"):
            VolumeRequest("v", 640, profile="bogus")

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            VolumeRequest("v", 0)
