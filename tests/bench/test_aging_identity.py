"""Aging-lite (unpriced) CPs must land the exact priced-aging state.

``build_aged_ssd_sim(unpriced_aging=True)`` skips stripe classification
and device-timing *outputs* during the aging phase — outputs that
``reset_measurement_state`` discards anyway — but every device write
still happens, so the post-aging bitmap bytes and FTL state (valid
pages, open units, erase counts) must be indistinguishable from a
fully priced aging run.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import build_aged_ssd_sim


def _small_aged(unpriced: bool):
    # Small but not tiny: age_filesystem batches 16384 churn ops per CP,
    # so the aggregate needs that much transient headroom above the fill.
    return build_aged_ssd_sim(
        n_groups=1,
        ndata=3,
        blocks_per_disk=32768,
        fill_fraction=0.55,
        churn_factor=1.0,
        seed=11,
        unpriced_aging=unpriced,
    )


class TestAgingLiteIdentity:
    def test_unpriced_aging_reaches_identical_state(self):
        priced = _small_aged(False)
        lite = _small_aged(True)
        assert priced.store.free_count == lite.store.free_count
        for gp, gl in zip(priced.store.groups, lite.store.groups):
            assert np.array_equal(
                gp.metafile.bitmap.raw_bytes, gl.metafile.bitmap.raw_bytes
            )
            assert not gp.unpriced and not gl.unpriced  # reset post-aging
            for dp, dl in zip(gp.devices, gl.devices):
                assert np.array_equal(dp._valid, dl._valid)
                assert np.array_equal(dp._valid_per_eb, dl._valid_per_eb)
                assert np.array_equal(dp.erase_counts, dl.erase_counts)
                assert sorted(dp._open) == sorted(dl._open)
                for unit in dp._open:
                    assert (
                        dp._open[unit].valid_at_open
                        == dl._open[unit].valid_at_open
                    )
                    assert dp._open[unit].credits == dl._open[unit].credits
        for name, vp in priced.vols.items():
            vl = lite.vols[name]
            assert np.array_equal(
                vp.metafile.bitmap.raw_bytes, vl.metafile.bitmap.raw_bytes
            )
            assert np.array_equal(vp.l2v, vl.l2v)
            assert np.array_equal(vp.v2p, vl.v2p)
