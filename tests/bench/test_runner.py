"""Tests for the parallel benchmark runner: unit planning, process-pool
vs serial determinism (the JSON documents must be byte-identical once
timing/host fields are stripped), result persistence, and the baseline
regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import (
    ALL_EXPERIMENTS,
    MACRO_BASELINE,
    SCHEMA,
    UnitSpec,
    compare_to_baseline,
    plan_units,
    run_bench,
    run_unit,
    strip_timing,
    write_results,
)

#: Small fast subset used for the expensive serial-vs-parallel check.
FAST_EXPERIMENTS = ["fig9", "macro"]


class TestPlanning:
    def test_covers_every_experiment_by_default(self):
        units = plan_units(quick=True)
        assert {u.experiment for u in units} == set(ALL_EXPERIMENTS)

    def test_plan_is_deterministic(self):
        assert plan_units(quick=True, seed=9) == plan_units(quick=True, seed=9)

    def test_canonical_seeds_match_figures(self):
        by_key = {u.key: u for u in plan_units(quick=True)}
        assert by_key["fig6/both caches"].seed == 42
        assert by_key["fig7/oltp"].seed == 24
        assert by_key["fig8/HDD-sized AA (4k stripes)"].seed == 99

    def test_base_seed_derives_distinct_per_unit_seeds(self):
        units = plan_units(quick=True, seed=7, experiments=["fig6"])
        seeds = [u.seed for u in units]
        assert len(set(seeds)) == len(seeds)
        again = plan_units(quick=True, seed=7, experiments=["fig6"])
        assert seeds == [u.seed for u in again]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            plan_units(experiments=["fig99"])


class TestDeterminism:
    def test_parallel_json_identical_to_serial_modulo_timing(self, tmp_path):
        serial = run_bench(quick=True, workers=1, experiments=FAST_EXPERIMENTS)
        parallel = run_bench(quick=True, workers=2, experiments=FAST_EXPERIMENTS)
        a = json.dumps(strip_timing(serial), indent=2, sort_keys=True)
        b = json.dumps(strip_timing(parallel), indent=2, sort_keys=True)
        assert a == b
        # The stripped documents really dropped the varying fields...
        assert "wall_s" not in a and '"host"' not in a
        # ...and the full documents carry them.
        assert "wall_s" in json.dumps(serial)

        # Persisted per-experiment files are byte-identical too.
        s_paths = write_results(
            serial,
            out_dir=str(tmp_path / "serial"),
            trajectory_path=str(tmp_path / "serial.json"),
        )
        p_paths = write_results(
            parallel,
            out_dir=str(tmp_path / "parallel"),
            trajectory_path=str(tmp_path / "parallel.json"),
        )
        for sp, pp in zip(s_paths[:-1], p_paths[:-1]):
            sdoc = json.loads(open(sp, encoding="utf-8").read())
            pdoc = json.loads(open(pp, encoding="utf-8").read())
            assert json.dumps(strip_timing(sdoc), sort_keys=True) == json.dumps(
                strip_timing(pdoc), sort_keys=True
            )

        # Regression gate: identical runs have no drifted metrics, and
        # a perturbed metric is caught.
        assert compare_to_baseline(parallel, serial) == []
        mutated = json.loads(json.dumps(serial))
        unit = mutated["units"]["macro/random-overwrite"]
        unit["metrics"]["cpu_us_per_op"] *= 1.01
        problems = compare_to_baseline(mutated, serial)
        assert problems and "cpu_us_per_op" in problems[0]

    def test_trajectory_document_shape(self, tmp_path):
        doc = run_bench(quick=True, workers=1, experiments=["fig9"])
        assert doc["schema"] == SCHEMA
        assert doc["quick"] is True
        assert set(doc["units"]) == {
            "fig9/HDD-sized AA (4k stripes)",
            "fig9/SMR AA (zone + AZCS aligned)",
        }
        for res in doc["units"].values():
            assert res["timing"]["wall_s"] > 0
            assert res["metrics"]["drive_mbps"] > 0
        paths = write_results(
            doc,
            out_dir=str(tmp_path),
            trajectory_path=str(tmp_path / "BENCH.json"),
        )
        per_exp = json.loads((tmp_path / "bench_fig9.json").read_text())
        assert per_exp["schema"] == SCHEMA
        assert per_exp["experiment"] == "fig9"
        assert (tmp_path / "BENCH.json").exists()
        assert len(paths) == 2


class TestUnits:
    def test_macro_unit_reports_phase_timing(self):
        res = run_unit(UnitSpec("macro", "random-overwrite", True, 42))
        assert res["timing"]["age_wall_s"] > 0
        assert res["timing"]["measure_wall_s"] > 0
        assert res["metrics"]["capacity_ops"] > 0
        assert set(MACRO_BASELINE) >= {"measure_wall_s", "capacity_ops"}

    def test_audited_unit_runs_the_invariant_auditor(self):
        res = run_unit(UnitSpec("fig9", "HDD-sized AA (4k stripes)", True, 3, True))
        assert res["audited"] is True
        assert res["metrics"]["blocks"] > 0


class TestBaselineGate:
    def test_missing_metric_reported(self):
        base = {"units": {"x": {"metrics": {"a": 1.0, "b": 2.0}}}}
        cur = {"units": {"x": {"metrics": {"a": 1.0}}}}
        problems = compare_to_baseline(cur, base)
        assert problems == ["missing metric units.x.metrics.b (baseline 2)"]

    def test_rtol_allows_small_drift(self):
        base = {"units": {"x": {"metrics": {"a": 100.0}}}}
        cur = {"units": {"x": {"metrics": {"a": 100.0 + 1e-7}}}}
        assert compare_to_baseline(cur, base, rtol=1e-6) == []
        assert compare_to_baseline(cur, base, rtol=1e-12) != []
