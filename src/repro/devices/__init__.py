"""Device models: HDD, SSD (block-mapped FTL), SMR, object store
(paper sections 2.6, 3.2; substitutions documented in DESIGN.md)."""

from .base import Device, DeviceStats, MediaType
from .hdd import HDD, HDDConfig
from .objectstore import ObjectStore, ObjectStoreConfig
from .smr import SMRConfig, SMRDrive
from .ssd import SSD, SSDConfig

__all__ = [
    "Device",
    "DeviceStats",
    "MediaType",
    "HDD",
    "HDDConfig",
    "ObjectStore",
    "ObjectStoreConfig",
    "SMRConfig",
    "SMRDrive",
    "SSD",
    "SSDConfig",
]
