"""Hard disk drive model: seeks plus streaming transfer.

The HDD properties that matter to the paper are captured with two
parameters: a fixed positioning cost per discontiguous write chain
(seek + rotational latency) and a per-block streaming transfer cost.
"Contiguous free space on devices allows long write chains ... writing
to heavily fragmented regions of storage reduces opportunities for long
write chains and hurts both write and subsequent read performance"
(paper section 2.4): under this model a CP that writes N blocks in C
chains costs ``C * seek + N * transfer``, so fragmentation (more
chains) directly inflates device busy time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Device

__all__ = ["HDDConfig", "HDD"]


@dataclass(frozen=True)
class HDDConfig:
    """Timing parameters for a nearline-class hard drive."""

    #: Average positioning cost (seek + half-rotation) in microseconds.
    seek_us: float = 6000.0
    #: Streaming transfer time per 4 KiB block (~150 MiB/s).
    transfer_us_per_block: float = 27.0


class HDD(Device):
    """Seek/transfer cost model for one hard drive."""

    def __init__(self, nblocks: int, config: HDDConfig | None = None, name: str = "hdd") -> None:
        super().__init__(nblocks, name)
        self.config = config or HDDConfig()

    def _write_cost(self, dbns: np.ndarray) -> float:
        chains = self.chains_of(dbns)
        self.stats.seeks += chains
        self.stats.device_blocks_written += int(dbns.size)
        return chains * self.config.seek_us + dbns.size * self.config.transfer_us_per_block

    def _read_cost(self, n_random: int, n_sequential: int) -> float:
        us = n_random * (self.config.seek_us + self.config.transfer_us_per_block)
        if n_sequential:
            us += self.config.seek_us + n_sequential * self.config.transfer_us_per_block
            self.stats.seeks += 1
        self.stats.seeks += n_random
        return us
