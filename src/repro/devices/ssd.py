"""Solid state drive model with an open-unit (hybrid block-mapped) FTL.

The paper's SSD results (sections 3.2.2 and 4.3) hinge on the flash
translation layer's behaviour around *erase units*: "the FTL must
first relocate all active data in the erase block elsewhere on the
drive and then erase the entire block before writing new data there."

We model a hybrid FTL that maps each logical erase-unit-sized range to
physical erase units and keeps a small number of units *open* for
streaming writes:

* writing into a closed unit **opens** it (evicting the least recently
  used open unit when at capacity);
* while a unit is open, arriving writes stream into it with no extra
  cost — consecutive CPs filling the same allocation area therefore
  pay nothing extra, which is exactly how WAFL writes an AA ("the
  write allocator picks an AA and then assigns all free VBNs from the
  AA in sequential order", section 3.1);
* when a unit **closes**, the logical blocks that were live when it
  opened and were neither overwritten nor trimmed during the session
  must be relocated (read + programmed), and the old unit is erased.

Consequences, matching the paper:

* filling a *fully free*, erase-unit-aligned AA costs exactly the host
  writes (write amplification ~1);
* filling an AA whose units are ``u`` fraction live relocates ``u`` of
  each unit once — WA ~ ``1/(1-u)`` — so directing writes to the
  *emptiest* AAs reduces WA (section 4.1.1's 1.77 -> 1.46);
* AAs smaller than the erase unit (Figure 4A) strand partially written
  units whose live remainder is relocated when the unit is evicted,
  the cost SSD AA sizing eliminates (Figure 4B, section 4.3).

WAFL/ONTAP notifies drives of freed blocks, so the CP engine calls
:meth:`SSD.trim` for freed physical blocks; without those trims the
device would consider stale COW data live and relocate it forever.

DESIGN.md section 1 documents why this substitution preserves the
paper's behaviour even though vendor FTLs differ in detail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.arrayops import group_counts
from ..common.constants import DEFAULT_ERASE_BLOCK_BLOCKS, DEFAULT_SSD_OVERPROVISIONING
from .base import Device

__all__ = ["SSDConfig", "SSD"]


@dataclass(frozen=True)
class SSDConfig:
    """Timing and geometry parameters for an enterprise SATA/SAS SSD."""

    #: Logical blocks per erase unit (default 512 x 4 KiB = 2 MiB).
    erase_block_blocks: int = DEFAULT_ERASE_BLOCK_BLOCKS
    #: Effective program time per 4 KiB block (~300 MiB/s effective
    #: stream for mid-range enterprise SATA/SAS under mixed load).
    program_us_per_block: float = 13.0
    #: Effective read time per 4 KiB block.
    read_us_per_block: float = 3.0
    #: Erase time per erase unit, amortized over internal parallelism.
    erase_us: float = 2000.0
    #: Open erase units the FTL streams into concurrently.
    max_open_units: int = 4
    #: Fraction of raw capacity hidden for FTL overprovisioning.  Kept
    #: for reporting; the relocation cost model does not depend on it,
    #: which mirrors the paper's point that good AA sizing is what
    #: allowed shipping drives with lower OP.
    overprovisioning: float = DEFAULT_SSD_OVERPROVISIONING
    #: Whether the host sends TRIM for freed blocks (ONTAP does).
    trim_enabled: bool = True


class _OpenUnit:
    """Bookkeeping for one open erase unit's write session."""

    __slots__ = ("valid_at_open", "credits")

    def __init__(self, valid_at_open: int) -> None:
        #: Live pages when the session opened (relocation liability).
        self.valid_at_open = valid_at_open
        #: Liability paid down during the session: live pages that were
        #: overwritten or trimmed no longer need relocation.
        self.credits = 0


class SSD(Device):
    """Open-unit hybrid-FTL SSD with write-amplification accounting."""

    def __init__(self, nblocks: int, config: SSDConfig | None = None, name: str = "ssd") -> None:
        super().__init__(nblocks, name)
        self.config = config or SSDConfig()
        eb = self.config.erase_block_blocks
        if eb <= 0:
            raise ValueError("erase_block_blocks must be positive")
        if self.config.max_open_units < 1:
            raise ValueError("max_open_units must be at least 1")
        self.n_erase_blocks = -(-self.nblocks // eb)
        #: Which logical blocks the device believes hold live data.
        self._valid = np.zeros(self.nblocks, dtype=bool)
        #: Live-page count per erase unit (incremental mirror of _valid).
        self._valid_per_eb = np.zeros(self.n_erase_blocks, dtype=np.int64)
        #: Open write sessions, in LRU order (dict preserves insertion).
        self._open: dict[int, _OpenUnit] = {}
        #: Erase cycles per erase unit (endurance metric).
        self.erase_counts = np.zeros(self.n_erase_blocks, dtype=np.int64)
        #: Cumulative pages relocated by the FTL.
        self.relocated_blocks = 0

    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """Cumulative device-writes / host-writes ratio."""
        return self.stats.write_amplification

    @property
    def open_units(self) -> tuple[int, ...]:
        """Erase units currently open (LRU first)."""
        return tuple(self._open)

    def live_fraction(self) -> float:
        """Fraction of logical blocks the device believes are live."""
        return float(self._valid_per_eb.sum()) / self.nblocks

    # ------------------------------------------------------------------
    def _close_unit(self, eb: int) -> float:
        """Close an open unit: relocate its unpaid liability, erase it."""
        sess = self._open.pop(eb)
        relocated = max(sess.valid_at_open - sess.credits, 0)
        self.relocated_blocks += relocated
        self.erase_counts[eb] += 1
        self.stats.device_blocks_written += relocated
        self.stats.blocks_read += relocated  # relocation reads
        c = self.config
        return (
            relocated * (c.program_us_per_block + c.read_us_per_block)
            + c.erase_us
        )

    def flush_open_units(self) -> float:
        """Close every open session (power-down / end-of-run hook)."""
        us = 0.0
        for eb in list(self._open):
            us += self._close_unit(eb)
        self.stats.busy_us += us
        return us

    def _touch_open(self, eb: int) -> float:
        """Ensure ``eb`` has an open session (LRU-evicting as needed);
        returns the cost of any closes this forced."""
        us = 0.0
        if eb in self._open:
            sess = self._open.pop(eb)  # move to MRU position
            self._open[eb] = sess
            return us
        while len(self._open) >= self.config.max_open_units:
            lru = next(iter(self._open))
            us += self._close_unit(lru)
        self._open[eb] = _OpenUnit(int(self._valid_per_eb[eb]))
        return us

    # ------------------------------------------------------------------
    def _write_cost(self, dbns: np.ndarray) -> float:
        eb_size = self.config.erase_block_blocks
        ebs = dbns // eb_size
        touched, written_per_eb = group_counts(ebs, self.n_erase_blocks)
        already_valid = self._valid[dbns]
        # Live pages per touched unit overwritten by this batch, aligned
        # with `touched` ordering: they pay down relocation liability.
        if already_valid.any():
            overwritten = np.bincount(
                ebs[already_valid], minlength=self.n_erase_blocks
            )[touched]
        else:
            overwritten = np.zeros(touched.size, dtype=np.int64)

        us = 0.0
        open_units = self._open
        max_open = self.config.max_open_units
        for eb, ow in zip(touched.tolist(), overwritten.tolist()):
            # Inlined _touch_open: this runs once per touched unit per
            # write batch and dominates the device hot path.
            sess = open_units.pop(eb, None)
            if sess is None:
                while len(open_units) >= max_open:
                    us += self._close_unit(next(iter(open_units)))
                sess = _OpenUnit(int(self._valid_per_eb[eb]))
            open_units[eb] = sess
            sess.credits += ow

        # State update: everything written is now valid.
        self._valid[dbns] = True
        self._valid_per_eb[touched] += written_per_eb - overwritten

        self.stats.device_blocks_written += int(dbns.size)
        us += dbns.size * self.config.program_us_per_block
        return us

    def _read_cost(self, n_random: int, n_sequential: int) -> float:
        # Flash has no positioning penalty worth modeling at 4 KiB.
        return (n_random + n_sequential) * self.config.read_us_per_block

    def trim(self, dbns: np.ndarray) -> None:
        """Drop validity for freed logical blocks (host TRIM/UNMAP).

        Trims against an *open* unit pay down its relocation liability:
        the freed pages no longer need to move when the unit closes.
        """
        if not self.config.trim_enabled:
            return
        dbns = np.asarray(dbns, dtype=np.int64)
        if dbns.size == 0:
            return
        live = dbns[self._valid[dbns]]
        if live.size == 0:
            return
        self._valid[live] = False
        ebs, counts = group_counts(
            live // self.config.erase_block_blocks, self.n_erase_blocks
        )
        self._valid_per_eb[ebs] -= counts
        # A random free batch touches many units but at most
        # max_open_units (a handful) can have sessions: probe the open
        # dict against the sorted touched array, not the reverse.
        for eb, sess in self._open.items():
            i = int(np.searchsorted(ebs, eb))
            if i < ebs.size and ebs[i] == eb:
                sess.credits += int(counts[i])
