"""Object store model: natively redundant remote storage.

Fabric Pool aggregates combine SSD RAID groups with an on-premises or
cloud object store (paper section 2.1).  Object stores provide their
own redundancy, so WAFL lays data out with RAID-agnostic (linear) AAs
and "must only attempt to write to consecutive blocks on such storage"
(paper section 3.1) — contiguous runs coalesce into fewer, larger PUT
operations, and PUT round-trips dominate cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Device

__all__ = ["ObjectStoreConfig", "ObjectStore"]


@dataclass(frozen=True)
class ObjectStoreConfig:
    """Cost parameters for a (possibly remote) object store."""

    #: Round-trip overhead per PUT/GET operation.
    put_us: float = 20000.0
    #: Per-block streaming cost within an operation (~400 MiB/s link).
    transfer_us_per_block: float = 10.0
    #: Maximum blocks coalesced into one PUT (object size cap).
    max_blocks_per_put: int = 1024
    #: Concurrent in-flight operations the store absorbs; busy time is
    #: divided by this factor (client-side parallelism).
    concurrency: int = 8


class ObjectStore(Device):
    """PUT/GET round-trip cost model for object storage."""

    def __init__(
        self, nblocks: int, config: ObjectStoreConfig | None = None, name: str = "objstore"
    ) -> None:
        super().__init__(nblocks, name)
        self.config = config or ObjectStoreConfig()

    def _write_cost(self, dbns: np.ndarray) -> float:
        c = self.config
        chains = self.chains_of(dbns)
        # Each chain is split into PUTs of at most max_blocks_per_put.
        n_puts = chains + int(dbns.size // c.max_blocks_per_put)
        self.stats.seeks += n_puts
        self.stats.device_blocks_written += int(dbns.size)
        raw = n_puts * c.put_us + dbns.size * c.transfer_us_per_block
        return raw / max(c.concurrency, 1)

    def _read_cost(self, n_random: int, n_sequential: int) -> float:
        c = self.config
        n_gets = n_random + (1 if n_sequential else 0)
        self.stats.seeks += n_gets
        raw = n_gets * c.put_us + (n_random + n_sequential) * c.transfer_us_per_block
        return raw / max(c.concurrency, 1)
