"""Device model base class and shared accounting.

The paper's evaluation runs on real hardware; our substitute device
models (DESIGN.md section 1) compute the *time cost* of each
consistency point's I/O from first principles — seeks, transfers,
flash programs/erases, FTL relocations, shingle-zone interventions —
so latency-versus-throughput curves inherit the same structure.

All device models share a convention: :meth:`write_blocks` receives the
sorted, unique device block numbers (DBNs) written in one CP and
returns the modeled busy time in microseconds, updating cumulative
statistics as a side effect.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = ["Device", "DeviceStats", "MediaType"]


class MediaType(enum.Enum):
    """Storage media families the paper evaluates (section 2.1)."""

    HDD = "hdd"
    SSD = "ssd"
    SMR = "smr"
    OBJECT = "object"


@dataclass
class DeviceStats:
    """Cumulative I/O statistics for one device."""

    #: Blocks the host (WAFL) asked the device to write.
    host_blocks_written: int = 0
    #: Blocks physically written by the device (>= host writes for SSDs
    #: due to FTL relocation; the ratio is write amplification).
    device_blocks_written: int = 0
    #: Blocks read (parity computation, FTL relocation reads, client reads).
    blocks_read: int = 0
    #: Positioning operations (seeks / chain starts / PUT round-trips).
    seeks: int = 0
    #: Total modeled busy time in microseconds.
    busy_us: float = 0.0
    #: Write calls (one per CP that touched this device).
    write_calls: int = 0

    @property
    def write_amplification(self) -> float:
        """device writes / host writes (1.0 when no amplification)."""
        if self.host_blocks_written == 0:
            return 1.0
        return self.device_blocks_written / self.host_blocks_written


class Device(abc.ABC):
    """A single storage device with a time-cost model.

    Subclasses implement :meth:`_write_cost` (and optionally extend
    :meth:`trim` / :meth:`read_blocks`); cumulative accounting lives
    here so every model reports uniformly.
    """

    def __init__(self, nblocks: int, name: str = "dev") -> None:
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        self.nblocks = int(nblocks)
        self.name = name
        self.stats = DeviceStats()
        #: Whole-device failure flag (:mod:`repro.faults`).  A failed
        #: device absorbs no I/O; the owning RAID group routes its reads
        #: through parity reconstruction and skips its writes.
        self.failed = False

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the device failed (injected whole-disk fault)."""
        self.failed = True

    def revive(self) -> None:
        """Bring a failed device back (post-reconstruction replacement)."""
        self.failed = False

    # ------------------------------------------------------------------
    def write_blocks(self, dbns: np.ndarray) -> float:
        """Write the given sorted unique DBNs; returns busy time (us)."""
        dbns = np.asarray(dbns, dtype=np.int64)
        if dbns.size == 0 or self.failed:
            return 0.0
        us = self._write_cost(dbns)
        self.stats.host_blocks_written += int(dbns.size)
        self.stats.busy_us += us
        self.stats.write_calls += 1
        obs.count("device.blocks_written", int(dbns.size), device=self.name)
        return us

    def read_blocks(self, n_random: int, n_sequential: int = 0) -> float:
        """Charge ``n_random`` random and ``n_sequential`` streaming
        block reads; returns busy time (us)."""
        if self.failed:
            return 0.0
        us = self._read_cost(n_random, n_sequential)
        self.stats.blocks_read += n_random + n_sequential
        self.stats.busy_us += us
        return us

    def trim(self, dbns: np.ndarray) -> None:
        """Notify the device that blocks no longer hold live data.

        Only translation-layer devices (SSD) care; default is a no-op.
        """

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _write_cost(self, dbns: np.ndarray) -> float:
        """Model-specific cost of writing sorted unique ``dbns``."""

    @abc.abstractmethod
    def _read_cost(self, n_random: int, n_sequential: int) -> float:
        """Model-specific cost of the given read mix."""

    # ------------------------------------------------------------------
    @staticmethod
    def chains_of(dbns: np.ndarray) -> int:
        """Number of maximal consecutive runs in sorted unique DBNs."""
        if dbns.size == 0:
            return 0
        return 1 + int(np.count_nonzero(np.diff(dbns) != 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, nblocks={self.nblocks})"
