"""Measurement layer: CP metrics, CPU model, latency-throughput curves."""

from .cpu import CpuModel
from .latency import LoadPoint, latency_throughput_curve, peak_throughput, system_curve
from .stats import CPStats, MetricsLog

__all__ = [
    "CpuModel",
    "LoadPoint",
    "latency_throughput_curve",
    "peak_throughput",
    "system_curve",
    "CPStats",
    "MetricsLog",
]
