"""Per-CP and cumulative simulation metrics.

Every consistency point produces a :class:`CPStats` record; a
:class:`MetricsLog` accumulates them and derives the quantities the
paper reports: mean selected-AA free fraction, full-stripe fraction,
metafile blocks updated per operation, write amplification, per-op
CPU and device cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CPStats", "MetricsLog"]

_MISSING = object()


@dataclass
class CPStats:
    """Measurements from one consistency point."""

    cp_index: int = 0
    #: Client operations absorbed by this CP.
    ops: int = 0
    #: Physical blocks written (data written to devices by this CP).
    physical_blocks: int = 0
    #: Virtual (FlexVol) block numbers assigned.
    virtual_blocks: int = 0
    #: Blocks freed (delayed frees applied at this CP boundary).
    blocks_freed: int = 0
    #: Distinct bitmap-metafile blocks dirtied (all metafiles).
    metafile_blocks_dirtied: int = 0
    #: Stripe accounting across all RAID groups.
    full_stripes: int = 0
    partial_stripes: int = 0
    tetrises: int = 0
    write_chains: int = 0
    parity_reads: int = 0
    #: Extra reads forced by degraded-mode RAID (parity reconstruction
    #: of blocks on failed members; see :mod:`repro.faults`).
    reconstruction_reads: int = 0
    #: Stripes written while a RAID group was missing devices.
    degraded_stripes: int = 0
    #: Device busy time: bottleneck (max over devices) and sum.
    device_busy_us: float = 0.0
    device_total_us: float = 0.0
    #: AA-cache maintenance operations performed at the CP boundary.
    cache_ops: int = 0
    #: Allocation-area switches made while assigning this CP's blocks.
    aa_switches: int = 0
    #: Bitmap VBNs spanned by the CP's allocation scans (the inverse-
    #: free-density cost driver; see :mod:`repro.sim.cpu`).
    spanned_blocks: int = 0
    #: Modeled WAFL CPU time for this CP (see :mod:`repro.sim.cpu`).
    cpu_us: float = 0.0
    #: Client operations by traffic source (tenant name) — empty for
    #: single-source workloads.  Lets the traffic engine charge CP
    #: service back to the tenants whose ops rode in this CP.
    ops_by_source: dict[str, int] = field(default_factory=dict)
    #: Tiered aggregates only: physical blocks written / freed per tier
    #: label this CP (empty for single-tier stores).
    blocks_by_tier: dict[str, int] = field(default_factory=dict)
    freed_by_tier: dict[str, int] = field(default_factory=dict)

    @property
    def full_stripe_fraction(self) -> float:
        total = self.full_stripes + self.partial_stripes
        return self.full_stripes / total if total else 0.0

    def accounting_violations(self) -> list[str]:
        """Field-level sanity failures of this record (empty = sane).

        Cheap self-consistency checks the invariant auditor folds into
        its per-CP report: counters must be non-negative and the summed
        device time must cover the bottleneck device time.
        """
        out: list[str] = []
        for name in (
            "ops",
            "physical_blocks",
            "virtual_blocks",
            "blocks_freed",
            "metafile_blocks_dirtied",
            "full_stripes",
            "partial_stripes",
            "tetrises",
            "write_chains",
            "parity_reads",
            "reconstruction_reads",
            "degraded_stripes",
            "cache_ops",
            "aa_switches",
            "spanned_blocks",
        ):
            value = getattr(self, name)
            if value < 0:
                out.append(f"CPStats.{name} is negative ({value})")
        if self.device_busy_us < 0 or self.device_total_us < 0 or self.cpu_us < 0:
            out.append("negative time counter in CPStats")
        if self.device_total_us + 1e-6 < self.device_busy_us:
            out.append(
                f"device_total_us {self.device_total_us} < bottleneck "
                f"device_busy_us {self.device_busy_us}"
            )
        return out


class MetricsLog:
    """Accumulates :class:`CPStats` and exposes run-level summaries.

    Read metrics through :meth:`query` — one accessor for summary
    scalars, raw recorded series, per-tenant traffic series (via the
    ``tenant=`` tag), and the CPU phase breakdown.
    """

    #: Summary scalars resolvable by :meth:`query` name.
    SUMMARY_METRICS = frozenset(
        {
            "total_ops",
            "total_physical_blocks",
            "total_cpu_us",
            "total_device_busy_us",
            "total_reconstruction_reads",
            "total_degraded_stripes",
            "cpu_us_per_op",
            "device_us_per_op",
            "service_us_per_op",
            "metafile_blocks_per_op",
            "full_stripe_fraction",
            "mean_chain_length",
        }
    )

    def __init__(self) -> None:
        self.cps: list[CPStats] = []
        # Named time series recorded alongside the per-CP records — e.g.
        # the traffic engine's per-tenant ``traffic.<name>.p99_ms`` and
        # ``traffic.<name>.achieved_ops_s`` (one sample per CP interval).
        self._series: dict[str, list[float]] = {}

    def add(self, stats: CPStats) -> None:
        self.cps.append(stats)

    def record_point(self, name: str, value: float) -> None:
        """Append one sample to the named time series."""
        self._series.setdefault(name, []).append(float(value))

    def reset_series(self) -> None:
        """Drop all recorded time series (the per-CP records stay)."""
        self._series.clear()

    # ------------------------------------------------------------------
    def query(self, metric: str, *, default=_MISSING, **tags):
        """Unified metric accessor.

        * ``query("cpu_us_per_op")`` — any summary scalar in
          :attr:`SUMMARY_METRICS`.
        * ``query("p99_ms", tenant="gold")`` — per-tenant traffic series
          (resolves to the recorded ``traffic.gold.p99_ms`` series).
        * ``query("traffic.gold.p99_ms")`` — any raw recorded series by
          its full name.
        * ``query("cpu_phase_us", model=cpu_model)`` — the CPU phase
          breakdown dict; add ``phase="blocks"`` for one phase's total.

        Series are returned as copies.  Unknown metrics raise
        :class:`KeyError` unless ``default=`` is given.
        """
        if metric == "cpu_phase_us":
            model = tags.pop("model", None)
            phase = tags.pop("phase", None)
            if tags:
                raise TypeError(f"unknown tags for {metric!r}: {sorted(tags)}")
            if model is None:
                raise TypeError("query('cpu_phase_us') requires model=<CpuModel>")
            phases = self._cpu_phase_us(model)
            if phase is None:
                return phases
            if phase in phases:
                return phases[phase]
            if default is not _MISSING:
                return default
            raise KeyError(
                f"unknown CPU phase {phase!r}; available: {sorted(phases)}"
            )
        tenant = tags.pop("tenant", None)
        if tags:
            raise TypeError(f"unknown tags for {metric!r}: {sorted(tags)}")
        if tenant is not None:
            key = f"traffic.{tenant}.{metric}"
            if key in self._series:
                return list(self._series[key])
            if default is not _MISSING:
                return default
            raise KeyError(
                f"no series {key!r} recorded; available: {sorted(self._series)}"
            )
        if metric in self.SUMMARY_METRICS:
            return getattr(self, metric)
        if metric in self._series:
            return list(self._series[metric])
        if default is not _MISSING:
            return default
        raise KeyError(
            f"unknown metric {metric!r}; summary metrics: "
            f"{sorted(self.SUMMARY_METRICS)}; recorded series: "
            f"{sorted(self._series)}"
        )

    # ------------------------------------------------------------------
    def _sum(self, attr: str) -> float:
        return float(sum(getattr(c, attr) for c in self.cps))

    @property
    def total_ops(self) -> int:
        return int(self._sum("ops"))

    @property
    def total_physical_blocks(self) -> int:
        return int(self._sum("physical_blocks"))

    @property
    def total_cpu_us(self) -> float:
        return self._sum("cpu_us")

    @property
    def total_device_busy_us(self) -> float:
        return self._sum("device_busy_us")

    @property
    def total_reconstruction_reads(self) -> int:
        """Degraded-mode reconstruction reads across the run."""
        return int(self._sum("reconstruction_reads"))

    @property
    def total_degraded_stripes(self) -> int:
        """Stripes written in degraded RAID mode across the run."""
        return int(self._sum("degraded_stripes"))

    @property
    def cpu_us_per_op(self) -> float:
        """Mean WAFL CPU microseconds per client operation — the
        "computational overhead per operation" of section 4.1.2."""
        ops = self.total_ops
        return self.total_cpu_us / ops if ops else 0.0

    @property
    def device_us_per_op(self) -> float:
        """Mean bottleneck-device microseconds per client operation."""
        ops = self.total_ops
        return self.total_device_busy_us / ops if ops else 0.0

    @property
    def service_us_per_op(self) -> float:
        """Per-op service time: CPU plus bottleneck device time.  This
        is the quantity the latency model converts into
        latency-vs-throughput curves."""
        return self.cpu_us_per_op + self.device_us_per_op

    @property
    def metafile_blocks_per_op(self) -> float:
        ops = self.total_ops
        return self._sum("metafile_blocks_dirtied") / ops if ops else 0.0

    @property
    def full_stripe_fraction(self) -> float:
        full = self._sum("full_stripes")
        total = full + self._sum("partial_stripes")
        return full / total if total else 0.0

    @property
    def mean_chain_length(self) -> float:
        chains = self._sum("write_chains")
        return self.total_physical_blocks / chains if chains else 0.0

    def _cpu_phase_us(self, cpu_model) -> dict[str, float]:
        """Total modeled CPU per pipeline phase across the run.

        Re-derives each CP's charge decomposition from its counted
        events via ``cpu_model.cp_cpu_breakdown`` (the same inputs
        ``run_cp`` used), so the phase totals sum to ``total_cpu_us``.
        """
        totals: dict[str, float] = {}
        for c in self.cps:
            parts = cpu_model.cp_cpu_breakdown(
                ops=c.ops,
                blocks=c.physical_blocks + c.virtual_blocks,
                metafile_blocks=c.metafile_blocks_dirtied,
                aa_switches=c.aa_switches,
                cache_ops=c.cache_ops,
                spanned_blocks=c.spanned_blocks,
            )
            for name, us in parts.items():
                totals[name] = totals.get(name, 0.0) + us
        return totals

    def tail(self, n: int) -> "MetricsLog":
        """Metrics over the last ``n`` CPs (steady-state window)."""
        out = MetricsLog()
        out.cps = self.cps[-n:]
        return out

    def summary(self) -> dict[str, float]:
        """Flat dict of headline metrics (benchmark table rows)."""
        return {
            "ops": float(self.total_ops),
            "cps": float(len(self.cps)),
            "physical_blocks": float(self.total_physical_blocks),
            "cpu_us_per_op": self.cpu_us_per_op,
            "device_us_per_op": self.device_us_per_op,
            "service_us_per_op": self.service_us_per_op,
            "metafile_blocks_per_op": self.metafile_blocks_per_op,
            "full_stripe_fraction": self.full_stripe_fraction,
            "mean_chain_length": self.mean_chain_length,
        }
