"""Latency-versus-throughput curve generation.

The paper's Figures 6, 8 and 9 plot client-observed latency against
achieved per-client throughput as offered load increases.  Our
substitute for the Fibre Channel testbed (DESIGN.md section 1) is a
standard open-loop queueing transform: the simulator measures a
*service time per operation* (WAFL CPU + bottleneck device time), and
an M/M/1-shaped curve converts offered load into (achieved throughput,
latency) points:

* below saturation, latency ~ ``s / (1 - rho)`` — flat then rising;
* at and past saturation, achieved throughput pins at capacity and
  latency grows with the overload factor (queue build-up).

Absolute milliseconds depend on the device constants, but the relative
positions of two configurations — who sustains more load before the
knee, and at what latency — depend only on their measured service
times, which is exactly the comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LoadPoint",
    "latency_throughput_curve",
    "system_curve",
    "peak_throughput",
    "degraded_read_amplification",
    "degraded_curve",
]


@dataclass(frozen=True)
class LoadPoint:
    """One point of a latency-throughput sweep."""

    #: Offered load per client (ops/s).
    offered_per_client: float
    #: Achieved throughput per client (ops/s).
    achieved_per_client: float
    #: Mean client-observed latency (ms).
    latency_ms: float

    def as_row(self) -> tuple[float, float, float]:
        return (self.offered_per_client, self.achieved_per_client, self.latency_ms)


def latency_throughput_curve(
    service_us_per_op: float,
    offered_per_client: np.ndarray | list[float],
    *,
    nclients: int = 16,
    rho_cap: float = 0.98,
) -> list[LoadPoint]:
    """Generate a latency-vs-achieved-throughput sweep.

    All throughput values are **per client**: each of the ``nclients``
    concurrent clients offers ``offered_per_client`` ops/s, so the
    server sees ``offered_per_client * nclients`` ops/s total.  The
    *knee* of the resulting curve — the saturation point where achieved
    throughput stops tracking offered load and latency turns upward —
    sits where total offered load reaches the whole-server capacity
    ``1e6 / service_us_per_op`` ops/s, i.e. at
    ``capacity / nclients`` ops/s per client.  Past the knee, achieved
    throughput pins there while latency grows linearly with the
    overload factor.  :func:`peak_throughput` extracts the knee point
    from a sweep; the event-driven engine in :mod:`repro.traffic` must
    reproduce the same knee from the same measured service time (the
    cross-validation test pins agreement to 10%).

    Parameters
    ----------
    service_us_per_op:
        Measured per-operation service time, microseconds (CPU +
        bottleneck device; :attr:`repro.sim.stats.MetricsLog.service_us_per_op`).
        For a multi-core server use :func:`system_curve`, which
        separates CPU capacity from device capacity.
    offered_per_client:
        Offered load levels to sweep, ops/s per client.
    nclients:
        Number of concurrent clients (the paper plots per-client rates).
    rho_cap:
        Utilization ceiling for the queueing term; keeps the
        below-saturation latency finite at the knee.

    Returns
    -------
    One :class:`LoadPoint` per offered level — offered and achieved
    throughput in ops/s per client, mean latency in milliseconds.
    """
    if service_us_per_op <= 0:
        raise ValueError("service time must be positive")
    capacity = 1e6 / service_us_per_op  # ops/s, whole server
    points: list[LoadPoint] = []
    for load in np.asarray(offered_per_client, dtype=np.float64):
        offered_total = load * nclients
        rho = offered_total / capacity
        if rho < rho_cap:
            latency_us = service_us_per_op / (1.0 - rho)
            achieved = load
        else:
            # Saturated: throughput pins at capacity; queueing delay
            # grows with the overload factor.
            achieved = capacity / nclients
            latency_us = service_us_per_op / (1.0 - rho_cap) * max(rho, 1.0)
        points.append(LoadPoint(float(load), float(achieved), float(latency_us) / 1000.0))
    return points


def system_curve(
    cpu_us_per_op: float,
    device_us_per_op: float,
    offered_per_client: np.ndarray | list[float],
    *,
    nclients: int = 16,
    cores: int = 20,
    rho_cap: float = 0.98,
) -> list[LoadPoint]:
    """Latency-throughput sweep for a multi-core server.

    The paper's testbed is a 20-core midrange system (section 4.1):
    WAFL's CP pipeline parallelizes across cores, so CPU capacity is
    ``cores / cpu_us_per_op`` while the (already parallel-summed)
    bottleneck-device capacity is ``1 / device_us_per_op``.  Whichever
    resource saturates first pins throughput; a single operation's
    service latency is still the sum of its CPU and device components.
    """
    if cpu_us_per_op < 0 or device_us_per_op < 0:
        raise ValueError("per-op costs must be non-negative")
    cpu_capacity = cores * 1e6 / cpu_us_per_op if cpu_us_per_op else float("inf")
    dev_capacity = 1e6 / device_us_per_op if device_us_per_op else float("inf")
    capacity = min(cpu_capacity, dev_capacity)
    service_us = cpu_us_per_op + device_us_per_op
    points: list[LoadPoint] = []
    for load in np.asarray(offered_per_client, dtype=np.float64):
        offered_total = load * nclients
        rho = offered_total / capacity
        if rho < rho_cap:
            latency_us = service_us / (1.0 - rho)
            achieved = load
        else:
            achieved = capacity / nclients
            latency_us = service_us / (1.0 - rho_cap) * max(rho, 1.0)
        points.append(LoadPoint(float(load), float(achieved), float(latency_us) / 1000.0))
    return points


def degraded_read_amplification(ndata: int, nparity: int, failed_disks: int) -> float:
    """Expected device-read amplification while a RAID group is
    missing ``failed_disks`` members.

    A client read landing on a surviving member costs one device read;
    a read landing on a failed member must be reconstructed from all
    surviving members (``ndisks - failed`` reads).  With reads spread
    uniformly over members, the expectation is::

        1 + (failed / ndisks) * (survivors - 1)

    Amplification is 1.0 for a healthy group and grows toward the
    survivor count as more members fail (within the parity budget).
    """
    ndisks = ndata + nparity
    if not 0 <= failed_disks <= nparity:
        raise ValueError(
            f"failed_disks must be within the parity budget [0, {nparity}], "
            f"got {failed_disks}"
        )
    survivors = ndisks - failed_disks
    return 1.0 + (failed_disks / ndisks) * (survivors - 1)


def degraded_curve(
    service_us_per_op: float,
    offered_per_client: np.ndarray | list[float],
    *,
    ndata: int,
    nparity: int,
    failed_disks: int,
    device_fraction: float = 1.0,
    nclients: int = 16,
    rho_cap: float = 0.98,
) -> list[LoadPoint]:
    """Latency-throughput sweep for a degraded RAID group.

    Scales the device component of the measured service time (the
    ``device_fraction`` share of ``service_us_per_op``) by the
    degraded read amplification, leaving the CPU share unchanged —
    the modeled latency cost of running with failed members that
    :func:`repro.raid.parity.analyze_raid_writes` charges per CP.
    """
    amp = degraded_read_amplification(ndata, nparity, failed_disks)
    if not 0.0 <= device_fraction <= 1.0:
        raise ValueError(f"device_fraction must be in [0, 1], got {device_fraction}")
    device_us = service_us_per_op * device_fraction
    degraded_service = service_us_per_op - device_us + device_us * amp
    return latency_throughput_curve(
        degraded_service, offered_per_client, nclients=nclients, rho_cap=rho_cap
    )


def peak_throughput(points: list[LoadPoint]) -> LoadPoint:
    """The knee of a latency-throughput sweep.

    Returns the point with the highest *achieved per-client* throughput
    (ops/s); among points achieving it — every saturated point pins at
    ``capacity / nclients``, so ties are common — the one with the
    lowest latency wins.  That is the knee as the paper reports it: the
    last operating point before queueing delay departs from the flat
    region, a.k.a. the "peak load" row of Figures 6/8/9.  The returned
    :class:`LoadPoint` keeps per-client units; multiply
    ``achieved_per_client`` by the sweep's ``nclients`` for the
    whole-server saturation throughput.
    """
    if not points:
        raise ValueError("empty sweep")
    return max(points, key=lambda p: (p.achieved_per_client, -p.latency_ms))
