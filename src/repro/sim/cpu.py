"""WAFL CPU cost model.

The paper measures "the total CPU cycles used by the WAFL file system
code path per client operation" (section 4.1.2: 309 us/op without the
FlexVol AA cache, 293 us/op with it) and reports that "only about
0.002% of the total CPU cycles was spent maintaining each of the ...
AA caches".  We model per-CP CPU as a sum of per-component charges
whose coefficients are calibrated so an SSD random-overwrite workload
lands in the paper's 250-350 us/op band; the *differences* between
configurations then emerge from the counted events (metafile blocks
dirtied, AA switches, cache maintenance ops), not from tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuModel"]


@dataclass(frozen=True)
class CpuModel:
    """Coefficients for the per-CP CPU charge (all microseconds)."""

    #: Fixed WAFL code-path cost per client operation (message handling,
    #: buffer lookups, inode updates).
    base_us_per_op: float = 190.0
    #: Per data block processed in the CP (checksums, buffer flushing).
    us_per_block: float = 8.0
    #: Per bitmap-metafile block dirtied: each one is itself a COW
    #: block that must be checksummed, written, and re-allocated, which
    #: is why colocating allocations matters (paper section 2.5).
    us_per_metafile_block: float = 400.0
    #: Per AA switch (loading the AA's bitmap region, cache pop).
    us_per_aa_switch: float = 50.0
    #: Per AA-cache maintenance operation (heap push/pop, HBPS move).
    us_per_cache_op: float = 0.15
    #: Per VBN of bitmap range *spanned* by allocations.  Assigning B
    #: blocks from AAs whose free density is d spans ~B/d VBNs of
    #: bitmap, so this charge models the allocation-path work that
    #: scales inversely with the chosen AA's emptiness (bit examination,
    #: buffer-cache lookups of metafile blocks, summary updates).  It is
    #: the CPU-side mechanism behind section 4.1.2's 309 -> 293 us/op
    #: improvement: emptier AAs yield assignable VBNs at a higher rate.
    us_per_spanned_block: float = 5.0

    def cp_cpu_us(
        self,
        *,
        ops: int,
        blocks: int,
        metafile_blocks: int,
        aa_switches: int = 0,
        cache_ops: int = 0,
        spanned_blocks: int = 0,
    ) -> float:
        """Modeled CPU time for one consistency point."""
        return (
            ops * self.base_us_per_op
            + blocks * self.us_per_block
            + metafile_blocks * self.us_per_metafile_block
            + aa_switches * self.us_per_aa_switch
            + cache_ops * self.us_per_cache_op
            + spanned_blocks * self.us_per_spanned_block
        )

    def cp_cpu_breakdown(
        self,
        *,
        ops: int,
        blocks: int,
        metafile_blocks: int,
        aa_switches: int = 0,
        cache_ops: int = 0,
        spanned_blocks: int = 0,
    ) -> dict[str, float]:
        """Per-phase decomposition of :meth:`cp_cpu_us` (same inputs).

        The values sum to ``cp_cpu_us(...)``; ``repro profile`` reports
        them alongside the wall-clock profile so modeled CPU can be
        attributed to pipeline phases.
        """
        return {
            "client_ops": ops * self.base_us_per_op,
            "block_processing": blocks * self.us_per_block,
            "metafile_updates": metafile_blocks * self.us_per_metafile_block,
            "aa_switches": aa_switches * self.us_per_aa_switch,
            "cache_maintenance": cache_ops * self.us_per_cache_op,
            "bitmap_scan": spanned_blocks * self.us_per_spanned_block,
        }

    def cache_maintenance_us(self, cache_ops: int) -> float:
        """CPU attributable to AA-cache maintenance alone (for the
        0.002%-of-cycles claim of section 4.1.2)."""
        return cache_ops * self.us_per_cache_op
