"""Tenant arrival processes for the discrete-event traffic engine.

An arrival process is an iterator over operation arrival timestamps in
simulated microseconds.  Two shapes cover the scenarios the engine
ships: memoryless Poisson clients (the open-loop load the paper's
latency-throughput sweeps assume) and bursty on/off clients (the
noisy-neighbor pattern, where a tenant alternates quiet periods with
bursts far above its mean rate).

Every process draws from a seeded :class:`numpy.random.Generator`, so a
traffic run is bit-for-bit reproducible from its scenario seed.
"""

from __future__ import annotations

import abc

import numpy as np

from ..common.rng import make_rng

__all__ = ["ArrivalProcess", "PoissonArrivals", "OnOffArrivals"]


class ArrivalProcess(abc.ABC):
    """Generates successive arrival times (simulated microseconds)."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self.rng = make_rng(seed)

    @abc.abstractmethod
    def next_after(self, t_us: float) -> float:
        """The next arrival time strictly after ``t_us``."""

    def window(self, first_us: float, until_us: float) -> tuple[np.ndarray, float]:
        """``(arrivals, next)``: the already-drawn arrival ``first_us``
        plus every subsequent arrival before ``until_us``, and the first
        arrival at or past it.

        The base implementation iterates :meth:`next_after`, so it
        consumes the generator exactly as the scalar admission loop
        does; subclasses may batch the draws as long as the produced
        times are bit-identical (the engine's vectorized/scalar identity
        guarantee rests on that).
        """
        if first_us >= until_us:
            return np.empty(0, dtype=np.float64), first_us
        out = []
        t = first_us
        while t < until_us:
            out.append(t)
            t = self.next_after(t)
        return np.asarray(out, dtype=np.float64), t

    @property
    @abc.abstractmethod
    def mean_rate_ops_s(self) -> float:
        """Long-run mean arrival rate (ops/s) — the tenant's offered
        load, used to derive CP intervals and report offered columns."""


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate (exponential gaps)."""

    def __init__(
        self, rate_ops_s: float, *, seed: int | np.random.Generator | None = None
    ) -> None:
        super().__init__(seed)
        if rate_ops_s <= 0:
            raise ValueError("rate_ops_s must be positive")
        self.rate_ops_s = float(rate_ops_s)
        self._mean_gap_us = 1e6 / self.rate_ops_s
        # Pre-drawn arrival times not yet handed out.  Batch draws pull
        # the same value stream from the generator as repeated scalar
        # draws (numpy fills element-wise from the same sampler), and
        # ``np.add.accumulate`` reproduces the scalar left-to-right
        # addition chain, so buffered times are bit-identical to what
        # ``next_after`` would have returned call by call.
        self._buf: np.ndarray | None = None
        self._pos = 0

    def _refill(self, last_us: float, n: int) -> None:
        draws = self.rng.exponential(self._mean_gap_us, size=n)
        self._buf = np.add.accumulate(np.concatenate(([last_us], draws)))[1:]
        self._pos = 0

    def next_after(self, t_us: float) -> float:
        if self._buf is not None:
            v = float(self._buf[self._pos])
            self._pos += 1
            if self._pos == self._buf.size:
                self._buf = None
            return v
        return t_us + self.rng.exponential(self._mean_gap_us)

    def window(self, first_us: float, until_us: float) -> tuple[np.ndarray, float]:
        if first_us >= until_us:
            return np.empty(0, dtype=np.float64), first_us
        chunks = [np.array([first_us])]
        last = first_us
        while True:
            if self._buf is None:
                est = int((until_us - last) / self._mean_gap_us * 1.1) + 16
                self._refill(last, min(est, 65_536))
            buf = self._buf[self._pos:]
            cut = int(np.searchsorted(buf, until_us, side="left"))
            if cut < buf.size:
                chunks.append(buf[:cut])
                nxt = float(buf[cut])
                self._pos += cut + 1
                if self._pos == self._buf.size:
                    self._buf = None
                return np.concatenate(chunks), nxt
            chunks.append(buf)
            if buf.size:
                last = float(buf[-1])
            self._buf = None

    @property
    def mean_rate_ops_s(self) -> float:
        return self.rate_ops_s


class OnOffArrivals(ArrivalProcess):
    """Bursty on/off modulated Poisson arrivals.

    The tenant alternates exponentially distributed ON periods (Poisson
    arrivals at ``on_rate_ops_s``) with OFF periods (``off_rate_ops_s``,
    0 by default: silent).  The long-run mean rate is the duty-cycle
    weighted average; the *burst* rate is what a shared backend has to
    absorb, which is why on/off tenants make good noisy neighbors.
    """

    def __init__(
        self,
        on_rate_ops_s: float,
        *,
        mean_on_us: float = 2_000_000.0,
        mean_off_us: float = 2_000_000.0,
        off_rate_ops_s: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(seed)
        if on_rate_ops_s <= 0:
            raise ValueError("on_rate_ops_s must be positive")
        if off_rate_ops_s < 0:
            raise ValueError("off_rate_ops_s must be non-negative")
        if mean_on_us <= 0 or mean_off_us <= 0:
            raise ValueError("phase durations must be positive")
        self.on_rate_ops_s = float(on_rate_ops_s)
        self.off_rate_ops_s = float(off_rate_ops_s)
        self.mean_on_us = float(mean_on_us)
        self.mean_off_us = float(mean_off_us)
        # Phase bookkeeping: the process starts ON at t=0.
        self._on = True
        self._phase_end_us = self.rng.exponential(self.mean_on_us)

    def _advance_phase(self, t_us: float) -> None:
        while t_us >= self._phase_end_us:
            self._on = not self._on
            mean = self.mean_on_us if self._on else self.mean_off_us
            self._phase_end_us += self.rng.exponential(mean)

    def next_after(self, t_us: float) -> float:
        t = t_us
        while True:
            self._advance_phase(t)
            rate = self.on_rate_ops_s if self._on else self.off_rate_ops_s
            if rate <= 0.0:
                # Silent phase: jump to its end and try again.
                t = self._phase_end_us
                continue
            candidate = t + self.rng.exponential(1e6 / rate)
            if candidate < self._phase_end_us:
                return candidate
            # The gap straddles a phase boundary: restart the draw from
            # the boundary (memorylessness makes this exact for the
            # exponential gap distribution).
            t = self._phase_end_us

    @property
    def mean_rate_ops_s(self) -> float:
        on_share = self.mean_on_us / (self.mean_on_us + self.mean_off_us)
        return self.on_rate_ops_s * on_share + self.off_rate_ops_s * (1.0 - on_share)
