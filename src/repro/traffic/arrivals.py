"""Tenant arrival processes for the discrete-event traffic engine.

An arrival process is an iterator over operation arrival timestamps in
simulated microseconds.  Two shapes cover the scenarios the engine
ships: memoryless Poisson clients (the open-loop load the paper's
latency-throughput sweeps assume) and bursty on/off clients (the
noisy-neighbor pattern, where a tenant alternates quiet periods with
bursts far above its mean rate).

Every process draws from a seeded :class:`numpy.random.Generator`, so a
traffic run is bit-for-bit reproducible from its scenario seed.
"""

from __future__ import annotations

import abc

import numpy as np

from ..common.rng import make_rng

__all__ = ["ArrivalProcess", "PoissonArrivals", "OnOffArrivals"]


class ArrivalProcess(abc.ABC):
    """Generates successive arrival times (simulated microseconds)."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self.rng = make_rng(seed)

    @abc.abstractmethod
    def next_after(self, t_us: float) -> float:
        """The next arrival time strictly after ``t_us``."""

    @property
    @abc.abstractmethod
    def mean_rate_ops_s(self) -> float:
        """Long-run mean arrival rate (ops/s) — the tenant's offered
        load, used to derive CP intervals and report offered columns."""


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate (exponential gaps)."""

    def __init__(
        self, rate_ops_s: float, *, seed: int | np.random.Generator | None = None
    ) -> None:
        super().__init__(seed)
        if rate_ops_s <= 0:
            raise ValueError("rate_ops_s must be positive")
        self.rate_ops_s = float(rate_ops_s)
        self._mean_gap_us = 1e6 / self.rate_ops_s

    def next_after(self, t_us: float) -> float:
        return t_us + self.rng.exponential(self._mean_gap_us)

    @property
    def mean_rate_ops_s(self) -> float:
        return self.rate_ops_s


class OnOffArrivals(ArrivalProcess):
    """Bursty on/off modulated Poisson arrivals.

    The tenant alternates exponentially distributed ON periods (Poisson
    arrivals at ``on_rate_ops_s``) with OFF periods (``off_rate_ops_s``,
    0 by default: silent).  The long-run mean rate is the duty-cycle
    weighted average; the *burst* rate is what a shared backend has to
    absorb, which is why on/off tenants make good noisy neighbors.
    """

    def __init__(
        self,
        on_rate_ops_s: float,
        *,
        mean_on_us: float = 2_000_000.0,
        mean_off_us: float = 2_000_000.0,
        off_rate_ops_s: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(seed)
        if on_rate_ops_s <= 0:
            raise ValueError("on_rate_ops_s must be positive")
        if off_rate_ops_s < 0:
            raise ValueError("off_rate_ops_s must be non-negative")
        if mean_on_us <= 0 or mean_off_us <= 0:
            raise ValueError("phase durations must be positive")
        self.on_rate_ops_s = float(on_rate_ops_s)
        self.off_rate_ops_s = float(off_rate_ops_s)
        self.mean_on_us = float(mean_on_us)
        self.mean_off_us = float(mean_off_us)
        # Phase bookkeeping: the process starts ON at t=0.
        self._on = True
        self._phase_end_us = self.rng.exponential(self.mean_on_us)

    def _advance_phase(self, t_us: float) -> None:
        while t_us >= self._phase_end_us:
            self._on = not self._on
            mean = self.mean_on_us if self._on else self.mean_off_us
            self._phase_end_us += self.rng.exponential(mean)

    def next_after(self, t_us: float) -> float:
        t = t_us
        while True:
            self._advance_phase(t)
            rate = self.on_rate_ops_s if self._on else self.off_rate_ops_s
            if rate <= 0.0:
                # Silent phase: jump to its end and try again.
                t = self._phase_end_us
                continue
            candidate = t + self.rng.exponential(1e6 / rate)
            if candidate < self._phase_end_us:
                return candidate
            # The gap straddles a phase boundary: restart the draw from
            # the boundary (memorylessness makes this exact for the
            # exponential gap distribution).
            t = self._phase_end_us

    @property
    def mean_rate_ops_s(self) -> float:
        on_share = self.mean_on_us / (self.mean_on_us + self.mean_off_us)
        return self.on_rate_ops_s * on_share + self.off_rate_ops_s * (1.0 - on_share)
