"""Multi-tenant traffic engine: discrete-event load generation,
per-volume QoS, and tail-latency measurement.

Layers (each importable on its own):

* :mod:`repro.traffic.arrivals` — Poisson and bursty on/off arrival
  processes on the simulated clock;
* :mod:`repro.traffic.qos` — token buckets and per-tenant admission
  limits (IOPS and dirty-block budgets);
* :mod:`repro.traffic.engine` — the discrete-event engine: admission,
  CP batching, SFQ backend service, per-tenant charge-back and
  percentile measurement;
* :mod:`repro.traffic.scenarios` — canned uniform / noisy-neighbor /
  throttled scenarios plus the single-tenant knee cross-validation
  against :mod:`repro.sim.latency`.

Run one from the CLI with ``repro traffic --tenants 4 --seed 7`` or as
a benchmark unit via ``repro bench --experiments traffic``.
"""

from .arrivals import ArrivalProcess, OnOffArrivals, PoissonArrivals
from .engine import TenantSpec, TenantSummary, TrafficEngine, TrafficResult
from .qos import QosLimits, TokenBucket
from .scenarios import (
    SCENARIOS,
    CalibratedService,
    TrafficRun,
    build_scenario,
    build_traffic_sim,
    calibrate_capacity,
    knee_validation,
    run_traffic,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "QosLimits",
    "TokenBucket",
    "TenantSpec",
    "TenantSummary",
    "TrafficEngine",
    "TrafficResult",
    "SCENARIOS",
    "CalibratedService",
    "TrafficRun",
    "build_scenario",
    "build_traffic_sim",
    "calibrate_capacity",
    "knee_validation",
    "run_traffic",
]
