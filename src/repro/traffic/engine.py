"""The discrete-event multi-tenant traffic engine.

The closed-form transform in :mod:`repro.sim.latency` answers "what
would a single homogeneous client population see" from one measured
service time.  This engine answers the production question the ROADMAP
asks — what do *N tenants with different arrival processes and QoS
limits* see when they share one aggregate — by actually serving traffic
against the CP/allocator substrate:

1. **Arrivals.** Each tenant (one per FlexVol) generates operation
   arrivals from its own :class:`~repro.traffic.arrivals.ArrivalProcess`
   on a shared simulated clock (microseconds).
2. **Admission.** Arrivals pass the tenant's admission queue and
   token-bucket QoS limits (:mod:`repro.traffic.qos`): an op's
   *admission time* is when both its IOPS token and its dirty-block
   budget are available; a bounded queue rejects arrivals that would
   wait behind more than ``queue_depth`` earlier ops.
3. **CP batching.** The scheduler accumulates admitted ops into one
   :class:`~repro.fs.cp.CPBatch` per fixed CP interval (WAFL's timer
   trigger), tags the batch with per-tenant op counts
   (``ops_by_source``), generates each tenant's dirty blocks through
   its :class:`~repro.workloads.mixes.OpMix`, and runs a real
   consistency point on the simulator.
4. **Service and charging.** The CP's measured cost is charged back to
   the tenants whose ops rode in it: per-op CPU and bottleneck-device
   time come from that CP's own :class:`~repro.sim.stats.CPStats`, and
   a start-time fair-queueing (SFQ) backend serves the admitted ops,
   advancing a single server clock by the per-op *occupancy*
   ``max(cpu/cores, device)`` while each op's latency accrues the full
   ``cpu + device`` service.  The server never runs ahead of simulated
   time, so an overloading tenant's excess accumulates as *its own*
   backlog while a tenant using less than its fair share is served at
   the next free slot — per-volume isolation, the property the
   noisy-neighbor tests pin down.  Saturation throughput equals
   ``min(cores/cpu_us, 1/device_us)`` — the same capacity the
   closed-form model derives from the same measurements, which is what
   the single-tenant cross-validation test pins down.

As in WAFL, client writes are acknowledged from the front end (NVRAM),
not at CP flush: an op's modeled latency is queueing (admission wait +
backend backlog) plus its per-op service share, not the whole CP flush
time.  Every random draw flows from scenario seeds, so a run is
bit-for-bit reproducible and byte-identical across process pools.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..common.config import TrafficConfig
from ..fs.cp import CPBatch
from ..sim.stats import CPStats
from ..workloads.mixes import OpMix
from .arrivals import ArrivalProcess
from .qos import QosLimits, TokenBucket

__all__ = ["TenantSpec", "TenantSummary", "TrafficResult", "TrafficEngine"]

#: The paper's midrange server: CP pipeline parallelism (section 4.1).
#: Canonical value lives in :class:`repro.common.config.TrafficConfig`.
DEFAULT_CORES = TrafficConfig().cores


@dataclass
class TenantSpec:
    """One tenant: a FlexVol plus its traffic shape and QoS contract."""

    name: str
    volume: str
    arrivals: ArrivalProcess
    mix: OpMix
    qos: QosLimits | None = None
    #: Bounded admission queue (None = unbounded open-loop queue).
    queue_depth: int | None = None


@dataclass
class TenantSummary:
    """Per-tenant outcome of a traffic run (deterministic fields only)."""

    name: str
    volume: str
    offered_ops_s: float
    achieved_ops_s: float
    arrived: int
    admitted: int
    rejected: int
    completed: int
    in_flight: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_queue_depth: int
    mean_queue_depth: float
    #: CP service charged back to this tenant (its ops' share of every
    #: CP it rode in).
    charged_cpu_us: float
    charged_device_us: float


@dataclass
class TrafficResult:
    """Whole-run outcome: per-tenant summaries plus backend totals."""

    tenants: dict[str, TenantSummary]
    #: Backend capacity implied by the run's own CPs (ops/s): the
    #: op-weighted mean occupancy inverted — comparable to
    #: :meth:`repro.bench.harness.ConfigResult.capacity_ops`.
    capacity_ops: float
    horizon_s: float
    cps: int
    total_ops: int

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "capacity_ops": self.capacity_ops,
            "horizon_s": self.horizon_s,
            "cps": self.cps,
            "total_ops": self.total_ops,
            "tenants": {name: asdict(t) for name, t in sorted(self.tenants.items())},
        }


class _TenantState:
    """Mutable per-tenant run state (admission + measurement)."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.buckets: list[tuple[TokenBucket, str]] = (
            spec.qos.make_buckets() if spec.qos is not None else []
        )
        self.next_arrival_us = spec.arrivals.next_after(0.0)
        self.admit_tail_us = 0.0
        #: Admission times not yet reached (the admission queue).
        self.pending_admits: deque[float] = deque()
        #: Admitted ops waiting for a CP: (arrival_us, admit_us).
        self.deferred: deque[tuple[float, float]] = deque()
        #: Ops that rode a CP and await backend service:
        #: (arrival_us, admit_us, s_occ_us, s_lat_us).
        self.backend: deque[tuple[float, float, float, float]] = deque()
        #: SFQ virtual finish tag of this tenant's last served op.
        self.vfinish = 0.0
        self.arrivals_us: list[float] = []
        self.rejected_us: list[float] = []
        self.complete_us: list[float] = []
        self.latency_us: list[float] = []
        self.admitted = 0
        self.charged_cpu_us = 0.0
        self.charged_device_us = 0.0

    def take_riders(self, before_us: float) -> list[tuple[float, float]]:
        """Admitted ops whose admission time falls before ``before_us``
        (admission times are FIFO-monotone, so this is a prefix)."""
        riders: list[tuple[float, float]] = []
        while self.deferred and self.deferred[0][1] < before_us:
            riders.append(self.deferred.popleft())
        return riders


class TrafficEngine:
    """Drives one :class:`~repro.fs.filesystem.WaflSim` with N tenants.

    Parameters
    ----------
    sim:
        The (typically aged) simulator; each tenant's ``volume`` must
        name one of its FlexVols.
    tenants:
        Tenant specs.  Tenant order is the round-robin service order.
    cp_interval_us:
        Simulated time between consistency points.  Default: sized so
        the *offered* load sums to ``target_ops_per_cp`` ops per CP,
        matching the batch sizes the figure benchmarks measure (per-op
        CPU cost amortizes over the batch, so wildly different batch
        sizes would shift the service time).
    target_ops_per_cp:
        Used only to derive the default ``cp_interval_us``.
    cores:
        CP pipeline parallelism for the occupancy model.
    """

    def __init__(
        self,
        sim,
        tenants: list[TenantSpec],
        *,
        cp_interval_us: float | None = None,
        target_ops_per_cp: int | None = None,
        cores: int | None = None,
    ) -> None:
        traffic_cfg = TrafficConfig()
        if target_ops_per_cp is None:
            target_ops_per_cp = traffic_cfg.target_ops_per_cp
        if cores is None:
            cores = traffic_cfg.cores
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        for t in tenants:
            if t.volume not in sim.vols:
                raise ValueError(f"tenant {t.name!r}: unknown volume {t.volume!r}")
        self.sim = sim
        self.tenants = list(tenants)
        self.cores = int(cores)
        if cp_interval_us is None:
            offered = sum(t.arrivals.mean_rate_ops_s for t in tenants)
            cp_interval_us = target_ops_per_cp / offered * 1e6
        if cp_interval_us <= 0:
            raise ValueError("cp_interval_us must be positive")
        self.cp_interval_us = float(cp_interval_us)
        self.states = [_TenantState(t) for t in tenants]
        self.clock_us = 0.0
        self._cp_count = 0
        self._total_ops = 0
        self._server_free_us = 0.0
        #: SFQ virtual time: the start tag of the op in service.
        self._vtime = 0.0
        self._occ_weighted_us = 0.0
        self._series_recorded = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _generate_arrivals(self, st: _TenantState, until_us: float) -> None:
        spec = st.spec
        blocks_per_op = float(spec.mix.blocks_per_op)
        while st.next_arrival_us < until_us:
            t = st.next_arrival_us
            st.arrivals_us.append(t)
            while st.pending_admits and st.pending_admits[0] <= t:
                st.pending_admits.popleft()
            if (
                spec.queue_depth is not None
                and len(st.pending_admits) >= spec.queue_depth
            ):
                st.rejected_us.append(t)
            else:
                admit = t if st.admit_tail_us <= t else st.admit_tail_us
                for bucket, dim in st.buckets:
                    n = 1.0 if dim == "ops" else blocks_per_op
                    ready = bucket.ready_time_us(admit, n)
                    if ready > admit:
                        admit = ready
                for bucket, dim in st.buckets:
                    n = 1.0 if dim == "ops" else blocks_per_op
                    bucket.take(admit, n)
                st.admit_tail_us = admit
                st.pending_admits.append(admit)
                st.deferred.append((t, admit))
                st.admitted += 1
            st.next_arrival_us = spec.arrivals.next_after(t)

    # ------------------------------------------------------------------
    # Backend fair service (start-time fair queueing)
    # ------------------------------------------------------------------
    def _drain(self, until_us: float) -> None:
        """Serve queued backend ops up to simulated time ``until_us``.

        One shared server advances by each op's occupancy.  Among the
        tenants with an eligible head op (admitted by now), the op with
        the smallest SFQ virtual start tag ``max(vtime, vfinish)`` is
        served next: a tenant that stayed within its fair share has a
        lagging ``vfinish`` and therefore preempts a backlogged
        overloader, whose excess waits in its own queue.  The server
        never starts an op at or past ``until_us`` — backlog carries
        into the next CP interval instead of letting the server run
        ahead of the simulated clock, which is what keeps a
        well-behaved tenant's latency bounded while a neighbor
        saturates the backend.
        """
        states = self.states
        while True:
            min_admit = None
            for st in states:
                if st.backend and (min_admit is None or st.backend[0][1] < min_admit):
                    min_admit = st.backend[0][1]
            if min_admit is None:
                return
            t = self._server_free_us if self._server_free_us > min_admit else min_admit
            if t >= until_us:
                return
            pick = None
            pick_tag = 0.0
            for i, st in enumerate(states):
                if not st.backend or st.backend[0][1] > t:
                    continue
                tag = st.vfinish if st.vfinish > self._vtime else self._vtime
                if pick is None or tag < pick_tag:
                    pick = i
                    pick_tag = tag
            st = states[pick]
            arrival, _admit, s_occ, s_lat = st.backend.popleft()
            self._vtime = pick_tag
            st.vfinish = pick_tag + s_occ
            self._server_free_us = t + s_occ
            complete = t + s_lat
            st.complete_us.append(complete)
            st.latency_us.append(complete - arrival)

    # ------------------------------------------------------------------
    # CP loop
    # ------------------------------------------------------------------
    def step(self) -> CPStats | None:
        """Advance one CP interval; returns the CP's stats (None if no
        ops were admitted in the window)."""
        # Pin the tracer clock to simulated traffic time so spans from
        # different CP intervals never overlap in the trace timeline.
        obs.sync_us(self.clock_us)
        with obs.span("traffic.step", interval=self._cp_count):
            return self._step()

    def _step(self) -> CPStats | None:
        window_end = self.clock_us + self.cp_interval_us
        traced = obs.active()
        rejected_before = (
            [len(st.rejected_us) for st in self.states] if traced else None
        )
        cp_ops: dict[int, list[tuple[float, float]]] = {}
        for i, st in enumerate(self.states):
            self._generate_arrivals(st, window_end)
            riders = st.take_riders(window_end)
            if riders:
                cp_ops[i] = riders
        if traced:
            for st, before in zip(self.states, rejected_before):
                delta = len(st.rejected_us) - before
                if delta:
                    obs.count("traffic.rejected_ops", delta, tenant=st.spec.name)
            for i in sorted(cp_ops):
                st = self.states[i]
                obs.count(
                    "traffic.admitted_ops",
                    len(cp_ops[i]),
                    tenant=st.spec.name,
                    vol=st.spec.volume,
                )
        self.clock_us = window_end
        total = sum(len(v) for v in cp_ops.values())
        if total == 0:
            self._drain(window_end)
            self._cp_count += 1
            return None

        writes: dict[str, np.ndarray] = {}
        deletes: dict[str, np.ndarray] = {}
        ops_by_source: dict[str, int] = {}
        for i in sorted(cp_ops):
            st = self.states[i]
            w, d = st.spec.mix.next_ops(len(cp_ops[i]))
            if w.size:
                writes[st.spec.volume] = w
            if d.size:
                deletes[st.spec.volume] = d
            ops_by_source[st.spec.name] = len(cp_ops[i])
        stats = self.sim.engine.run_cp(
            CPBatch(writes=writes, ops=total, deletes=deletes,
                    ops_by_source=ops_by_source)
        )

        cpu_per_op = stats.cpu_us / total
        dev_per_op = stats.device_busy_us / total
        core_share = cpu_per_op / self.cores
        s_occ = core_share if core_share > dev_per_op else dev_per_op
        s_lat = cpu_per_op + dev_per_op
        self._occ_weighted_us += s_occ * total
        self._total_ops += total
        for i, ops in cp_ops.items():
            share = len(ops) / total
            st = self.states[i]
            st.charged_cpu_us += stats.cpu_us * share
            st.charged_device_us += stats.device_busy_us * share
            for arrival, admit in ops:
                st.backend.append((arrival, admit, s_occ, s_lat))
        self._drain(window_end)
        self._cp_count += 1
        return stats

    def run(self, n_cps: int) -> "TrafficEngine":
        for _ in range(n_cps):
            self.step()
        return self

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    @property
    def capacity_ops(self) -> float:
        """Backend capacity implied by the run's CPs (ops/s)."""
        if self._total_ops == 0:
            return 0.0
        return 1e6 / (self._occ_weighted_us / self._total_ops)

    def _record_series(self, st: _TenantState, horizon_us: float) -> None:
        """Per-CP-interval time series into the sim's MetricsLog."""
        metrics = self.sim.metrics
        edges = np.arange(0.0, horizon_us + self.cp_interval_us / 2,
                          self.cp_interval_us)
        arrivals = np.asarray(st.arrivals_us)
        rejected = np.asarray(st.rejected_us)
        complete = np.sort(np.asarray(st.complete_us))
        latency = np.asarray(st.latency_us)
        order = np.argsort(np.asarray(st.complete_us), kind="stable")
        latency_by_completion = latency[order] if latency.size else latency
        name = st.spec.name
        interval_s = self.cp_interval_us / 1e6
        for k in range(len(edges) - 1):
            lo, hi = edges[k], edges[k + 1]
            done = np.searchsorted(complete, hi, side="right") - np.searchsorted(
                complete, lo, side="right"
            )
            metrics.record_point(f"traffic.{name}.achieved_ops_s", done / interval_s)
            window = latency_by_completion[
                np.searchsorted(complete, lo, side="right"):
                np.searchsorted(complete, hi, side="right")
            ]
            p99 = float(np.percentile(window, 99)) / 1e3 if window.size else 0.0
            metrics.record_point(f"traffic.{name}.p99_ms", p99)
            in_flight = (
                int((arrivals <= hi).sum())
                - int((rejected <= hi).sum())
                - int(np.searchsorted(complete, hi, side="right"))
            )
            metrics.record_point(f"traffic.{name}.queue_depth", in_flight)

    def summary(self) -> TrafficResult:
        """Finalize the run: per-tenant percentiles, throughput, queue
        depth (series recorded via the sim's MetricsLog)."""
        horizon_us = self.clock_us
        horizon_s = horizon_us / 1e6
        tenants: dict[str, TenantSummary] = {}
        already_recorded = self._series_recorded
        self._series_recorded = True
        for st in self.states:
            if not already_recorded:
                self._record_series(st, horizon_us)
            complete = np.asarray(st.complete_us)
            latency = np.asarray(st.latency_us)
            done_mask = complete <= horizon_us
            done_lat_ms = latency[done_mask] / 1e3
            completed = int(done_mask.sum())
            arrived = len(st.arrivals_us)
            rejected = len(st.rejected_us)
            qd = np.asarray(
                self.sim.metrics.query(
                    "queue_depth", tenant=st.spec.name, default=[0]
                )
            )
            tenants[st.spec.name] = TenantSummary(
                name=st.spec.name,
                volume=st.spec.volume,
                offered_ops_s=arrived / horizon_s if horizon_s else 0.0,
                achieved_ops_s=completed / horizon_s if horizon_s else 0.0,
                arrived=arrived,
                admitted=st.admitted,
                rejected=rejected,
                completed=completed,
                in_flight=arrived - rejected - completed,
                p50_ms=float(np.percentile(done_lat_ms, 50)) if completed else 0.0,
                p95_ms=float(np.percentile(done_lat_ms, 95)) if completed else 0.0,
                p99_ms=float(np.percentile(done_lat_ms, 99)) if completed else 0.0,
                mean_ms=float(done_lat_ms.mean()) if completed else 0.0,
                max_queue_depth=int(qd.max()) if qd.size else 0,
                mean_queue_depth=float(qd.mean()) if qd.size else 0.0,
                charged_cpu_us=st.charged_cpu_us,
                charged_device_us=st.charged_device_us,
            )
        return TrafficResult(
            tenants=tenants,
            capacity_ops=self.capacity_ops,
            horizon_s=horizon_s,
            cps=self._cp_count,
            total_ops=self._total_ops,
        )
