"""The discrete-event multi-tenant traffic engine.

The closed-form transform in :mod:`repro.sim.latency` answers "what
would a single homogeneous client population see" from one measured
service time.  This engine answers the production question the ROADMAP
asks — what do *N tenants with different arrival processes and QoS
limits* see when they share one aggregate — by actually serving traffic
against the CP/allocator substrate:

1. **Arrivals.** Each tenant (one per FlexVol) generates operation
   arrivals from its own :class:`~repro.traffic.arrivals.ArrivalProcess`
   on a shared simulated clock (microseconds).
2. **Admission.** Arrivals pass the tenant's admission queue and
   token-bucket QoS limits (:mod:`repro.traffic.qos`): an op's
   *admission time* is when both its IOPS token and its dirty-block
   budget are available; a bounded queue rejects arrivals that would
   wait behind more than ``queue_depth`` earlier ops.
3. **CP batching.** The scheduler accumulates admitted ops into one
   :class:`~repro.fs.cp.CPBatch` per fixed CP interval (WAFL's timer
   trigger), tags the batch with per-tenant op counts
   (``ops_by_source``), generates each tenant's dirty blocks through
   its :class:`~repro.workloads.mixes.OpMix`, and runs a real
   consistency point on the simulator.
4. **Service and charging.** The CP's measured cost is charged back to
   the tenants whose ops rode in it: per-op CPU and bottleneck-device
   time come from that CP's own :class:`~repro.sim.stats.CPStats`, and
   a start-time fair-queueing (SFQ) backend serves the admitted ops,
   advancing a single server clock by the per-op *occupancy*
   ``max(cpu/cores, device)`` while each op's latency accrues the full
   ``cpu + device`` service.  The server never runs ahead of simulated
   time, so an overloading tenant's excess accumulates as *its own*
   backlog while a tenant using less than its fair share is served at
   the next free slot — per-volume isolation, the property the
   noisy-neighbor tests pin down.  Saturation throughput equals
   ``min(cores/cpu_us, 1/device_us)`` — the same capacity the
   closed-form model derives from the same measurements, which is what
   the single-tenant cross-validation test pins down.

As in WAFL, client writes are acknowledged from the front end (NVRAM),
not at CP flush: an op's modeled latency is queueing (admission wait +
backend backlog) plus its per-op service share, not the whole CP flush
time.  Every random draw flows from scenario seeds, so a run is
bit-for-bit reproducible and byte-identical across process pools.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..common.config import TrafficConfig
from ..fs.cp import CPBatch
from ..sim.stats import CPStats
from ..workloads.mixes import OpMix
from .arrivals import ArrivalProcess
from .qos import QosLimits, TokenBucket

__all__ = ["TenantSpec", "TenantSummary", "TrafficResult", "TrafficEngine"]

#: The paper's midrange server: CP pipeline parallelism (section 4.1).
#: Canonical value lives in :class:`repro.common.config.TrafficConfig`.
DEFAULT_CORES = TrafficConfig().cores


@dataclass
class TenantSpec:
    """One tenant: a FlexVol plus its traffic shape and QoS contract."""

    name: str
    volume: str
    arrivals: ArrivalProcess
    mix: OpMix
    qos: QosLimits | None = None
    #: Bounded admission queue (None = unbounded open-loop queue).
    queue_depth: int | None = None


@dataclass
class TenantSummary:
    """Per-tenant outcome of a traffic run (deterministic fields only)."""

    name: str
    volume: str
    offered_ops_s: float
    achieved_ops_s: float
    arrived: int
    admitted: int
    rejected: int
    completed: int
    in_flight: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_queue_depth: int
    mean_queue_depth: float
    #: CP service charged back to this tenant (its ops' share of every
    #: CP it rode in).
    charged_cpu_us: float
    charged_device_us: float


@dataclass
class TrafficResult:
    """Whole-run outcome: per-tenant summaries plus backend totals."""

    tenants: dict[str, TenantSummary]
    #: Backend capacity implied by the run's own CPs (ops/s): the
    #: op-weighted mean occupancy inverted — comparable to
    #: :meth:`repro.bench.harness.ConfigResult.capacity_ops`.
    capacity_ops: float
    horizon_s: float
    cps: int
    total_ops: int

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "capacity_ops": self.capacity_ops,
            "horizon_s": self.horizon_s,
            "cps": self.cps,
            "total_ops": self.total_ops,
            "tenants": {name: asdict(t) for name, t in sorted(self.tenants.items())},
        }


_EMPTY = np.empty(0, dtype=np.float64)


class _TenantState:
    """Mutable per-tenant run state (admission + measurement).

    Two storage modes share this class.  The scalar mode keeps per-op
    tuples in deques and floats in lists (the permanent opt-out
    reference pipeline for the identity tests); the vectorized mode
    keeps the same quantities as arrays
    — chunk lists for measurements, ``(arrival, admit)`` array pairs
    for the deferred queue, and consolidated arrays with a head cursor
    for the backend queue.  The ``*_array`` / ``*_count`` accessors
    below give mode-independent views, so the measurement code reads
    one shape regardless of which pipeline produced it.
    """

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.buckets: list[tuple[TokenBucket, str]] = (
            spec.qos.make_buckets() if spec.qos is not None else []
        )
        self.next_arrival_us = spec.arrivals.next_after(0.0)
        self.admit_tail_us = 0.0
        #: Admission times not yet reached (the admission queue).
        self.pending_admits: deque[float] = deque()
        #: Admitted ops waiting for a CP: (arrival_us, admit_us).
        self.deferred: deque[tuple[float, float]] = deque()
        #: Ops that rode a CP and await backend service:
        #: (arrival_us, admit_us, s_occ_us, s_lat_us).
        self.backend: deque[tuple[float, float, float, float]] = deque()
        #: SFQ virtual finish tag of this tenant's last served op.
        self.vfinish = 0.0
        self.arrivals_us: list[float] = []
        self.rejected_us: list[float] = []
        self.complete_us: list[float] = []
        self.latency_us: list[float] = []
        self.admitted = 0
        self.charged_cpu_us = 0.0
        self.charged_device_us = 0.0
        # ---- vectorized-mode storage ---------------------------------
        #: Measurement chunks (arrays of times, concatenated on read).
        self.arrival_chunks: list[np.ndarray] = []
        self.rejected_chunks: list[np.ndarray] = []
        self.complete_chunks: list[np.ndarray] = []
        self.latency_chunks: list[np.ndarray] = []
        #: Admitted-not-yet-ridden (arrival, admit) array pairs, FIFO.
        self.deferred_arrays: deque[tuple[np.ndarray, np.ndarray]] = deque()
        #: CP chunks not yet folded into the consolidated queue below.
        self.backend_chunks: list[tuple[np.ndarray, np.ndarray, float, float]] = []
        #: Consolidated backend queue (arrival/admit/occupancy/latency
        #: per op) with ``q_head`` ops already served.
        self.q_arrival = _EMPTY
        self.q_admit = _EMPTY
        self.q_occ = _EMPTY
        self.q_lat = _EMPTY
        self.q_head = 0

    def take_riders(self, before_us: float) -> list[tuple[float, float]]:
        """Admitted ops whose admission time falls before ``before_us``
        (admission times are FIFO-monotone, so this is a prefix)."""
        riders: list[tuple[float, float]] = []
        while self.deferred and self.deferred[0][1] < before_us:
            riders.append(self.deferred.popleft())
        return riders

    def take_riders_arrays(self, before_us: float) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`take_riders`: the admitted prefix with
        ``admit < before_us``, as (arrivals, admits) arrays."""
        ts_parts: list[np.ndarray] = []
        adm_parts: list[np.ndarray] = []
        while self.deferred_arrays:
            ts, adm = self.deferred_arrays[0]
            cut = int(np.searchsorted(adm, before_us, side="left"))
            if cut == adm.size:
                ts_parts.append(ts)
                adm_parts.append(adm)
                self.deferred_arrays.popleft()
                continue
            if cut:
                ts_parts.append(ts[:cut])
                adm_parts.append(adm[:cut])
                self.deferred_arrays[0] = (ts[cut:], adm[cut:])
            break
        if not ts_parts:
            return _EMPTY, _EMPTY
        if len(ts_parts) == 1:
            return ts_parts[0], adm_parts[0]
        return np.concatenate(ts_parts), np.concatenate(adm_parts)

    def consolidate_backend(self) -> None:
        """Fold freshly ridden CP chunks into the consolidated queue,
        dropping the already-served prefix."""
        if not self.backend_chunks:
            return
        arrs = [self.q_arrival[self.q_head:]]
        adms = [self.q_admit[self.q_head:]]
        occs = [self.q_occ[self.q_head:]]
        lats = [self.q_lat[self.q_head:]]
        for ts, adm, s_occ, s_lat in self.backend_chunks:
            arrs.append(ts)
            adms.append(adm)
            occs.append(np.full(ts.size, s_occ))
            lats.append(np.full(ts.size, s_lat))
        self.backend_chunks = []
        self.q_arrival = np.concatenate(arrs)
        self.q_admit = np.concatenate(adms)
        self.q_occ = np.concatenate(occs)
        self.q_lat = np.concatenate(lats)
        self.q_head = 0

    # ---- mode-independent measurement accessors ----------------------
    def _gather(self, chunks: list[np.ndarray], scalars: list[float]) -> np.ndarray:
        if chunks:
            return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return np.asarray(scalars, dtype=np.float64)

    def arrivals_array(self) -> np.ndarray:
        return self._gather(self.arrival_chunks, self.arrivals_us)

    def rejected_array(self) -> np.ndarray:
        return self._gather(self.rejected_chunks, self.rejected_us)

    def complete_array(self) -> np.ndarray:
        return self._gather(self.complete_chunks, self.complete_us)

    def latency_array(self) -> np.ndarray:
        return self._gather(self.latency_chunks, self.latency_us)

    def arrived_count(self) -> int:
        if self.arrival_chunks:
            return sum(c.size for c in self.arrival_chunks)
        return len(self.arrivals_us)

    def rejected_count(self) -> int:
        if self.rejected_chunks:
            return sum(c.size for c in self.rejected_chunks)
        return len(self.rejected_us)

    def backend_pending(self) -> int:
        """Ops ridden into a CP but not yet served, either mode."""
        pending = len(self.backend) + (self.q_admit.size - self.q_head)
        return pending + sum(ts.size for ts, _, _, _ in self.backend_chunks)


class TrafficEngine:
    """Drives one :class:`~repro.fs.filesystem.WaflSim` with N tenants.

    Parameters
    ----------
    sim:
        The (typically aged) simulator; each tenant's ``volume`` must
        name one of its FlexVols.
    tenants:
        Tenant specs.  Tenant order is the round-robin service order.
    cp_interval_us:
        Simulated time between consistency points.  Default: sized so
        the *offered* load sums to ``target_ops_per_cp`` ops per CP,
        matching the batch sizes the figure benchmarks measure (per-op
        CPU cost amortizes over the batch, so wildly different batch
        sizes would shift the service time).
    target_ops_per_cp:
        Used only to derive the default ``cp_interval_us``.
    cores:
        CP pipeline parallelism for the occupancy model.
    """

    def __init__(
        self,
        sim,
        tenants: list[TenantSpec],
        *,
        cp_interval_us: float | None = None,
        target_ops_per_cp: int | None = None,
        cores: int | None = None,
        vectorized: bool | None = None,
    ) -> None:
        traffic_cfg = TrafficConfig()
        if target_ops_per_cp is None:
            target_ops_per_cp = traffic_cfg.target_ops_per_cp
        if cores is None:
            cores = traffic_cfg.cores
        if vectorized is None:
            vectorized = traffic_cfg.vectorized
        #: Batched admission/SFQ pipeline (scalar loops when False; the
        #: two are byte-identical in every metric — see DESIGN.md §9).
        self.vectorized = bool(vectorized)
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        for t in tenants:
            if t.volume not in sim.vols:
                raise ValueError(f"tenant {t.name!r}: unknown volume {t.volume!r}")
        self.sim = sim
        self.tenants = list(tenants)
        self.cores = int(cores)
        if cp_interval_us is None:
            offered = sum(t.arrivals.mean_rate_ops_s for t in tenants)
            cp_interval_us = target_ops_per_cp / offered * 1e6
        if cp_interval_us <= 0:
            raise ValueError("cp_interval_us must be positive")
        self.cp_interval_us = float(cp_interval_us)
        self.states = [_TenantState(t) for t in tenants]
        self.clock_us = 0.0
        self._cp_count = 0
        self._total_ops = 0
        self._server_free_us = 0.0
        #: SFQ virtual time: the start tag of the op in service.
        self._vtime = 0.0
        self._occ_weighted_us = 0.0
        self._series_recorded = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _generate_arrivals(self, st: _TenantState, until_us: float) -> None:
        spec = st.spec
        blocks_per_op = float(spec.mix.blocks_per_op)
        while st.next_arrival_us < until_us:
            t = st.next_arrival_us
            st.arrivals_us.append(t)
            while st.pending_admits and st.pending_admits[0] <= t:
                st.pending_admits.popleft()
            if (
                spec.queue_depth is not None
                and len(st.pending_admits) >= spec.queue_depth
            ):
                st.rejected_us.append(t)
            else:
                admit = t if st.admit_tail_us <= t else st.admit_tail_us
                for bucket, dim in st.buckets:
                    n = 1.0 if dim == "ops" else blocks_per_op
                    ready = bucket.ready_time_us(admit, n)
                    if ready > admit:
                        admit = ready
                for bucket, dim in st.buckets:
                    n = 1.0 if dim == "ops" else blocks_per_op
                    bucket.take(admit, n)
                st.admit_tail_us = admit
                st.pending_admits.append(admit)
                st.deferred.append((t, admit))
                st.admitted += 1
            st.next_arrival_us = spec.arrivals.next_after(t)

    def _generate_arrivals_vec(self, st: _TenantState, until_us: float) -> None:
        """Batched :meth:`_generate_arrivals`: one window of arrivals in
        one array, admitted with the same float expressions.

        Unthrottled open-queue tenants admit at ``max(t, tail)`` with a
        monotone tail, so the whole window collapses to one exact
        ``np.maximum`` against the window-entry tail.  QoS/bounded-queue
        tenants run the scalar recurrence (token-bucket state is a
        sequential dependence) over the pre-generated array, which still
        skips the per-arrival generator calls.
        """
        spec = st.spec
        ts, st.next_arrival_us = spec.arrivals.window(st.next_arrival_us, until_us)
        if ts.size == 0:
            return
        st.arrival_chunks.append(ts)
        if not st.buckets and spec.queue_depth is None:
            admits = np.maximum(ts, st.admit_tail_us)
            st.admit_tail_us = float(admits[-1])
            st.admitted += int(ts.size)
            st.deferred_arrays.append((ts, admits))
            return
        blocks_per_op = float(spec.mix.blocks_per_op)
        admits = np.empty(ts.size, dtype=np.float64)
        keep = np.ones(ts.size, dtype=bool)
        rejected: list[float] = []
        k = 0
        # Deliberately scalar reference path: token-bucket state and the
        # queue-depth gate are sequential (each admit feeds the next).
        for j, t in enumerate(ts.tolist()):  # simlint: disable=B502
            while st.pending_admits and st.pending_admits[0] <= t:
                st.pending_admits.popleft()
            if (
                spec.queue_depth is not None
                and len(st.pending_admits) >= spec.queue_depth
            ):
                rejected.append(t)
                keep[j] = False
                continue
            admit = t if st.admit_tail_us <= t else st.admit_tail_us
            for bucket, dim in st.buckets:
                n = 1.0 if dim == "ops" else blocks_per_op
                ready = bucket.ready_time_us(admit, n)
                if ready > admit:
                    admit = ready
            for bucket, dim in st.buckets:
                n = 1.0 if dim == "ops" else blocks_per_op
                bucket.take(admit, n)
            st.admit_tail_us = admit
            st.pending_admits.append(admit)
            admits[k] = admit
            k += 1
            st.admitted += 1
        if rejected:
            st.rejected_chunks.append(np.asarray(rejected, dtype=np.float64))
        if k:
            st.deferred_arrays.append((ts[keep], admits[:k]))

    # ------------------------------------------------------------------
    # Backend fair service (start-time fair queueing)
    # ------------------------------------------------------------------
    def _drain(self, until_us: float) -> None:
        """Serve queued backend ops up to simulated time ``until_us``.

        One shared server advances by each op's occupancy.  Among the
        tenants with an eligible head op (admitted by now), the op with
        the smallest SFQ virtual start tag ``max(vtime, vfinish)`` is
        served next: a tenant that stayed within its fair share has a
        lagging ``vfinish`` and therefore preempts a backlogged
        overloader, whose excess waits in its own queue.  The server
        never starts an op at or past ``until_us`` — backlog carries
        into the next CP interval instead of letting the server run
        ahead of the simulated clock, which is what keeps a
        well-behaved tenant's latency bounded while a neighbor
        saturates the backend.
        """
        states = self.states
        while True:
            min_admit = None
            for st in states:
                if st.backend and (min_admit is None or st.backend[0][1] < min_admit):
                    min_admit = st.backend[0][1]
            if min_admit is None:
                return
            t = self._server_free_us if self._server_free_us > min_admit else min_admit
            if t >= until_us:
                return
            pick = None
            pick_tag = 0.0
            for i, st in enumerate(states):
                if not st.backend or st.backend[0][1] > t:
                    continue
                tag = st.vfinish if st.vfinish > self._vtime else self._vtime
                if pick is None or tag < pick_tag:
                    pick = i
                    pick_tag = tag
            st = states[pick]
            arrival, _admit, s_occ, s_lat = st.backend.popleft()
            self._vtime = pick_tag
            st.vfinish = pick_tag + s_occ
            self._server_free_us = t + s_occ
            complete = t + s_lat
            st.complete_us.append(complete)
            st.latency_us.append(complete - arrival)

    def _drain_vec(self, until_us: float) -> None:
        """Batched :meth:`_drain` over the consolidated backend arrays.

        The SFQ pick is data-dependent — each newly admitted op can
        preempt a backlogged neighbor the moment the serve clock passes
        its admission — so a fully batched multi-tenant serve would be
        cut at every admission boundary and degenerate to tiny NumPy
        calls.  The split that pays: whenever exactly ONE tenant has
        pending ops, whole stretches collapse to array chains (FIFO
        order, no preemption possible), and the multi-tenant interleave
        runs a tight buffered scalar loop over the arrays.

        The bulk round reproduces the scalar recurrence exactly: serve
        starts are ``np.add.accumulate`` over occupancies from ``t0 =
        max(server_free, head admit)`` (the scalar left-to-right
        addition chain), valid while ``start >= admit`` elementwise —
        the first violation is where the scalar server would go idle
        and lift the clock, so the round is cut there and the next
        round re-lifts ``t0`` the same way.  SFQ tags chain through
        ``max(vfinish, vtime)`` only at round entry (mid-round the
        virtual time equals the tenant's own last tag, so the lift
        never fires).  Cutting a round early is always exact — the
        next round continues the identical recurrence — which also
        lets the round length be capped for O(n) total work.  Every
        float is produced by the same operation on the same operands
        as the scalar path, so results are bit-identical.
        """
        states = self.states
        for st in states:
            st.consolidate_backend()
        nstates = len(states)
        comp_buf: list[list[float]] = [[] for _ in states]
        lat_buf: list[list[float]] = [[] for _ in states]

        def flush(k: int) -> None:
            if comp_buf[k]:
                states[k].complete_chunks.append(
                    np.asarray(comp_buf[k], dtype=np.float64)
                )
                states[k].latency_chunks.append(
                    np.asarray(lat_buf[k], dtype=np.float64)
                )
                comp_buf[k] = []
                lat_buf[k] = []

        while True:
            pending = [
                k for k, st in enumerate(states) if st.q_head < st.q_admit.size
            ]
            if not pending:
                break
            if len(pending) == 1:
                k = pending[0]
                st = states[k]
                h = st.q_head
                first = float(st.q_admit[h])
                t0 = (
                    self._server_free_us
                    if self._server_free_us > first
                    else first
                )
                if t0 >= until_us:
                    break
                occ0 = float(st.q_occ[h])
                limit = st.q_admit.size - h
                if occ0 > 0.0:
                    cap = int((until_us - t0) / occ0) + 2
                    if cap < limit:
                        limit = cap
                admits = st.q_admit[h:h + limit]
                occs = st.q_occ[h:h + limit]
                tacc = np.add.accumulate(np.concatenate(([t0], occs)))
                starts = tacc[:-1]
                ok = (starts < until_us) & (starts >= admits)
                m = int(starts.size) if bool(ok.all()) else int(np.argmax(~ok))
                flush(k)
                completes = starts[:m] + st.q_lat[h:h + m]
                st.complete_chunks.append(completes)
                st.latency_chunks.append(completes - st.q_arrival[h:h + m])
                start = st.vfinish if st.vfinish > self._vtime else self._vtime
                acc = np.add.accumulate(np.concatenate(([start], occs[:m])))
                st.q_head = h + m
                st.vfinish = float(acc[m])
                self._vtime = float(acc[m - 1])
                self._server_free_us = float(tacc[m])
                continue
            # Multi-tenant interleave: op-by-op, plain floats, local
            # cursors, buffered output — the scalar algorithm verbatim.
            # Head admits are cached as Python floats (INF = drained)
            # so the per-op scan never touches the arrays.
            inf = float("inf")
            vt = self._vtime
            free = self._server_free_us
            qa = [st.q_admit for st in states]
            qo = [st.q_occ for st in states]
            ql = [st.q_lat for st in states]
            qr = [st.q_arrival for st in states]
            hs = [st.q_head for st in states]
            ns = [a.size for a in qa]
            vf = [st.vfinish for st in states]
            ha = [
                float(qa[k][hs[k]]) if hs[k] < ns[k] else inf
                for k in range(nstates)
            ]
            hit_until = False
            while True:
                min_admit = min(ha)
                if min_admit == inf:
                    break
                t = free if free > min_admit else min_admit
                if t >= until_us:
                    hit_until = True
                    break
                pick = -1
                pick_tag = 0.0
                for k in range(nstates):
                    if ha[k] > t:
                        continue
                    tag = vf[k] if vf[k] > vt else vt
                    if pick < 0 or tag < pick_tag:
                        pick = k
                        pick_tag = tag
                hk = hs[pick]
                s_occ = float(qo[pick][hk])
                complete = t + float(ql[pick][hk])
                vt = pick_tag
                vf[pick] = pick_tag + s_occ
                free = t + s_occ
                comp_buf[pick].append(complete)
                lat_buf[pick].append(complete - float(qr[pick][hk]))
                hk += 1
                hs[pick] = hk
                if hk == ns[pick]:
                    ha[pick] = inf
                    break  # a queue drained: the bulk path may apply now
                ha[pick] = float(qa[pick][hk])
            self._vtime = vt
            self._server_free_us = free
            for k, st in enumerate(states):
                st.q_head = hs[k]
                st.vfinish = vf[k]
            if hit_until or min_admit == inf:
                break
        for k in range(nstates):
            flush(k)

    # ------------------------------------------------------------------
    # CP loop
    # ------------------------------------------------------------------
    def step(self) -> CPStats | None:
        """Advance one CP interval; returns the CP's stats (None if no
        ops were admitted in the window)."""
        # Pin the tracer clock to simulated traffic time so spans from
        # different CP intervals never overlap in the trace timeline.
        obs.sync_us(self.clock_us)
        with obs.span("traffic.step", interval=self._cp_count):
            return self._step_vec() if self.vectorized else self._step()

    def _step(self) -> CPStats | None:
        window_end = self.clock_us + self.cp_interval_us
        traced = obs.active()
        rejected_before = (
            [len(st.rejected_us) for st in self.states] if traced else None
        )
        cp_ops: dict[int, list[tuple[float, float]]] = {}
        for i, st in enumerate(self.states):
            self._generate_arrivals(st, window_end)
            riders = st.take_riders(window_end)
            if riders:
                cp_ops[i] = riders
        if traced:
            for st, before in zip(self.states, rejected_before):
                delta = len(st.rejected_us) - before
                if delta:
                    obs.count("traffic.rejected_ops", delta, tenant=st.spec.name)
            for i in sorted(cp_ops):
                st = self.states[i]
                obs.count(
                    "traffic.admitted_ops",
                    len(cp_ops[i]),
                    tenant=st.spec.name,
                    vol=st.spec.volume,
                )
        self.clock_us = window_end
        total = sum(len(v) for v in cp_ops.values())
        if total == 0:
            self._drain(window_end)
            self._cp_count += 1
            return None

        writes: dict[str, np.ndarray] = {}
        deletes: dict[str, np.ndarray] = {}
        ops_by_source: dict[str, int] = {}
        for i in sorted(cp_ops):
            st = self.states[i]
            w, d = st.spec.mix.next_ops(len(cp_ops[i]))
            if w.size:
                writes[st.spec.volume] = w
            if d.size:
                deletes[st.spec.volume] = d
            ops_by_source[st.spec.name] = len(cp_ops[i])
        stats = self.sim.engine.run_cp(
            CPBatch(writes=writes, ops=total, deletes=deletes,
                    ops_by_source=ops_by_source)
        )

        cpu_per_op = stats.cpu_us / total
        dev_per_op = stats.device_busy_us / total
        core_share = cpu_per_op / self.cores
        s_occ = core_share if core_share > dev_per_op else dev_per_op
        s_lat = cpu_per_op + dev_per_op
        self._occ_weighted_us += s_occ * total
        self._total_ops += total
        for i, ops in cp_ops.items():
            share = len(ops) / total
            st = self.states[i]
            st.charged_cpu_us += stats.cpu_us * share
            st.charged_device_us += stats.device_busy_us * share
            for arrival, admit in ops:
                st.backend.append((arrival, admit, s_occ, s_lat))
        self._drain(window_end)
        self._cp_count += 1
        return stats

    def _step_vec(self) -> CPStats | None:
        """Batched :meth:`_step`: identical control flow, but riders
        move as (arrival, admit) array pairs from admission through the
        backend queue — no per-op tuples.  The CP itself and every
        charged-share float expression are shared with the scalar path
        verbatim, so the two pipelines produce byte-identical metrics.
        """
        window_end = self.clock_us + self.cp_interval_us
        traced = obs.active()
        rejected_before = (
            [st.rejected_count() for st in self.states] if traced else None
        )
        cp_ops: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for i, st in enumerate(self.states):
            self._generate_arrivals_vec(st, window_end)
            ts, adm = st.take_riders_arrays(window_end)
            if ts.size:
                cp_ops[i] = (ts, adm)
        if traced:
            for st, before in zip(self.states, rejected_before):
                delta = st.rejected_count() - before
                if delta:
                    obs.count("traffic.rejected_ops", delta, tenant=st.spec.name)
            for i in sorted(cp_ops):
                st = self.states[i]
                obs.count(
                    "traffic.admitted_ops",
                    int(cp_ops[i][0].size),
                    tenant=st.spec.name,
                    vol=st.spec.volume,
                )
        self.clock_us = window_end
        total = int(sum(ts.size for ts, _ in cp_ops.values()))
        if total == 0:
            self._drain_vec(window_end)
            self._cp_count += 1
            return None

        writes: dict[str, np.ndarray] = {}
        deletes: dict[str, np.ndarray] = {}
        ops_by_source: dict[str, int] = {}
        for i in sorted(cp_ops):
            st = self.states[i]
            count = int(cp_ops[i][0].size)
            w, d = st.spec.mix.next_ops(count)
            if w.size:
                writes[st.spec.volume] = w
            if d.size:
                deletes[st.spec.volume] = d
            ops_by_source[st.spec.name] = count
        stats = self.sim.engine.run_cp(
            CPBatch(writes=writes, ops=total, deletes=deletes,
                    ops_by_source=ops_by_source)
        )

        cpu_per_op = stats.cpu_us / total
        dev_per_op = stats.device_busy_us / total
        core_share = cpu_per_op / self.cores
        s_occ = core_share if core_share > dev_per_op else dev_per_op
        s_lat = cpu_per_op + dev_per_op
        self._occ_weighted_us += s_occ * total
        self._total_ops += total
        for i, (ts, adm) in cp_ops.items():
            share = ts.size / total
            st = self.states[i]
            st.charged_cpu_us += stats.cpu_us * share
            st.charged_device_us += stats.device_busy_us * share
            st.backend_chunks.append((ts, adm, s_occ, s_lat))
        self._drain_vec(window_end)
        self._cp_count += 1
        return stats

    def run(self, n_cps: int) -> "TrafficEngine":
        for _ in range(n_cps):
            self.step()
        return self

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    @property
    def capacity_ops(self) -> float:
        """Backend capacity implied by the run's CPs (ops/s)."""
        if self._total_ops == 0:
            return 0.0
        return 1e6 / (self._occ_weighted_us / self._total_ops)

    def _record_series(self, st: _TenantState, horizon_us: float) -> None:
        """Per-CP-interval time series into the sim's MetricsLog."""
        metrics = self.sim.metrics
        edges = np.arange(0.0, horizon_us + self.cp_interval_us / 2,
                          self.cp_interval_us)
        arrivals = st.arrivals_array()
        rejected = st.rejected_array()
        complete_raw = st.complete_array()
        complete = np.sort(complete_raw)
        latency = st.latency_array()
        order = np.argsort(complete_raw, kind="stable")
        latency_by_completion = latency[order] if latency.size else latency
        name = st.spec.name
        interval_s = self.cp_interval_us / 1e6
        # One vectorized searchsorted per series over all edges; the
        # remaining loop touches only Python ints (counts per interval).
        cuts = np.searchsorted(complete, edges, side="right").tolist()
        arr_cum = np.searchsorted(np.sort(arrivals), edges, side="right").tolist()
        rej_cum = np.searchsorted(np.sort(rejected), edges, side="right").tolist()
        for k in range(len(edges) - 1):
            lo_cut, hi_cut = cuts[k], cuts[k + 1]
            done = hi_cut - lo_cut
            metrics.record_point(f"traffic.{name}.achieved_ops_s", done / interval_s)
            window = latency_by_completion[lo_cut:hi_cut]
            p99 = float(np.percentile(window, 99)) / 1e3 if window.size else 0.0
            metrics.record_point(f"traffic.{name}.p99_ms", p99)
            in_flight = arr_cum[k + 1] - rej_cum[k + 1] - hi_cut
            metrics.record_point(f"traffic.{name}.queue_depth", in_flight)

    def summary(self) -> TrafficResult:
        """Finalize the run: per-tenant percentiles, throughput, queue
        depth (series recorded via the sim's MetricsLog)."""
        horizon_us = self.clock_us
        horizon_s = horizon_us / 1e6
        tenants: dict[str, TenantSummary] = {}
        already_recorded = self._series_recorded
        self._series_recorded = True
        for st in self.states:
            if not already_recorded:
                self._record_series(st, horizon_us)
            complete = st.complete_array()
            latency = st.latency_array()
            done_mask = complete <= horizon_us
            done_lat_ms = latency[done_mask] / 1e3
            completed = int(done_mask.sum())
            arrived = st.arrived_count()
            rejected = st.rejected_count()
            qd = np.asarray(
                self.sim.metrics.query(
                    "queue_depth", tenant=st.spec.name, default=[0]
                )
            )
            tenants[st.spec.name] = TenantSummary(
                name=st.spec.name,
                volume=st.spec.volume,
                offered_ops_s=arrived / horizon_s if horizon_s else 0.0,
                achieved_ops_s=completed / horizon_s if horizon_s else 0.0,
                arrived=arrived,
                admitted=st.admitted,
                rejected=rejected,
                completed=completed,
                in_flight=arrived - rejected - completed,
                p50_ms=float(np.percentile(done_lat_ms, 50)) if completed else 0.0,
                p95_ms=float(np.percentile(done_lat_ms, 95)) if completed else 0.0,
                p99_ms=float(np.percentile(done_lat_ms, 99)) if completed else 0.0,
                mean_ms=float(done_lat_ms.mean()) if completed else 0.0,
                max_queue_depth=int(qd.max()) if qd.size else 0,
                mean_queue_depth=float(qd.mean()) if qd.size else 0.0,
                charged_cpu_us=st.charged_cpu_us,
                charged_device_us=st.charged_device_us,
            )
        return TrafficResult(
            tenants=tenants,
            capacity_ops=self.capacity_ops,
            horizon_s=horizon_s,
            cps=self._cp_count,
            total_ops=self._total_ops,
        )
