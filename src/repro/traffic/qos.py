"""Per-tenant QoS: token buckets and admission limits.

A tenant's operations pass through up to two token buckets before they
can ride a consistency point: an IOPS bucket (one token per op) and a
dirty-block bucket (``blocks_per_op`` tokens per op).  Buckets refill
continuously at their configured rate up to a burst ceiling, so
admission times are a pure function of arrival times — no sampling, no
timers, fully deterministic.

A bounded admission queue turns throttling into *bounded* latency: an
arrival that would leave more than ``queue_depth`` operations waiting
for admission is rejected instead of queued, so an admitted op waits at
most ``queue_depth / admission_rate`` seconds.  This is the standard
QoS trade — shed load to protect the latency of what you accept.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenBucket", "QosLimits"]


class TokenBucket:
    """Continuous-refill token bucket over simulated microseconds.

    The bucket starts full (``burst`` tokens at t=0) and refills at
    ``rate_per_s`` tokens per simulated second, capped at ``burst``.
    """

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_us = 0.0

    def _level_at(self, t_us: float) -> float:
        elapsed_s = max(t_us - self._last_us, 0.0) / 1e6
        return min(self.burst, self._tokens + elapsed_s * self.rate_per_s)

    def ready_time_us(self, t_us: float, n: float = 1.0) -> float:
        """Earliest time >= ``t_us`` at which ``n`` tokens are available.

        ``n`` may exceed the burst ceiling; the shortfall is served at
        the refill rate (the op waits for tokens to accumulate past the
        cap conceptually — modeled as a linear delay).
        """
        level = self._level_at(t_us)
        if level >= n:
            return t_us
        return t_us + (n - level) / self.rate_per_s * 1e6

    def take(self, t_us: float, n: float = 1.0) -> None:
        """Consume ``n`` tokens at ``t_us`` (caller must have waited
        until :meth:`ready_time_us`; the level may go slightly negative
        for bursts above the ceiling, which models the linear drain)."""
        self._tokens = self._level_at(t_us) - n
        self._last_us = t_us


@dataclass(frozen=True)
class QosLimits:
    """Per-tenant admission limits (``None`` disables a dimension).

    Parameters
    ----------
    iops:
        Sustained operations per second admitted.
    iops_burst:
        Bucket depth for the IOPS limit (ops admitted back-to-back).
    dirty_blocks_per_s:
        Sustained dirty-block budget (4 KiB blocks per second) — the
        write-bandwidth analogue of the IOPS cap.
    dirty_burst_blocks:
        Bucket depth for the dirty-block budget.
    """

    iops: float | None = None
    iops_burst: float = 64.0
    dirty_blocks_per_s: float | None = None
    dirty_burst_blocks: float = 256.0

    def make_buckets(self) -> list[tuple[TokenBucket, str]]:
        """Instantiate the configured buckets, tagged by dimension
        (``"ops"`` charges 1 token per op, ``"blocks"`` charges
        ``blocks_per_op`` tokens per op)."""
        buckets: list[tuple[TokenBucket, str]] = []
        if self.iops is not None:
            buckets.append((TokenBucket(self.iops, self.iops_burst), "ops"))
        if self.dirty_blocks_per_s is not None:
            buckets.append(
                (TokenBucket(self.dirty_blocks_per_s, self.dirty_burst_blocks), "blocks")
            )
        return buckets
