"""Canned multi-tenant traffic scenarios and cross-validation sweeps.

Three scenarios cover the QoS stories a multi-tenant array has to tell
(EXPERIMENTS.md, "Multi-tenant traffic and QoS"):

``uniform``
    N identical Poisson tenants at ~60% of calibrated backend capacity
    — the steady multi-client load the paper's latency-throughput
    sweeps assume, and the configuration the single-tenant knee
    cross-validation uses.
``noisy-neighbor``
    Tenant 0 offers ~1.5x the whole backend's capacity, unthrottled.
    Tenant 1 is the QoS-protected victim: IOPS-capped with a bounded
    admission queue, so its p99 stays bounded (shed load, not latency)
    while the aggressor saturates the backend and eats its own backlog.
    Remaining tenants are moderate bystanders (one bursty on/off).
``throttled``
    Same population, but the aggressor is also IOPS-capped with a
    bounded queue — the backend comes off saturation and every
    tenant's tail collapses back to service time.

Tenant rates are expressed as fractions of *calibrated* capacity (a
short random-overwrite measurement on the freshly aged sim), so the
scenarios keep their shape across quick/full configurations and future
allocator changes.  All randomness flows from the run seed through
:func:`repro.common.rng.spawn`, so runs replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import AggregateSpec, SimConfig, TierSpec, VolumeDecl
from ..common.rng import make_rng, spawn
from ..fs.filesystem import WaflSim
from ..sim.latency import peak_throughput, system_curve
from ..workloads.aging import age_filesystem, reset_measurement_state
from ..workloads.mixes import UniformOverwriteMix, ZipfOverwriteMix
from ..workloads.random_overwrite import RandomOverwriteWorkload
from .arrivals import OnOffArrivals, PoissonArrivals
from .engine import DEFAULT_CORES, TenantSpec, TrafficEngine, TrafficResult
from .qos import QosLimits

__all__ = [
    "SCENARIOS",
    "CalibratedService",
    "build_traffic_sim",
    "calibrate_capacity",
    "build_scenario",
    "TrafficRun",
    "run_traffic",
    "knee_validation",
]

SCENARIOS = ("uniform", "noisy-neighbor", "throttled")

#: Clients per tenant in the closed-form comparison (harness NCLIENTS).
_NCLIENTS = SimConfig.default().traffic.knee_nclients
#: Ops per CP the engine targets — matches the batch sizes the figure
#: benches measure, so calibrated per-op costs transfer.
_TARGET_OPS_PER_CP = SimConfig.default().traffic.target_ops_per_cp


@dataclass(frozen=True)
class CalibratedService:
    """Per-op service costs measured on the aged sim before traffic."""

    cpu_us_per_op: float
    device_us_per_op: float
    cores: int

    @property
    def capacity_ops(self) -> float:
        """Backend saturation throughput (ops/s, whole server)."""
        cpu_cap = (
            self.cores * 1e6 / self.cpu_us_per_op
            if self.cpu_us_per_op
            else float("inf")
        )
        dev_cap = (
            1e6 / self.device_us_per_op if self.device_us_per_op else float("inf")
        )
        return min(cpu_cap, dev_cap)


def build_traffic_sim(
    n_tenants: int,
    *,
    blocks_per_disk: int = 65_536,
    churn_factor: float = 1.0,
    fill_fraction: float = 0.55,
    seed: int = 42,
) -> WaflSim:
    """An aged all-SSD aggregate with one FlexVol per tenant.

    Same testbed shape as :func:`repro.bench.harness.build_aged_ssd_sim`
    (section 4.1: filled to 55% and fragmented by heavy random writes),
    but carved into ``n_tenants`` equal volumes named ``tenant0..N-1``.
    Built here rather than imported from ``bench`` because ``traffic``
    sits below ``bench`` in the package DAG.
    """
    if n_tenants <= 0:
        raise ValueError("n_tenants must be positive")
    tier = TierSpec(
        label="ssd",
        media="ssd",
        n_groups=2,
        ndata=4,
        blocks_per_disk=blocks_per_disk,
        erase_block_blocks=512,
        program_us_per_block=16.0,
    )
    phys = 2 * 4 * blocks_per_disk
    logical = int(phys * fill_fraction)
    share = logical // n_tenants
    vols = tuple(
        VolumeDecl(
            f"tenant{i}",
            logical_blocks=share if i < n_tenants - 1 else logical - share * (n_tenants - 1),
        )
        for i in range(n_tenants)
    )
    sim = WaflSim.build(AggregateSpec(tiers=(tier,), volumes=vols), seed=seed)
    age_filesystem(sim, churn_factor=churn_factor, ops_per_cp=16384, seed=seed)
    reset_measurement_state(sim)
    for vol in sim.vols.values():
        vol.metafile.bitmap.check = False
    for group in sim.store.groups:
        group.metafile.bitmap.check = False
    return sim


def calibrate_capacity(
    sim: WaflSim,
    *,
    cores: int = DEFAULT_CORES,
    n_cps: int = 6,
    ops_per_cp: int = _TARGET_OPS_PER_CP,
    seed: int = 4242,
) -> CalibratedService:
    """Measure per-op service costs on the aged sim, then reset it.

    A short random-overwrite burst at the engine's CP batch size yields
    the cpu/device cost per op; scenario rates are then expressed as
    fractions of the implied capacity so they keep their shape across
    configurations.  Measurement state is reset afterwards, so the
    traffic run starts from clean metrics.
    """
    wl = RandomOverwriteWorkload(sim, ops_per_cp=ops_per_cp, seed=seed)
    sim.run(wl, n_cps)
    m = sim.metrics
    cal = CalibratedService(
        cpu_us_per_op=m.cpu_us_per_op,
        device_us_per_op=m.device_us_per_op,
        cores=cores,
    )
    reset_measurement_state(sim)
    return cal


def _vol_blocks(sim: WaflSim, name: str) -> int:
    return sim.vols[name].spec.logical_blocks


def build_scenario(
    name: str,
    sim: WaflSim,
    capacity_ops: float,
    *,
    n_tenants: int = 4,
    seed: int = 7,
) -> list[TenantSpec]:
    """Tenant specs for one named scenario (see module docstring).

    Tenant 0 is the aggressor in the contended scenarios; tenant 1 the
    QoS-protected victim; tenant 2 (when present) a bursty on/off
    bystander; further tenants are moderate Poisson clients.
    """
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; pick one of {SCENARIOS}")
    if n_tenants <= 0:
        raise ValueError("n_tenants must be positive")
    if name != "uniform" and n_tenants < 2:
        raise ValueError(f"scenario {name!r} needs an aggressor and a victim")
    rng = make_rng(seed)
    seeds = spawn(rng, 2 * n_tenants)
    tenants: list[TenantSpec] = []

    if name == "uniform":
        per_tenant = 0.6 * capacity_ops / n_tenants
        for i in range(n_tenants):
            vol = f"tenant{i}"
            tenants.append(
                TenantSpec(
                    name=f"t{i}",
                    volume=vol,
                    arrivals=PoissonArrivals(per_tenant, seed=seeds[2 * i]),
                    mix=UniformOverwriteMix(
                        _vol_blocks(sim, vol), seed=seeds[2 * i + 1]
                    ),
                )
            )
        return tenants

    # Contended scenarios share the population; only the aggressor's
    # QoS contract differs.
    aggressor_qos = None
    aggressor_depth = None
    if name == "throttled":
        aggressor_qos = QosLimits(iops=0.25 * capacity_ops, iops_burst=64.0)
        aggressor_depth = 128
    tenants.append(
        TenantSpec(
            name="t0-aggressor",
            volume="tenant0",
            arrivals=PoissonArrivals(1.5 * capacity_ops, seed=seeds[0]),
            mix=UniformOverwriteMix(_vol_blocks(sim, "tenant0"), seed=seeds[1]),
            qos=aggressor_qos,
            queue_depth=aggressor_depth,
        )
    )
    victim_cap = 0.04 * capacity_ops
    tenants.append(
        TenantSpec(
            name="t1-victim",
            volume="tenant1",
            # Offers 2x its QoS cap, so throttling (and load shedding)
            # is visibly exercised while p99 stays bounded by
            # queue_depth / iops.
            arrivals=PoissonArrivals(2.0 * victim_cap, seed=seeds[2]),
            mix=ZipfOverwriteMix(_vol_blocks(sim, "tenant1"), seed=seeds[3]),
            qos=QosLimits(iops=victim_cap, iops_burst=32.0),
            queue_depth=64,
        )
    )
    for i in range(2, n_tenants):
        vol = f"tenant{i}"
        if i == 2:
            arrivals = OnOffArrivals(
                0.3 * capacity_ops,
                mean_on_us=300_000.0,
                mean_off_us=300_000.0,
                seed=seeds[2 * i],
            )
        else:
            arrivals = PoissonArrivals(0.05 * capacity_ops, seed=seeds[2 * i])
        tenants.append(
            TenantSpec(
                name=f"t{i}",
                volume=vol,
                arrivals=arrivals,
                mix=UniformOverwriteMix(
                    _vol_blocks(sim, vol), seed=seeds[2 * i + 1]
                ),
            )
        )
    return tenants


@dataclass
class TrafficRun:
    """A finished scenario run: the result plus the live engine/sim
    (kept for CLI tables, fault injection, and series inspection)."""

    scenario: str
    result: TrafficResult
    calibration: CalibratedService
    engine: TrafficEngine
    sim: WaflSim


def run_traffic(
    scenario: str = "noisy-neighbor",
    *,
    n_tenants: int | None = None,
    seed: int = 7,
    quick: bool = True,
    n_cps: int | None = None,
    blocks_per_disk: int | None = None,
    cores: int = DEFAULT_CORES,
    audit_hook=None,
    vectorized: bool | None = None,
) -> TrafficRun:
    """Build, calibrate, and run one named scenario end to end.

    The aging seed is fixed (the testbed is part of the scenario); the
    run ``seed`` drives arrivals and op mixes, so two runs with the
    same seed replay byte-identically and different seeds decorrelate.

    ``audit_hook(sim)`` — when given — runs after the traffic run;
    callers pass :func:`repro.analysis.auditor.audit_sim` to audit the
    run without this package importing ``analysis`` (which sits above
    ``traffic`` in the package DAG).
    """
    if n_tenants is None:
        n_tenants = SimConfig.default().traffic.default_tenants
    if blocks_per_disk is None:
        blocks_per_disk = 65_536 if quick else 131_072
    if n_cps is None:
        n_cps = 40 if quick else 80
    sim = build_traffic_sim(
        n_tenants,
        blocks_per_disk=blocks_per_disk,
        churn_factor=1.0 if quick else 2.0,
    )
    cal = calibrate_capacity(sim, cores=cores)
    tenants = build_scenario(
        scenario, sim, cal.capacity_ops, n_tenants=n_tenants, seed=seed
    )
    engine = TrafficEngine(
        sim, tenants, target_ops_per_cp=_TARGET_OPS_PER_CP, cores=cores,
        vectorized=vectorized,
    )
    engine.run(n_cps)
    result = engine.summary()
    if audit_hook is not None:
        audit_hook(sim)
    return TrafficRun(
        scenario=scenario, result=result, calibration=cal, engine=engine, sim=sim
    )


def knee_validation(
    *,
    seed: int = 7,
    blocks_per_disk: int = 65_536,
    n_cps: int = 30,
    fractions: tuple[float, ...] = (0.5, 0.8, 1.2, 2.0),
    cores: int = DEFAULT_CORES,
) -> dict:
    """Cross-validate the event engine against the closed-form model.

    Single tenant, uniform overwrites, fig6 quick configuration: the
    M/M/1-shaped transform's knee (peak achieved throughput of
    :func:`repro.sim.latency.system_curve` over the same measured
    service costs) must agree with the event-driven engine's knee (max
    achieved throughput over a sweep of offered loads) — the two
    derive saturation from the same per-op costs, so they must land
    within tolerance (the test pins 10%).

    Returns mm1/event knees (whole-server ops/s) plus the sweep points.
    """
    sim = build_traffic_sim(1, blocks_per_disk=blocks_per_disk)
    cal = calibrate_capacity(sim, cores=cores)
    offered_per_client = [
        f * cal.capacity_ops / _NCLIENTS for f in (0.25, 0.5, 0.8, 0.95, 1.0, 1.5, 2.5)
    ]
    curve = system_curve(
        cal.cpu_us_per_op,
        cal.device_us_per_op,
        offered_per_client,
        nclients=_NCLIENTS,
        cores=cores,
    )
    mm1_knee_ops = peak_throughput(curve).achieved_per_client * _NCLIENTS
    rng = make_rng(seed)
    seeds = spawn(rng, 2 * len(fractions))
    points = []
    event_knee_ops = 0.0
    for k, f in enumerate(fractions):
        reset_measurement_state(sim)
        offered = f * cal.capacity_ops
        engine = TrafficEngine(
            sim,
            [
                TenantSpec(
                    name="t0",
                    volume="tenant0",
                    arrivals=PoissonArrivals(offered, seed=seeds[2 * k]),
                    mix=UniformOverwriteMix(
                        _vol_blocks(sim, "tenant0"), seed=seeds[2 * k + 1]
                    ),
                )
            ],
            target_ops_per_cp=_TARGET_OPS_PER_CP,
            cores=cores,
        )
        engine.run(n_cps)
        summary = engine.summary().tenants["t0"]
        points.append(
            {
                "offered_fraction": f,
                "offered_ops_s": offered,
                "achieved_ops_s": summary.achieved_ops_s,
                "p99_ms": summary.p99_ms,
            }
        )
        if summary.achieved_ops_s > event_knee_ops:
            event_knee_ops = summary.achieved_ops_s
    return {
        "mm1_knee_ops": mm1_knee_ops,
        "event_knee_ops": event_knee_ops,
        "knee_ratio": event_knee_ops / mm1_knee_ops if mm1_knee_ops else 0.0,
        "capacity_ops": cal.capacity_ops,
        "cpu_us_per_op": cal.cpu_us_per_op,
        "device_us_per_op": cal.device_us_per_op,
        "points": points,
    }
