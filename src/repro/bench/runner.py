"""Parallel benchmark runner: fan experiment configurations out to a
process pool and persist a JSON performance trajectory.

Every figure reproduction decomposes into independent *work units* (one
aged-and-measured configuration each), so the full suite parallelizes
trivially across processes: each unit builds its own simulator from a
deterministic seed, measures, and returns plain JSON-serializable
metrics.  The runner

* plans the unit list (:func:`plan_units`) from the experiment
  registry, deriving a per-unit seed deterministically from the unit's
  identity — a parallel run is byte-identical to a serial one apart
  from timing fields (see :func:`strip_timing`);
* executes units with :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers=1`` runs in-process, the serial reference);
* writes one JSON document per experiment under
  ``benchmarks/results/bench_<experiment>.json`` and a top-level
  trajectory summary ``BENCH_PR3.json`` (wall time per unit, aggregate
  units/s, peak capacity per configuration, host metadata, and the
  optimization before/after record of the PR that introduced it);
* optionally diffs the deterministic metrics against a previous
  trajectory (:func:`compare_to_baseline`) as a perf-regression gate.

The ``--audit`` path arms the cross-layer invariant auditor inside each
worker via :func:`importlib.import_module` — ``repro.analysis`` sits
*above* ``bench`` in the package DAG, so a static import here would be
a layering violation (simlint L201); late binding keeps the dependency
optional and inverted, exactly like the ``audit_hook`` parameter of
:func:`~repro.bench.harness.measure_random_overwrite`.
"""

from __future__ import annotations

import importlib
import json
import os
import platform
import sys
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass

from .. import obs
from ..common.config import SimConfig
from .harness import RESULTS_DIR, ConfigResult

__all__ = [
    "SCHEMA",
    "TRAJECTORY_NAME",
    "MACRO_BASELINE",
    "UnitSpec",
    "plan_units",
    "run_unit",
    "run_bench",
    "strip_timing",
    "compare_to_baseline",
    "perf_regression",
    "write_results",
]

SCHEMA = "repro-bench/1"
TRAJECTORY_NAME = "BENCH_PR10.json"

#: Repo root (two levels above ``benchmarks/results``).
_REPO_ROOT = os.path.normpath(os.path.join(RESULTS_DIR, "..", ".."))

#: Keys that vary run to run (wall clocks, host identity, pool size).
#: :func:`strip_timing` removes them so two runs of the same units can
#: be compared for byte-identical determinism.
_NONDETERMINISTIC_KEYS = frozenset(
    {"timing", "host", "workers", "optimization", "wall_s", "units_per_s"}
)

#: The macro benchmark measured on this PR's branch point (same host
#: class as CI), before the batch-pipeline vectorization: the PR 3
#: trajectory's "after" record, i.e. the state this PR starts from.
#: ``measure_wall_s`` is the 40-CP random-overwrite measurement phase;
#: ``age_wall_s`` is the section 4.1 aging phase that precedes it.
MACRO_BASELINE = {
    "age_wall_s": 0.7246607130000484,
    "measure_wall_s": 0.3575506060005864,
    "cps_per_s": 111.87227578054895,
    "cpu_us_per_op": 252.7024934387207,
    "capacity_ops": 79144.45056653117,
}

#: Canonical seed per experiment (the figures' published seeds), from
#: the one place seeds now live: :class:`repro.common.config.BenchConfig`.
_CANONICAL_SEEDS = SimConfig.default().bench.canonical_seeds()


@dataclass(frozen=True)
class UnitSpec:
    """One schedulable work unit: (experiment, configuration) + seed."""

    experiment: str
    unit: str
    quick: bool
    seed: int
    audit: bool = False
    #: Run the unit with the structured tracer installed (trace-smoke:
    #: instrumentation must not change the simulated metrics).
    trace: bool = False

    @property
    def key(self) -> str:
        return f"{self.experiment}/{self.unit}"


# ----------------------------------------------------------------------
# Unit implementations (module-level: workers import this module and
# dispatch by name, so nothing below needs to pickle)
# ----------------------------------------------------------------------


def _config_result_metrics(r: ConfigResult) -> dict:
    d = asdict(r)
    d["capacity_ops"] = r.capacity_ops
    return d


def _unit_fig6(spec: UnitSpec) -> dict:
    from .experiments import run_fig6_config

    r = run_fig6_config(spec.unit, quick=spec.quick, seed=spec.seed)
    return _config_result_metrics(r)


def _unit_fig7(spec: UnitSpec) -> dict:
    from .experiments import run_fig7

    res = run_fig7(quick=spec.quick, seed=spec.seed)
    return {
        "blocks_per_disk_per_s": [
            (arr / res.seconds).tolist() for arr in res.blocks_per_disk
        ],
        "tetrises_per_s": (res.tetrises / res.seconds).tolist(),
        "blocks_per_s": (res.blocks / res.seconds).tolist(),
        "partial_stripe_fraction": [
            float(p) / float(s) if s else 0.0
            for p, s in zip(res.partials.tolist(), res.stripes.tolist())
        ],
        "aged_groups": res.aged(),
        "fresh_groups": res.fresh(),
    }


def _unit_fig8(spec: UnitSpec) -> dict:
    from .experiments import run_fig8_config

    r = run_fig8_config(spec.unit, quick=spec.quick, seed=spec.seed)
    return _config_result_metrics(r)


def _unit_fig9(spec: UnitSpec) -> dict:
    from .experiments import run_fig9_config

    return run_fig9_config(spec.unit, quick=spec.quick, seed=spec.seed)


def _unit_fig10(spec: UnitSpec) -> dict:
    from .experiments import run_fig10_count, run_fig10_size

    fn = run_fig10_size if spec.unit == "size" else run_fig10_count
    rows, _series = fn(quick=spec.quick)
    # The last column is the cache-build *wall* time: nondeterministic,
    # so it rides in the timing section (stripped for comparisons).
    return {
        "metrics": {"rows": [r[:-1] for r in rows]},
        "timing": {"build_wall_ms": [float(r[-1]) for r in rows]},
    }


def _unit_macro(spec: UnitSpec) -> dict:
    """The random-overwrite macro benchmark: the hot-path optimization
    target, timed per phase so the trajectory documents the speedup."""
    from .harness import build_aged_ssd_sim, measure_random_overwrite

    n_cps = 15 if spec.quick else 40
    # Repeat the full age+measure cycle and keep the minimum wall time
    # per phase: the simulation is deterministic, so every repeat
    # produces identical metrics and min() only discards scheduler
    # noise from the documented speedup record.
    repeats = 1 if spec.quick else 3
    age_wall = measure_wall = float("inf")
    r = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim = build_aged_ssd_sim(
            blocks_per_disk=65_536 if spec.quick else 131_072,
            churn_factor=1.0 if spec.quick else 2.0,
            seed=spec.seed,
        )
        t1 = time.perf_counter()
        r = measure_random_overwrite(sim, "macro", n_cps=n_cps)
        t2 = time.perf_counter()
        age_wall = min(age_wall, t1 - t0)
        measure_wall = min(measure_wall, t2 - t1)
    out = _config_result_metrics(r)
    return {
        "metrics": out,
        "timing": {
            "age_wall_s": age_wall,
            "measure_wall_s": measure_wall,
            "cps_per_s": n_cps / measure_wall,
        },
    }


def _unit_traffic(spec: UnitSpec) -> dict:
    """One multi-tenant traffic scenario: per-tenant p50/p95/p99,
    achieved throughput, and QoS shedding under shared-backend load.
    Everything reported is simulated-clock derived, so the whole
    payload participates in the determinism and baseline gates."""
    from ..traffic import run_traffic

    run = run_traffic(
        spec.unit,
        n_tenants=2 if spec.quick else 4,
        seed=spec.seed,
        quick=spec.quick,
    )
    out = run.result.as_dict()
    out["calibrated_capacity_ops"] = run.calibration.capacity_ops
    return out


def _unit_cluster(spec: UnitSpec) -> dict:
    """The fleet bench: filter/weigher vs random placement on the
    noisy-neighbor fleet, plus the worker-scaling curve re-evaluating
    the same placement history (byte-identical digest at every worker
    count; only the wall clocks land in ``timing``).

    Late-bound through importlib: ``repro.cluster`` is the layer above
    this one in the DAG, so the bench may dispatch to it by name but
    never import it statically.
    """
    import importlib

    cluster = importlib.import_module("repro.cluster")
    return cluster.run_cluster_bench(
        quick=spec.quick, seed=spec.seed, audit=spec.audit
    )


def _unit_tier(spec: UnitSpec) -> dict:
    """The heterogeneous-tier demo: mixed SSD + HDD + SMR aggregate,
    chooser placement, deliberate misplacement corrected by the
    background migration pass (block conservation asserted inside).

    Late-bound through importlib: ``repro.tiering`` sits above bench in
    the DAG (same arrangement as the cluster unit).
    """
    import importlib

    tiering = importlib.import_module("repro.tiering")
    return tiering.run_tier_bench(
        quick=spec.quick, seed=spec.seed, audit=spec.audit
    )


_EXPERIMENTS: dict[str, tuple[str, ...]] = {}


def _unit_names(experiment: str) -> tuple[str, ...]:
    """Unit labels of one experiment (computed lazily: the registries
    live in :mod:`repro.bench.experiments`)."""
    if not _EXPERIMENTS:
        from .experiments import FIG6_CONFIGS, FIG8_SIZINGS, FIG9_SIZINGS

        _EXPERIMENTS.update(
            {
                "fig6": tuple(FIG6_CONFIGS),
                "fig7": ("oltp",),
                "fig8": tuple(FIG8_SIZINGS),
                "fig9": tuple(FIG9_SIZINGS),
                "fig10": ("size", "count"),
                "macro": ("random-overwrite",),
                "traffic": ("uniform", "noisy-neighbor", "throttled"),
                "cluster": ("fleet",),
                "tier": ("tiered",),
            }
        )
    return _EXPERIMENTS[experiment]


_RUNNERS = {
    "fig6": _unit_fig6,
    "fig7": _unit_fig7,
    "fig8": _unit_fig8,
    "fig9": _unit_fig9,
    "fig10": _unit_fig10,
    "macro": _unit_macro,
    "traffic": _unit_traffic,
    "cluster": _unit_cluster,
    "tier": _unit_tier,
}

ALL_EXPERIMENTS = tuple(_RUNNERS)


def _derive_seed(base: int, key: str) -> int:
    """Deterministic per-unit seed: stable across processes and runs."""
    return (base * 1_000_003 + zlib.crc32(key.encode())) & 0x7FFFFFFF


def plan_units(
    *,
    quick: bool = False,
    experiments: list[str] | None = None,
    seed: int | None = None,
    audit: bool = False,
    trace: bool = False,
) -> list[UnitSpec]:
    """The deterministic unit list for one run.

    With ``seed=None`` every unit uses its experiment's canonical seed
    (results match the ``repro figN`` commands); an explicit base seed
    derives a distinct-but-deterministic seed per unit.

    Quick units always arm the invariant auditor: the quick sweep is
    the CI bench-smoke, where the cheap configurations exist to catch
    correctness drift, not to document wall clocks — so they should be
    audited runs (``"audited": true`` in the trajectory).  Full-size
    runs keep auditing opt-in because the auditor's bookkeeping rides
    inside the timed region the trajectory records.
    """
    chosen = list(experiments) if experiments else list(ALL_EXPERIMENTS)
    for name in chosen:
        if name not in _RUNNERS:
            raise ValueError(
                f"unknown experiment {name!r}; choose from {sorted(_RUNNERS)}"
            )
    units: list[UnitSpec] = []
    for exp in chosen:
        for unit in _unit_names(exp):
            s = (
                _CANONICAL_SEEDS[exp]
                if seed is None
                else _derive_seed(seed, f"{exp}/{unit}")
            )
            units.append(UnitSpec(exp, unit, quick, s, audit or quick, trace))
    return units


def run_unit(spec: UnitSpec) -> dict:
    """Execute one unit (in a worker or in-process) and wrap its
    metrics in the per-unit result document."""
    if spec.audit:
        # Late-bound: repro.analysis is a higher layer (see module doc).
        analysis = importlib.import_module("repro.analysis")
        analysis.arm_global()
    if spec.trace:
        obs.install()
    t0 = time.perf_counter()
    try:
        payload = _RUNNERS[spec.experiment](spec)
        trace_records = len(obs.get_tracer()) if spec.trace else 0
    finally:
        if spec.trace:
            obs.uninstall()
        if spec.audit:
            analysis.disarm_global()
    wall = time.perf_counter() - t0
    timing = {"wall_s": wall}
    if isinstance(payload, dict) and "timing" in payload and "metrics" in payload:
        timing.update(payload["timing"])
        payload = payload["metrics"]
    out = {
        "experiment": spec.experiment,
        "unit": spec.unit,
        "seed": spec.seed,
        "quick": spec.quick,
        "audited": spec.audit,
        "traced": spec.trace,
        "metrics": payload,
        "timing": timing,
    }
    if spec.trace:
        out["trace_records"] = trace_records
    return out


def _run_unit_tuple(args: tuple) -> tuple[str, dict]:
    """Picklable pool entry point."""
    spec = UnitSpec(*args)
    return spec.key, run_unit(spec)


def _spec_tuple(s: UnitSpec) -> tuple:
    return (s.experiment, s.unit, s.quick, s.seed, s.audit, s.trace)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def _host_metadata(workers: int) -> dict:
    import numpy as np

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workers": workers,
    }


def run_bench(
    *,
    quick: bool = False,
    workers: int = 1,
    experiments: list[str] | None = None,
    seed: int | None = None,
    audit: bool = False,
    trace: bool = False,
    progress=None,
) -> dict:
    """Run the benchmark suite and return the trajectory document.

    ``workers=1`` executes serially in-process (the determinism
    reference); ``workers>1`` fans units out to a process pool.  The
    returned document is what :func:`write_results` persists; unit
    results are keyed and ordered by ``experiment/unit`` regardless of
    completion order, so parallel and serial runs serialize identically
    once :func:`strip_timing` removes the wall clocks.
    """
    units = plan_units(
        quick=quick, experiments=experiments, seed=seed, audit=audit, trace=trace
    )
    # The macro unit is the one whose *wall time* the trajectory
    # documents (the optimization before/after record), so it never
    # shares cores with pool workers: it runs serially, in-process,
    # BEFORE the pool starts — the quietest window of the run.
    # Everything else only reports deterministic metrics and can
    # tolerate contention.  The cluster unit also runs in-process: it
    # owns a process pool of its own (one worker per shard subset), and
    # its scaling curve is a timed record too.
    _SERIAL = ("macro", "cluster")
    timed = [s for s in units if s.experiment in _SERIAL]
    pooled = [s for s in units if s.experiment not in _SERIAL]
    if workers <= 1:
        timed, pooled = units, []
    t0 = time.perf_counter()
    results: dict[str, dict] = {}
    for spec in timed:
        key, res = _run_unit_tuple(_spec_tuple(spec))
        results[key] = res
        if progress:
            progress(key, res)
    if pooled:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            arg_tuples = [_spec_tuple(s) for s in pooled]
            for key, res in pool.map(_run_unit_tuple, arg_tuples):
                results[key] = res
                if progress:
                    progress(key, res)
    total_wall = time.perf_counter() - t0

    # Canonical order: the planned unit order, not completion order.
    ordered = {spec.key: results[spec.key] for spec in units}
    capacity = {
        key: res["metrics"]["capacity_ops"]
        for key, res in ordered.items()
        if isinstance(res["metrics"], dict) and "capacity_ops" in res["metrics"]
    }
    doc = {
        "schema": SCHEMA,
        "kind": "trajectory",
        "quick": quick,
        "seed": seed,
        "units": ordered,
        "capacity_ops": capacity,
        "peak_capacity_ops": max(capacity.values()) if capacity else None,
        "host": _host_metadata(workers),
        "timing": {
            "total_wall_s": total_wall,
            "units": len(units),
            "units_per_s": len(units) / total_wall if total_wall else 0.0,
            "per_unit_wall_s": {
                key: res["timing"]["wall_s"] for key, res in ordered.items()
            },
        },
    }
    macro_key = "macro/random-overwrite"
    if macro_key in ordered and not quick:
        now = ordered[macro_key]["timing"]
        doc["optimization"] = {
            "benchmark": "random-overwrite macro (build_aged_ssd_sim + 40 CPs)",
            "before": MACRO_BASELINE,
            "after": {
                "age_wall_s": now["age_wall_s"],
                "measure_wall_s": now["measure_wall_s"],
                "cps_per_s": now["cps_per_s"],
                "cpu_us_per_op": ordered[macro_key]["metrics"]["cpu_us_per_op"],
                "capacity_ops": ordered[macro_key]["metrics"]["capacity_ops"],
            },
            "speedup_measure": MACRO_BASELINE["measure_wall_s"]
            / now["measure_wall_s"],
            "speedup_age": MACRO_BASELINE["age_wall_s"] / now["age_wall_s"],
        }
    return doc


def write_results(
    doc: dict,
    *,
    out_dir: str | None = None,
    trajectory_path: str | None = None,
) -> list[str]:
    """Persist per-experiment JSON files plus the trajectory summary;
    returns the paths written."""
    out_dir = out_dir or RESULTS_DIR
    trajectory_path = trajectory_path or os.path.join(_REPO_ROOT, TRAJECTORY_NAME)
    os.makedirs(out_dir, exist_ok=True)
    paths: list[str] = []
    by_exp: dict[str, dict] = {}
    for key, res in doc["units"].items():
        by_exp.setdefault(res["experiment"], {})[res["unit"]] = res
    for exp, units in by_exp.items():
        per_exp = {
            "schema": SCHEMA,
            "kind": "experiment",
            "experiment": exp,
            "quick": doc["quick"],
            "units": units,
        }
        path = os.path.join(out_dir, f"bench_{exp}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(per_exp, f, indent=2, sort_keys=True)
            f.write("\n")
        paths.append(path)
    with open(trajectory_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    paths.append(trajectory_path)
    return paths


# ----------------------------------------------------------------------
# Determinism / regression comparison
# ----------------------------------------------------------------------


def strip_timing(doc):
    """Recursively drop host/timing/pool fields, leaving only the
    deterministic payload (used by the determinism test and the
    baseline gate)."""
    if isinstance(doc, dict):
        return {
            k: strip_timing(v)
            for k, v in doc.items()
            if k not in _NONDETERMINISTIC_KEYS
        }
    if isinstance(doc, list):
        return [strip_timing(v) for v in doc]
    return doc


def _numeric_leaves(doc, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for k, v in doc.items():
            out.update(_numeric_leaves(v, f"{prefix}.{k}" if prefix else str(k)))
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            out.update(_numeric_leaves(v, f"{prefix}[{i}]"))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def perf_regression(
    current: dict, baseline: dict, *, threshold: float = 0.10
) -> list[str]:
    """Wall-clock regression gate: CP throughput must not drop.

    Unlike :func:`compare_to_baseline` (exact simulated metrics), this
    inspects the one timing field the trajectory treats as a product
    number — the macro unit's ``cps_per_s`` — and flags a drop of more
    than ``threshold`` against the baseline document.  Timing noise on
    shared runners is real, so the threshold is deliberately loose; a
    10% drop on the quick macro unit is an order of magnitude above
    scheduler jitter and means the hot path actually got slower.
    """
    problems: list[str] = []
    for key, base_unit in (baseline.get("units") or {}).items():
        base_cps = (base_unit.get("timing") or {}).get("cps_per_s")
        cur_unit = (current.get("units") or {}).get(key)
        if base_cps is None or cur_unit is None:
            continue
        cur_cps = (cur_unit.get("timing") or {}).get("cps_per_s")
        if cur_cps is None:
            problems.append(f"{key}: cps_per_s missing (baseline {base_cps:.1f})")
        elif cur_cps < base_cps * (1.0 - threshold):
            problems.append(
                f"{key}: cps_per_s {base_cps:.1f} -> {cur_cps:.1f} "
                f"({cur_cps / base_cps - 1.0:+.1%}, gate -{threshold:.0%})"
            )
    return problems


def compare_to_baseline(current: dict, baseline: dict, *, rtol: float = 1e-9) -> list[str]:
    """Diff two trajectory documents' deterministic metrics.

    Returns human-readable violation strings (empty = within ``rtol``).
    Timing and host fields never participate: the gate catches changes
    in *simulated* behaviour (throughput model, write amplification,
    metafile traffic), not machine speed.
    """
    cur = _numeric_leaves(strip_timing(current))
    base = _numeric_leaves(strip_timing(baseline))
    problems: list[str] = []
    for key in sorted(base):
        if key == "seed":
            continue
        if key not in cur:
            problems.append(f"missing metric {key} (baseline {base[key]:g})")
            continue
        b, c = base[key], cur[key]
        tol = rtol * max(abs(b), abs(c), 1e-12)
        if abs(b - c) > tol:
            problems.append(f"{key}: baseline {b:g} -> current {c:g}")
    return problems
