"""Library-level experiment runners for every evaluation figure.

Each ``run_figN`` function reproduces one figure of the paper's
section 4 end to end — building the workload and system the figure
used, measuring the quantities it reports, and returning both the raw
results and formatted text tables.  The pytest benchmarks under
``benchmarks/`` call these runners and assert the paper's shape claims;
the command-line interface (``python -m repro``) calls them directly.

``quick=True`` shrinks the configurations for interactive use; the
shipped EXPERIMENTS.md numbers come from the full-size runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.config import AggregateSpec, TierSpec, VolumeDecl
from ..core import aa_size_for_smr, make_aa_cache
from ..devices.smr import SMRConfig
from ..fs import (
    CPBatch,
    PolicyKind,
    WaflSim,
    export_topaa,
    simulate_mount,
)
from ..raid import RAIDGeometry
from ..sim import system_curve
from ..workloads import OLTPWorkload, SequentialWriteWorkload, fill_volumes
from ..workloads.aging import reset_measurement_state
from .harness import (
    CORES,
    NCLIENTS,
    ConfigResult,
    build_aged_ssd_sim,
    fmt_table,
    measure_random_overwrite,
    popcount_audit,
    set_bitmap_checks,
)

__all__ = [
    "FIG6_CONFIGS",
    "FIG6_OFFERED",
    "run_fig6",
    "run_fig6_config",
    "fig6_tables",
    "Fig7Result",
    "run_fig7",
    "fig7_tables",
    "FIG8_SIZINGS",
    "FIG8_ERASE_UNIT",
    "FIG8_OFFERED",
    "run_fig8",
    "run_fig8_config",
    "fig8_tables",
    "FIG9_BLOCKS_PER_DISK",
    "FIG9_ZONE_BLOCKS",
    "FIG9_OFFERED",
    "FIG9_SIZINGS",
    "run_fig9",
    "run_fig9_config",
    "fig9_tables",
    "run_fig10",
    "run_fig10_size",
    "run_fig10_count",
    "fig10_tables",
]

# ----------------------------------------------------------------------
# Figure 6: AA cache benefit (section 4.1)
# ----------------------------------------------------------------------

FIG6_CONFIGS: dict[str, tuple[PolicyKind, PolicyKind]] = {
    "both caches": (PolicyKind.CACHE, PolicyKind.CACHE),
    "FlexVol AA cache": (PolicyKind.RANDOM, PolicyKind.CACHE),
    "Aggregate AA cache": (PolicyKind.CACHE, PolicyKind.RANDOM),
    "neither (baseline)": (PolicyKind.RANDOM, PolicyKind.RANDOM),
}

#: Offered load sweep, ops/s per client (the figure's x axis).
FIG6_OFFERED = np.linspace(1000, 12000, 12)


def run_fig6_config(
    label: str, *, quick: bool = False, seed: int = 42
) -> ConfigResult:
    """Age and measure one Figure 6 configuration (a runner work unit)."""
    ap, vp = FIG6_CONFIGS[label]
    sim = build_aged_ssd_sim(
        aggregate_policy=ap,
        vol_policy=vp,
        blocks_per_disk=65_536 if quick else 131_072,
        churn_factor=1.0 if quick else 2.0,
        seed=seed,
    )
    return measure_random_overwrite(sim, label, n_cps=15 if quick else 40)


def run_fig6(*, quick: bool = False, seed: int = 42) -> dict[str, ConfigResult]:
    """Age and measure all four Figure 6 configurations."""
    return {
        label: run_fig6_config(label, quick=quick, seed=seed)
        for label in FIG6_CONFIGS
    }


def fig6_tables(results: dict[str, ConfigResult]) -> list[str]:
    """Format the Figure 6 series and the section 4.1 quantities."""
    rows = []
    for label, r in results.items():
        for p in r.curve(FIG6_OFFERED):
            rows.append(
                [label, p.offered_per_client, p.achieved_per_client, p.latency_ms]
            )
    t1 = fmt_table(
        ["config", "offered/client (ops/s)", "achieved/client (ops/s)", "latency (ms)"],
        rows,
        title="Figure 6: latency vs achieved throughput "
        "(8KiB random overwrites, aged all-SSD)",
    )
    t2 = fmt_table(
        [
            "config",
            "agg selected AA free",
            "agg free",
            "vol selected AA free",
            "SSD write amp",
            "CPU us/op",
            "device us/op",
            "peak ops/s",
        ],
        [
            [
                r.label,
                r.agg_selected_free,
                r.aggregate_free,
                r.vol_selected_free,
                r.write_amplification,
                r.cpu_us_per_op,
                r.device_us_per_op,
                r.capacity_ops,
            ]
            for r in results.values()
        ],
        title="Section 4.1 in-text quantities",
    )
    return [t1, t2]


# ----------------------------------------------------------------------
# Figure 7: imbalanced aging (section 4.2)
# ----------------------------------------------------------------------

FIG7_CLIENT_OPS_PER_SEC = 68_000
FIG7_N_GROUPS = 4
FIG7_AGED_GROUPS = (0, 1)


@dataclass
class Fig7Result:
    """Per-group accounting of the Figure 7 OLTP run."""

    blocks_per_disk: list[np.ndarray] = field(default_factory=list)
    tetrises: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    blocks: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    stripes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    partials: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    seconds: float = 0.0

    def aged(self) -> list[int]:
        return list(FIG7_AGED_GROUPS)

    def fresh(self) -> list[int]:
        return [g for g in range(FIG7_N_GROUPS) if g not in FIG7_AGED_GROUPS]


def _build_fig7_sim(seed: int = 24) -> WaflSim:
    spec = AggregateSpec(
        tiers=(
            TierSpec(
                label="hdd",
                media="hdd",
                n_groups=FIG7_N_GROUPS,
                ndata=4,
                blocks_per_disk=65536,
                stripes_per_aa=4096,
            ),
        ),
        volumes=(
            VolumeDecl("db", logical_blocks=100_000),
            VolumeDecl("log", logical_blocks=50_000),
        ),
    )
    sim = WaflSim.build(spec, seed=seed)
    # Age RG0/RG1: a random 50% of their blocks in use (static aging:
    # the blocks are not volume-mapped, mirroring the paper's old data
    # sitting untouched while OLTP traffic runs).
    rng = np.random.default_rng(seed)
    for gi in FIG7_AGED_GROUPS:
        g = sim.store.groups[gi]
        n = g.topology.nblocks
        taken = rng.choice(n, size=int(n * 0.5), replace=False)
        g.metafile.allocate(np.sort(taken))
        g.metafile.drain_dirty()
        g.keeper.recompute(g.metafile.bitmap)
        g.adopt_cache(make_aa_cache(g.topology, g.keeper.scores))
    sim.store.rebind_allocators()
    fill_volumes(sim, ops_per_cp=16384, seed=seed + 1)
    reset_measurement_state(sim)
    set_bitmap_checks(sim, False)
    return sim


def run_fig7(*, quick: bool = False, seed: int = 24) -> Fig7Result:
    """Run the Figure 7 OLTP measurement with per-group capture."""
    ops_per_cp = 8192
    n_cps = 10 if quick else 30
    sim = _build_fig7_sim(seed)
    wl = OLTPWorkload(sim, ops_per_cp=ops_per_cp, read_fraction=0.65, seed=7)
    res = Fig7Result(
        blocks_per_disk=[np.zeros(4, dtype=np.int64) for _ in range(FIG7_N_GROUPS)],
        tetrises=np.zeros(FIG7_N_GROUPS, dtype=np.int64),
        blocks=np.zeros(FIG7_N_GROUPS, dtype=np.int64),
        stripes=np.zeros(FIG7_N_GROUPS, dtype=np.int64),
        partials=np.zeros(FIG7_N_GROUPS, dtype=np.int64),
        seconds=n_cps * ops_per_cp / FIG7_CLIENT_OPS_PER_SEC,
    )
    orig = sim.store.cp_boundary
    captured = []

    def wrapped():
        rep = orig()
        captured.append(rep)
        return rep

    sim.store.cp_boundary = wrapped
    it = iter(wl)
    for _ in range(n_cps):
        sim.engine.run_cp(next(it))
    popcount_audit(sim)
    for rep in captured:
        for gi, grp in enumerate(rep.groups):
            res.blocks_per_disk[gi] += grp.blocks_per_disk
            res.tetrises[gi] += grp.tetrises
            res.blocks[gi] += grp.blocks
            res.stripes[gi] += grp.stripes
            res.partials[gi] += grp.partial_stripes
    return res


def fig7_tables(res: Fig7Result) -> list[str]:
    rows = []
    for gi in range(FIG7_N_GROUPS):
        aged = "aged 50%" if gi in FIG7_AGED_GROUPS else "fresh"
        for di in range(4):
            rows.append(
                [f"RG{gi} ({aged})", f"disk{di}", res.blocks_per_disk[gi][di] / res.seconds]
            )
    t1 = fmt_table(
        ["RAID group", "disk", "blocks/s"],
        rows,
        title=(
            "Figure 7 (top): blocks/s per disk under OLTP at "
            f"{FIG7_CLIENT_OPS_PER_SEC} ops/s"
        ),
    )
    rows = [
        [
            f"RG{gi}",
            "aged 50%" if gi in FIG7_AGED_GROUPS else "fresh",
            res.tetrises[gi] / res.seconds,
            res.blocks[gi] / res.seconds,
            res.blocks[gi] / res.tetrises[gi] if res.tetrises[gi] else 0.0,
            res.partials[gi] / res.stripes[gi] if res.stripes[gi] else 0.0,
        ]
        for gi in range(FIG7_N_GROUPS)
    ]
    t2 = fmt_table(
        ["RAID group", "state", "tetrises/s", "blocks/s", "blocks/tetris",
         "partial stripe frac"],
        rows,
        title="Figure 7 (bottom): tetrises/s per RAID group",
    )
    return [t1, t2]


# ----------------------------------------------------------------------
# Figure 8: SSD AA sizing (section 4.3)
# ----------------------------------------------------------------------

#: FTL erase unit: a 64 MiB superblock.
FIG8_ERASE_UNIT = 16_384

FIG8_SIZINGS: dict[str, int] = {
    "HDD-sized AA (4k stripes)": 4096,
    "Large AA (2 erase units)": 2 * FIG8_ERASE_UNIT,
}

FIG8_OFFERED = np.linspace(1000, 10000, 10)


def run_fig8_config(
    label: str, *, quick: bool = False, seed: int = 99
) -> ConfigResult:
    """Age and measure one Figure 8 AA sizing (a runner work unit)."""
    sim = build_aged_ssd_sim(
        n_groups=1,
        ndata=3,
        blocks_per_disk=262_144 if quick else 524_288,
        stripes_per_aa=FIG8_SIZINGS[label],
        erase_block_blocks=FIG8_ERASE_UNIT,
        # Faster effective flash than the Fig 6 calibration: our
        # open-unit FTL overstates absolute write amplification (no
        # overprovisioned GC slack), so a paper-era program time
        # would make both configs purely WA-bound and exaggerate
        # the throughput ratio far past the paper's +26%.  The WA
        # *ratio* (the substantive claim) is parameter-free.
        program_us_per_block=1.8,
        fill_fraction=0.85,
        churn_factor=1.0,
        seed=seed,
    )
    # The paper's Figure 8 workload is 4 KiB random reads *and*
    # writes; read traffic is AA-size independent and keeps the
    # comparison in the mixed regime the paper measured.
    return measure_random_overwrite(
        sim, label, n_cps=12 if quick else 30, ops_per_cp=8192,
        read_fraction=0.55, blocks_per_op=2, seed=5,
    )


def run_fig8(*, quick: bool = False, seed: int = 99) -> dict[str, ConfigResult]:
    return {
        label: run_fig8_config(label, quick=quick, seed=seed)
        for label in FIG8_SIZINGS
    }


def fig8_tables(results: dict[str, ConfigResult]) -> list[str]:
    rows = []
    for label, r in results.items():
        for p in r.curve(FIG8_OFFERED):
            rows.append(
                [label, p.offered_per_client, p.achieved_per_client, p.latency_ms]
            )
    t1 = fmt_table(
        ["config", "offered/client (ops/s)", "achieved/client (ops/s)", "latency (ms)"],
        rows,
        title="Figure 8: latency vs achieved throughput, SSD AA sizing (aged to 85%)",
    )
    t2 = fmt_table(
        ["config", "write amp", "CPU us/op", "device us/op", "peak ops/s"],
        [
            [r.label, r.write_amplification, r.cpu_us_per_op,
             r.device_us_per_op, r.capacity_ops]
            for r in results.values()
        ],
        title="Section 4.3 SSD quantities",
    )
    return [t1, t2]


# ----------------------------------------------------------------------
# Figure 9: SMR AA sizing with AZCS (section 4.3)
# ----------------------------------------------------------------------

#: 63 AZCS payloads x 4096: admits both the misaligned 4k-stripe AA and
#: AZCS-aligned divisors.
FIG9_BLOCKS_PER_DISK = 63 * 4096
FIG9_ZONE_BLOCKS = 16384
FIG9_SMR_CFG = SMRConfig(zone_blocks=FIG9_ZONE_BLOCKS, rewrite_penalty_us=5000.0)
FIG9_OFFERED = np.linspace(2000, 30000, 15)


def fig9_aligned_size() -> int:
    g = RAIDGeometry(3, 1, FIG9_BLOCKS_PER_DISK)
    return aa_size_for_smr(g, FIG9_ZONE_BLOCKS, azcs=True).size


def _fig9_sizings() -> dict[str, int]:
    return {
        "HDD-sized AA (4k stripes)": 4096,
        "SMR AA (zone + AZCS aligned)": fig9_aligned_size(),
    }


#: Labels only (the aligned size needs a geometry computation).
FIG9_SIZINGS = ("HDD-sized AA (4k stripes)", "SMR AA (zone + AZCS aligned)")


def run_fig9_config(label: str, *, quick: bool = False, seed: int = 3) -> dict:
    """Run one Figure 9 AA sizing (a runner work unit)."""
    tier = TierSpec(
        label="smr",
        media="smr",
        ndata=3,
        blocks_per_disk=FIG9_BLOCKS_PER_DISK,
        stripes_per_aa=_fig9_sizings()[label],
        azcs=True,
        zone_blocks=FIG9_SMR_CFG.zone_blocks,
        rewrite_penalty_us=FIG9_SMR_CFG.rewrite_penalty_us,
    )
    sim = WaflSim.build(
        AggregateSpec(
            tiers=(tier,),
            volumes=(VolumeDecl("stream", logical_blocks=500_000),),
        ),
        seed=seed,
    )
    set_bitmap_checks(sim, False)
    wl = SequentialWriteWorkload(sim, ops_per_cp=8192, blocks_per_op=1, wrap=False)
    sim.run(wl, 10 if quick else 25)
    popcount_audit(sim)
    m = sim.metrics
    rewrites = sum(d.rewrites for g in sim.store.groups for d in g.devices)
    return {
        "label": label,
        "cpu": m.cpu_us_per_op,
        "dev": m.device_us_per_op,
        "rewrites": rewrites,
        "drive_mbps": m.total_physical_blocks * 4096 / 1e6
        / (m.total_device_busy_us / 1e6),
        "blocks": m.total_physical_blocks,
    }


def run_fig9(*, quick: bool = False, seed: int = 3) -> dict[str, dict]:
    return {
        label: run_fig9_config(label, quick=quick, seed=seed)
        for label in FIG9_SIZINGS
    }


def fig9_tables(results: dict[str, dict]) -> list[str]:
    rows = []
    for label, r in results.items():
        pts = system_curve(r["cpu"], r["dev"], FIG9_OFFERED, nclients=NCLIENTS,
                           cores=CORES)
        for p in pts:
            rows.append(
                [label, p.offered_per_client, p.achieved_per_client, p.latency_ms]
            )
    t1 = fmt_table(
        ["config", "offered/client (ops/s)", "achieved/client (ops/s)", "latency (ms)"],
        rows,
        title="Figure 9: latency vs achieved throughput (sequential writes, unaged SMR)",
    )
    t2 = fmt_table(
        ["config", "device us/op", "checksum-block rewrites", "drive MB/s"],
        [
            [r["label"], r["dev"], r["rewrites"], r["drive_mbps"]]
            for r in results.values()
        ],
        title="Section 4.3 SMR quantities",
    )
    return [t1, t2]


# ----------------------------------------------------------------------
# Figure 10: TopAA and mount time (section 4.4)
# ----------------------------------------------------------------------

FIG10_VOL_VIRTUAL_BLOCKS = 32768 * 32


def _build_fig10_sim(n_vols: int, vol_virtual_blocks: int) -> WaflSim:
    spec = AggregateSpec(
        tiers=(
            TierSpec(label="ssd", media="ssd", ndata=4,
                     blocks_per_disk=131072, stripes_per_aa=2048),
        ),
        volumes=tuple(
            VolumeDecl(f"vol{i}", logical_blocks=1024,
                       virtual_blocks=vol_virtual_blocks)
            for i in range(n_vols)
        ),
    )
    sim = WaflSim.build(spec, seed=11)
    writes = {f"vol{i}": np.arange(256) for i in range(n_vols)}
    sim.engine.run_cp(CPBatch(writes=writes, ops=256 * n_vols))
    return sim


def _fig10_first_cp_cost(sim: WaflSim, use_topaa: bool) -> dict:
    image = export_topaa(sim) if use_topaa else None
    rep = simulate_mount(sim, image)
    writes = {name: np.arange(128) for name in sim.vols}
    stats = sim.engine.run_cp(CPBatch(writes=writes, ops=128 * len(sim.vols)))
    return {
        "blocks_read": rep.blocks_read,
        "build_wall_ms": rep.build_wall_s * 1000,
        "modeled_ms": (rep.modeled_read_us + stats.device_busy_us + stats.cpu_us / CORES)
        / 1000.0,
    }


_fig10_warmed = False


def _fig10_warmup() -> None:
    """Untimed first-touch warmup for the fig10 wall clocks.

    The first ``simulate_mount`` in a fresh process pays one-time costs
    the later rows never see — lazy imports, the allocator growing its
    arenas, first-touch page faults on the freshly zeroed cache arrays
    — which used to land entirely on the sweep's first row and make its
    ``build_wall_ms`` an order-of-magnitude outlier.  One small
    build+mount per process (both the TopAA and bitmap-walk paths)
    absorbs those costs outside the timed region; the simulated metrics
    are untouched (the warmup sim is discarded).
    """
    global _fig10_warmed
    if _fig10_warmed:
        return
    _fig10_warmed = True
    # Fresh sim per mount path, exactly like the sweep rows (a second
    # mount on one sim would re-walk an already-consumed allocator).
    for use_topaa in (True, False):
        _fig10_first_cp_cost(_build_fig10_sim(2, 32768 * 4), use_topaa)


def run_fig10_size(*, quick: bool = False) -> tuple[list[list], dict]:
    """Figure 10(A): first-CP cost vs FlexVol size (a runner work unit)."""
    size_mults = (4, 16) if quick else (4, 8, 16, 32)
    _fig10_warmup()
    size_rows: list[list] = []
    size_series: dict = {}
    for mult in size_mults:
        virtual = 32768 * mult
        for use_topaa in (True, False):
            sim = _build_fig10_sim(8, virtual)
            cost = _fig10_first_cp_cost(sim, use_topaa)
            label = "TopAA" if use_topaa else "no TopAA"
            size_rows.append([f"{virtual} blk/vol", label, cost["blocks_read"],
                              cost["modeled_ms"], cost["build_wall_ms"]])
            size_series[(mult, use_topaa)] = cost
    return size_rows, size_series


def run_fig10_count(*, quick: bool = False) -> tuple[list[list], dict]:
    """Figure 10(B): first-CP cost vs FlexVol count (a runner work unit)."""
    counts = (4, 16) if quick else (4, 8, 16, 32)
    _fig10_warmup()
    count_rows: list[list] = []
    count_series: dict = {}
    for n_vols in counts:
        for use_topaa in (True, False):
            sim = _build_fig10_sim(n_vols, FIG10_VOL_VIRTUAL_BLOCKS)
            cost = _fig10_first_cp_cost(sim, use_topaa)
            label = "TopAA" if use_topaa else "no TopAA"
            count_rows.append([n_vols, label, cost["blocks_read"],
                               cost["modeled_ms"], cost["build_wall_ms"]])
            count_series[(n_vols, use_topaa)] = cost
    return count_rows, count_series


def run_fig10(*, quick: bool = False) -> tuple[list[list], dict, list[list], dict]:
    """Both Figure 10 sweeps: (size_rows, size_series, count_rows,
    count_series)."""
    size_rows, size_series = run_fig10_size(quick=quick)
    count_rows, count_series = run_fig10_count(quick=quick)
    return size_rows, size_series, count_rows, count_series


def fig10_tables(size_rows: list[list], count_rows: list[list]) -> list[str]:
    t1 = fmt_table(
        ["volume size", "mount path", "blocks read", "first-CP modeled (ms)",
         "cache-build wall (ms)"],
        size_rows,
        title="Figure 10(A): first CP time vs FlexVol size (8 volumes)",
    )
    t2 = fmt_table(
        ["volumes", "mount path", "blocks read", "first-CP modeled (ms)",
         "cache-build wall (ms)"],
        count_rows,
        title="Figure 10(B): first CP time vs number of FlexVols",
    )
    return [t1, t2]
