"""Shared benchmark harness: standard configurations, measurement
phases, and table formatting used by every figure-reproduction bench.

Each bench in ``benchmarks/`` regenerates one of the paper's evaluation
figures: it builds the workload and system the figure used (with the
DESIGN.md substitutions), measures the same quantities, prints the same
rows/series, and appends the output to ``benchmarks/results/`` so the
tables survive pytest's output capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..common.config import AggregateSpec, TierSpec, VolumeDecl
from ..common.errors import BitmapError
from ..fs.aggregate import PolicyKind
from ..fs.filesystem import WaflSim
from ..sim.latency import LoadPoint, peak_throughput, system_curve
from ..workloads.aging import age_filesystem, reset_measurement_state
from ..workloads.oltp import OLTPWorkload
from ..workloads.random_overwrite import RandomOverwriteWorkload

__all__ = [
    "RESULTS_DIR",
    "ConfigResult",
    "build_aged_ssd_sim",
    "measure_random_overwrite",
    "set_bitmap_checks",
    "popcount_audit",
    "fmt_table",
    "emit",
    "CORES",
    "NCLIENTS",
]

#: Where benches persist their tables (pytest captures stdout).
RESULTS_DIR = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")
)

#: The paper's midrange server: 20 Ivy Bridge cores (section 4.1).
CORES = 20
#: Clients in the latency-throughput sweeps.
NCLIENTS = 8


@dataclass
class ConfigResult:
    """Measured outcome of one configuration's measurement phase."""

    label: str
    cpu_us_per_op: float
    device_us_per_op: float
    agg_selected_free: float
    vol_selected_free: float
    aggregate_free: float
    write_amplification: float
    metafile_blocks_per_op: float
    full_stripe_fraction: float
    mean_chain_length: float

    @property
    def capacity_ops(self) -> float:
        """Bottleneck throughput (ops/s) under the 20-core model."""
        cpu_cap = CORES * 1e6 / self.cpu_us_per_op if self.cpu_us_per_op else float("inf")
        dev_cap = 1e6 / self.device_us_per_op if self.device_us_per_op else float("inf")
        return min(cpu_cap, dev_cap)

    def curve(self, offered: np.ndarray) -> list[LoadPoint]:
        return system_curve(
            self.cpu_us_per_op,
            self.device_us_per_op,
            offered,
            nclients=NCLIENTS,
            cores=CORES,
        )

    def peak(self, offered: np.ndarray) -> LoadPoint:
        return peak_throughput(self.curve(offered))


def _all_metafiles(sim: WaflSim) -> list:
    """Every bitmap metafile in the simulation (volumes + store)."""
    mfs = [v.metafile for v in sim.vols.values()]
    groups = getattr(sim.store, "groups", None)
    if groups is not None:
        mfs.extend(g.metafile for g in groups)
    else:
        mfs.append(sim.store.metafile)
    return mfs


def set_bitmap_checks(sim: WaflSim, check: bool) -> None:
    """Toggle per-batch bitmap validation on every metafile.

    Benchmarks disable checking once aging completes (correctness is
    audited once at teardown via :func:`popcount_audit` instead of per
    batch) so the measurement phase times the allocation pipeline, not
    the validation.
    """
    for mf in _all_metafiles(sim):
        mf.bitmap.check = check


def popcount_audit(sim: WaflSim) -> None:
    """One final corruption check: every bitmap's recomputed popcount
    must equal its running allocated counter.  Raises
    :class:`~repro.common.errors.BitmapError` on divergence."""
    for mf in _all_metafiles(sim):
        bm = mf.bitmap
        pc = bm.popcount()
        if pc != bm.allocated_count:
            raise BitmapError(
                f"teardown audit: popcount {pc} != allocated counter "
                f"{bm.allocated_count} (nblocks={bm.nblocks})"
            )


def build_aged_ssd_sim(
    *,
    aggregate_policy: PolicyKind = PolicyKind.CACHE,
    vol_policy: PolicyKind = PolicyKind.CACHE,
    n_groups: int = 2,
    ndata: int = 4,
    blocks_per_disk: int = 131072,
    stripes_per_aa: int | None = None,
    erase_block_blocks: int = 512,
    program_us_per_block: float = 16.0,
    fill_fraction: float = 0.55,
    churn_factor: float = 2.0,
    seed: int = 42,
    unpriced_aging: bool = True,
) -> WaflSim:
    """The section 4.1 testbed: an all-SSD aggregate 'filled up to 55%
    and thoroughly fragmented by applying heavy random write traffic',
    with free-space defragmentation disabled (we implement none during
    measurement) and LUN-like volumes."""
    # program_us calibrated so the device side carries the same weight
    # it does on the paper's testbed (see EXPERIMENTS.md, Fig 6 notes).
    phys = n_groups * ndata * blocks_per_disk
    logical = int(phys * fill_fraction)
    spec = AggregateSpec(
        tiers=(
            TierSpec(
                label="ssd",
                media="ssd",
                raid="raid4",
                n_groups=n_groups,
                ndata=ndata,
                blocks_per_disk=blocks_per_disk,
                stripes_per_aa=stripes_per_aa or 0,
                erase_block_blocks=erase_block_blocks,
                program_us_per_block=program_us_per_block,
            ),
        ),
        volumes=(
            VolumeDecl("lun0", logical_blocks=logical // 2),
            VolumeDecl("lun1", logical_blocks=logical - logical // 2),
        ),
        policy=aggregate_policy.value,
        vol_policy=vol_policy.value,
    )
    sim = WaflSim.build(spec, seed=seed)
    # Aging CPs issue the exact same device writes either way; unpriced
    # mode skips the stripe classification and timing whose outputs the
    # reset below discards (see RAIDGroupRuntime.unpriced).
    for g in sim.store.groups:
        g.unpriced = unpriced_aging
    try:
        age_filesystem(sim, churn_factor=churn_factor, ops_per_cp=16384, seed=seed)
    finally:
        for g in sim.store.groups:
            g.unpriced = False
    reset_measurement_state(sim)
    set_bitmap_checks(sim, False)
    return sim


def measure_random_overwrite(
    sim: WaflSim,
    label: str,
    *,
    n_cps: int = 40,
    ops_per_cp: int = 8192,
    read_fraction: float = 0.0,
    blocks_per_op: int = 2,
    working_set_fraction: float = 1.0,
    seed: int = 777,
    audit_hook=None,
) -> ConfigResult:
    """Run the paper's random-overwrite measurement phase (optionally a
    mixed read/write OLTP-style load, as Figures 7/8 use) and collect
    every quantity section 4.1 reports.

    ``audit_hook(sim)`` — when given — runs after the sweep; callers
    pass :func:`repro.analysis.auditor.audit_sim` to get an audited
    benchmark without this package importing ``analysis`` (which sits
    above ``bench`` in the package DAG).
    """
    if read_fraction > 0.0:
        wl = OLTPWorkload(
            sim, ops_per_cp=ops_per_cp, read_fraction=read_fraction,
            blocks_per_write_op=blocks_per_op, seed=seed,
        )
    else:
        wl = RandomOverwriteWorkload(
            sim,
            ops_per_cp=ops_per_cp,
            blocks_per_op=blocks_per_op,
            working_set_fraction=working_set_fraction,
            seed=seed,
        )
    sim.run(wl, n_cps)
    popcount_audit(sim)
    if audit_hook is not None:
        audit_hook(sim)
    m = sim.metrics
    agg_sel = sim.store.selected_aa_free_fractions()
    vol_sel = np.concatenate(
        [v.selected_aa_free_fractions() for v in sim.vols.values()]
    )
    was = [
        d.write_amplification
        for g in sim.store.groups
        for d in g.data_devices
        if d.stats.host_blocks_written
    ]
    return ConfigResult(
        label=label,
        cpu_us_per_op=m.cpu_us_per_op,
        device_us_per_op=m.device_us_per_op,
        agg_selected_free=float(agg_sel.mean()) if agg_sel.size else 0.0,
        vol_selected_free=float(vol_sel.mean()) if vol_sel.size else 0.0,
        aggregate_free=1.0 - sim.utilization,
        write_amplification=float(np.mean(was)) if was else 1.0,
        metafile_blocks_per_op=m.metafile_blocks_per_op,
        full_stripe_fraction=m.full_stripe_fraction,
        mean_chain_length=m.mean_chain_length,
    )


def fmt_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width text table (the benches' figure surrogate)."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt_cell(c) -> str:
    if isinstance(c, float):
        if abs(c) >= 1000:
            return f"{c:,.0f}"
        return f"{c:.3f}"
    return str(c)


_emitted: set[str] = set()


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/.

    The first emit for a name in a process truncates the file, so each
    benchmark run leaves one fresh copy of its tables.
    """
    # The figure harness intentionally streams its tables to stdout (the
    # experiments predate the CLI and are also run as modules).
    print("\n" + text)  # simlint: disable=E404
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    mode = "a" if name in _emitted else "w"
    _emitted.add(name)
    with open(path, mode, encoding="utf-8") as f:
        f.write(text + "\n\n")
