"""Shared benchmark harness (configurations, measurement, tables)."""

from .harness import (
    CORES,
    NCLIENTS,
    RESULTS_DIR,
    ConfigResult,
    build_aged_ssd_sim,
    emit,
    fmt_table,
    measure_random_overwrite,
)

__all__ = [
    "CORES",
    "NCLIENTS",
    "RESULTS_DIR",
    "ConfigResult",
    "build_aged_ssd_sim",
    "emit",
    "fmt_table",
    "measure_random_overwrite",
]
