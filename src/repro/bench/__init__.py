"""Shared benchmark harness (configurations, measurement, tables) and
the parallel runner (process-pool sweep + JSON perf trajectory)."""

from .harness import (
    CORES,
    NCLIENTS,
    RESULTS_DIR,
    ConfigResult,
    build_aged_ssd_sim,
    emit,
    fmt_table,
    measure_random_overwrite,
    popcount_audit,
    set_bitmap_checks,
)
from .runner import (
    compare_to_baseline,
    plan_units,
    run_bench,
    strip_timing,
    write_results,
)

__all__ = [
    "CORES",
    "NCLIENTS",
    "RESULTS_DIR",
    "ConfigResult",
    "build_aged_ssd_sim",
    "emit",
    "fmt_table",
    "measure_random_overwrite",
    "popcount_audit",
    "set_bitmap_checks",
    "compare_to_baseline",
    "plan_units",
    "run_bench",
    "strip_timing",
    "write_results",
]
