"""Per-volume op mixes: the adapters between arrival processes and
the existing per-CP workload generators.

The classic generators in this package (:class:`RandomOverwriteWorkload`
and friends) produce whole-system :class:`~repro.fs.cp.CPBatch` objects
at a fixed ``ops_per_cp`` — the right shape for figure reproductions,
the wrong shape for a multi-tenant traffic engine that admits a
*variable* number of operations per tenant per consistency point.  An
:class:`OpMix` answers the question the traffic layer actually asks:
"tenant X just got ``n`` operations admitted — which logical blocks of
X's volume do they dirty (or delete)?"

Three concrete mixes cover the tenant populations the paper's
multi-client testbed mixes (section 4.1) plus the skewed access the
BIT-inference line of work shows matters on log-structured stores:

* :class:`UniformOverwriteMix` — the paper's 8 KiB aligned random
  overwrites (same idiom as :class:`RandomOverwriteWorkload`);
* :class:`ZipfOverwriteMix` — Zipf-skewed overwrites with a scattered
  hot set (database-like reuse);
* :class:`WorkloadOpMix` — wraps any existing :class:`Workload`
  subclass over a single-volume view, so file-churn or OLTP tenants
  reuse the shipped generators verbatim.
"""

from __future__ import annotations

import abc

import numpy as np

from ..common.rng import make_rng

__all__ = [
    "OpMix",
    "UniformOverwriteMix",
    "ZipfOverwriteMix",
    "WorkloadOpMix",
]

#: Knuth's multiplicative-hash constant; scatters Zipf ranks across the
#: volume so the hot set is not one contiguous extent.
_SCATTER = 2654435761


class OpMix(abc.ABC):
    """Generates the dirtied/deleted logical blocks for admitted ops.

    Parameters
    ----------
    logical_blocks:
        Size of the tenant's volume (logical 4 KiB blocks).
    blocks_per_op:
        Blocks dirtied per client operation (2 models 8 KiB ops).
    seed:
        Deterministic RNG seed (or an existing Generator).
    """

    def __init__(
        self,
        logical_blocks: int,
        *,
        blocks_per_op: int = 2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if logical_blocks <= 0:
            raise ValueError("logical_blocks must be positive")
        if blocks_per_op <= 0:
            raise ValueError("blocks_per_op must be positive")
        self.logical_blocks = int(logical_blocks)
        self.blocks_per_op = int(blocks_per_op)
        self.rng = make_rng(seed)

    @abc.abstractmethod
    def next_ops(self, n_ops: int) -> tuple[np.ndarray, np.ndarray]:
        """Blocks for ``n_ops`` admitted operations.

        Returns ``(writes, deletes)``: int64 arrays of logical block
        ids (duplicates allowed; the CP engine coalesces).  Most mixes
        return an empty ``deletes`` array.
        """

    def _adjacent_runs(self, starts: np.ndarray) -> np.ndarray:
        """Expand aligned start blocks into adjacent runs (an 8 KiB op
        dirties two adjacent 4 KiB blocks)."""
        return (
            starts[:, None] + np.arange(self.blocks_per_op, dtype=np.int64)[None, :]
        ).ravel()


class UniformOverwriteMix(OpMix):
    """Uniform random aligned overwrites — the paper's LUN clients.

    ``working_set_fraction`` < 1 confines the tenant to a hot prefix of
    its volume, like :class:`~repro.workloads.RandomOverwriteWorkload`.
    """

    def __init__(
        self,
        logical_blocks: int,
        *,
        blocks_per_op: int = 2,
        working_set_fraction: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(logical_blocks, blocks_per_op=blocks_per_op, seed=seed)
        if not 0.0 < working_set_fraction <= 1.0:
            raise ValueError("working_set_fraction must be in (0, 1]")
        self.working_set_fraction = float(working_set_fraction)

    def next_ops(self, n_ops: int) -> tuple[np.ndarray, np.ndarray]:
        if n_ops <= 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        span = max(1, int(self.logical_blocks * self.working_set_fraction))
        starts = self.rng.integers(
            0, max(span - self.blocks_per_op + 1, 1), size=n_ops, dtype=np.int64
        )
        return self._adjacent_runs(starts), np.empty(0, dtype=np.int64)


class ZipfOverwriteMix(OpMix):
    """Zipf-skewed overwrites: a few blocks absorb most of the traffic.

    Rank ``r`` (1 = hottest) maps to a volume position via a
    multiplicative hash, so the hot set is scattered across allocation
    areas instead of packed into one — the workload-mixing pattern that
    changes free-space behaviour on log-structured stores.

    Parameters
    ----------
    alpha:
        Zipf exponent (> 1); larger = more skew.  The default 1.2 gives
        the classic "90% of traffic on a small fraction of blocks".
    """

    def __init__(
        self,
        logical_blocks: int,
        *,
        alpha: float = 1.2,
        blocks_per_op: int = 2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(logical_blocks, blocks_per_op=blocks_per_op, seed=seed)
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 for a proper Zipf law")
        self.alpha = float(alpha)

    def next_ops(self, n_ops: int) -> tuple[np.ndarray, np.ndarray]:
        if n_ops <= 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        span = max(self.logical_blocks - self.blocks_per_op + 1, 1)
        ranks = (self.rng.zipf(self.alpha, size=n_ops).astype(np.int64) - 1) % span
        starts = (ranks * _SCATTER) % span
        return self._adjacent_runs(starts), np.empty(0, dtype=np.int64)


class _SingleVolumeView:
    """The minimal sim surface a :class:`Workload` constructor reads: a
    ``vols`` mapping restricted to one tenant's volume."""

    def __init__(self, sim, volume: str) -> None:
        self.vols = {volume: sim.vols[volume]}


class WorkloadOpMix(OpMix):
    """Adapts an existing whole-sim :class:`Workload` generator to the
    per-tenant interface.

    ``factory(view, ops_per_cp=..., seed=...)`` is any Workload
    subclass (or partial) — it sees a single-volume view of the sim, so
    its entire op budget lands on the tenant's volume.  Each
    :meth:`next_ops` call retargets the wrapped generator's
    ``ops_per_cp`` to the admitted count and takes one batch.
    """

    def __init__(
        self,
        factory,
        sim,
        volume: str,
        *,
        blocks_per_op: int = 2,
        seed: int | np.random.Generator | None = None,
        **kwargs,
    ) -> None:
        view = _SingleVolumeView(sim, volume)
        logical = view.vols[volume].spec.logical_blocks
        super().__init__(logical, blocks_per_op=blocks_per_op, seed=seed)
        self.volume = volume
        # ops_per_cp is retargeted per call; 1 is just a valid seed value.
        self.workload = factory(view, ops_per_cp=1, seed=self.rng, **kwargs)

    def next_ops(self, n_ops: int) -> tuple[np.ndarray, np.ndarray]:
        empty = np.empty(0, dtype=np.int64)
        if n_ops <= 0:
            return empty, empty
        self.workload.ops_per_cp = int(n_ops)
        batch = self.workload.next_batch()
        writes = batch.writes.get(self.volume, empty)
        deletes = batch.deletes.get(self.volume, empty)
        return (
            np.asarray(writes, dtype=np.int64),
            np.asarray(deletes, dtype=np.int64),
        )
