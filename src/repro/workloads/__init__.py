"""Workload generators and the aging harness (paper section 4)."""

from .aging import age_filesystem, churn, fill_volumes, reset_measurement_state
from .base import Workload
from .filechurn import FileChurnWorkload
from .mixes import OpMix, UniformOverwriteMix, WorkloadOpMix, ZipfOverwriteMix
from .oltp import OLTPWorkload
from .random_overwrite import RandomOverwriteWorkload
from .sequential import SequentialWriteWorkload

__all__ = [
    "Workload",
    "FileChurnWorkload",
    "OLTPWorkload",
    "RandomOverwriteWorkload",
    "SequentialWriteWorkload",
    "OpMix",
    "UniformOverwriteMix",
    "ZipfOverwriteMix",
    "WorkloadOpMix",
    "age_filesystem",
    "churn",
    "fill_volumes",
    "reset_measurement_state",
]
