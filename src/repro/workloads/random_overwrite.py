"""Random-overwrite workload: the paper's primary stressor.

"A number of clients were set up to send 8 KiB random overwrites to
these LUNs ... Random overwrites create worst-case fragmentation in a
COW file system, because each overwrite frees the previously used
block." (paper section 4.1)
"""

from __future__ import annotations

import numpy as np

from ..fs.cp import CPBatch
from ..fs.filesystem import WaflSim
from .base import Workload

__all__ = ["RandomOverwriteWorkload"]


class RandomOverwriteWorkload(Workload):
    """Uniform random overwrites of already-written logical blocks.

    Parameters
    ----------
    blocks_per_op:
        4 KiB blocks dirtied per client operation (2 models the paper's
        8 KiB random overwrites).
    working_set_fraction:
        Fraction of each volume's logical space targeted (1.0 = whole
        volume).  Smaller values model hot working sets.
    """

    def __init__(
        self,
        sim: WaflSim,
        *,
        ops_per_cp: int = 8192,
        blocks_per_op: int = 2,
        working_set_fraction: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(sim, ops_per_cp=ops_per_cp, seed=seed)
        if blocks_per_op <= 0:
            raise ValueError("blocks_per_op must be positive")
        if not 0.0 < working_set_fraction <= 1.0:
            raise ValueError("working_set_fraction must be in (0, 1]")
        self.blocks_per_op = int(blocks_per_op)
        self.working_set_fraction = float(working_set_fraction)

    def next_batch(self) -> CPBatch:
        writes: dict[str, np.ndarray] = {}
        for name, share in self._split_ops().items():
            size = self.vol_sizes[name]
            span = max(1, int(size * self.working_set_fraction))
            # An 8 KiB op overwrites two *adjacent* 4 KiB blocks at a
            # random aligned offset, as a LUN client would.
            starts = self.rng.integers(
                0, max(span - self.blocks_per_op + 1, 1), size=share
            )
            ids = (starts[:, None] + np.arange(self.blocks_per_op)[None, :]).ravel()
            writes[name] = ids
        return CPBatch(writes=writes, ops=self.ops_per_cp)
