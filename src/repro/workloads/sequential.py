"""Sequential write workload.

Models streaming writes (the Figure 9 SMR experiment issues "sequential
writes to an unaged file system") and doubles as the fill phase of the
aging harness: each pass touches every logical block exactly once in
order, consuming physical space sequentially on a fresh system.
"""

from __future__ import annotations

import numpy as np

from ..fs.cp import CPBatch
from ..fs.filesystem import WaflSim
from .base import Workload

__all__ = ["SequentialWriteWorkload"]


class SequentialWriteWorkload(Workload):
    """Advancing-cursor writes over each volume's logical space.

    Parameters
    ----------
    blocks_per_op:
        4 KiB blocks per client write operation.
    wrap:
        Whether to wrap to offset 0 after covering the volume (True
        models sustained streaming; False makes the iterator finite —
        useful for fill-once aging).
    """

    def __init__(
        self,
        sim: WaflSim,
        *,
        ops_per_cp: int = 8192,
        blocks_per_op: int = 1,
        wrap: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(sim, ops_per_cp=ops_per_cp, seed=seed)
        self.blocks_per_op = int(blocks_per_op)
        self.wrap = wrap
        self._cursors = {name: 0 for name in self.vol_sizes}
        self._done = {name: False for name in self.vol_sizes}

    @property
    def exhausted(self) -> bool:
        """True when every volume was fully covered (wrap=False only)."""
        return not self.wrap and all(self._done.values())

    def next_batch(self) -> CPBatch:
        writes: dict[str, np.ndarray] = {}
        total_ops = 0
        for name, share in self._split_ops().items():
            if self._done[name]:
                continue
            size = self.vol_sizes[name]
            cursor = self._cursors[name]
            want = share * self.blocks_per_op
            if self.wrap:
                ids = (cursor + np.arange(want, dtype=np.int64)) % size
                self._cursors[name] = int((cursor + want) % size)
            else:
                want = min(want, size - cursor)
                ids = cursor + np.arange(want, dtype=np.int64)
                self._cursors[name] = cursor + want
                if self._cursors[name] >= size:
                    self._done[name] = True
            if ids.size:
                writes[name] = ids
                total_ops += max(1, ids.size // self.blocks_per_op)
        return CPBatch(writes=writes, ops=total_ops)
