"""OLTP-style workload: mixed random reads and writes.

"We ran an internal OLTP benchmark ... characterized by predominantly
random read and write I/O operations (that model query and update
operations typical to a database)." (paper section 4.2)
"""

from __future__ import annotations

import numpy as np

from ..fs.cp import CPBatch
from ..fs.filesystem import WaflSim
from .base import Workload

__all__ = ["OLTPWorkload"]


class OLTPWorkload(Workload):
    """Random point reads and random record updates.

    Parameters
    ----------
    read_fraction:
        Fraction of operations that are reads (OLTP benchmarks commonly
        run ~2:1 read:write; default 0.65).
    blocks_per_write_op:
        4 KiB blocks dirtied per update (database page + log).
    """

    def __init__(
        self,
        sim: WaflSim,
        *,
        ops_per_cp: int = 8192,
        read_fraction: float = 0.65,
        blocks_per_write_op: int = 2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(sim, ops_per_cp=ops_per_cp, seed=seed)
        if not 0.0 <= read_fraction < 1.0:
            raise ValueError("read_fraction must be in [0, 1)")
        self.read_fraction = float(read_fraction)
        self.blocks_per_write_op = int(blocks_per_write_op)

    def next_batch(self) -> CPBatch:
        reads = int(self.ops_per_cp * self.read_fraction)
        write_ops_total = self.ops_per_cp - reads
        writes: dict[str, np.ndarray] = {}
        total = sum(self.vol_sizes.values())
        for name, size in self.vol_sizes.items():
            share = max(1, round(write_ops_total * size / total))
            starts = self.rng.integers(
                0, max(size - self.blocks_per_write_op + 1, 1), size=share
            )
            ids = (
                starts[:, None] + np.arange(self.blocks_per_write_op)[None, :]
            ).ravel()
            writes[name] = ids
        return CPBatch(writes=writes, ops=self.ops_per_cp, reads=reads)
