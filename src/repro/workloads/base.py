"""Workload base: iterators that yield per-CP client batches.

A workload is any iterable of :class:`~repro.fs.cp.CPBatch`; the
classes here add the shared plumbing — volume discovery, per-volume op
splitting, deterministic RNG — used by the concrete generators.
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from ..common.rng import make_rng
from ..fs.cp import CPBatch
from ..fs.filesystem import WaflSim

__all__ = ["Workload"]


class Workload(abc.ABC):
    """Base class for per-CP batch generators.

    Parameters
    ----------
    sim:
        The simulator the workload targets (used to discover volume
        names and logical sizes).
    ops_per_cp:
        Client operations folded into each consistency point; WAFL
        "collects the results of thousands of modifying operations"
        per CP (paper section 2.1).
    seed:
        Deterministic RNG seed.
    """

    def __init__(
        self,
        sim: WaflSim,
        *,
        ops_per_cp: int = 8192,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if ops_per_cp <= 0:
            raise ValueError("ops_per_cp must be positive")
        self.ops_per_cp = int(ops_per_cp)
        self.rng = make_rng(seed)
        self.vol_sizes: dict[str, int] = {
            name: vol.spec.logical_blocks for name, vol in sim.vols.items()
        }
        if not self.vol_sizes:
            raise ValueError("simulator has no volumes")

    def _split_ops(self) -> dict[str, int]:
        """Split ops across volumes proportionally to logical size."""
        total = sum(self.vol_sizes.values())
        shares = {
            name: max(1, round(self.ops_per_cp * size / total))
            for name, size in self.vol_sizes.items()
        }
        return shares

    @abc.abstractmethod
    def next_batch(self) -> CPBatch:
        """Produce the next per-CP batch."""

    def __iter__(self) -> Iterator[CPBatch]:
        while True:
            yield self.next_batch()
