"""File-system aging harness.

The paper ages its test systems before measuring: "the aggregate was
filled up to 55% and was thoroughly fragmented by applying heavy random
write traffic for a long period of time" (section 4.1); Figure 7's
older RAID groups were aged "by overwriting and freeing its blocks
several times until a random 50% of its blocks were used" (section
4.2).  :func:`age_filesystem` reproduces that recipe: a sequential
fill to the utilization target, then sustained random-overwrite churn
that fragments the free space through the COW path itself (so the
resulting per-AA free-space distribution is produced by the same
allocator the experiment then measures, not synthesized).
"""

from __future__ import annotations

import numpy as np

from ..fs.filesystem import WaflSim
from .random_overwrite import RandomOverwriteWorkload
from .sequential import SequentialWriteWorkload

__all__ = ["fill_volumes", "churn", "age_filesystem"]


def fill_volumes(sim: WaflSim, *, ops_per_cp: int = 16384, seed: int | None = 1) -> int:
    """Write every logical block of every volume once (sequentially).

    On a fresh system this consumes physical space sequentially — the
    "unaged file system" state of paper section 2.2.  Returns CPs run.
    Aggregate utilization after filling equals the ratio of logical to
    physical blocks, so size the volumes for the target utilization.
    """
    wl = SequentialWriteWorkload(
        sim, ops_per_cp=ops_per_cp, blocks_per_op=1, wrap=False, seed=seed
    )
    cps = 0
    for batch in wl:
        if wl.exhausted and not batch.writes:
            break
        sim.engine.run_cp(batch)
        cps += 1
        if wl.exhausted:
            break
    return cps


def churn(
    sim: WaflSim,
    overwrite_blocks: int,
    *,
    ops_per_cp: int = 8192,
    blocks_per_op: int = 2,
    working_set_fraction: float = 1.0,
    seed: int | None = 2,
) -> int:
    """Apply ``overwrite_blocks`` worth of random overwrites (the
    "heavy random write traffic" fragmentation phase).  Returns CPs run.
    """
    wl = RandomOverwriteWorkload(
        sim,
        ops_per_cp=ops_per_cp,
        blocks_per_op=blocks_per_op,
        working_set_fraction=working_set_fraction,
        seed=seed,
    )
    blocks_per_cp = ops_per_cp * blocks_per_op
    n_cps = max(1, int(np.ceil(overwrite_blocks / blocks_per_cp)))
    it = iter(wl)
    for _ in range(n_cps):
        sim.engine.run_cp(next(it))
    return n_cps


def age_filesystem(
    sim: WaflSim,
    *,
    churn_factor: float = 2.0,
    ops_per_cp: int = 16384,
    seed: int | None = 3,
) -> dict[str, float]:
    """Fill, then churn ``churn_factor`` x the logical space.

    Returns a small report (utilization, CPs run, selected-AA trace
    length) so callers can assert the aging took effect.  The
    measurement phase should reset ``sim.metrics`` / selection traces
    afterwards (see :func:`reset_measurement_state`).
    """
    fill_cps = fill_volumes(sim, ops_per_cp=ops_per_cp, seed=seed)
    total_logical = sim.total_logical_blocks
    churn_cps = churn(
        sim,
        int(total_logical * churn_factor),
        ops_per_cp=ops_per_cp,
        seed=None if seed is None else seed + 1,
    )
    return {
        "utilization": sim.utilization,
        "fill_cps": float(fill_cps),
        "churn_cps": float(churn_cps),
    }


def reset_measurement_state(sim: WaflSim) -> None:
    """Clear metrics and selection traces accumulated during aging so a
    measurement phase starts clean (device cumulative stats are also
    reset; bitmap/cache state is preserved)."""
    sim.metrics.cps.clear()
    sim.metrics.reset_series()
    sim.engine.cache_maintenance_us = 0.0
    for vol in sim.vols.values():
        vol.allocator.selected_aa_scores.clear()
        vol.allocator.blocks_allocated = 0
        vol._last_aa_switches = 0
    for _, fs, _ in sim.store.physical_instances():
        fs.allocator.selected_aa_scores.clear()
        fs.allocator.blocks_allocated = 0
        fs._last_aa_switches = 0
        for dev in fs.devices:
            _reset_device(dev)


def _reset_device(dev) -> None:
    from ..devices.base import DeviceStats

    dev.stats = DeviceStats()
    if hasattr(dev, "relocated_blocks"):
        dev.relocated_blocks = 0
    if hasattr(dev, "rewrites"):
        dev.rewrites = 0
