"""File create/delete churn workload.

"The creation and deletion of files can eventually result in similar
fragmentation of the free space." (paper section 2.2)  This workload
models a file as a contiguous extent of a volume's logical space:
creations write whole extents, deletions unmap them without rewriting.
Varying extent sizes leaves free holes of mixed sizes — the classic
aging pattern of Smith & Seltzer that the AA score distribution must
cope with.
"""

from __future__ import annotations

import numpy as np

from ..fs.cp import CPBatch
from ..fs.filesystem import WaflSim
from .base import Workload

__all__ = ["FileChurnWorkload"]


class FileChurnWorkload(Workload):
    """Create/delete churn over extent-shaped "files".

    Each volume's logical space is divided into slots of
    ``max_file_blocks``; a creation picks a random free slot and writes
    a random-length extent inside it, a deletion removes a random live
    file.  ``create_bias`` > 0.5 grows the file population toward
    ``target_population`` live files per volume, after which the mix
    balances.
    """

    def __init__(
        self,
        sim: WaflSim,
        *,
        ops_per_cp: int = 64,
        min_file_blocks: int = 8,
        max_file_blocks: int = 2048,
        create_bias: float = 0.5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(sim, ops_per_cp=ops_per_cp, seed=seed)
        if not 1 <= min_file_blocks <= max_file_blocks:
            raise ValueError("need 1 <= min_file_blocks <= max_file_blocks")
        self.min_file_blocks = int(min_file_blocks)
        self.max_file_blocks = int(max_file_blocks)
        self.create_bias = float(create_bias)
        # Per volume: slot occupancy and live-file table.
        self._slots: dict[str, np.ndarray] = {}
        self._files: dict[str, dict[int, tuple[int, int]]] = {}
        for name, size in self.vol_sizes.items():
            nslots = max(size // self.max_file_blocks, 1)
            self._slots[name] = np.zeros(nslots, dtype=bool)
            self._files[name] = {}

    def live_files(self, name: str) -> int:
        """Number of live files on a volume."""
        return len(self._files[name])

    def _create(self, name: str) -> np.ndarray | None:
        slots = self._slots[name]
        free = np.flatnonzero(~slots)
        if free.size == 0:
            return None
        slot = int(free[self.rng.integers(free.size)])
        length = int(
            self.rng.integers(self.min_file_blocks, self.max_file_blocks + 1)
        )
        start = slot * self.max_file_blocks
        slots[slot] = True
        self._files[name][slot] = (start, length)
        return start + np.arange(length, dtype=np.int64)

    def _delete(self, name: str) -> np.ndarray | None:
        files = self._files[name]
        if not files:
            return None
        slot = list(files.keys())[int(self.rng.integers(len(files)))]
        start, length = files.pop(slot)
        self._slots[name][slot] = False
        return start + np.arange(length, dtype=np.int64)

    def next_batch(self) -> CPBatch:
        writes: dict[str, list[np.ndarray]] = {n: [] for n in self.vol_sizes}
        deletes: dict[str, list[np.ndarray]] = {n: [] for n in self.vol_sizes}
        names = list(self.vol_sizes)
        ops = 0
        for _ in range(self.ops_per_cp):
            name = names[int(self.rng.integers(len(names)))]
            if self.rng.random() < self.create_bias:
                ids = self._create(name)
                if ids is None:  # volume full: delete instead
                    ids = self._delete(name)
                    if ids is not None:
                        deletes[name].append(ids)
                else:
                    writes[name].append(ids)
            else:
                ids = self._delete(name)
                if ids is None:  # nothing to delete: create instead
                    ids = self._create(name)
                    if ids is not None:
                        writes[name].append(ids)
                else:
                    deletes[name].append(ids)
            ops += 1
        return CPBatch(
            writes={n: np.concatenate(w) for n, w in writes.items() if w},
            deletes={n: np.concatenate(d) for n, d in deletes.items() if d},
            ops=ops,
        )
