"""The WAFL write allocator: assigning free VBNs from selected AAs.

"In all cases, the write allocator picks an AA and then assigns all
free VBNs from the AA in sequential order." (paper section 3.1)

Two allocators share that skeleton:

* :class:`LinearAllocator` — RAID-agnostic spaces (FlexVol virtual
  VBNs, object-store physical VBNs).  Free VBNs are assigned in
  ascending order, so consecutive allocations stay within the same
  bitmap-metafile block (paper section 2.5).
* :class:`RAIDGroupAllocator` — one per RAID group.  Free VBNs are
  assigned stripe-major so stripes fill completely (full stripe
  writes) and per-device runs stay contiguous (long write chains).

:class:`AggregateAllocator` coordinates the RAID-group allocators:
WAFL "attempts to write to all RAID groups available in an aggregate in
order to maximize the total write throughput" (paper section 3.3.1),
taking tetris-sized batches of stripes from each group in turn.
Fragmented groups naturally yield fewer blocks per stripe, which
reproduces the write bias of section 4.2, and groups whose best AA
score falls below a threshold are skipped entirely (section 3.3.1's
fragmentation cutoff).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from .. import obs
from ..bitmap.metafile import BitmapMetafile
from ..common.constants import TETRIS_STRIPES
from .aa import LinearAATopology, StripeAATopology
from .policies import AASource
from .score import ScoreChange, ScoreKeeper

__all__ = ["LinearAllocator", "RAIDGroupAllocator", "AggregateAllocator"]

#: Bound on consecutive full AAs a source may propose before the
#: allocator declares the space dry (only score-blind baselines like
#: RandomSource ever propose full AAs).
_MAX_FULL_AA_RETRIES = 128


class _BaseAllocator:
    """Shared machinery: current-AA queue, CP release/flush protocol.

    Bitmap and score updates are *pending-span batched*: taking blocks
    from the current AA's queue only advances a cursor, and the whole
    contiguous span taken since the last flush hits the bitmap metafile
    (one ``allocate`` scatter) and the score keeper (one delta) at the
    next synchronization point — AA exhaustion, ``release``, or the CP
    boundary ``cp_flush``.  This is exact, not approximate: AAs are
    disjoint, the queue is a point-in-time snapshot of the AA's free
    VBNs, nothing reads the bitmap for the checked-out AA between
    flushes, and blocks allocated in a CP are never freed in the same
    CP, so the batched union of bit-sets and integer score deltas
    commutes with the per-chunk order (see DESIGN.md section 9).
    ``batch_flush=False`` restores the scalar per-chunk flushing
    (``SimConfig.allocator.scalar_bitmap_flush``), kept as the
    reference path for the identity tests.
    """

    def __init__(
        self,
        metafile: BitmapMetafile,
        source: AASource,
        keeper: ScoreKeeper,
        *,
        store_offset: int = 0,
        batch_flush: bool = True,
    ) -> None:
        self.metafile = metafile
        self.source = source
        self.keeper = keeper
        #: Added to local VBNs to form global (aggregate-wide) VBNs.
        self.store_offset = int(store_offset)
        #: False selects the legacy per-chunk bitmap/score flushing.
        self.batch_flush = bool(batch_flush)
        self._current_aa: int | None = None
        self._qv: np.ndarray | None = None  # free local VBNs of current AA
        self._pos = 0
        self._flushed_pos = 0  # queue position the bitmap reflects
        #: Score (free blocks) of each AA at the moment it was selected;
        #: the section 4.1 "average free space in chosen AAs" trace.
        self.selected_aa_scores: list[int] = []
        #: Total blocks allocated (metric).
        self.blocks_allocated = 0
        #: Total VBN-range span covered by allocations: the number of
        #: bitmap bits examined to find the allocated blocks.  Per
        #: allocated block this is ~1/density of the selected AA, which
        #: is the CPU-side benefit of picking emptier AAs (section 2.5).
        self.spanned_blocks = 0

    # ------------------------------------------------------------------
    @property
    def current_aa(self) -> int | None:
        """AA currently being filled, if any."""
        return self._current_aa

    @property
    def pending_count(self) -> int:
        """Blocks taken from the current AA but not yet reflected in
        the bitmap (the pending-span batch).  Observables that read the
        bitmap mid-CP (``free_count``, ``used_blocks``) add this so the
        batching is invisible to them."""
        return self._pos - self._flushed_pos

    def _queue_remaining(self) -> int:
        return 0 if self._qv is None else self._qv.size - self._pos

    def _load_free_vbns(self, aa: int) -> np.ndarray:
        raise NotImplementedError

    def _load_next_aa(self) -> bool:
        """Check out the next AA with free space; False when dry."""
        for _ in range(_MAX_FULL_AA_RETRIES):
            aa = self.source.next_aa()
            if aa is None:
                return False
            vbns = self._load_free_vbns(aa)
            if vbns.size == 0:
                self.source.return_aa(aa, 0)
                continue
            self._current_aa = aa
            self._qv = vbns
            self._pos = 0
            self._flushed_pos = 0
            self.selected_aa_scores.append(int(vbns.size))
            obs.count("alloc.aa_switch", aa=int(aa), score=int(vbns.size))
            self._after_load()
            return True
        return False

    def _after_load(self) -> None:
        """Hook for subclasses to index the fresh queue."""

    def flush_pending(self) -> None:
        """Apply the taken-but-unflushed queue span to the bitmap
        metafile and the score keeper as one batch."""
        if self._qv is None or self._flushed_pos >= self._pos:
            return
        span = self._qv[self._flushed_pos : self._pos]
        # The queue holds free VBNs of the current AA only: account
        # per-AA directly and skip re-validating the trusted batch.
        self.metafile.allocate(span, trusted=True)
        self.keeper.note_alloc_aa(self._current_aa, int(span.size))
        self._flushed_pos = self._pos

    def _drop_queue(self) -> None:
        self.flush_pending()
        self._current_aa = None
        self._qv = None
        self._pos = 0
        self._flushed_pos = 0

    # ------------------------------------------------------------------
    # CP boundary
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Return the current AA to the cache (unmount / adoption path).

        The normal CP boundary does *not* release: WAFL keeps filling
        the selected AA across CPs until its free VBNs are exhausted
        ("assigns all free VBNs from the AA in sequential order",
        section 3.1).
        """
        if self._current_aa is None:
            return
        aa = self._current_aa
        self.flush_pending()
        self.source.return_aa(aa, self.keeper.effective_score(aa))
        self._drop_queue()

    def cp_flush(self) -> list[ScoreChange]:
        """Run the CP-boundary protocol: apply batched score deltas and
        rebalance the AA cache, keeping the current AA checked out
        (paper section 3.3)."""
        self.flush_pending()
        changes = self.keeper.flush()
        held = (
            frozenset((self._current_aa,))
            if self._current_aa is not None
            else frozenset()
        )
        self.source.cp_flush(changes, held)
        return changes

    def mean_selected_score(self) -> float:
        """Mean free-block count of AAs at selection time."""
        if not self.selected_aa_scores:
            return 0.0
        return float(np.mean(self.selected_aa_scores))


class LinearAllocator(_BaseAllocator):
    """Sequential VBN assignment within RAID-agnostic AAs."""

    def __init__(
        self,
        topology: LinearAATopology,
        metafile: BitmapMetafile,
        source: AASource,
        keeper: ScoreKeeper,
        *,
        store_offset: int = 0,
        batch_flush: bool = True,
    ) -> None:
        super().__init__(
            metafile, source, keeper,
            store_offset=store_offset, batch_flush=batch_flush,
        )
        self.topology = topology

    def _load_free_vbns(self, aa: int) -> np.ndarray:
        return self.topology.free_vbns(self.metafile.bitmap, aa)

    def allocate(self, n: int) -> np.ndarray:
        """Allocate up to ``n`` blocks; returns their global VBNs.

        Fewer than ``n`` are returned only when the space is out of
        free blocks reachable through the source.
        """
        out: list[np.ndarray] = []
        got = 0
        while got < n:
            if self._queue_remaining() == 0:
                self._drop_queue()
                if not self._load_next_aa():
                    break
            take = min(n - got, self._queue_remaining())
            chunk = self._qv[self._pos : self._pos + take]
            self._pos += take
            got += take
            self.spanned_blocks += int(chunk[-1] - chunk[0]) + 1
            if not self.batch_flush:
                self.flush_pending()
            out.append(chunk)
        self.blocks_allocated += got
        if not out:
            return np.empty(0, dtype=np.int64)
        result = np.concatenate(out)
        if self.store_offset:
            result = result + self.store_offset
        return result


class RAIDGroupAllocator(_BaseAllocator):
    """Stripe-major VBN assignment within one RAID group's AAs."""

    def __init__(
        self,
        topology: StripeAATopology,
        metafile: BitmapMetafile,
        source: AASource,
        keeper: ScoreKeeper,
        *,
        store_offset: int = 0,
        batch_flush: bool = True,
    ) -> None:
        super().__init__(
            metafile, source, keeper,
            store_offset=store_offset, batch_flush=batch_flush,
        )
        self.topology = topology
        self._starts: np.ndarray | None = None  # stripe-group starts in queue
        self._starts_list: list[int] = []  # same, as ints for bisect
        # Geometry constants hoisted out of the per-round hot loop.
        self._blocks_per_disk = int(topology.geometry.blocks_per_disk)
        self._ndata = int(topology.geometry.ndata)

    def _load_free_vbns(self, aa: int) -> np.ndarray:
        return self.topology.free_vbns(self.metafile.bitmap, aa)

    def _after_load(self) -> None:
        stripes = self.topology.geometry.dbn_of(self._qv)
        change = np.flatnonzero(np.diff(stripes) != 0) + 1
        self._starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), change, np.asarray([self._qv.size]))
        )
        self._starts_list = self._starts.tolist()

    def best_score(self) -> int | None:
        """Best available AA score of this group (cache view)."""
        return self.source.best_score()

    def take_stripes(self, max_stripes: int, max_blocks: int) -> np.ndarray:
        """Allocate free blocks from up to ``max_stripes`` stripes (and
        at most ``max_blocks`` blocks) of the current AA, loading the
        next AA when exhausted.  Returns *local* (group-relative) VBNs.

        Stripes that contain no free blocks cost nothing and are
        skipped implicitly — only stripes with assignable blocks count
        against ``max_stripes``.
        """
        if max_stripes <= 0 or max_blocks <= 0:
            return np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = []
        self.take_stripe_chunks(out, max_stripes, max_blocks)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def take_stripe_chunks(
        self, out: list[np.ndarray], max_stripes: int, max_blocks: int
    ) -> int:
        """:meth:`take_stripes`, but appending queue-slice views to
        ``out`` instead of concatenating them — the aggregate round-robin
        loop calls this once per tetris round and defers all copying to
        one final concatenate.  Returns the blocks taken."""
        stripes_taken = 0
        blocks_taken = 0
        bpd = self._blocks_per_disk
        while stripes_taken < max_stripes and blocks_taken < max_blocks:
            qv = self._qv
            if qv is None or qv.size == self._pos:
                self._drop_queue()
                if not self._load_next_aa():
                    break
                qv = self._qv
            # Locate the stripe group containing the current position.
            # Plain-int bisect over the cached starts list: this loop
            # runs ~once per tetris per group per CP, so scalar NumPy
            # searchsorted overhead here dominated whole-run profiles.
            starts = self._starts_list
            lo = self._pos
            g = bisect_right(starts, lo) - 1
            ngroups = len(starts) - 1
            k = min(max_stripes - stripes_taken, ngroups - g)
            hi = starts[g + k]
            if hi - lo > max_blocks - blocks_taken:
                hi = lo + (max_blocks - blocks_taken)
            chunk = qv[lo:hi]
            self._pos = hi
            # Count the distinct stripes actually consumed.
            consumed_g = bisect_right(starts, hi - 1) - 1
            stripes_taken += consumed_g - g + 1
            blocks_taken += hi - lo
            # Bitmap range examined: the consumed stripe span on every
            # data disk (stripe-major assignment scans all disks' bits
            # for those stripes).
            first_dbn = int(qv[lo]) % bpd
            last_dbn = int(qv[hi - 1]) % bpd
            self.spanned_blocks += (last_dbn - first_dbn + 1) * self._ndata
            if not self.batch_flush:
                self.flush_pending()
            out.append(chunk)
        self.blocks_allocated += blocks_taken
        return blocks_taken


class AggregateAllocator:
    """Coordinates per-RAID-group allocators for one aggregate.

    Parameters
    ----------
    group_allocators:
        One :class:`RAIDGroupAllocator` per RAID group.
    threshold_fraction:
        Fragmentation cutoff: a group whose best AA score is below
        ``threshold_fraction * aa_blocks`` is skipped while any other
        group remains above it (paper section 3.3.1).  0 disables the
        cutoff.
    stripes_per_round:
        Stripes taken from each group per round-robin turn; defaults to
        one tetris (64 stripes), the RAID write unit.
    """

    def __init__(
        self,
        group_allocators: list[RAIDGroupAllocator],
        *,
        threshold_fraction: float = 0.0,
        stripes_per_round: int = TETRIS_STRIPES,
    ) -> None:
        if not group_allocators:
            raise ValueError("need at least one RAID group allocator")
        self.groups = group_allocators
        self.threshold_fraction = float(threshold_fraction)
        self.stripes_per_round = int(stripes_per_round)
        #: Per-CP local VBNs written per group (drained by the CP engine).
        self._cp_writes: list[list[np.ndarray]] = [[] for _ in self.groups]
        #: Count of group-skips due to the fragmentation cutoff (metric).
        self.threshold_skips = 0

    # ------------------------------------------------------------------
    def _active_mask(self) -> list[bool]:
        """Apply the fragmentation cutoff across groups."""
        if self.threshold_fraction <= 0.0:
            return [True] * len(self.groups)
        scores = [g.best_score() for g in self.groups]
        above = [
            s is None or s >= self.threshold_fraction * g.topology.aa_blocks
            for g, s in zip(self.groups, scores)
        ]
        if any(above):
            self.threshold_skips += above.count(False)
            return above
        # Every group is fragmented: write anyway rather than stall.
        return [True] * len(self.groups)

    def allocate(self, n: int, groups: list[int] | None = None) -> np.ndarray:
        """Allocate up to ``n`` blocks across RAID groups; returns
        global VBNs.  Groups are visited round-robin in tetris-sized
        stripe batches so every group's devices stay busy.

        ``groups`` restricts allocation to the given group indices (how
        tier policies route data to one tier's groups).
        """
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        active = self._active_mask()
        if groups is not None:
            allowed = set(groups)
            active = [a and i in allowed for i, a in enumerate(active)]
            if not any(active):
                active = [i in allowed for i in range(len(self.groups))]
        out: list[np.ndarray] = []
        offs: list[int] = []
        lens: list[int] = []
        got = 0
        dry = [not a for a in active]
        while got < n and not all(dry):
            for gi, galloc in enumerate(self.groups):
                if dry[gi] or got >= n:
                    continue
                base = len(out)
                taken = galloc.take_stripe_chunks(
                    out, self.stripes_per_round, n - got
                )
                if taken == 0:
                    dry[gi] = True
                    continue
                got += taken
                off = galloc.store_offset
                cp_w = self._cp_writes[gi]
                for c in out[base:]:
                    cp_w.append(c)
                    offs.append(off)
                    lens.append(c.size)
        if not out:
            return np.empty(0, dtype=np.int64)
        # Localize: offsets are added once on the concatenated result
        # instead of allocating a shifted copy per tetris-sized chunk.
        result = np.concatenate(out)
        if any(offs):
            result += np.repeat(
                np.asarray(offs, dtype=np.int64), np.asarray(lens)
            )
        return result

    def flush_pending(self) -> None:
        """Sync every group allocator's pending span into its bitmap."""
        for g in self.groups:
            g.flush_pending()

    def drain_cp_writes(self) -> list[np.ndarray]:
        """Local VBNs written to each group since the last drain (for
        stripe/parity/device analysis at the CP boundary)."""
        drained = [
            np.concatenate(w) if w else np.empty(0, dtype=np.int64) for w in self._cp_writes
        ]
        self._cp_writes = [[] for _ in self.groups]
        return drained

    def cp_flush(self) -> list[list[ScoreChange]]:
        """Run the CP-boundary protocol on every group allocator."""
        return [g.cp_flush() for g in self.groups]

    @property
    def total_free(self) -> int:
        """Free blocks across all groups (bitmap truth, net of each
        group's pending-span batch)."""
        return sum(g.metafile.free_count - g.pending_count for g in self.groups)
