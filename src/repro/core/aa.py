"""Allocation areas (AAs): fixed-size regions of the block number space.

WAFL "defines fixed-size regions of the block number space, called
allocation areas, and tracks the availability of free space within each
region" (paper section 3).  The AA topology — which blocks belong to
which AA — depends on the storage beneath the VBN space:

* :class:`StripeAATopology` — for media arranged into a RAID group, an
  AA is a set of consecutive *stripes* spanning every data device
  (paper section 3.1, Figures 2 and 3).  Writing a whole AA therefore
  produces full stripe writes and long per-device chains.
* :class:`LinearAATopology` — for storage with native redundancy
  (object stores) and for the virtual VBN space of a FlexVol, an AA is
  a set of consecutive VBNs (paper section 3.1).

Both expose the same interface: mapping VBNs to AAs, enumerating an
AA's VBN extents, computing all AA scores from a bitmap in one
vectorized pass (the "linear walk of the bitmap metafiles" used when
rebuilding a cache, paper section 3.4), and yielding an AA's free VBNs
in allocation order.
"""

from __future__ import annotations

import abc

import numpy as np

from ..common.errors import GeometryError
from ..bitmap.bitmap import Bitmap
from ..raid.geometry import RAIDGeometry

__all__ = ["AATopology", "StripeAATopology", "LinearAATopology"]


class AATopology(abc.ABC):
    """Mapping between a VBN space and its allocation areas.

    Subclasses provide geometry-specific layouts; all scores follow the
    paper's definition: *the AA score is the number of free blocks in
    the AA* (section 3.3).
    """

    #: Number of allocation areas.
    num_aas: int
    #: Capacity of each AA in blocks (== the best possible score).
    aa_blocks: int
    #: Total blocks in the covered VBN space.
    nblocks: int

    @abc.abstractmethod
    def aa_of_vbn(self, vbns: np.ndarray | int) -> np.ndarray:
        """AA index for each VBN."""

    @abc.abstractmethod
    def aa_extents(self, aa: int) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` VBN ranges composing AA ``aa``."""

    @abc.abstractmethod
    def scores_from_bitmap(self, bitmap: Bitmap) -> np.ndarray:
        """Free-block count of every AA, computed in one bitmap pass."""

    @abc.abstractmethod
    def free_vbns(self, bitmap: Bitmap, aa: int, limit: int | None = None) -> np.ndarray:
        """Free VBNs of AA ``aa`` in allocation order, up to ``limit``.

        Allocation order is the order in which the write allocator
        assigns "all free VBNs from the AA in sequential order" (paper
        section 3.1): ascending VBN for linear AAs, stripe-major for
        RAID AAs (so stripes fill completely before moving on).
        """

    # ------------------------------------------------------------------
    def aa_score(self, bitmap: Bitmap, aa: int) -> int:
        """Free-block count of a single AA (consulting the bitmap)."""
        self._check_aa(aa)
        free = 0
        for start, stop in self.aa_extents(aa):
            free += (stop - start) - bitmap.count_range(start, stop)
        return free

    def _check_aa(self, aa: int) -> None:
        if not 0 <= aa < self.num_aas:
            raise GeometryError(f"AA {aa} out of range [0, {self.num_aas})")


class StripeAATopology(AATopology):
    """RAID-aware AA layout: each AA is ``stripes_per_aa`` consecutive
    stripes across all data devices of one RAID group (Figure 3).

    VBNs are group-relative (disk-major, per
    :class:`~repro.raid.geometry.RAIDGeometry`), so one AA consists of
    ``ndata`` disjoint VBN extents — one per data device.
    """

    def __init__(self, geometry: RAIDGeometry, stripes_per_aa: int) -> None:
        if stripes_per_aa <= 0 or stripes_per_aa % 8:
            raise GeometryError("stripes_per_aa must be a positive multiple of 8")
        if geometry.stripes % stripes_per_aa:
            raise GeometryError(
                f"{geometry.stripes} stripes not divisible by AA size {stripes_per_aa}"
            )
        self.geometry = geometry
        self.stripes_per_aa = int(stripes_per_aa)
        self.num_aas = geometry.stripes // self.stripes_per_aa
        self.aa_blocks = self.stripes_per_aa * geometry.ndata
        self.nblocks = geometry.data_blocks

    def aa_of_vbn(self, vbns: np.ndarray | int) -> np.ndarray:
        dbns = self.geometry.dbn_of(vbns)
        return dbns // self.stripes_per_aa

    def aa_extents(self, aa: int) -> list[tuple[int, int]]:
        self._check_aa(aa)
        return self.geometry.stripe_range_vbns(
            aa * self.stripes_per_aa, (aa + 1) * self.stripes_per_aa
        )

    def scores_from_bitmap(self, bitmap: Bitmap) -> np.ndarray:
        if bitmap.nblocks != self.nblocks:
            raise GeometryError("bitmap does not cover this RAID group's VBN space")
        # counts_per_chunk over stripes_per_aa-sized chunks yields, in
        # disk-major order, one count per (disk, AA) cell; fold disks.
        per_chunk = bitmap.counts_per_chunk(self.stripes_per_aa)
        allocated = per_chunk.reshape(self.geometry.ndata, self.num_aas).sum(axis=0)
        return self.aa_blocks - allocated

    def free_vbns(self, bitmap: Bitmap, aa: int, limit: int | None = None) -> np.ndarray:
        self._check_aa(aa)
        geom = self.geometry
        bpd = geom.blocks_per_disk
        first = aa * self.stripes_per_aa
        if self.stripes_per_aa % 8 == 0 and bpd % 8 == 0:
            # Stripe-major without sorting: unpack each disk's AA extent
            # (byte-aligned), stack into a (stripes, disks) matrix, and
            # scan it row-major — each row is one stripe across all
            # disks, which *is* the stripe-major fill order.
            cols = [
                bitmap.allocated_bits(d * bpd + first, d * bpd + first + self.stripes_per_aa)
                for d in range(geom.ndata)
            ]
            idx = np.flatnonzero(np.stack(cols, axis=1).ravel() == 0)
            disks = idx % geom.ndata
            dbns = first + idx // geom.ndata
            out = disks * bpd + dbns
        else:
            vbn_parts: list[np.ndarray] = []
            dbn_parts: list[np.ndarray] = []
            disk_parts: list[np.ndarray] = []
            for disk, (start, stop) in enumerate(self.aa_extents(aa)):
                free = bitmap.free_in_range(start, stop)
                vbn_parts.append(free)
                dbn_parts.append(free - disk * bpd)
                disk_parts.append(np.full(free.size, disk, dtype=np.int64))
            vbns = np.concatenate(vbn_parts)
            if vbns.size == 0:
                return vbns
            dbns = np.concatenate(dbn_parts)
            disks = np.concatenate(disk_parts)
            # Stripe-major: fill each stripe across all disks before
            # moving to the next, maximizing full stripe writes.
            order = np.lexsort((disks, dbns))
            out = vbns[order]
        if limit is not None:
            out = out[:limit]
        return out


class LinearAATopology(AATopology):
    """RAID-agnostic AA layout: each AA is ``blocks_per_aa`` consecutive
    VBNs.  The default size of 32k VBNs matches one bitmap-metafile
    block, so filling one AA dirties exactly one metafile block (paper
    sections 2.5 and 3.2.1)."""

    def __init__(self, nblocks: int, blocks_per_aa: int) -> None:
        if blocks_per_aa <= 0 or blocks_per_aa % 8:
            raise GeometryError("blocks_per_aa must be a positive multiple of 8")
        if nblocks <= 0 or nblocks % blocks_per_aa:
            raise GeometryError(
                f"nblocks {nblocks} not divisible by AA size {blocks_per_aa}"
            )
        self.nblocks = int(nblocks)
        self.blocks_per_aa = int(blocks_per_aa)
        self.num_aas = self.nblocks // self.blocks_per_aa
        self.aa_blocks = self.blocks_per_aa

    def aa_of_vbn(self, vbns: np.ndarray | int) -> np.ndarray:
        vbns = np.asarray(vbns, dtype=np.int64)
        return vbns // self.blocks_per_aa

    def aa_extents(self, aa: int) -> list[tuple[int, int]]:
        self._check_aa(aa)
        return [(aa * self.blocks_per_aa, (aa + 1) * self.blocks_per_aa)]

    def scores_from_bitmap(self, bitmap: Bitmap) -> np.ndarray:
        if bitmap.nblocks != self.nblocks:
            raise GeometryError("bitmap does not cover this VBN space")
        return self.blocks_per_aa - bitmap.counts_per_chunk(self.blocks_per_aa)

    def free_vbns(self, bitmap: Bitmap, aa: int, limit: int | None = None) -> np.ndarray:
        self._check_aa(aa)
        (start, stop), = self.aa_extents(aa)
        return bitmap.free_in_range(start, stop, limit)
