"""Allocation-area segment cleaning (paper section 3.3.1, extension).

"WAFL improves AA scores through a process similar to segment cleaning,
in which the content of all in-use blocks in an entire allocation area
is relocated elsewhere on storage in order to generate completely empty
AAs.  Each AA near the top of the max-heap goes through this cleaning
process once, thereby ensuring a small pool of cleaned AAs.  Cleaning
AAs with the best scores implies the relocation of the fewest in-use
blocks, so just-in-time cleaning of AAs provided by the AA cache yields
the best return on investment."

The paper defers the full defragmentation design to future work; this
module implements the quoted mechanism against the simulator: pop the
best AAs from a RAID group's cache, move their live blocks to fresh
physical locations through the normal write allocator (so the copies
land in other AAs, stripe-major), rewrite the affected FlexVol
container maps, and free the sources — leaving completely empty AAs
for the next CP to consume.

Cleaning costs real work that the report captures: blocks read and
rewritten (device I/O via the normal CP pricing path) and container-map
updates.  The ablation benchmark weighs that cost against the stripe
quality it buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import CacheError

__all__ = ["CleanReport", "clean_best_aas"]


@dataclass
class CleanReport:
    """Outcome of one cleaning pass."""

    #: AAs fully emptied.
    aas_cleaned: int = 0
    #: Live blocks relocated (read + rewritten).
    blocks_moved: int = 0
    #: AAs skipped because they were already completely empty.
    aas_already_empty: int = 0
    #: Container-map entries rewritten.
    map_updates: int = 0
    #: Per-AA scores at selection time (fewest-live-blocks-first check).
    selected_scores: list[int] = field(default_factory=list)


def clean_best_aas(sim, group_index: int, n_aas: int) -> CleanReport:
    """Clean up to ``n_aas`` of the given RAID group's best AAs.

    Must be called between consistency points (the simulator's steady
    state after :meth:`repro.fs.cp.CPEngine.run_cp` returns).  The
    relocations are flushed through a store CP boundary so device costs
    and cache rebalancing happen exactly as for client writes.
    """
    store = sim.store
    if not hasattr(store, "groups"):
        raise CacheError("segment cleaning targets RAID stores")
    g = store.groups[group_index]
    if g.cache is None:
        raise CacheError("segment cleaning requires the AA cache (it provides "
                         "the best-score AAs just in time)")
    if any(grp.delayed_frees.pending_count for grp in store.groups):
        # Pending frees reference allocated-but-unmapped blocks; cleaning
        # them would double-free.  CP boundaries drain the logs, so this
        # only trips if called mid-CP.
        raise CacheError("segment cleaning must run between consistency points")
    report = CleanReport()

    # Build the reverse map (physical -> (vol, virtual)) once per pass.
    vol_names: list[str] = []
    vol_virtuals: list[np.ndarray] = []
    vol_physicals: list[np.ndarray] = []
    for name, vol in sim.vols.items():
        mapped_v = np.flatnonzero(vol.v2p >= 0)
        vol_names.append(name)
        vol_virtuals.append(mapped_v)
        vol_physicals.append(vol.v2p[mapped_v])

    cleaned: list[int] = []
    for _ in range(n_aas):
        aa = g.cache.pop_best()
        if aa is None:
            break
        score = g.keeper.score(aa)
        report.selected_scores.append(int(score))
        live_local: list[np.ndarray] = []
        for start, stop in g.topology.aa_extents(aa):
            live_local.append(g.metafile.bitmap.allocated_in_range(start, stop))
        live = np.concatenate(live_local)
        if live.size == 0:
            report.aas_already_empty += 1
            cleaned.append(aa)
            continue

        live_global = live + g.offset
        # Allocate destinations through the normal allocator; the source
        # AA is checked out, so copies land elsewhere.
        dest = store.allocate(int(live.size))
        if dest.size < live.size:
            # Out of space to relocate into: put everything back.
            store.log_free(dest)
            g.cache.push_back(aa)
            break
        report.blocks_moved += int(live.size)

        # Rewrite container maps: every (vol, virtual) pointing at a
        # moved physical block now points at its copy.
        order = np.argsort(live_global)
        sorted_src = live_global[order]
        sorted_dst = dest[order]
        for name, mapped_v, phys in zip(vol_names, vol_virtuals, vol_physicals):
            idx = np.searchsorted(sorted_src, phys)
            idx = np.clip(idx, 0, sorted_src.size - 1)
            hits = sorted_src[idx] == phys
            if not np.any(hits):
                continue
            vol = sim.vols[name]
            vol.v2p[mapped_v[hits]] = sorted_dst[idx[hits]]
            phys[hits] = sorted_dst[idx[hits]]  # keep the pass's map fresh
            report.map_updates += int(hits.sum())

        # Free the sources (delayed, like any COW free).
        store.log_free(live_global)
        cleaned.append(aa)

    # Flush the relocation CP: prices device writes, applies the frees,
    # rebalances the caches (the cleaned AAs re-enter via their score
    # transitions; fully-empty ones at the maximum score).
    store.cp_boundary()
    # Return AAs whose scores did not change (already-empty ones).
    for aa in cleaned:
        if aa in g.cache.checked_out:
            g.cache.push_back(aa)
    report.aas_cleaned = len(cleaned)
    return report
