"""RAID-aware allocation-area cache: a max-heap over all AAs.

"This is an in-memory max-heap of all AAs in a RAID group sorted by
score.  The max-heap is rebalanced at the end of each CP after updating
the scores of AAs in which VBNs were allocated or freed." (paper
section 3.3.1)

The cache hands the write allocator the emptiest AA of its RAID group
(:meth:`pop_best`), absorbs the CP-boundary score transitions produced
by :class:`~repro.core.score.ScoreKeeper` (:meth:`apply_changes`), and
supports the TopAA mount path: seeding from a small set of high-quality
AAs and re-populating the remainder in the background
(:meth:`populate`, paper section 3.4).

Implementation: a lazy binary heap with per-AA version numbers.  Stale
entries (superseded score or already checked out) are discarded on pop;
the heap is compacted when stale entries dominate.  The *modeled*
memory footprint matches the paper's arithmetic — 8 bytes per AA, i.e.
~1 MiB for the million AAs of a 16 TiB-device RAID group.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..common.errors import CacheError
from .score import ScoreChange

__all__ = ["RAIDAwareAACache"]

_UNKNOWN = -1


class RAIDAwareAACache:
    """Max-heap AA cache for one RAID group.

    Parameters
    ----------
    num_aas:
        Total AAs in the RAID group.
    scores:
        When given, the cache is fully populated from this array (the
        normal boot-time bitmap walk).  When ``None``, every AA starts
        *unknown* and must be supplied via :meth:`populate` — the TopAA
        seeding path.
    """

    __slots__ = (
        "num_aas",
        "_score",
        "_version",
        "_out",
        "_heap",
        "_known",
        "seeded",
        "pushes",
        "pops",
        "compactions",
    )

    def __init__(self, num_aas: int, scores: np.ndarray | None = None) -> None:
        if num_aas <= 0:
            raise CacheError("num_aas must be positive")
        self.num_aas = int(num_aas)
        self._score = np.full(self.num_aas, _UNKNOWN, dtype=np.int64)
        self._version = np.zeros(self.num_aas, dtype=np.int64)
        self._out: set[int] = set()
        self._heap: list[tuple[int, int, int]] = []  # (-score, aa, version)
        self._known = 0
        #: True when populated from a TopAA seed: seeded scores are a
        #: point-in-time export and may legitimately lag the keeper
        #: until the background rebuild refreshes them.
        self.seeded = False
        # Maintenance-op counters for the CPU-overhead evaluation (§4.1.2).
        self.pushes = 0
        self.pops = 0
        self.compactions = 0
        if scores is not None:
            if len(scores) != self.num_aas:
                raise CacheError("scores length does not match num_aas")
            self._score[:] = scores
            self._known = self.num_aas
            self._heap = [(-int(s), aa, 0) for aa, s in enumerate(scores)]
            heapq.heapify(self._heap)
            self.pushes += self.num_aas

    # ------------------------------------------------------------------
    @property
    def fully_populated(self) -> bool:
        """Whether every AA's score is known to the cache."""
        return self._known == self.num_aas

    @property
    def known_count(self) -> int:
        """AAs whose scores the cache knows."""
        return self._known

    @property
    def checked_out(self) -> frozenset[int]:
        """AAs currently handed to the allocator (popped, not returned)."""
        return frozenset(self._out)

    @property
    def memory_bytes(self) -> int:
        """Modeled memory: 8 bytes (score + index) per tracked AA, the
        paper's ~1 MiB-per-million-AAs figure (section 3.3.1)."""
        return 8 * self.num_aas

    def score_of(self, aa: int) -> int:
        """Cache's view of an AA's score (-1 when unknown)."""
        return int(self._score[aa])

    @property
    def scores_view(self) -> np.ndarray:
        """Read-only per-AA score array (-1 = unknown).  The invariant
        auditor compares this against the score keeper's totals."""
        v = self._score.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # Allocator-facing operations
    # ------------------------------------------------------------------
    def best_score(self) -> int | None:
        """Score of the best available AA, or ``None`` if none remain.

        The write allocator uses this "as an indicator of [the RAID
        group's] fragmentation and so judge[s] when to stop and when to
        resume writing to that RAID group" (paper section 3.3.1).
        """
        self._clean_top()
        return -self._heap[0][0] if self._heap else None

    def pop_best(self) -> int | None:
        """Check out the emptiest AA, or ``None`` if none are available."""
        self._clean_top()
        if not self._heap:
            return None
        neg, aa, _ver = heapq.heappop(self._heap)
        self._out.add(aa)
        self.pops += 1
        return aa

    def push_back(self, aa: int) -> None:
        """Return a checked-out AA whose score did not change."""
        if aa not in self._out:
            raise CacheError(f"AA {aa} is not checked out")
        self._out.discard(aa)
        self._push(aa)

    # ------------------------------------------------------------------
    # CP boundary and population
    # ------------------------------------------------------------------
    def apply_changes(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        """Rebalance after a CP: absorb ``(aa, old, new)`` transitions.

        Checked-out AAs among the changes re-enter the heap with their
        new scores — except those in ``held``, which the write
        allocator is still filling across CP boundaries ("assigns all
        free VBNs from the AA", section 3.1); their snapshot scores are
        updated but they stay checked out.
        """
        for aa, _old, new in changes:
            if self._score[aa] == _UNKNOWN:
                # Score changed for an AA the seeded cache does not yet
                # track; it will be picked up by the background rebuild.
                continue
            self._score[aa] = new
            if aa in held:
                continue
            self._out.discard(aa)
            self._push(aa)
        self._maybe_compact()

    # ------------------------------------------------------------------
    # AACache protocol (see :mod:`repro.core.cache`)
    # ------------------------------------------------------------------
    def select(self) -> int | None:
        """Protocol alias of :meth:`pop_best`."""
        return self.pop_best()

    def consume(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        """Protocol alias of :meth:`apply_changes`."""
        self.apply_changes(changes, held)

    def invalidate(self, aa: int, score: int) -> None:
        """Return a checked-out AA.  The heap keeps exact scores, so the
        caller-supplied ``score`` is advisory here (the keeper re-scores
        at the CP boundary); HBPS needs it to pick the bin."""
        self.push_back(aa)

    def refill(self, scores: np.ndarray) -> None:
        """Authoritative rebuild from a full score array (the background
        bitmap walk that completes a TopAA-seeded mount).  Checked-out
        AAs keep their snapshots and stay out."""
        if len(scores) != self.num_aas:
            raise CacheError("scores length does not match num_aas")
        for aa in range(self.num_aas):
            if aa not in self._out:
                self._score[aa] = int(scores[aa])
        self._known = self.num_aas
        self.seeded = False
        self.compactions += 1
        self._heap = [
            (-int(self._score[aa]), aa, int(self._version[aa]))
            for aa in range(self.num_aas)
            if aa not in self._out
        ]
        heapq.heapify(self._heap)
        self.pushes += len(self._heap)

    def best_available_score(self) -> int | None:
        """Protocol alias of :meth:`best_score`."""
        return self.best_score()

    @property
    def needs_refill(self) -> bool:
        """True while TopAA seeding left scores unknown; a refill (full
        bitmap walk) would teach the cache the remaining AAs."""
        return self._known < self.num_aas

    @property
    def maintenance_ops(self) -> int:
        """Cache maintenance operations charged to CP CPU time."""
        return self.pushes + self.pops

    def stats(self) -> dict[str, int]:
        """Counter snapshot (protocol accessor)."""
        return {
            "selects": self.pops,
            "maintenance_ops": self.maintenance_ops,
            "pushes": self.pushes,
            "pops": self.pops,
            "compactions": self.compactions,
            "checked_out": len(self._out),
            "known": self._known,
            "memory_bytes": self.memory_bytes,
        }

    def populate(self, aa: int, score: int) -> None:
        """Supply the score of a previously unknown AA (TopAA seed or
        background rebuild)."""
        if not 0 <= aa < self.num_aas:
            raise CacheError(f"AA {aa} out of range")
        if self._score[aa] != _UNKNOWN:
            raise CacheError(f"AA {aa} already populated; use apply_changes")
        self._score[aa] = int(score)
        self._known += 1
        self._push(aa)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _push(self, aa: int) -> None:
        self._version[aa] += 1
        heapq.heappush(self._heap, (-int(self._score[aa]), int(aa), int(self._version[aa])))
        self.pushes += 1

    def _clean_top(self) -> None:
        h = self._heap
        while h:
            neg, aa, ver = h[0]
            if aa in self._out or ver != self._version[aa] or self._score[aa] != -neg:
                heapq.heappop(h)
            else:
                return

    def _maybe_compact(self) -> None:
        if len(self._heap) <= 4 * self.num_aas + 16:
            return
        self.compactions += 1
        self._heap = [
            (-int(self._score[aa]), aa, int(self._version[aa]))
            for aa in range(self.num_aas)
            if self._score[aa] != _UNKNOWN and aa not in self._out
        ]
        heapq.heapify(self._heap)

    def check_invariants(self) -> None:
        """Test hook: the structural max-heap property must hold over
        the backing array, and the live entries must cover every known,
        not-checked-out AA exactly once."""
        h = self._heap
        for i, entry in enumerate(h):
            for j in (2 * i + 1, 2 * i + 2):
                if j < len(h) and h[j] < entry:
                    raise CacheError(
                        f"max-heap property violated: parent {i} "
                        f"(score {-entry[0]}) vs child {j} (score {-h[j][0]})"
                    )
        valid = {}
        for neg, aa, ver in h:
            if aa in self._out or ver != self._version[aa] or self._score[aa] != -neg:
                continue
            if aa in valid:
                raise CacheError(f"duplicate live heap entry for AA {aa}")
            valid[aa] = -neg
        expected = {
            aa
            for aa in range(self.num_aas)
            if self._score[aa] != _UNKNOWN and aa not in self._out
        }
        if set(valid) != expected:
            raise CacheError(
                f"live heap entries {len(valid)} != known available AAs {len(expected)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RAIDAwareAACache(num_aas={self.num_aas}, known={self._known}, "
            f"out={len(self._out)}, heap={len(self._heap)})"
        )
