"""AA selection policies: the cache-backed policy and baselines.

The write allocator consumes allocation areas through the small
:class:`AASource` protocol, which lets every experiment swap selection
policies without touching allocation logic:

* :class:`~repro.core.cache.CacheSource` — either of the paper's AA
  caches behind the unified :class:`~repro.core.cache.AACache`
  protocol (with automatic background refill when a replenisher is
  supplied).
* :class:`RandomSource` — the "AA cache disabled" baseline of section
  4.1: AAs are picked at random, which is what selecting regions with
  no free-space guidance degenerates to ("randomly selected AAs average
  only 46% free space").
* :class:`LinearScanSource` — a first-fit cursor baseline (extension;
  FFS/ext-style next-fit behaviour) used in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..common.errors import CacheError
from ..common.rng import make_rng
from .score import ScoreChange

__all__ = [
    "AASource",
    "RandomSource",
    "LinearScanSource",
    "BitmapWalkSource",
]


class AASource(Protocol):
    """Protocol through which the write allocator obtains AAs."""

    def next_aa(self) -> int | None:
        """Check out the next AA to write into (None = none available)."""
        ...

    def return_aa(self, aa: int, score: int) -> None:
        """Return a checked-out AA whose score is unchanged."""
        ...

    def cp_flush(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        """Absorb CP-boundary score transitions; AAs in ``held`` remain
        checked out by the allocator."""
        ...

    def best_score(self) -> int | None:
        """Best available score, or None when unknown (baselines)."""
        ...


class RandomSource:
    """Baseline: uniformly random AA selection ("cache disabled").

    The source never proposes an AA it has already checked out, but it
    has no score knowledge; the allocator discards full AAs by
    returning them and asking again (bounded retries), which models a
    write allocator scanning arbitrary regions.
    """

    def __init__(self, num_aas: int, seed: int | np.random.Generator | None = None) -> None:
        if num_aas <= 0:
            raise CacheError("num_aas must be positive")
        self.num_aas = num_aas
        self.rng = make_rng(seed)
        self._out: set[int] = set()

    def next_aa(self) -> int | None:
        if len(self._out) >= self.num_aas:
            return None
        for _ in range(64):
            aa = int(self.rng.integers(self.num_aas))
            if aa not in self._out:
                self._out.add(aa)
                return aa
        # Dense checkout; fall back to the first available.
        for aa in range(self.num_aas):
            if aa not in self._out:
                self._out.add(aa)
                return aa
        return None

    def return_aa(self, aa: int, score: int) -> None:
        self._out.discard(aa)

    def cp_flush(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        for aa, _old, _new in changes:
            if aa not in held:
                self._out.discard(aa)

    def best_score(self) -> int | None:
        return None


class BitmapWalkSource:
    """Degraded-mode fallback: consult the bitmap directly per AA.

    Used while a file system's AA cache is being rebuilt after damage
    (:mod:`repro.faults`): the source walks AAs in ring order and only
    proposes AAs the bitmap says have free blocks, so allocation never
    fails while the cache is offline — at the cost of scanning bitmap
    bits on every selection (the very cost the caches exist to avoid;
    see paper section 2.5).
    """

    def __init__(self, topology, metafile) -> None:
        self.topology = topology
        self.metafile = metafile
        self._cursor = 0
        self._out: set[int] = set()
        #: AAs handed out while degraded (recovery metric).
        self.selects = 0
        #: Bitmap bits examined finding them (the degradation cost).
        self.bits_scanned = 0

    def next_aa(self) -> int | None:
        num = self.topology.num_aas
        if len(self._out) >= num:
            return None
        for _ in range(num):
            aa = self._cursor
            self._cursor = (self._cursor + 1) % num
            if aa in self._out:
                continue
            self.bits_scanned += self.topology.aa_blocks
            if self.topology.aa_score(self.metafile.bitmap, aa) > 0:
                self._out.add(aa)
                self.selects += 1
                return aa
        return None

    def return_aa(self, aa: int, score: int) -> None:
        self._out.discard(aa)

    def cp_flush(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        for aa, _old, _new in changes:
            if aa not in held:
                self._out.discard(aa)

    def best_score(self) -> int | None:
        return None


class LinearScanSource:
    """Baseline: first-fit cursor over the AA number space (extension).

    Walks AAs in order, wrapping around; models allocators that scan
    bitmaps linearly for the next region with free space.  Consulting
    AAs in order is cheap per step but keeps returning aged, mostly
    full regions on fragmented file systems.
    """

    def __init__(self, num_aas: int) -> None:
        if num_aas <= 0:
            raise CacheError("num_aas must be positive")
        self.num_aas = num_aas
        self._cursor = 0
        self._out: set[int] = set()

    def next_aa(self) -> int | None:
        if len(self._out) >= self.num_aas:
            return None
        for _ in range(self.num_aas):
            aa = self._cursor
            self._cursor = (self._cursor + 1) % self.num_aas
            if aa not in self._out:
                self._out.add(aa)
                return aa
        return None

    def return_aa(self, aa: int, score: int) -> None:
        self._out.discard(aa)

    def cp_flush(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        for aa, _old, _new in changes:
            if aa not in held:
                self._out.discard(aa)

    def best_score(self) -> int | None:
        return None
