"""RAID-agnostic allocation-area cache built on HBPS.

For FlexVol virtual VBNs and natively redundant physical storage, "the
selection of the single best AA is not worth the memory overhead
associated with the max-heap approach ... we needed a data structure
that efficiently provided AAs with close-to-best scores, but used a
finite amount of memory even when tracking millions of AAs" (paper
section 3.3.2).  :class:`RAIDAgnosticAACache` wraps
:class:`~repro.core.hbps.HBPS` with the AA-cache protocol used by the
write allocator:

* :meth:`pop_best` checks an AA out (guaranteed within one histogram
  bin — 3.125% of the maximum score — of the best tracked AA);
* :meth:`apply_changes` absorbs CP-boundary score transitions;
* :meth:`replenish` performs the background bitmap-walk refill when the
  list page runs dry;
* :meth:`to_pages` / :meth:`from_pages` persist the cache into the two
  4 KiB blocks of its TopAA metafile (paper section 3.4).
"""

from __future__ import annotations

import numpy as np

from ..common.constants import HBPS_BIN_WIDTH, HBPS_LIST_CAPACITY
from ..common.errors import CacheError
from .hbps import HBPS
from .score import ScoreChange

__all__ = ["RAIDAgnosticAACache"]


class RAIDAgnosticAACache:
    """HBPS-backed AA cache for one RAID-agnostic VBN space.

    Parameters
    ----------
    num_aas:
        Total AAs in the VBN space.
    aa_blocks:
        AA capacity in blocks (the maximum score).
    scores:
        When given, the cache is fully built from this array.  When
        ``None`` the cache starts empty and must be seeded
        (:meth:`from_pages`) or replenished.
    bin_width, list_capacity:
        HBPS tuning (paper defaults: 1K-wide bins, 1,000 entries).
    """

    __slots__ = ("num_aas", "aa_blocks", "_hbps", "_out", "_seeded", "_assumed", "selects")

    def __init__(
        self,
        num_aas: int,
        aa_blocks: int,
        scores: np.ndarray | None = None,
        *,
        bin_width: int = HBPS_BIN_WIDTH,
        list_capacity: int = HBPS_LIST_CAPACITY,
    ) -> None:
        if num_aas <= 0:
            raise CacheError("num_aas must be positive")
        self.num_aas = int(num_aas)
        self.aa_blocks = int(aa_blocks)
        bin_width = min(bin_width, aa_blocks)
        self._hbps = HBPS(aa_blocks, bin_width=bin_width, list_capacity=list_capacity)
        self._out: set[int] = set()
        #: True after loading from TopAA pages, until the background
        #: rebuild supplies exact scores; histogram counts for unlisted
        #: AAs are stale during this window, exactly as in WAFL.
        self._seeded = False
        #: While seeded: the bin-resolution score the HBPS believes for
        #: each *listed* AA (needed to route updates to the right bin).
        self._assumed: dict[int, int] = {}
        #: AAs handed out (metric).
        self.selects = 0
        if scores is not None:
            if len(scores) != self.num_aas:
                raise CacheError("scores length does not match num_aas")
            self._hbps.rebuild((aa, int(s)) for aa, s in enumerate(scores))

    # ------------------------------------------------------------------
    @property
    def hbps(self) -> HBPS:
        """The underlying HBPS (exposed for metrics and tests)."""
        return self._hbps

    @property
    def seeded(self) -> bool:
        """Whether the cache is running on TopAA seed data only."""
        return self._seeded

    @property
    def needs_replenish(self) -> bool:
        """True when the HBPS list ran dry while AAs remain tracked."""
        return self._hbps.needs_replenish

    @property
    def checked_out(self) -> frozenset[int]:
        """AAs currently handed to the allocator."""
        return frozenset(self._out)

    @property
    def memory_bytes(self) -> int:
        """Modeled memory: the HBPS's two 4 KiB pages, independent of
        ``num_aas`` (the paper's headline property)."""
        return self._hbps.memory_bytes

    # ------------------------------------------------------------------
    # Allocator-facing operations
    # ------------------------------------------------------------------
    def pop_best(self) -> int | None:
        """Check out a close-to-best AA, or ``None`` when the list page
        is empty (check :attr:`needs_replenish` to see whether a
        background refill would produce more)."""
        popped = self._hbps.pop_best()
        if popped is None:
            return None
        aa, b = popped
        if self._seeded:
            self._assumed.pop(aa, None)
        self._out.add(aa)
        self.selects += 1
        return aa

    def best_bin_score(self) -> int | None:
        """Upper-bound score of the best listed AA (bin resolution)."""
        best = self._hbps.peek_best()
        if best is None:
            return None
        _aa, b = best
        return self._hbps.bin_bounds(b)[1]

    def return_aa(self, aa: int, score: int) -> None:
        """Return a checked-out AA whose score did not change."""
        if aa not in self._out:
            raise CacheError(f"AA {aa} is not checked out")
        self._out.discard(aa)
        self._hbps.insert(aa, score)
        if self._seeded:
            self._assumed[aa] = score

    # ------------------------------------------------------------------
    # CP boundary, replenish, persistence
    # ------------------------------------------------------------------
    def apply_changes(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        """Absorb CP-boundary ``(aa, old, new)`` score transitions.

        Checked-out AAs re-enter with their new scores — except those
        in ``held``, which the allocator keeps filling across CPs;
        tracked AAs move bins in constant time (paper section 3.3.2).
        While seeded, transitions for unlisted AAs are dropped — their
        histogram counts are stale until the background rebuild,
        matching WAFL.
        """
        for aa, old, new in changes:
            if aa in held and aa in self._out:
                continue  # still being filled; re-enters via return_aa
            if aa in self._out:
                self._out.discard(aa)
                self._hbps.insert(aa, new)
                if self._seeded:
                    self._assumed[aa] = new
            elif self._seeded:
                if self._hbps.is_listed(aa):
                    assumed = self._assumed.pop(aa)
                    self._hbps.update(aa, assumed, new)
                    if self._hbps.is_listed(aa):
                        self._assumed[aa] = new
                # else: stale until rebuild
            else:
                self._hbps.update(aa, old, new)

    # ------------------------------------------------------------------
    # AACache protocol (see :mod:`repro.core.cache`)
    # ------------------------------------------------------------------
    def select(self) -> int | None:
        """Protocol alias of :meth:`pop_best`."""
        return self.pop_best()

    def consume(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        """Protocol alias of :meth:`apply_changes`."""
        self.apply_changes(changes, held)

    def invalidate(self, aa: int, score: int) -> None:
        """Protocol alias of :meth:`return_aa` (the score routes the AA
        back into the right histogram bin)."""
        self.return_aa(aa, score)

    def refill(self, scores: np.ndarray) -> None:
        """Protocol alias of :meth:`replenish`."""
        self.replenish(scores)

    def best_available_score(self) -> int | None:
        """Protocol alias of :meth:`best_bin_score`."""
        return self.best_bin_score()

    @property
    def needs_refill(self) -> bool:
        """Protocol alias of :attr:`needs_replenish`."""
        return self.needs_replenish

    @property
    def maintenance_ops(self) -> int:
        """Cache maintenance operations charged to CP CPU time."""
        h = self._hbps
        return h.pops + h.updates + h.evictions

    def stats(self) -> dict[str, int]:
        """Counter snapshot (protocol accessor)."""
        h = self._hbps
        return {
            "selects": self.selects,
            "maintenance_ops": self.maintenance_ops,
            "pops": h.pops,
            "updates": h.updates,
            "evictions": h.evictions,
            "checked_out": len(self._out),
            "tracked": h.total_count,
            "memory_bytes": self.memory_bytes,
        }

    def replenish(self, scores: np.ndarray) -> None:
        """Full rebuild from authoritative ``scores`` (the background
        bitmap-metafile walk).  Checked-out AAs stay out."""
        if len(scores) != self.num_aas:
            raise CacheError("scores length does not match num_aas")
        self._hbps.rebuild(
            (aa, int(scores[aa])) for aa in range(self.num_aas) if aa not in self._out
        )
        self._seeded = False
        self._assumed.clear()

    def to_pages(self) -> bytes:
        """Serialize to the two 4 KiB TopAA blocks (HBPS layout)."""
        return self._hbps.to_pages()

    @classmethod
    def from_pages(
        cls,
        pages: bytes,
        num_aas: int,
        *,
        list_capacity: int = HBPS_LIST_CAPACITY,
    ) -> "RAIDAgnosticAACache":
        """Reconstruct a seeded cache from TopAA pages.

        Listed AAs are assumed to sit at their bin's upper bound until
        the background rebuild restores exact scores.
        """
        hbps = HBPS.from_pages(pages, list_capacity=list_capacity)
        cache = cls(
            max(num_aas, 1),
            hbps.max_score,
            bin_width=hbps.bin_width,
            list_capacity=list_capacity,
        )
        cache._hbps = hbps
        cache._seeded = True
        for aa, b in hbps.iter_listed():
            cache._assumed[aa] = hbps.bin_bounds(b)[1]
        return cache

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Test hook: HBPS invariants plus out-set disjointness."""
        self._hbps.check_invariants()
        for aa in sorted(self._out):
            if self._hbps.is_listed(aa):
                raise CacheError(f"checked-out AA {aa} still listed in HBPS")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RAIDAgnosticAACache(num_aas={self.num_aas}, tracked="
            f"{self._hbps.total_count}, out={len(self._out)}, seeded={self._seeded})"
        )
