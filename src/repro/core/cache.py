"""The unified AA-cache protocol and its allocator-facing adapter.

Both of the paper's caches — the RAID-aware max-heap (section 3.3.1)
and the RAID-agnostic HBPS (section 3.3.2) — grew their own method
names and keyword-divergent constructors.  This module redesigns that
surface into one :class:`AACache` protocol:

* ``select()`` — check out the (close-to-)best AA;
* ``invalidate(aa, score)`` — return a checked-out AA;
* ``consume(changes, held)`` — absorb CP-boundary score transitions;
* ``refill(scores)`` — authoritative rebuild from a bitmap walk;
* ``stats()`` — counter snapshot for CPU accounting and tracing;

plus the ``needs_refill`` probe and ``best_available_score()`` used by
the allocator's fragmentation cutoff.  :func:`make_aa_cache` is the
single constructor: it picks the implementation from the AA topology
and takes its tuning from :class:`~repro.common.config.CacheConfig`
instead of loose keywords.  :class:`CacheSource` adapts any
:class:`AACache` to the write allocator's ``AASource`` protocol (one
class where there used to be two) and owns the background-refill
trigger.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from .. import obs
from ..common.config import CacheConfig, SimConfig
from .aa import AATopology, StripeAATopology
from .hbps_cache import RAIDAgnosticAACache
from .heap_cache import RAIDAwareAACache
from .score import ScoreChange

__all__ = ["AACache", "CacheSource", "make_aa_cache"]


@runtime_checkable
class AACache(Protocol):
    """What the allocator pipeline requires of an AA cache."""

    num_aas: int

    def select(self) -> int | None:
        """Check out the best (or close-to-best) AA, or ``None``."""
        ...

    def invalidate(self, aa: int, score: int) -> None:
        """Return a checked-out AA at the given score."""
        ...

    def consume(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        """Absorb CP-boundary ``(aa, old, new)`` score transitions;
        AAs in ``held`` stay checked out."""
        ...

    def refill(self, scores: np.ndarray) -> None:
        """Authoritative rebuild from a full per-AA score array."""
        ...

    def best_available_score(self) -> int | None:
        """Best selectable score (bin resolution for HBPS), or None."""
        ...

    def stats(self) -> dict[str, int]:
        """Counter snapshot; must include ``selects`` and
        ``maintenance_ops`` (the CP CPU-accounting input)."""
        ...

    @property
    def needs_refill(self) -> bool:
        """True when a background refill would yield more AAs."""
        ...

    @property
    def checked_out(self) -> frozenset[int]:
        """AAs currently handed to the allocator."""
        ...

    @property
    def maintenance_ops(self) -> int:
        """Running maintenance-operation count (monotone)."""
        ...


class CacheSource:
    """Adapter: any :class:`AACache` -> the allocator's ``AASource``.

    ``replenisher`` supplies authoritative scores for a full
    refill — the background bitmap-metafile walk that runs when the
    allocator drains the cache faster than frees repopulate it (paper
    section 3.3.2); the callable is charged for its own metafile I/O.
    """

    def __init__(
        self,
        cache: AACache,
        replenisher: Callable[[], np.ndarray] | None = None,
    ) -> None:
        self.cache = cache
        self.replenisher = replenisher
        #: Number of background refills triggered (metric).
        self.replenish_count = 0

    def next_aa(self) -> int | None:
        aa = self.cache.select()
        if aa is None and self.cache.needs_refill and self.replenisher is not None:
            with obs.span("cache.refill", num_aas=self.cache.num_aas):
                self.cache.refill(self.replenisher())
            obs.count("cache.refills")
            self.replenish_count += 1
            aa = self.cache.select()
        return aa

    def return_aa(self, aa: int, score: int) -> None:
        self.cache.invalidate(aa, score)

    def cp_flush(
        self, changes: list[ScoreChange], held: frozenset[int] = frozenset()
    ) -> None:
        with obs.span("cache.consume", changes=len(changes)):
            self.cache.consume(changes, held)

    def best_score(self) -> int | None:
        return self.cache.best_available_score()


def make_aa_cache(
    topology: AATopology,
    scores: np.ndarray | None = None,
    *,
    config: SimConfig | CacheConfig | None = None,
) -> RAIDAwareAACache | RAIDAgnosticAACache:
    """Build the right AA cache for a topology, tuned by ``config``.

    Stripe (RAID-group) topologies get the exact max-heap cache;
    linear (RAID-agnostic/FlexVol) topologies get the constant-memory
    HBPS cache with its bin width and list capacity taken from
    :class:`~repro.common.config.CacheConfig` — the one place those
    tunables now live.
    """
    if config is None:
        cache_cfg = SimConfig.default().cache
    elif isinstance(config, SimConfig):
        cache_cfg = config.cache
    else:
        cache_cfg = config
    if isinstance(topology, StripeAATopology):
        return RAIDAwareAACache(topology.num_aas, scores)
    return RAIDAgnosticAACache(
        topology.num_aas,
        topology.aa_blocks,
        scores,
        bin_width=cache_cfg.hbps_bin_width,
        list_capacity=cache_cfg.hbps_list_capacity,
    )
