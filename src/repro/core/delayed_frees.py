"""Batched (delayed) frees, applied at consistency-point boundaries.

In WAFL, block frees produced by client overwrites and deletes are not
applied to the bitmap metafiles immediately: they are logged and applied
in batch at the CP boundary, which amortizes metafile block updates
(paper section 3.3, citing Kesavan et al.'s free-space reclamation
work).  The same reference notes that the HBPS structure "is used to
track delayed-free scores": when only part of the backlog can be
processed in one CP, WAFL prefers the metafile blocks with the most
pending frees, maximizing frees applied per metafile block touched.

:class:`DelayedFreeLog` implements both behaviours: :meth:`apply_all`
for the common full drain, and :meth:`apply_best` for HBPS-prioritized
partial application.
"""

from __future__ import annotations

import numpy as np

from ..bitmap.metafile import BitmapMetafile
from ..common.constants import BITS_PER_BITMAP_BLOCK
from ..common.errors import CacheError
from .hbps import HBPS

__all__ = ["DelayedFreeLog"]


class DelayedFreeLog:
    """Log of VBNs freed during a CP interval, grouped by metafile block.

    Parameters
    ----------
    bits_per_block:
        VBNs per metafile block (defines the grouping granularity and
        the HBPS maximum score).
    hbps_list_capacity:
        List-page capacity for the prioritizing HBPS.
    """

    __slots__ = (
        "bits_per_block",
        "_per_block",
        "_staged",
        "_pending",
        "_count_backlog",
        "_pending_total",
        "_hbps",
        "total_logged",
    )

    def __init__(
        self,
        *,
        bits_per_block: int = BITS_PER_BITMAP_BLOCK,
        hbps_list_capacity: int = 1000,
    ) -> None:
        self.bits_per_block = bits_per_block
        # Logged chunks, grouped by metafile block.  Grouping (a sort)
        # is deferred: `add` stages chunks ungrouped and only the
        # budgeted `apply_best` path — which needs per-block access —
        # triggers `_ensure_grouped`.  The full-drain `apply_all` never
        # pays for grouping at all.
        self._per_block: dict[int, list[np.ndarray]] = {}
        self._staged: list[np.ndarray] = []
        self._pending: dict[int, int] = {}
        # Chunks whose per-block counts / HBPS scores have not been
        # folded in yet; replayed in add order by `_ensure_counts` so
        # the budgeted path sees exactly the state eager updates would
        # have produced.  The full-drain path never pays for them.
        self._count_backlog: list[np.ndarray] = []
        self._pending_total = 0
        # Keep the paper's ~32-bins-per-score-space shape regardless of
        # the metafile block size used (tests shrink it).
        bin_width = max(bits_per_block // 32, 1)
        self._hbps = HBPS(
            bits_per_block, bin_width=bin_width, list_capacity=hbps_list_capacity
        )
        #: Cumulative VBNs ever logged (metric).
        self.total_logged = 0

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """VBNs logged but not yet applied."""
        return self._pending_total

    @property
    def pending_blocks(self) -> int:
        """Distinct metafile blocks with pending frees."""
        self._ensure_counts()
        return len(self._pending)

    @property
    def hbps(self) -> HBPS:
        """The prioritizing HBPS (exposed for tests and metrics)."""
        self._ensure_counts()
        return self._hbps

    # ------------------------------------------------------------------
    def add(self, vbns: np.ndarray) -> None:
        """Log ``vbns`` for deferred freeing.

        Only the chunk itself is staged here; per-block counts and HBPS
        scores are folded in lazily (`_ensure_counts`) because the
        common full-drain CP never reads either.
        """
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        self.total_logged += int(vbns.size)
        self._pending_total += int(vbns.size)
        self._staged.append(vbns)
        self._count_backlog.append(vbns)

    def _ensure_counts(self) -> None:
        """Replay deferred per-block accounting in add order, producing
        exactly the pending-count map and HBPS history eager updates
        would have (the HBPS tie-break order is sequence-dependent)."""
        if not self._count_backlog:
            return
        backlog, self._count_backlog = self._count_backlog, []
        for vbns in backlog:
            blocks = vbns // self.bits_per_block
            # Per-block counts via a bincount over the touched block
            # range: the range is tiny (one block covers 32K VBNs) so
            # this avoids the argsort/unique a grouping would need.
            bmin = int(blocks.min())
            counts = np.bincount(blocks - bmin)
            touched = np.flatnonzero(counts)
            for off, cnt in zip(touched.tolist(), counts[touched].tolist()):
                blk = bmin + off
                old = self._pending.get(blk, 0)
                new = old + cnt
                self._pending[blk] = new
                score_old = min(old, self.bits_per_block)
                score_new = min(new, self.bits_per_block)
                if old == 0:
                    self._hbps.insert(blk, score_new)
                else:
                    self._hbps.update(blk, score_old, score_new)

    def _ensure_grouped(self) -> None:
        """Fold staged (ungrouped) chunks into the per-block map."""
        if not self._staged:
            return
        vbns = self._staged[0] if len(self._staged) == 1 else np.concatenate(self._staged)
        self._staged = []
        blocks = vbns // self.bits_per_block
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        sorted_vbns = vbns[order]
        uniq, starts = np.unique(sorted_blocks, return_index=True)
        bounds = np.append(starts, sorted_blocks.size)
        for i, blk in enumerate(uniq.tolist()):
            chunk = sorted_vbns[bounds[i] : bounds[i + 1]]
            self._per_block.setdefault(blk, []).append(chunk)

    def apply_all(self, metafile: BitmapMetafile) -> np.ndarray:
        """Apply every pending free to ``metafile``.

        Returns the freed VBNs (for AA-score accounting by the caller).
        """
        chunks = [c for lst in self._per_block.values() for c in lst]
        chunks.extend(self._staged)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        vbns = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        # Logged chunks were in-range int64 when allocated: trusted batch.
        metafile.free(vbns, trusted=True)
        self._per_block.clear()
        self._staged = []
        self._pending.clear()
        self._count_backlog = []
        self._pending_total = 0
        self._hbps.rebuild(())
        return vbns

    def apply_best(self, metafile: BitmapMetafile, max_blocks: int) -> np.ndarray:
        """Apply frees for at most ``max_blocks`` metafile blocks,
        chosen highest-pending-count first via the HBPS.

        This is the paper's "delayed-free scores" use of HBPS: when the
        CP budgets metafile updates, processing the fullest blocks frees
        the most space per metafile block written.  Returns the freed
        VBNs.
        """
        self._ensure_counts()
        self._ensure_grouped()
        freed: list[np.ndarray] = []
        applied = 0
        while applied < max_blocks and self._pending:
            popped = self._hbps.pop_best()
            if popped is None:
                # List ran dry while blocks remain: replenish from the
                # authoritative pending map (the analogue of the
                # background bitmap walk).
                self._hbps.rebuild(
                    (blk, min(cnt, self.bits_per_block))
                    for blk, cnt in self._pending.items()
                )
                popped = self._hbps.pop_best()
                if popped is None:
                    break
            blk, _bin = popped
            chunks = self._per_block.pop(blk, [])
            if not chunks:
                continue
            self._pending.pop(blk, None)
            vbns = np.concatenate(chunks)
            self._pending_total -= int(vbns.size)
            metafile.free(vbns, trusted=True)
            freed.append(vbns)
            applied += 1
        if freed:
            return np.concatenate(freed)
        return np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection and invariants
    # ------------------------------------------------------------------
    def pending_vbns(self) -> np.ndarray:
        """Every VBN currently logged but not yet applied (sorted)."""
        chunks = [c for lst in self._per_block.values() for c in lst]
        chunks.extend(self._staged)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chunks))

    def check_invariants(self, bitmap=None) -> None:
        """Raise :class:`~repro.common.errors.CacheError` on any broken
        conservation property of the log.

        Checks: per-block pending counts match the logged chunks, the
        prioritizing HBPS tracks exactly the blocks with pending frees,
        no VBN is logged twice, and — when ``bitmap`` is given — every
        pending VBN is still allocated there (a logged free that is
        already clear would double-free on apply).
        """
        self._ensure_counts()
        self._ensure_grouped()
        for blk, count in self._pending.items():
            chunks = self._per_block.get(blk, [])
            actual = sum(int(c.size) for c in chunks)
            if actual != count:
                raise CacheError(
                    f"delayed-free block {blk}: pending count {count} != "
                    f"logged chunk total {actual}"
                )
        if set(self._per_block) != set(self._pending):
            raise CacheError("delayed-free chunk map and pending map diverge")
        if self._pending_total != sum(self._pending.values()):
            raise CacheError(
                f"delayed-free running total {self._pending_total} != "
                f"per-block sum {sum(self._pending.values())}"
            )
        self._hbps.check_invariants()
        if self._hbps.total_count != len(self._pending):
            raise CacheError(
                f"delayed-free HBPS tracks {self._hbps.total_count} blocks "
                f"but {len(self._pending)} have pending frees"
            )
        vbns = self.pending_vbns()
        if vbns.size and np.unique(vbns).size != vbns.size:
            raise CacheError("duplicate VBN in delayed-free log")
        if bitmap is not None and vbns.size and not bool(np.all(bitmap.test(vbns))):
            bad = vbns[~bitmap.test(vbns)]
            raise CacheError(
                f"pending delayed-free VBN(s) {bad[:8].tolist()} are already "
                f"free in the bitmap"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DelayedFreeLog(pending={self.pending_count}, "
            f"blocks={self.pending_blocks})"
        )
