"""Histogram-based partial sort (HBPS).

HBPS is the paper's novel data structure (section 3.3.2, Figure 5) for
tracking millions of scored items — allocation areas, delayed-free
counts — in close-to-sorted order using a *fixed* amount of memory:

* a **histogram page** counts the number of items in each score-range
  bin (bin width 1K for a 32K max score, i.e. 32 ranges plus one for
  score 0) and, for the best bins, an index into the list page;
* a **list page** stores *all* the items from the best bins, unsorted
  within each bin, bounded by a fixed capacity (1,000 entries).

Popping the best item takes it from the highest populated listed bin,
which guarantees a score within one bin width of the true maximum —
the paper's 3.125% error margin (= 1K / 32K).  Items outside the listed
bins are still counted exactly; when the list runs dry while items
remain, the owner runs a *replenish* scan (in WAFL, a background walk
of the bitmap metafiles) to refill it.

The implementation mirrors the paper's update rules:

* moving an item between bins is O(1) histogram arithmetic;
* an item rising into a listed bin is inserted into the list, displacing
  (unlisting) one item from the worst listed bin when at capacity;
* bins strictly better than the worst listed bin are always *fully*
  listed, which is what makes the error bound hold.

``to_pages`` / ``from_pages`` serialize the structure into exactly two
4 KiB pages, the representation embedded directly into the RAID-agnostic
TopAA metafile (paper section 3.4).
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from ..common.constants import HBPS_BIN_WIDTH, HBPS_LIST_CAPACITY
from ..common.errors import CacheError, SerializationError

__all__ = ["HBPS", "PAGE_SIZE"]

#: Size of one HBPS page; matches the WAFL buffer-cache page / block size.
PAGE_SIZE = 4096

_MAGIC = 0x48425053  # "HBPS"
_VERSION = 1
_UNLISTED = 0xFFFFFFFF
_HEADER = struct.Struct("<IIIIII")  # magic, version, max_score, bin_width, nbins, list_len
_BIN_ENTRY = struct.Struct("<II")  # count, index (into list page)


class HBPS:
    """Histogram-based partial sort over integer-scored items.

    Parameters
    ----------
    max_score:
        Best possible score (e.g. 32,768 free blocks for an empty
        RAID-agnostic AA).  Scores must lie in ``[0, max_score]``.
    bin_width:
        Width of each histogram bin in score units (paper: 1K).
    list_capacity:
        Maximum number of items held in the list page (paper: 1,000).

    Notes
    -----
    Higher scores are better.  Bin 0 holds the best scores
    ``(max_score - bin_width, max_score]`` and the last bin holds score
    0 exactly, mirroring Figure 5's "31K-32K, 30K-31K, ..." layout.
    """

    __slots__ = (
        "max_score",
        "bin_width",
        "list_capacity",
        "nbins",
        "_counts",
        "_lists",
        "_pos",
        "_total",
        "pops",
        "updates",
        "evictions",
        "replenishes",
    )

    def __init__(
        self,
        max_score: int,
        *,
        bin_width: int = HBPS_BIN_WIDTH,
        list_capacity: int = HBPS_LIST_CAPACITY,
    ) -> None:
        if max_score <= 0:
            raise ValueError("max_score must be positive")
        if bin_width <= 0 or bin_width > max_score:
            raise ValueError("bin_width must be in [1, max_score]")
        if list_capacity <= 0:
            raise ValueError("list_capacity must be positive")
        self.max_score = int(max_score)
        self.bin_width = int(bin_width)
        self.list_capacity = int(list_capacity)
        # Bin 0 covers (max-w, max]; scores of exactly 0 land in an
        # extra final bin so a completely full AA is distinguishable.
        self.nbins = -(-self.max_score // self.bin_width) + 1
        self._counts = np.zeros(self.nbins, dtype=np.int64)
        self._lists: list[list[int]] = [[] for _ in range(self.nbins)]
        self._pos: dict[int, int] = {}  # listed item -> its bin
        self._total = 0
        # Operation counters for the CPU-overhead evaluation (§4.1.2).
        self.pops = 0
        self.updates = 0
        self.evictions = 0
        self.replenishes = 0

    # ------------------------------------------------------------------
    # Score/bin mapping
    # ------------------------------------------------------------------
    def bin_of(self, score: int) -> int:
        """Histogram bin index for ``score`` (0 = best bin)."""
        if not 0 <= score <= self.max_score:
            raise CacheError(f"score {score} outside [0, {self.max_score}]")
        if score == 0:
            return self.nbins - 1
        return (self.max_score - score) // self.bin_width

    def bin_bounds(self, bin_idx: int) -> tuple[int, int]:
        """Inclusive score bounds ``(lo, hi)`` covered by ``bin_idx``."""
        if not 0 <= bin_idx < self.nbins:
            raise CacheError(f"bin {bin_idx} outside [0, {self.nbins})")
        if bin_idx == self.nbins - 1:
            return (0, 0)  # a completely full AA
        hi = self.max_score - bin_idx * self.bin_width
        lo = max(hi - self.bin_width + 1, 1)
        return lo, hi

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        """Number of items currently tracked (listed or not)."""
        return self._total

    @property
    def listed_count(self) -> int:
        """Number of items currently present in the list page."""
        return len(self._pos)

    @property
    def counts(self) -> np.ndarray:
        """Read-only per-bin item counts (the histogram page)."""
        v = self._counts.view()
        v.flags.writeable = False
        return v

    @property
    def needs_replenish(self) -> bool:
        """True when items remain but none are listed (paper: the rare
        case where the allocator consumed more AAs than frees inserted,
        requiring a background bitmap walk to refill the list)."""
        return self._total > 0 and not self._pos

    @property
    def memory_bytes(self) -> int:
        """Modeled memory footprint: exactly two 4 KiB pages."""
        return 2 * PAGE_SIZE

    def is_listed(self, item: int) -> bool:
        """Whether ``item`` currently occupies a list-page slot."""
        return item in self._pos

    def __len__(self) -> int:
        return self._total

    def __contains__(self, item: int) -> bool:
        # Only listed items are individually identifiable; unlisted items
        # exist solely as histogram counts, as in the real structure.
        return item in self._pos

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def insert(self, item: int, score: int) -> None:
        """Begin tracking ``item`` with ``score``."""
        if item in self._pos:
            raise CacheError(f"item {item} already listed; update() it instead")
        b = self.bin_of(score)
        self._counts[b] += 1
        self._total += 1
        self._maybe_list(item, b)

    def update(self, item: int, old_score: int, new_score: int) -> None:
        """Move ``item`` from ``old_score`` to ``new_score``.

        The caller (the score keeper, which owns authoritative scores
        derived from the bitmap) supplies both scores; the histogram
        move is constant-time, exactly as in the paper.
        """
        self.updates += 1
        ob = self.bin_of(old_score)
        nb = self.bin_of(new_score)
        if self._counts[ob] <= 0:
            raise CacheError(f"histogram underflow in bin {ob} updating item {item}")
        if ob == nb:
            return
        self._counts[ob] -= 1
        self._counts[nb] += 1
        if item in self._pos:
            self._unlist(item)
        self._maybe_list(item, nb)

    def remove(self, item: int, score: int) -> None:
        """Stop tracking ``item`` (e.g. its AA left this VBN range)."""
        b = self.bin_of(score)
        if self._counts[b] <= 0:
            raise CacheError(f"histogram underflow removing item {item} from bin {b}")
        self._counts[b] -= 1
        self._total -= 1
        if item in self._pos:
            self._unlist(item)

    def peek_best(self) -> tuple[int, int] | None:
        """Best listed ``(item, bin_index)`` without removing it."""
        for b, lst in enumerate(self._lists):
            if lst:
                return lst[-1], b
        return None

    def pop_best(self) -> tuple[int, int] | None:
        """Remove and return the best listed ``(item, bin_index)``.

        Returns ``None`` when no item is listed; check
        :attr:`needs_replenish` to distinguish "empty" from "list ran
        dry".  The returned item's true score lies within the popped
        bin's bounds, i.e. within one bin width of the tracked maximum.
        """
        best = self.peek_best()
        if best is None:
            return None
        item, b = best
        self._lists[b].pop()
        del self._pos[item]
        self._counts[b] -= 1
        self._total -= 1
        self.pops += 1
        return item, b

    def rebuild(self, pairs: Iterable[tuple[int, int]]) -> None:
        """Reset and rebuild from ``(item, score)`` pairs.

        This is the *replenish* operation: in WAFL, a background scan
        walks the bitmap metafiles, recomputes every AA score, and
        refills the histogram and list (paper section 3.3.2).  Bins are
        filled best-first until the list page reaches capacity.
        """
        self._counts[:] = 0
        self._lists = [[] for _ in range(self.nbins)]
        self._pos.clear()
        self._total = 0
        self.replenishes += 1
        staged: list[list[int]] = [[] for _ in range(self.nbins)]
        for item, score in pairs:
            b = self.bin_of(score)
            self._counts[b] += 1
            self._total += 1
            staged[b].append(item)
        room = self.list_capacity
        for b in range(self.nbins):
            if room <= 0:
                break
            take = staged[b][:room]
            self._lists[b] = take
            for it in take:
                self._pos[it] = b
            room -= len(take)

    def iter_listed(self) -> Iterator[tuple[int, int]]:
        """Yield ``(item, bin_index)`` for every listed item, best bin
        first (list-page order)."""
        for b, lst in enumerate(self._lists):
            for item in lst:
                yield item, b

    # ------------------------------------------------------------------
    # Listing policy
    # ------------------------------------------------------------------
    def _worst_listed_bin(self) -> int | None:
        for b in range(self.nbins - 1, -1, -1):
            if self._lists[b]:
                return b
        return None

    def _maybe_list(self, item: int, b: int) -> None:
        """List ``item`` (bin ``b``) if doing so preserves the invariant
        that every bin strictly better than the worst listed bin is
        fully listed — the property behind the 3.125% error margin."""
        worst = self._worst_listed_bin()
        # "Everything else is listed and there is room" — the only case
        # where listing an item from a bin worse than the current worst
        # cannot break the full-listing invariant.
        everything_listed = (
            self.listed_count == self._total - 1
            and self.listed_count < self.list_capacity
        )
        if worst is None:
            qualifies = everything_listed
        else:
            qualifies = b <= worst or everything_listed
        if not qualifies:
            return
        self._lists[b].append(item)
        self._pos[item] = b
        if self.listed_count > self.list_capacity:
            self._evict_one()

    def _evict_one(self) -> None:
        worst = self._worst_listed_bin()
        assert worst is not None
        victim = self._lists[worst].pop()
        del self._pos[victim]
        self.evictions += 1

    def _unlist(self, item: int) -> None:
        b = self._pos.pop(item)
        lst = self._lists[b]
        # Swap-remove for O(1): order within a bin is insignificant
        # ("the benefit provided by sorting AAs within a range was found
        # to be negligible", paper section 3.3.2).
        idx = lst.index(item)
        lst[idx] = lst[-1]
        lst.pop()

    # ------------------------------------------------------------------
    # Invariants (exercised by property-based tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`CacheError` if any structural invariant fails."""
        if int(self._counts.sum()) != self._total:
            raise CacheError("histogram counts do not sum to total")
        if np.any(self._counts < 0):
            raise CacheError("negative histogram count")
        if self.listed_count > self.list_capacity:
            raise CacheError("list page over capacity")
        listed_per_bin = [len(lst) for lst in self._lists]
        if sum(listed_per_bin) != self.listed_count:
            raise CacheError("position map does not match bin lists")
        worst = self._worst_listed_bin()
        if worst is not None:
            for b in range(worst):
                if listed_per_bin[b] != self._counts[b]:
                    raise CacheError(
                        f"bin {b} (better than worst listed bin {worst}) is not fully "
                        f"listed: {listed_per_bin[b]} of {self._counts[b]}"
                    )
        for b, lst in enumerate(self._lists):
            if len(lst) > self._counts[b]:
                raise CacheError(f"bin {b} lists more items than it counts")
            for item in lst:
                if self._pos.get(item) != b:
                    raise CacheError(f"item {item} listed in bin {b} but mapped elsewhere")

    # ------------------------------------------------------------------
    # Two-page serialization (embedded into the TopAA metafile)
    # ------------------------------------------------------------------
    def to_pages(self) -> bytes:
        """Serialize into exactly two 4 KiB pages.

        Page 0 is the histogram (per-bin count and list index); page 1
        is the list page (item ids grouped by bin, Figure 5's layout).
        Only item ids are persisted — exact scores are recovered lazily
        by the background rebuild after mount, so a freshly loaded
        structure reports bin-resolution scores, as the real metafile
        does.
        """
        if self.nbins * _BIN_ENTRY.size + _HEADER.size > PAGE_SIZE:
            raise SerializationError("histogram does not fit in one page")
        if self.list_capacity * 4 > PAGE_SIZE:
            raise SerializationError("list page does not fit in one page")
        page0 = bytearray(PAGE_SIZE)
        _HEADER.pack_into(
            page0, 0, _MAGIC, _VERSION, self.max_score, self.bin_width, self.nbins,
            self.listed_count,
        )
        items: list[int] = []
        off = _HEADER.size
        for b in range(self.nbins):
            if self._lists[b]:
                index = len(items)
                items.extend(self._lists[b])
            else:
                index = _UNLISTED
            _BIN_ENTRY.pack_into(page0, off, int(self._counts[b]), index)
            off += _BIN_ENTRY.size
        page1 = bytearray(PAGE_SIZE)
        arr = np.asarray(items, dtype=np.uint32)
        page1[: arr.nbytes] = arr.tobytes()
        return bytes(page0) + bytes(page1)

    @classmethod
    def from_pages(
        cls,
        pages: bytes,
        *,
        list_capacity: int = HBPS_LIST_CAPACITY,
    ) -> "HBPS":
        """Reconstruct an HBPS from :meth:`to_pages` output.

        Loaded items are assigned their bin's upper-bound score at the
        owning cache layer; within this structure only bins matter.
        """
        if len(pages) != 2 * PAGE_SIZE:
            raise SerializationError(f"expected {2 * PAGE_SIZE} bytes, got {len(pages)}")
        magic, version, max_score, bin_width, nbins, list_len = _HEADER.unpack_from(pages, 0)
        if magic != _MAGIC:
            raise SerializationError("bad HBPS magic")
        if version != _VERSION:
            raise SerializationError(f"unsupported HBPS version {version}")
        out = cls(max_score, bin_width=bin_width, list_capacity=list_capacity)
        if nbins != out.nbins:
            raise SerializationError("inconsistent bin count in header")
        items = np.frombuffer(pages, dtype=np.uint32, count=list_len, offset=PAGE_SIZE)
        off = _HEADER.size
        total = 0
        for b in range(nbins):
            count, index = _BIN_ENTRY.unpack_from(pages, off)
            off += _BIN_ENTRY.size
            out._counts[b] = count
            total += count
            if index != _UNLISTED:
                # Find this bin's extent: entries run until the next
                # listed bin's index (bins are laid out in order).
                noff = off
                end = list_len
                for nb in range(b + 1, nbins):
                    _, nindex = _BIN_ENTRY.unpack_from(pages, noff)
                    noff += _BIN_ENTRY.size
                    if nindex != _UNLISTED:
                        end = nindex
                        break
                bin_items = [int(i) for i in items[index:end]]
                out._lists[b] = bin_items
                for it in bin_items:
                    out._pos[it] = b
        out._total = total
        out.check_invariants()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HBPS(max_score={self.max_score}, bins={self.nbins}, "
            f"total={self._total}, listed={self.listed_count})"
        )
