"""Allocation-area sizing policies (paper section 3.2, Figure 4).

The effective AA size balances two forces: smaller AAs differentiate
free space at a finer granularity, while larger AAs reduce tracking
overhead — and, critically, must respect media geometry:

* **HDD RAID groups** — 4k stripes ("historically, experiments showed
  that an AA size of 4k stripes works well", section 3.2.1).
* **RAID-agnostic spaces** — 32k consecutive VBNs, matching one bitmap
  metafile block so filling an AA updates a single metafile block
  (section 3.2.1).
* **SSD RAID groups** — several erase blocks per device, so that
  writing all free blocks of the emptiest AA rewrites whole erase
  blocks and minimizes FTL relocation / write amplification
  (section 3.2.2, Figure 4B).
* **SMR RAID groups** — much larger than the shingle zone, and
  optionally aligned to a multiple of the AZCS checksum region (63 data
  + 1 checksum blocks) so checksum blocks are written sequentially with
  their data (sections 3.2.3-3.2.4, Figure 4C).

Sizes returned here are in *stripes per AA* for RAID topologies (the
per-device contiguous extent) and *blocks per AA* for linear
topologies.  Each helper also guarantees the size divides the space so
:class:`~repro.core.aa.StripeAATopology` /
:class:`~repro.core.aa.LinearAATopology` accept it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.constants import (
    AZCS_DATA_BLOCKS,
    DEFAULT_ERASE_BLOCK_BLOCKS,
    DEFAULT_RAID_AA_STRIPES,
    DEFAULT_SMR_ZONE_BLOCKS,
    RAID_AGNOSTIC_AA_BLOCKS,
)
from ..common.errors import GeometryError
from ..raid.geometry import RAIDGeometry

__all__ = [
    "AASize",
    "fit_aa_size",
    "aa_size_for_hdd",
    "aa_size_for_ssd",
    "aa_size_for_smr",
    "aa_size_raid_agnostic",
]


@dataclass(frozen=True)
class AASize:
    """A chosen AA size with provenance for logs and benchmark output."""

    #: Stripes per AA (RAID topologies) or blocks per AA (linear).
    size: int
    #: Which policy produced it ("hdd", "ssd", "smr", "raid-agnostic").
    policy: str
    #: Human-readable rationale.
    rationale: str

    def __int__(self) -> int:
        return self.size


def fit_aa_size(total: int, target: int, align: int = 8) -> int:
    """Largest multiple of ``align`` that divides ``total`` and does not
    exceed ``target`` (falling back to the smallest valid divisor when
    ``target`` is below every aligned divisor).

    AA topologies require the AA size to divide the space; real WAFL
    instead leaves a runt AA at the end, a detail that changes nothing
    for the paper's experiments, so we keep divisibility exact.
    """
    if total <= 0 or align <= 0 or total % align:
        raise GeometryError(f"total {total} must be a positive multiple of align {align}")
    target = max(min(target, total), align)
    best = None
    for cand in range(target - target % align, 0, -align):
        if total % cand == 0:
            best = cand
            break
    if best is None:
        # No aligned divisor <= target; take the smallest aligned divisor.
        cand = align
        while total % cand:
            cand += align
        best = cand
    return best


def aa_size_for_hdd(
    geometry: RAIDGeometry, target_stripes: int = DEFAULT_RAID_AA_STRIPES
) -> AASize:
    """Default HDD sizing: 4k stripes per AA (paper section 3.2.1)."""
    size = fit_aa_size(geometry.stripes, target_stripes)
    return AASize(size, "hdd", f"{size} stripes per AA (default HDD sizing)")


def aa_size_for_ssd(
    geometry: RAIDGeometry,
    erase_block_blocks: int = DEFAULT_ERASE_BLOCK_BLOCKS,
    min_erase_blocks: int = 4,
) -> AASize:
    """SSD sizing: at least ``min_erase_blocks`` erase blocks per device
    per AA, aligned to the erase-block size (paper section 3.2.2:
    "we therefore choose an AA size for SSD RAID groups that is several
    erase blocks")."""
    if erase_block_blocks <= 0 or erase_block_blocks % 8:
        raise GeometryError("erase_block_blocks must be a positive multiple of 8")
    want = erase_block_blocks * max(min_erase_blocks, 1)
    size = fit_aa_size(geometry.stripes, want, align=erase_block_blocks)
    return AASize(
        size,
        "ssd",
        f"{size} stripes per AA = {size // erase_block_blocks} erase blocks of "
        f"{erase_block_blocks} blocks per device",
    )


def aa_size_for_smr(
    geometry: RAIDGeometry,
    zone_blocks: int = DEFAULT_SMR_ZONE_BLOCKS,
    *,
    azcs: bool = True,
    min_zones: int = 2,
    azcs_data_blocks: int = AZCS_DATA_BLOCKS,
) -> AASize:
    """SMR sizing: much larger than the shingle zone, optionally aligned
    to the AZCS region size (paper sections 3.2.3-3.2.4, Figure 4C).

    The AZCS alignment unit is the *data* payload of one checksum
    region — 63 blocks sharing the 64th as checksum.  Checksum blocks
    live outside the VBN space (the device LBA layout interleaves
    them; see :func:`repro.fs.azcs.azcs_expand`), so an AZCS-aligned AA
    is a multiple of 63 VBNs per device.  The classic 4k-stripe AA is
    *not* a multiple of 63, which is exactly the Figure 4A misalignment
    that forces random checksum-block rewrites when switching AAs.
    """
    if zone_blocks <= 0 or zone_blocks % 8:
        raise GeometryError("zone_blocks must be a positive multiple of 8")
    # Topologies require AA sizes that are multiples of 8; combine with
    # the AZCS data-payload alignment.
    align = _lcm(azcs_data_blocks, 8) if azcs else 8
    want = zone_blocks * max(min_zones, 1)
    # Round the target up to the alignment so AZCS regions never
    # straddle an AA boundary (the Figure 4C requirement).
    want = -(-want // align) * align
    size = fit_aa_size(geometry.stripes, want, align=align)
    zones = size / zone_blocks
    note = f"{size} stripes per AA (~{zones:.1f} shingle zones)"
    if azcs:
        note += f", aligned to {azcs_data_blocks}-data-block AZCS regions"
    return AASize(size, "smr", note)


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b)


def aa_size_raid_agnostic(
    nblocks: int, target_blocks: int = RAID_AGNOSTIC_AA_BLOCKS
) -> AASize:
    """RAID-agnostic sizing: 32k consecutive VBNs, matching the bitmap
    metafile block alignment (paper section 3.2.1)."""
    size = fit_aa_size(nblocks, target_blocks)
    return AASize(
        size,
        "raid-agnostic",
        f"{size} VBNs per AA (bitmap-metafile-block aligned)",
    )
