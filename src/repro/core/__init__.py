"""Core contribution: allocation areas, AA caches, HBPS, TopAA, and the
write allocator (paper section 3)."""

from .aa import AATopology, LinearAATopology, StripeAATopology
from .allocator import AggregateAllocator, LinearAllocator, RAIDGroupAllocator
from .cache import AACache, CacheSource, make_aa_cache
from .delayed_frees import DelayedFreeLog
from .hbps import HBPS
from .hbps_cache import RAIDAgnosticAACache
from .heap_cache import RAIDAwareAACache
from .policies import (
    AASource,
    BitmapWalkSource,
    LinearScanSource,
    RandomSource,
)
from .score import ScoreChange, ScoreKeeper
from .sizing import (
    AASize,
    aa_size_for_hdd,
    aa_size_for_smr,
    aa_size_for_ssd,
    aa_size_raid_agnostic,
    fit_aa_size,
)
from .topaa import (
    PAGE_KIND_HBPS,
    PAGE_KIND_HEAP_SEED,
    TOPAA_HEADER_BYTES,
    deserialize_heap_seed,
    seal_page,
    unseal_page,
    load_hbps_cache,
    seed_heap_cache,
    serialize_heap_seed,
    serialize_hbps_cache,
)

__all__ = [
    "AATopology",
    "LinearAATopology",
    "StripeAATopology",
    "AggregateAllocator",
    "LinearAllocator",
    "RAIDGroupAllocator",
    "DelayedFreeLog",
    "HBPS",
    "RAIDAgnosticAACache",
    "RAIDAwareAACache",
    "AACache",
    "CacheSource",
    "make_aa_cache",
    "AASource",
    "BitmapWalkSource",
    "LinearScanSource",
    "RandomSource",
    "ScoreChange",
    "ScoreKeeper",
    "AASize",
    "aa_size_for_hdd",
    "aa_size_for_smr",
    "aa_size_for_ssd",
    "aa_size_raid_agnostic",
    "fit_aa_size",
    "PAGE_KIND_HBPS",
    "PAGE_KIND_HEAP_SEED",
    "TOPAA_HEADER_BYTES",
    "deserialize_heap_seed",
    "seal_page",
    "unseal_page",
    "load_hbps_cache",
    "seed_heap_cache",
    "serialize_heap_seed",
    "serialize_hbps_cache",
]
