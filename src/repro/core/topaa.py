"""The TopAA metafile: persisting AA caches across reboot/failover.

"Rebuilding AA caches requires a linear walk of the bitmap metafiles
... this may take multiple seconds.  Instead, each WAFL file system
instance stores the AA cache structure in a TopAA metafile." (paper
section 3.4)

Two on-disk layouts, both reproduced here byte-for-byte in spirit:

* **RAID-aware** — one 4 KiB block holding the 512 best AAs and their
  scores (512 entries x 8 bytes = 4,096 bytes exactly).  This seeds the
  max-heap with high-quality AAs; client load "can be sustained for
  dozens of seconds using the seeded AAs while the max-heap is fully
  populated in the background".
* **RAID-agnostic** — two 4 KiB blocks into which the HBPS structure is
  embedded directly (see :meth:`repro.core.hbps.HBPS.to_pages`), kept
  pinned in the buffer cache, so "very little I/O and CPU is necessary
  to get the AA cache structure ready" after mount.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..common.constants import BLOCK_SIZE, TOPAA_RAID_AWARE_ENTRIES
from ..common.errors import SerializationError
from .heap_cache import RAIDAwareAACache
from .hbps_cache import RAIDAgnosticAACache

__all__ = [
    "serialize_heap_seed",
    "deserialize_heap_seed",
    "seed_heap_cache",
    "serialize_hbps_cache",
    "load_hbps_cache",
    "seal_page",
    "unseal_page",
    "TOPAA_HEADER_BYTES",
    "PAGE_KIND_HEAP_SEED",
    "PAGE_KIND_HBPS",
    "PAGE_KIND_BITMAP",
    "PAGE_KIND_FS_IMAGE",
]

_SENTINEL = np.uint32(0xFFFFFFFF)

# ----------------------------------------------------------------------
# Sealed-page envelope: every persisted TopAA page carries a checksum
# header so a corrupt, truncated, or stale page is detected at mount
# instead of seeding garbage caches.  This models WAFL's per-block
# checksums (the BCS trailer / AZCS checksum blocks of section 3.2.4)
# applied to the TopAA metafile: the header rides in the block's
# checksum area, so the *modeled* read cost stays one 4 KiB block per
# RAID group and two per FlexVol.
# ----------------------------------------------------------------------

_PAGE_MAGIC = 0x41416F54  # "ToAA"
_PAGE_VERSION = 1
#: magic u32 | version u16 | kind u16 | num_aas u32 | payload_len u32 | crc32 u32
_PAGE_HEADER = struct.Struct("<IHHIII")
TOPAA_HEADER_BYTES = _PAGE_HEADER.size

PAGE_KIND_HEAP_SEED = 1
PAGE_KIND_HBPS = 2
#: Persisted bitmap-metafile image (crash-consistency subsystem).
PAGE_KIND_BITMAP = 3
#: Persisted per-FS metadata image: bitmap + FlexVol maps + logs.
PAGE_KIND_FS_IMAGE = 4


def seal_page(payload: bytes, kind: int, num_aas: int) -> bytes:
    """Wrap a serialized TopAA payload with its checksum header.

    ``num_aas`` records the topology the page was exported for, so a
    page persisted before a grow/shrink (or for a different file
    system) is detected as stale rather than silently seeding a cache
    of the wrong shape.
    """
    header = _PAGE_HEADER.pack(
        _PAGE_MAGIC, _PAGE_VERSION, kind, num_aas, len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def unseal_page(blob: bytes, kind: int, num_aas: int) -> bytes:
    """Verify and strip a sealed page's header, returning the payload.

    Raises :class:`SerializationError` whose message names the failure
    (``truncated``, ``bad-magic``, ``bad-version``, ``wrong-kind``,
    ``stale``, or ``bad-crc``) — the mount path uses these to decide a
    per-filesystem fallback to the bitmap walk.
    """
    if len(blob) < TOPAA_HEADER_BYTES:
        raise SerializationError("TopAA page truncated: header incomplete")
    magic, version, pkind, page_aas, payload_len, crc = _PAGE_HEADER.unpack_from(blob, 0)
    if magic != _PAGE_MAGIC:
        raise SerializationError("TopAA page bad-magic")
    if version != _PAGE_VERSION:
        raise SerializationError(f"TopAA page bad-version {version}")
    if pkind != kind:
        raise SerializationError(
            f"TopAA page wrong-kind: expected {kind}, found {pkind}"
        )
    payload = blob[TOPAA_HEADER_BYTES:]
    if len(payload) != payload_len:
        raise SerializationError(
            f"TopAA page truncated: {len(payload)} of {payload_len} payload bytes"
        )
    if zlib.crc32(payload) != crc:
        raise SerializationError("TopAA page bad-crc")
    if page_aas != num_aas:
        raise SerializationError(
            f"TopAA page stale: exported for {page_aas} AAs, file system has {num_aas}"
        )
    return payload


def serialize_heap_seed(
    scores: np.ndarray, max_entries: int = TOPAA_RAID_AWARE_ENTRIES
) -> bytes:
    """Serialize the ``max_entries`` best AAs into one 4 KiB block.

    ``scores`` is the authoritative per-AA score array of one RAID
    group.  Entries are ``(aa: u32, score: u32)`` pairs, best first;
    unused slots carry a sentinel AA id.
    """
    if max_entries * 8 > BLOCK_SIZE:
        raise SerializationError(
            f"{max_entries} entries x 8 bytes exceed one {BLOCK_SIZE}-byte block"
        )
    scores = np.asarray(scores)
    n = min(max_entries, scores.size)
    if n < scores.size:
        # argpartition: top-n without a full sort, then order best-first.
        top = np.argpartition(scores, -n)[-n:]
    else:
        top = np.arange(scores.size)
    top = top[np.argsort(scores[top])[::-1]]
    # Pad the whole block with sentinel pairs so short seeds (fewer
    # entries than capacity) terminate cleanly on deserialization.
    block = np.full(BLOCK_SIZE // 4, _SENTINEL, dtype=np.uint32)
    block[0 : 2 * n : 2] = top.astype(np.uint32)
    block[1 : 2 * n : 2] = scores[top].astype(np.uint32)
    return block.tobytes()


def deserialize_heap_seed(block: bytes) -> list[tuple[int, int]]:
    """Decode :func:`serialize_heap_seed` output into ``(aa, score)``
    pairs, best first."""
    if len(block) != BLOCK_SIZE:
        raise SerializationError(f"TopAA block must be {BLOCK_SIZE} bytes, got {len(block)}")
    arr = np.frombuffer(block, dtype=np.uint32)
    pairs: list[tuple[int, int]] = []
    for i in range(0, arr.size, 2):
        if arr[i] == _SENTINEL:
            break
        pairs.append((int(arr[i]), int(arr[i + 1])))
    return pairs


def seed_heap_cache(num_aas: int, block: bytes) -> RAIDAwareAACache:
    """Build a seeded (partially populated) RAID-aware cache from a
    TopAA block.  The caller is responsible for populating the
    remaining AAs in the background (see :mod:`repro.fs.mount`)."""
    cache = RAIDAwareAACache(num_aas)
    cache.seeded = True
    for aa, score in deserialize_heap_seed(block):
        if aa < num_aas:
            cache.populate(aa, score)
    return cache


def serialize_hbps_cache(cache: RAIDAgnosticAACache) -> bytes:
    """Persist a RAID-agnostic cache as its two TopAA blocks."""
    return cache.to_pages()


def load_hbps_cache(pages: bytes, num_aas: int) -> RAIDAgnosticAACache:
    """Reload a RAID-agnostic cache from its two TopAA blocks.

    The result is *seeded*: listed AAs are usable immediately at bin
    resolution; a background replenish restores exact state.
    """
    return RAIDAgnosticAACache.from_pages(pages, num_aas)
