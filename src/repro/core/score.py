"""AA score tracking with CP-batched updates.

"The free space of an AA is quantified by its *AA score*: it is the
number of free blocks in the AA ... The AA score decreases when the
write allocator allocates VBNs from that AA, and it increases when VBNs
from that AA are freed.  AA score updates resulting from frees
(increments) and allocations (decrements) are delayed and performed
efficiently in batched fashion at the CP boundary." (paper section 3.3)

:class:`ScoreKeeper` owns the authoritative score array for one AA
topology, accumulates deltas during a CP, and on :meth:`flush` returns
the ``(aa, old_score, new_score)`` transitions that the AA caches (the
max-heap or the HBPS) consume to rebalance themselves.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import CacheError
from ..bitmap.bitmap import Bitmap
from .aa import AATopology

__all__ = ["ScoreKeeper", "ScoreChange"]

#: A flushed score transition: (aa, old_score, new_score).
ScoreChange = tuple[int, int, int]


class ScoreKeeper:
    """Per-AA free-block scores with delayed (CP-batched) application.

    Parameters
    ----------
    topology:
        The AA topology whose areas are scored.
    bitmap:
        When given, initial scores are computed from it (one vectorized
        pass); otherwise every AA starts empty (score == capacity).
    """

    __slots__ = ("topology", "_scores", "_pending", "flushes", "deltas_applied")

    def __init__(self, topology: AATopology, bitmap: Bitmap | None = None) -> None:
        self.topology = topology
        if bitmap is None:
            self._scores = np.full(topology.num_aas, topology.aa_blocks, dtype=np.int64)
        else:
            self._scores = topology.scores_from_bitmap(bitmap).astype(np.int64)
        # Pending (unflushed) per-AA deltas.  A flat int64 array so both
        # accumulation (bincount add) and flush (flatnonzero) vectorize;
        # the number of AAs is small relative to the VBN space.
        self._pending = np.zeros(topology.num_aas, dtype=np.int64)
        #: Number of CP flushes performed (metric).
        self.flushes = 0
        #: Total per-AA delta records applied across all flushes (metric).
        self.deltas_applied = 0

    # ------------------------------------------------------------------
    @property
    def scores(self) -> np.ndarray:
        """Read-only view of the applied (post-flush) scores."""
        v = self._scores.view()
        v.flags.writeable = False
        return v

    def score(self, aa: int) -> int:
        """Applied score of one AA (pending deltas not included)."""
        return int(self._scores[aa])

    def effective_score(self, aa: int) -> int:
        """Score including pending (unflushed) deltas."""
        return int(self._scores[aa] + self._pending[aa])

    @property
    def pending_aa_count(self) -> int:
        """AAs with unflushed (nonzero) deltas."""
        return int(np.count_nonzero(self._pending))

    def has_pending(self, aa: int) -> bool:
        """Whether AA ``aa`` has an unflushed (nonzero) delta."""
        return bool(self._pending[aa] != 0)

    # ------------------------------------------------------------------
    # Delta accumulation (called during a CP)
    # ------------------------------------------------------------------
    def note_alloc(self, vbns: np.ndarray) -> None:
        """Record allocations: scores of the owning AAs will decrease."""
        self._note(vbns, sign=-1)

    def note_free(self, vbns: np.ndarray) -> None:
        """Record frees: scores of the owning AAs will increase."""
        self._note(vbns, sign=+1)

    def note_alloc_aa(self, aa: int, count: int) -> None:
        """Record ``count`` allocations within AA ``aa`` directly."""
        self._pending[aa] -= int(count)

    def note_free_aa(self, aa: int, count: int) -> None:
        """Record ``count`` frees within AA ``aa`` directly."""
        self._pending[aa] += int(count)

    def _note(self, vbns: np.ndarray, *, sign: int) -> None:
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        counts = np.bincount(self.topology.aa_of_vbn(vbns), minlength=self._pending.size)
        if sign > 0:
            self._pending += counts
        else:
            self._pending -= counts

    # ------------------------------------------------------------------
    # CP boundary
    # ------------------------------------------------------------------
    def flush(self) -> list[ScoreChange]:
        """Apply pending deltas; return ``(aa, old, new)`` transitions.

        Raises :class:`CacheError` if a delta would push a score outside
        ``[0, aa_blocks]`` — that means allocation and bitmap state have
        diverged, which the paper's WAFL would treat as metadata
        corruption (section 3.4 discusses its repair).
        """
        self.flushes += 1
        changed = np.flatnonzero(self._pending)
        if changed.size == 0:
            return []
        cap = self.topology.aa_blocks
        old = self._scores[changed]
        new = old + self._pending[changed]
        bad = np.flatnonzero((new < 0) | (new > cap))
        if bad.size:
            aa = int(changed[bad[0]])
            raise CacheError(
                f"AA {aa} score {int(self._scores[aa])} + delta "
                f"{int(self._pending[aa])} leaves [0, {cap}]"
            )
        self._scores[changed] = new
        self._pending[changed] = 0
        self.deltas_applied += int(changed.size)
        return list(zip(changed.tolist(), old.tolist(), new.tolist()))

    def recompute(self, bitmap: Bitmap) -> None:
        """Recompute every score from the bitmap (consistency check /
        rebuild path).  Pending deltas are discarded."""
        self._scores = self.topology.scores_from_bitmap(bitmap).astype(np.int64)
        self._pending[:] = 0

    def verify_against(self, bitmap: Bitmap) -> None:
        """Assert applied scores match the bitmap exactly (test hook)."""
        truth = self.topology.scores_from_bitmap(bitmap)
        if not np.array_equal(truth, self._scores):
            bad = np.flatnonzero(truth != self._scores)
            raise CacheError(
                f"score divergence in AAs {bad[:8].tolist()}: "
                f"scores={self._scores[bad[:8]].tolist()} bitmap={truth[bad[:8]].tolist()}"
            )
