"""NumPy-backed block allocation bitmap.

WAFL stores free-space information in flat *bitmap metafiles* indexed by
VBN: the i-th bit tracks the state of the i-th block (paper section
2.5).  :class:`Bitmap` is the in-memory representation of one such
bitmap: bit set = block allocated (in use), bit clear = block free.

The implementation keeps the bitmap as a contiguous ``uint8`` array and
vectorizes every operation with NumPy so that the simulator can sustain
hundreds of thousands of allocations per second in pure Python:

* population counts use :func:`numpy.bitwise_count` (a single pass over
  contiguous memory, per the HPC guide's "vectorize and stay
  contiguous" advice);
* batch bit updates build a packed span mask with :func:`numpy.packbits`
  and OR/AND it over the covered byte range in one vector pass (dense
  path), falling back to ``np.bitwise_or.at`` / ``np.bitwise_and.at``
  scatters only for batches too sparse for a span pass to pay off;
* free-block searches unpack only the byte range of a single allocation
  area, never the whole bitmap.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import BitmapError, SerializationError

__all__ = ["Bitmap"]

_BIT_MASKS = (np.uint8(1) << np.arange(8, dtype=np.uint8)).astype(np.uint8)

#: Density cutoff for the packed-span fast path: use it while the byte
#: span covering a batch is at most this many bytes per batch element.
_DENSE_SPAN_BYTES_PER_BIT = 8


class Bitmap:
    """Allocation bitmap over a VBN space of ``nblocks`` blocks.

    Parameters
    ----------
    nblocks:
        Size of the VBN space.  Must be a positive multiple of 8 so the
        bitmap occupies whole bytes (every real AA/metafile geometry
        satisfies this).
    check:
        When True (default), :meth:`allocate` rejects already-set bits
        and :meth:`free` rejects already-clear bits, catching
        double-allocation bugs at the point of corruption.  Benchmarks
        may disable checking for speed once correctness is established.
    """

    __slots__ = ("nblocks", "_bytes", "_allocated", "check")

    def __init__(self, nblocks: int, *, check: bool = True) -> None:
        if nblocks <= 0 or nblocks % 8:
            raise ValueError(f"nblocks must be a positive multiple of 8, got {nblocks}")
        self.nblocks = int(nblocks)
        self._bytes = np.zeros(self.nblocks // 8, dtype=np.uint8)
        self._allocated = 0
        self.check = check

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def allocated_count(self) -> int:
        """Total number of allocated (set) bits."""
        return self._allocated

    @property
    def free_count(self) -> int:
        """Total number of free (clear) bits."""
        return self.nblocks - self._allocated

    def popcount(self) -> int:
        """Authoritative allocated-bit count, recomputed from the
        backing bytes (one vectorized pass).  The invariant auditor
        cross-checks this against the cached :attr:`allocated_count`."""
        return int(np.bitwise_count(self._bytes).sum(dtype=np.int64))

    @property
    def raw_bytes(self) -> np.ndarray:
        """Read-only view of the backing byte array (for persistence)."""
        v = self._bytes.view()
        v.flags.writeable = False
        return v

    def load_bytes(self, data: bytes | np.ndarray) -> None:
        """Replace the backing bytes with a persisted image.

        ``data`` must be exactly ``nblocks // 8`` bytes; the cached
        allocated count is recomputed from the new bytes (so the loaded
        image is authoritative, never the stale counter).  Raises
        :class:`SerializationError` on a length mismatch — the caller
        is holding an image for a different geometry.
        """
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        if arr.size != self._bytes.size:
            raise SerializationError(
                f"bitmap image is {arr.size} bytes, geometry needs {self._bytes.size}"
            )
        self._bytes[:] = arr
        self._allocated = self.popcount()

    def allocated_bits(self, start: int, stop: int) -> np.ndarray:
        """Unpacked allocation bits for the byte-aligned range
        ``[start, stop)``: a ``uint8`` array with 1 = allocated.

        Both bounds must be multiples of 8 (callers pass AA extents,
        which are always byte-aligned).  This is the bulk-scan primitive
        for stripe-major free-block searches.
        """
        if start % 8 or stop % 8:
            raise ValueError("allocated_bits requires byte-aligned bounds")
        self._validate_range(start, stop)
        return np.unpackbits(self._bytes[start >> 3 : stop >> 3], bitorder="little")

    def test(self, vbns: np.ndarray | int) -> np.ndarray:
        """Return a boolean array: True where the VBN is allocated."""
        vbns = np.atleast_1d(np.asarray(vbns, dtype=np.int64))
        self._validate(vbns)
        return (self._bytes[vbns >> 3] & _BIT_MASKS[vbns & 7]) != 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _span_mask(self, vbns: np.ndarray) -> tuple[int, int, np.ndarray] | None:
        """Dense-path helper: the byte span covering ``vbns`` and a
        packed bit mask for it, or ``None`` when the batch is too sparse.

        Allocator spans and CP free batches are clustered (an AA's worth
        of blocks, or one CP's random overwrites across a group), so a
        single packbits + whole-span OR/AND beats the per-element
        ``ufunc.at`` scatter by a wide margin.  Below one bit per
        ``_DENSE_SPAN_BYTES_PER_BIT`` span bytes the scatter wins.
        """
        lo = int(vbns.min())
        hi = int(vbns.max())
        b0 = lo >> 3
        b1 = (hi >> 3) + 1
        if (b1 - b0) > _DENSE_SPAN_BYTES_PER_BIT * vbns.size:
            return None
        bits = np.zeros((b1 - b0) << 3, dtype=np.uint8)
        bits[vbns - (b0 << 3)] = 1
        return b0, b1, np.packbits(bits, bitorder="little")

    def allocate(self, vbns: np.ndarray, *, trusted: bool = False) -> None:
        """Mark ``vbns`` allocated.

        ``vbns`` must contain no duplicates; with ``check`` enabled a
        :class:`BitmapError` is raised if any bit is already set.
        ``trusted`` batches (internal allocator chunks already known to
        be in-range ``int64`` arrays) skip the conversion and range
        validation; the double-allocation check still applies.
        """
        if not trusted:
            vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        if not trusted:
            self._validate(vbns)
        dense = self._span_mask(vbns)
        if dense is not None:
            b0, b1, mask = dense
            seg = self._bytes[b0:b1]
            if self.check and np.any(seg & mask):
                hit = np.unpackbits(seg & mask, bitorder="little")
                bad = np.flatnonzero(hit) + (b0 << 3)
                raise BitmapError(f"double allocation of VBN(s) {bad[:8].tolist()}")
            seg |= mask
        else:
            byte_idx = vbns >> 3
            masks = _BIT_MASKS[vbns & 7]
            if self.check and np.any(self._bytes[byte_idx] & masks):
                bad = vbns[(self._bytes[byte_idx] & masks) != 0]
                raise BitmapError(f"double allocation of VBN(s) {bad[:8].tolist()}")
            np.bitwise_or.at(self._bytes, byte_idx, masks)
        self._allocated += int(vbns.size)

    def free(self, vbns: np.ndarray, *, trusted: bool = False) -> None:
        """Mark ``vbns`` free.

        ``vbns`` must contain no duplicates; with ``check`` enabled a
        :class:`BitmapError` is raised if any bit is already clear.
        ``trusted`` has the same meaning as for :meth:`allocate`.
        """
        if not trusted:
            vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        if not trusted:
            self._validate(vbns)
        dense = self._span_mask(vbns)
        if dense is not None:
            b0, b1, mask = dense
            seg = self._bytes[b0:b1]
            if self.check and np.any(seg & mask != mask):
                hit = np.unpackbits(mask & ~seg, bitorder="little")
                bad = np.flatnonzero(hit) + (b0 << 3)
                raise BitmapError(f"double free of VBN(s) {bad[:8].tolist()}")
            seg &= ~mask
        else:
            byte_idx = vbns >> 3
            masks = _BIT_MASKS[vbns & 7]
            if self.check and np.any((self._bytes[byte_idx] & masks) == 0):
                bad = vbns[(self._bytes[byte_idx] & masks) == 0]
                raise BitmapError(f"double free of VBN(s) {bad[:8].tolist()}")
            np.bitwise_and.at(self._bytes, byte_idx, ~masks)
        self._allocated -= int(vbns.size)

    def set_range(self, start: int, stop: int) -> int:
        """Allocate every currently-free block in ``[start, stop)``.

        Returns the number of bits that transitioned to allocated.  Used
        by bulk fills (aging) where partial overlap with existing
        allocations is expected and permitted.
        """
        self._validate_range(start, stop)
        b0, b1 = self._byte_span(start, stop)
        before = int(np.bitwise_count(self._bytes[b0:b1]).sum(dtype=np.int64))
        self._apply_range_mask(start, stop, set_bits=True)
        after = int(np.bitwise_count(self._bytes[b0:b1]).sum(dtype=np.int64))
        self._allocated += after - before
        return after - before

    def clear_range(self, start: int, stop: int) -> int:
        """Free every currently-allocated block in ``[start, stop)``.

        Returns the number of bits that transitioned to free.
        """
        self._validate_range(start, stop)
        b0, b1 = self._byte_span(start, stop)
        before = int(np.bitwise_count(self._bytes[b0:b1]).sum(dtype=np.int64))
        self._apply_range_mask(start, stop, set_bits=False)
        after = int(np.bitwise_count(self._bytes[b0:b1]).sum(dtype=np.int64))
        self._allocated -= before - after
        return before - after

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count_range(self, start: int, stop: int) -> int:
        """Number of allocated blocks in ``[start, stop)``."""
        self._validate_range(start, stop)
        if start == stop:
            return 0
        full0 = -(-start // 8) * 8  # first byte-aligned bit >= start
        full1 = (stop // 8) * 8  # last byte-aligned bit <= stop
        if full0 >= full1:  # range inside a single byte (or spanning edge bits only)
            bits = self._unpack(start, stop)
            return int(bits.sum(dtype=np.int64))
        # full1 > full0 here: at least one whole byte lies in the range.
        total = int(
            np.bitwise_count(self._bytes[full0 // 8 : full1 // 8]).sum(dtype=np.int64)
        )
        if start < full0:
            total += int(self._unpack(start, full0).sum(dtype=np.int64))
        if stop > full1:
            total += int(self._unpack(full1, stop).sum(dtype=np.int64))
        return total

    def free_in_range(self, start: int, stop: int, limit: int | None = None) -> np.ndarray:
        """Ascending VBNs of free blocks in ``[start, stop)``.

        At most ``limit`` VBNs are returned when given.  This is the
        primitive the write allocator uses to assign "all free VBNs from
        the AA in sequential order" (paper section 3.1).

        On mostly-full ranges — the common case once an aggregate has
        aged — only the bytes with at least one clear bit (``!= 0xFF``)
        are unpacked, instead of the whole AA range.
        """
        self._validate_range(start, stop)
        if start == stop:
            return np.empty(0, dtype=np.int64)
        b0, b1 = self._byte_span(start, stop)
        buf = self._bytes[b0:b1]
        cand = np.flatnonzero(buf != 0xFF)
        if cand.size == 0:
            return np.empty(0, dtype=np.int64)
        if cand.size * 4 <= buf.size:
            # Sparse free bits: gather the candidate bytes and unpack
            # only those.  Candidate order is ascending, and bits within
            # a byte unpack LSB-first, so the result stays ascending.
            free = np.flatnonzero(np.unpackbits(buf[cand], bitorder="little") == 0)
            vbns = ((cand[free >> 3] + b0) << 3) + (free & 7)
            vbns = vbns[(vbns >= start) & (vbns < stop)]
        else:
            bits = np.unpackbits(buf, bitorder="little")
            vbns = np.flatnonzero(bits[start - b0 * 8 : stop - b0 * 8] == 0) + start
        if limit is not None:
            vbns = vbns[:limit]
        return vbns

    def allocated_in_range(self, start: int, stop: int, limit: int | None = None) -> np.ndarray:
        """Ascending VBNs of allocated blocks in ``[start, stop)``."""
        self._validate_range(start, stop)
        bits = self._unpack(start, stop)
        idx = np.flatnonzero(bits != 0)
        if limit is not None:
            idx = idx[:limit]
        return idx + start

    def counts_per_chunk(self, chunk: int) -> np.ndarray:
        """Allocated-bit count for each consecutive ``chunk``-sized range.

        ``chunk`` must be a multiple of 8 and divide ``nblocks``.  This
        is the bulk primitive behind computing *all* AA scores in one
        pass (a full bitmap walk, as done when rebuilding an AA cache
        without a TopAA metafile, paper section 3.4).
        """
        if chunk <= 0 or chunk % 8 or self.nblocks % chunk:
            raise ValueError(f"chunk must be a multiple of 8 dividing {self.nblocks}")
        per_byte = np.bitwise_count(self._bytes).astype(np.int64)
        return per_byte.reshape(-1, chunk // 8).sum(axis=1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate(self, vbns: np.ndarray) -> None:
        if self.check and vbns.size:
            lo = int(vbns.min())
            hi = int(vbns.max())
            if lo < 0 or hi >= self.nblocks:
                raise BitmapError(f"VBN out of range: [{lo}, {hi}] vs nblocks={self.nblocks}")

    def _validate_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= self.nblocks):
            raise BitmapError(f"bad range [{start}, {stop}) vs nblocks={self.nblocks}")

    @staticmethod
    def _byte_span(start: int, stop: int) -> tuple[int, int]:
        return start // 8, -(-stop // 8)

    def _unpack(self, start: int, stop: int) -> np.ndarray:
        """Unpack bits ``[start, stop)`` into a 0/1 uint8 array."""
        if start == stop:
            return np.empty(0, dtype=np.uint8)
        b0, b1 = self._byte_span(start, stop)
        bits = np.unpackbits(self._bytes[b0:b1], bitorder="little")
        return bits[start - b0 * 8 : stop - b0 * 8]

    def _apply_range_mask(self, start: int, stop: int, *, set_bits: bool) -> None:
        if start == stop:
            return
        b0, b1 = self._byte_span(start, stop)
        nbits = (b1 - b0) * 8
        mask_bits = np.zeros(nbits, dtype=np.uint8)
        mask_bits[start - b0 * 8 : stop - b0 * 8] = 1
        mask = np.packbits(mask_bits, bitorder="little")
        if set_bits:
            self._bytes[b0:b1] |= mask
        else:
            self._bytes[b0:b1] &= ~mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bitmap(nblocks={self.nblocks}, allocated={self._allocated}, "
            f"free={self.free_count})"
        )
