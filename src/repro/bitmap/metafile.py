"""Bitmap metafile: a bitmap plus metafile-block I/O accounting.

WAFL's free-space bitmaps live in *bitmap metafiles* whose 4 KiB blocks
each hold 32,768 bits (paper section 3.2.1).  The number of distinct
metafile blocks dirtied per consistency point is a first-order CPU and
I/O cost: "assigning free VBNs colocated in the number space minimizes
the number of metafile blocks that need to be consulted and updated"
(paper section 2.5).  :class:`BitmapMetafile` therefore wraps
:class:`~repro.bitmap.bitmap.Bitmap` and tracks exactly that metric.
"""

from __future__ import annotations

import numpy as np

from ..common.constants import BITS_PER_BITMAP_BLOCK
from .bitmap import Bitmap

__all__ = ["BitmapMetafile"]


class BitmapMetafile:
    """A block-allocation bitmap with per-CP dirty-block tracking.

    All mutations should flow through this wrapper (not the raw bitmap)
    so that the simulator can charge metafile update costs faithfully.

    Parameters
    ----------
    nblocks:
        Size of the VBN space covered by this metafile.
    bits_per_block:
        Bits stored per 4 KiB metafile block; defaults to the paper's
        32,768 and is configurable only for tests.
    check:
        Passed through to :class:`Bitmap`.
    """

    __slots__ = (
        "bitmap",
        "bits_per_block",
        "_dirty",
        "blocks_dirtied_total",
        "blocks_read_total",
        "cp_drains",
    )

    def __init__(
        self,
        nblocks: int,
        *,
        bits_per_block: int = BITS_PER_BITMAP_BLOCK,
        check: bool = True,
    ) -> None:
        if bits_per_block <= 0 or bits_per_block % 8:
            raise ValueError("bits_per_block must be a positive multiple of 8")
        self.bitmap = Bitmap(nblocks, check=check)
        self.bits_per_block = bits_per_block
        # Dirty flags, one per metafile block.  A flat boolean array so
        # marking a batch dirty is a single scatter (duplicates are
        # harmless) instead of a sort/unique plus per-element set update.
        self._dirty = np.zeros(-(-self.nblocks // bits_per_block), dtype=bool)
        #: Cumulative count of distinct metafile blocks dirtied across
        #: all CPs (the paper's metafile-update cost driver).
        self.blocks_dirtied_total = 0
        #: Cumulative count of metafile blocks read (rebuild scans etc.).
        self.blocks_read_total = 0
        #: Number of times :meth:`drain_dirty` has been called.
        self.cp_drains = 0

    # ------------------------------------------------------------------
    @property
    def nblocks(self) -> int:
        """Size of the covered VBN space in blocks."""
        return self.bitmap.nblocks

    @property
    def metafile_block_count(self) -> int:
        """Number of 4 KiB metafile blocks backing this bitmap."""
        return -(-self.nblocks // self.bits_per_block)

    @property
    def free_count(self) -> int:
        """Free blocks in the covered VBN space."""
        return self.bitmap.free_count

    @property
    def dirty_block_count(self) -> int:
        """Distinct metafile blocks dirtied since the last CP drain."""
        return int(np.count_nonzero(self._dirty))

    # ------------------------------------------------------------------
    # Mutations (delegate to bitmap, record dirtied metafile blocks)
    # ------------------------------------------------------------------
    def allocate(self, vbns: np.ndarray, *, trusted: bool = False) -> None:
        """Allocate ``vbns`` and mark their metafile blocks dirty.

        ``trusted`` is forwarded to :meth:`Bitmap.allocate` for internal
        batches already known to be in-range ``int64`` arrays.
        """
        if not trusted:
            vbns = np.asarray(vbns, dtype=np.int64)
        self.bitmap.allocate(vbns, trusted=trusted)
        self._mark_dirty(vbns)

    def free(self, vbns: np.ndarray, *, trusted: bool = False) -> None:
        """Free ``vbns`` and mark their metafile blocks dirty."""
        if not trusted:
            vbns = np.asarray(vbns, dtype=np.int64)
        self.bitmap.free(vbns, trusted=trusted)
        self._mark_dirty(vbns)

    def set_range(self, start: int, stop: int) -> int:
        """Bulk-allocate a range (aging helper); dirties covered blocks."""
        n = self.bitmap.set_range(start, stop)
        self._mark_dirty_range(start, stop)
        return n

    def clear_range(self, start: int, stop: int) -> int:
        """Bulk-free a range; dirties covered blocks."""
        n = self.bitmap.clear_range(start, stop)
        self._mark_dirty_range(start, stop)
        return n

    # ------------------------------------------------------------------
    # CP integration
    # ------------------------------------------------------------------
    def drain_dirty(self) -> int:
        """Flush dirty metafile blocks at a CP boundary.

        Returns the number of distinct metafile blocks that were dirtied
        since the previous drain (i.e. the metafile write I/O this CP
        must perform) and resets the dirty set.
        """
        n = int(np.count_nonzero(self._dirty))
        self.blocks_dirtied_total += n
        self._dirty[:] = False
        self.cp_drains += 1
        return n

    # ------------------------------------------------------------------
    # Persistence (crash-consistency image)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the bitmap contents for a persisted metadata image.

        Only the allocation state is captured — cumulative I/O counters
        are *measurement* state, not file-system state, so a recovered
        metafile is byte-identical to the committed one regardless of
        how many reads the recovery itself performed.
        """
        return self.bitmap.raw_bytes.tobytes()

    def load_bytes(self, data: bytes) -> None:
        """Restore the bitmap from :meth:`to_bytes` output.

        The dirty set is cleared — a just-recovered metafile has, by
        definition, nothing to flush for the crashed CP.  Raises
        :class:`~repro.common.errors.SerializationError` on a geometry
        mismatch (delegated to :meth:`Bitmap.load_bytes`).
        """
        self.bitmap.load_bytes(data)
        self._dirty[:] = False

    def note_scan_read(self, nblocks_read: int | None = None) -> int:
        """Charge a metafile read scan (e.g. AA-cache rebuild walk).

        Defaults to a full linear walk of every metafile block, which is
        what rebuilding an AA cache without a TopAA metafile requires
        (paper section 3.4).  Returns the blocks charged.
        """
        if nblocks_read is None:
            nblocks_read = self.metafile_block_count
        self.blocks_read_total += nblocks_read
        return nblocks_read

    # ------------------------------------------------------------------
    def _mark_dirty(self, vbns: np.ndarray) -> None:
        if vbns.size == 0:
            return
        self._dirty[vbns // self.bits_per_block] = True

    def _mark_dirty_range(self, start: int, stop: int) -> None:
        if start >= stop:
            return
        first = start // self.bits_per_block
        last = (stop - 1) // self.bits_per_block
        self._dirty[first : last + 1] = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitmapMetafile(nblocks={self.nblocks}, free={self.free_count}, "
            f"dirty_blocks={self.dirty_block_count})"
        )
