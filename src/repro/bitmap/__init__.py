"""Bitmap metafiles: the free-space substrate (paper sections 2.5, 3.3).

* :class:`Bitmap` — NumPy-backed allocation bitmap.
* :class:`BitmapMetafile` — bitmap plus metafile-block I/O accounting.
* :class:`DelayedFreeLog` — CP-batched frees, HBPS-prioritized.
"""

from .bitmap import Bitmap
from .delayed_frees import DelayedFreeLog
from .metafile import BitmapMetafile

__all__ = ["Bitmap", "BitmapMetafile", "DelayedFreeLog"]
