"""Bitmap metafiles: the free-space substrate (paper sections 2.5, 3.3).

* :class:`Bitmap` — NumPy-backed allocation bitmap.
* :class:`BitmapMetafile` — bitmap plus metafile-block I/O accounting.

(:class:`~repro.core.delayed_frees.DelayedFreeLog` lives in
:mod:`repro.core` because it builds on HBPS; this package stays below
``core`` in the dependency DAG enforced by ``repro lint``.)
"""

from .bitmap import Bitmap
from .metafile import BitmapMetafile

__all__ = ["Bitmap", "BitmapMetafile"]
