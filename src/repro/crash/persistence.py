"""Shadow vs committed metadata images and the recovery pipeline.

WAFL never updates file-system metadata in place: a consistency point
writes a complete *shadow* image of every dirtied metadata block and
atomically switches the superblock to it when done (paper section 2.1).
A crash at any instant therefore leaves two candidate images on disk:

* the **committed** image — the one the superblock points at, complete
  and self-consistent by construction;
* the **shadow** image — the in-flight CP's blocks, possibly *torn*:
  the device completed only a leading run of 512-byte sectors of any
  page that was mid-write when power dropped.

This module models both sides.  :func:`capture_image` serializes every
file-system instance (bitmap metafile bytes, FlexVol ``l2v``/``v2p``
maps, snapshot pins, pending delayed frees) into sealed pages — the
same CRC32 envelope TopAA pages use — plus the TopAA image itself,
versioned by CP index.  :func:`tear_page` produces the mid-write state
of a page at device-sector granularity.  :meth:`PersistenceModel.
recover` runs the recovery pipeline: verify the shadow (detecting torn
pages as typed :class:`~repro.common.errors.TornWriteError`), discard
it — the superblock switch never happened, so even an intact shadow is
orphaned — restore the committed image, and remount through the real
:func:`repro.fs.mount.simulate_mount` path with one shared retry
budget.

One deliberate modeling choice: the TopAA metafile is treated as
advisory seed data updated *in place* during the CP boundary, outside
the shadow/commit protocol.  Mount verifies every TopAA page and falls
back to the bitmap walk per file system, so a torn TopAA page costs
time, never correctness — which is exactly why the recovery sweep uses
torn TopAA pages to exercise the sealed-page fallback path.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import MountError, SerializationError, TornWriteError
from ..common.retry import RetryBudget
from ..common.rng import make_rng
from ..core.delayed_frees import DelayedFreeLog
from ..core.topaa import PAGE_KIND_BITMAP, PAGE_KIND_FS_IMAGE, seal_page, unseal_page
from ..faults.recovery import instances
from ..fs.filesystem import WaflSim
from ..fs.mount import (
    DEFAULT_MOUNT_RETRIES,
    MountReport,
    TopAAImage,
    background_rebuild,
    export_topaa,
    simulate_mount,
)

__all__ = [
    "SECTOR_BYTES",
    "FSState",
    "CommittedImage",
    "RecoveryReport",
    "PersistenceModel",
    "serialize_fs",
    "deserialize_fs",
    "seal_bitmap_page",
    "load_bitmap_page",
    "capture_image",
    "tear_page",
]

#: Device sector size: the atomic write unit.  A crash mid-page leaves
#: a leading whole number of sectors new and the rest old.
SECTOR_BYTES = 512

#: nblocks u64 | free_count u64 | pending_count u64 | n_snapshots u32 | flags u32
_IMG_HEADER = struct.Struct("<QQQII")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_FLAG_HAS_MAPS = 1


# ----------------------------------------------------------------------
# Per-instance serialization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FSState:
    """Deserialized persisted state of one file-system instance."""

    nblocks: int
    free_count: int
    bitmap_bytes: bytes
    #: Sorted VBNs logged as delayed frees but not yet applied.
    pending: np.ndarray
    #: FlexVol maps; ``None`` for physical stores / RAID groups.
    l2v: np.ndarray | None = None
    v2p: np.ndarray | None = None
    #: Snapshot pins, sorted by name.
    snapshots: tuple[tuple[str, np.ndarray], ...] = ()


def serialize_fs(fs) -> bytes:
    """Serialize one instance's *file-system* state (not measurement
    counters) into a deterministic byte payload.

    Captures exactly what survives a crash: the allocation bitmap, the
    pending delayed-free log, and — for FlexVols — the ``l2v``/``v2p``
    maps and snapshot pins.  Monotonic I/O counters are measurement
    state and deliberately excluded, so a recovered instance
    re-serializes byte-identically to the committed page no matter how
    much I/O the recovery itself performed.
    """
    # Sync the allocator's pending-span batch into the bitmap first: a
    # mid-CP capture must reflect every block already handed out, not
    # the batching cursor (scalar and batched pipelines then serialize
    # byte-identically).
    alloc = getattr(fs, "allocator", None)
    if alloc is not None and hasattr(alloc, "flush_pending"):
        alloc.flush_pending()
    mf = fs.metafile
    pending = fs.delayed_frees.pending_vbns()
    is_vol = getattr(fs, "l2v", None) is not None
    flags = _FLAG_HAS_MAPS if is_vol else 0
    n_snaps = len(fs._snapshots) if is_vol else 0
    parts = [
        _IMG_HEADER.pack(mf.nblocks, mf.free_count, pending.size, n_snaps, flags),
        mf.to_bytes(),
        np.ascontiguousarray(pending, dtype="<i8").tobytes(),
    ]
    if is_vol:
        parts.append(_U64.pack(fs.l2v.size))
        parts.append(np.ascontiguousarray(fs.l2v, dtype="<i8").tobytes())
        parts.append(_U64.pack(fs.v2p.size))
        parts.append(np.ascontiguousarray(fs.v2p, dtype="<i8").tobytes())
        for name in sorted(fs._snapshots):
            blob = name.encode("utf-8")
            held = np.ascontiguousarray(fs._snapshots[name], dtype="<i8")
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
            parts.append(_U64.pack(held.size))
            parts.append(held.tobytes())
    return b"".join(parts)


class _Cursor:
    """Bounds-checked reader over a payload; every overrun is a typed
    :class:`SerializationError`, never silently-truncated garbage."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise SerializationError(
                f"fs image truncated reading {what}: need {n} bytes at offset "
                f"{self.pos}, have {len(self.data) - self.pos}"
            )
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u32(self, what: str) -> int:
        return _U32.unpack(self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return _U64.unpack(self.take(8, what))[0]

    def i64_array(self, count: int, what: str) -> np.ndarray:
        raw = self.take(count * 8, what)
        return np.frombuffer(raw, dtype="<i8").astype(np.int64)


def deserialize_fs(payload: bytes) -> FSState:
    """Parse :func:`serialize_fs` output, validating every length and
    value range.  Raises :class:`SerializationError` on any structural
    damage (out-of-range VBN, truncation, trailing bytes)."""
    cur = _Cursor(payload)
    nblocks, free_count, pending_count, n_snaps, flags = _IMG_HEADER.unpack(
        cur.take(_IMG_HEADER.size, "header")
    )
    if nblocks <= 0 or nblocks % 8:
        raise SerializationError(f"fs image: bad nblocks {nblocks}")
    if free_count > nblocks:
        raise SerializationError(
            f"fs image: free_count {free_count} exceeds nblocks {nblocks}"
        )
    bitmap_bytes = cur.take(nblocks // 8, "bitmap")
    allocated = int(
        np.bitwise_count(np.frombuffer(bitmap_bytes, dtype=np.uint8)).sum(dtype=np.int64)
    )
    if nblocks - allocated != free_count:
        raise SerializationError(
            f"fs image: bitmap popcount {allocated} disagrees with recorded "
            f"free_count {free_count} (nblocks {nblocks})"
        )
    pending = cur.i64_array(pending_count, "pending delayed frees")
    if pending.size and (pending.min() < 0 or pending.max() >= nblocks):
        raise SerializationError("fs image: pending delayed-free VBN out of range")
    l2v = v2p = None
    snapshots: list[tuple[str, np.ndarray]] = []
    if flags & _FLAG_HAS_MAPS:
        l2v = cur.i64_array(cur.u64("l2v size"), "l2v")
        if l2v.size and (l2v.min() < -1 or l2v.max() >= nblocks):
            raise SerializationError("fs image: l2v entry out of range")
        v2p = cur.i64_array(cur.u64("v2p size"), "v2p")
        if v2p.size != nblocks:
            raise SerializationError(
                f"fs image: v2p has {v2p.size} entries, expected {nblocks}"
            )
        if v2p.size and v2p.min() < -1:
            raise SerializationError("fs image: v2p entry out of range")
        for _ in range(n_snaps):
            name = cur.take(cur.u32("snapshot name length"), "snapshot name").decode(
                "utf-8", errors="strict"
            )
            held = cur.i64_array(cur.u64("snapshot size"), f"snapshot {name!r}")
            if held.size and (held.min() < 0 or held.max() >= nblocks):
                raise SerializationError(
                    f"fs image: snapshot {name!r} VBN out of range"
                )
            snapshots.append((name, held))
    elif n_snaps:
        raise SerializationError("fs image: snapshots recorded without maps")
    if cur.pos != len(payload):
        raise SerializationError(
            f"fs image: {len(payload) - cur.pos} trailing bytes after content"
        )
    return FSState(
        nblocks=nblocks,
        free_count=free_count,
        bitmap_bytes=bitmap_bytes,
        pending=pending,
        l2v=l2v,
        v2p=v2p,
        snapshots=tuple(snapshots),
    )


# ----------------------------------------------------------------------
# Bitmap-metafile pages (standalone, used by round-trip fuzzing)
# ----------------------------------------------------------------------
def seal_bitmap_page(metafile) -> bytes:
    """Seal a bare bitmap-metafile image (no maps) into a checked page."""
    return seal_page(metafile.to_bytes(), PAGE_KIND_BITMAP, metafile.nblocks)


def load_bitmap_page(metafile, page: bytes) -> None:
    """Verify and load a :func:`seal_bitmap_page` page into ``metafile``.

    Raises :class:`TornWriteError` when the page fails its checksum
    envelope (the mid-write signature) and :class:`SerializationError`
    on a geometry mismatch.
    """
    try:
        payload = unseal_page(page, PAGE_KIND_BITMAP, metafile.nblocks)
    except SerializationError as exc:
        raise TornWriteError(f"bitmap page failed verification: {exc}") from exc
    metafile.load_bytes(payload)


# ----------------------------------------------------------------------
# Whole-aggregate images
# ----------------------------------------------------------------------
@dataclass
class CommittedImage:
    """One CP's complete persisted metadata image."""

    #: CP index this image commits (``engine.cp_index`` at capture).
    cp_index: int
    #: Sealed per-instance pages by ``where`` label.
    pages: dict[str, bytes] = field(default_factory=dict)
    #: The TopAA metafile image captured at the same instant.
    topaa: TopAAImage = field(default_factory=TopAAImage)

    def digest(self) -> str:
        """Deterministic content hash (same seed => same hex digest)."""
        h = hashlib.sha256()
        h.update(_U64.pack(self.cp_index))
        for where in sorted(self.pages):
            h.update(where.encode("utf-8"))
            h.update(self.pages[where])
        for blob in self.topaa.group_blocks:
            h.update(blob)
        for name in sorted(self.topaa.vol_pages):
            h.update(name.encode("utf-8"))
            h.update(self.topaa.vol_pages[name])
        if self.topaa.store_pages is not None:
            h.update(self.topaa.store_pages)
        return h.hexdigest()


def capture_image(sim: WaflSim, *, cp_index: int | None = None) -> CommittedImage:
    """Serialize every file-system instance plus the TopAA metafile."""
    pages = {
        where: seal_page(serialize_fs(fs), PAGE_KIND_FS_IMAGE, fs.topology.num_aas)
        for where, fs in instances(sim).items()
    }
    return CommittedImage(
        cp_index=sim.engine.cp_index if cp_index is None else cp_index,
        pages=pages,
        topaa=export_topaa(sim),
    )


def tear_page(
    new_page: bytes, old_page: bytes | None, rng: np.random.Generator
) -> bytes:
    """Mid-write state of ``new_page`` at device-sector granularity.

    A seeded-random number of leading :data:`SECTOR_BYTES` sectors
    carry the new bytes; the tail still holds the old page's bytes at
    those offsets (zeros where the old page was shorter).  Cutting at
    every sector — including 0 (write never started) and all (write
    completed) — keeps the full spectrum of torn states reachable.
    """
    n_sectors = -(-len(new_page) // SECTOR_BYTES)
    cut = int(rng.integers(0, n_sectors + 1)) * SECTOR_BYTES
    if cut >= len(new_page):
        return new_page
    old = old_page if old_page is not None else b""
    tail = old[cut : len(new_page)]
    tail += b"\x00" * (len(new_page) - cut - len(tail))
    return new_page[:cut] + tail


def _tear_topaa(
    shadow: TopAAImage, committed: TopAAImage, rng: np.random.Generator
) -> TopAAImage:
    """Tear every TopAA page of the in-flight image against the old."""
    old_groups = committed.group_blocks
    torn = TopAAImage(
        group_blocks=[
            tear_page(blob, old_groups[i] if i < len(old_groups) else None, rng)
            for i, blob in enumerate(shadow.group_blocks)
        ],
        vol_pages={
            name: tear_page(blob, committed.vol_pages.get(name), rng)
            for name, blob in sorted(shadow.vol_pages.items())
        },
    )
    if shadow.store_pages is not None:
        torn.store_pages = tear_page(shadow.store_pages, committed.store_pages, rng)
    return torn


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveryReport:
    """What one recovery did and what it cost."""

    #: CP index of the image recovered to (the last committed CP).
    cp_index: int = -1
    #: Shadow pages that failed verification (detected torn writes).
    torn_pages: list[str] = field(default_factory=list)
    #: True when every shadow page verified (crash landed outside the
    #: write window, or every page's write had completed); the shadow
    #: is discarded regardless — the superblock switch never happened.
    shadow_intact: bool = False
    #: Instances restored from committed pages.
    restored: list[str] = field(default_factory=list)
    #: The remount's cost/fallback report (shared retry budget).
    mount: MountReport = field(default_factory=MountReport)
    #: Background-rebuild counts completing the seeded mount.
    rebuild: dict[str, int] = field(default_factory=dict)

    @property
    def modeled_recovery_us(self) -> float:
        """Modeled time from crash to allocatable caches."""
        return self.mount.modeled_read_us


class PersistenceModel:
    """Shadow vs committed metadata images, committed once per CP.

    The committed image is only ever replaced through :meth:`commit` —
    a simlint rule (C601) forbids assigning committed-image attributes
    anywhere else, so nothing in the tree can silently mutate the state
    a crash recovers to.
    """

    def __init__(self, sim: WaflSim, *, seed: int | None = 0) -> None:
        self.sim = sim
        self._rng = make_rng(seed)
        self.committed = capture_image(sim)
        #: In-flight image of a crashed CP (set by :meth:`capture_shadow`).
        self.shadow: CommittedImage | None = None
        #: Torn TopAA image paired with the shadow (in-place writes).
        self.shadow_topaa: TopAAImage | None = None

    # -- image lifecycle ----------------------------------------------
    def commit(self) -> CommittedImage:
        """Atomic superblock switch after a successful CP: the shadow
        becomes the committed image.  Call right after ``run_cp``."""
        self.committed = capture_image(self.sim)
        self.shadow = None
        self.shadow_topaa = None
        return self.committed

    def capture_shadow(self, crashed_sim: WaflSim) -> CommittedImage:
        """Capture the in-flight image of a CP that crashed inside its
        write window, torn at device-sector granularity against the
        committed copy.  The TopAA image is torn too (in-place update),
        and becomes the image the remount will verify page by page.
        """
        shadow = capture_image(
            crashed_sim, cp_index=self.committed.cp_index + 1
        )
        committed = self.committed
        torn_pages = {
            where: tear_page(page, committed.pages.get(where), self._rng)
            for where, page in sorted(shadow.pages.items())
        }
        self.shadow = CommittedImage(
            cp_index=shadow.cp_index, pages=torn_pages, topaa=shadow.topaa
        )
        self.shadow_topaa = _tear_topaa(shadow.topaa, committed.topaa, self._rng)
        return self.shadow

    # -- recovery ------------------------------------------------------
    def recover(
        self,
        sim: WaflSim | None = None,
        *,
        max_retries: int = DEFAULT_MOUNT_RETRIES,
        budget: RetryBudget | None = None,
    ) -> RecoveryReport:
        """Recover ``sim`` (default: the model's sim) to the last
        committed CP through the real mount path.

        1. Verify every shadow page; checksum failures are recorded as
           detected torn writes.  The shadow is then discarded no
           matter what: a crash anywhere inside ``run_cp`` means the
           superblock switch never happened, so even a fully intact
           shadow image is orphaned.
        2. Restore every instance from its committed page (bitmap,
           maps, snapshot pins, pending delayed frees).
        3. Remount via :func:`simulate_mount` using the TopAA image
           that survives the crash — the torn in-place pages for a
           write-window crash, the committed ones otherwise — so torn
           TopAA pages exercise the sealed-page fallback and bitmap
           walk; then :func:`background_rebuild`.  Both phases share
           one bounded :class:`RetryBudget`.
        """
        target = self.sim if sim is None else sim
        report = RecoveryReport(cp_index=self.committed.cp_index)
        by_where = instances(target)
        if self.shadow is not None:
            for where in sorted(self.shadow.pages):
                fs = by_where.get(where)
                if fs is None:
                    continue
                try:
                    unseal_page(
                        self.shadow.pages[where],
                        PAGE_KIND_FS_IMAGE,
                        fs.topology.num_aas,
                    )
                except SerializationError:
                    report.torn_pages.append(where)
            report.shadow_intact = not report.torn_pages
        # Restore the committed image.  A committed page that fails
        # verification is unrecoverable for FlexVols (maps are primary
        # state) — surface it as a typed MountError rather than
        # continuing with garbage.
        states: dict[str, FSState] = {}
        for where, fs in by_where.items():
            page = self.committed.pages.get(where)
            if page is None:
                raise MountError(
                    f"recovery: no committed page for {where}; the committed "
                    f"image does not cover this instance"
                )
            try:
                payload = unseal_page(page, PAGE_KIND_FS_IMAGE, fs.topology.num_aas)
            except SerializationError as exc:
                raise TornWriteError(
                    f"recovery: committed page for {where} failed "
                    f"verification: {exc}"
                ) from exc
            states[where] = deserialize_fs(payload)
        for where, fs in by_where.items():
            _restore_fs(fs, states[where], where)
            report.restored.append(where)
        # Remount through the real path with one shared retry budget.
        if budget is None:
            budget = RetryBudget(max_retries)
        topaa = (
            self.shadow_topaa if self.shadow_topaa is not None else self.committed.topaa
        )
        report.mount = simulate_mount(target, topaa, budget=budget)
        report.rebuild = background_rebuild(
            target, budget=budget, report=report.mount
        )
        return report


def _restore_fs(fs, st: FSState, where: str) -> None:
    """Install a deserialized committed state into a live instance."""
    if fs.metafile.nblocks != st.nblocks:
        raise SerializationError(
            f"recovery: committed page for {where} covers {st.nblocks} blocks, "
            f"instance has {fs.metafile.nblocks}"
        )
    fs.metafile.load_bytes(st.bitmap_bytes)
    log = DelayedFreeLog(bits_per_block=fs.delayed_frees.bits_per_block)
    if st.pending.size:
        log.add(st.pending)
    fs.delayed_frees = log
    if st.l2v is not None:
        if fs.l2v.size != st.l2v.size:
            raise SerializationError(
                f"recovery: committed l2v for {where} has {st.l2v.size} entries, "
                f"instance has {fs.l2v.size}"
            )
        fs.l2v[:] = st.l2v
        fs.v2p[:] = st.v2p
        fs._snapshots = {name: held.copy() for name, held in st.snapshots}
        fs._snap_mask[:] = False
        for held in fs._snapshots.values():
            fs._snap_mask[held] = True
