"""Crash-consistency subsystem: mid-CP crash injection and verified
recovery to the last committed consistency point.

The paper's free-block search structures (TopAA pages, AA bitmaps,
HBPS bins, delayed-free logs) all hang off WAFL's consistency-point
machinery, whose whole point is that a crash at *any* instant recovers
to the last committed CP with zero leaked or double-allocated blocks.
This package verifies that guarantee for the simulator:

* :mod:`repro.crash.persistence` — shadow vs committed metadata
  images (bitmap metafiles, FlexVol maps, delayed-free logs, TopAA
  pages) versioned per CP, with torn-write simulation at device-sector
  granularity and a recovery pipeline through the real mount path.
* :mod:`repro.crash.registry` — a crash-point registry hooked into
  the ``repro.obs`` span boundaries the CP engine already emits, so
  every span edge in the CP pipeline is an injectable crash site.
* :mod:`repro.crash.explorer` — a systematic crash-state explorer
  (CrashMonkey-style): for each crash point in each CP of a seeded
  workload, crash the sim, recover, audit every invariant, and assert
  byte-equality with the committed metadata image.
* :mod:`repro.crash.under_load` — crashes mid-CP under live
  multi-tenant traffic and verifies admitted-but-uncommitted ops are
  deterministically replayed after recovery.
"""

from .explorer import (
    CrashMatrix,
    CrashOutcome,
    explore_cps,
    explore_aging,
    explore_noisy_neighbor,
)
from .persistence import (
    SECTOR_BYTES,
    CommittedImage,
    FSState,
    PersistenceModel,
    RecoveryReport,
    capture_image,
    deserialize_fs,
    load_bitmap_page,
    seal_bitmap_page,
    serialize_fs,
    tear_page,
)
from .registry import CrashPoint, CrashTracer, record_crash_points
from .under_load import CrashUnderLoadReport, run_crash_under_load

__all__ = [
    "SECTOR_BYTES",
    "CommittedImage",
    "CrashMatrix",
    "CrashOutcome",
    "CrashPoint",
    "CrashTracer",
    "CrashUnderLoadReport",
    "FSState",
    "PersistenceModel",
    "RecoveryReport",
    "capture_image",
    "deserialize_fs",
    "explore_aging",
    "explore_cps",
    "explore_noisy_neighbor",
    "load_bitmap_page",
    "record_crash_points",
    "run_crash_under_load",
    "seal_bitmap_page",
    "serialize_fs",
    "tear_page",
]
