"""Systematic crash-state exploration (CrashMonkey-style).

For every CP of a seeded workload, the explorer first *dry-runs* the CP
on a deep copy of the simulator with a recording
:class:`~repro.crash.registry.CrashTracer` to enumerate its span edges
— the crash points.  Then, for each edge, it deep-copies the pristine
pre-CP state again, re-runs the CP with the tracer armed to crash at
exactly that edge, captures the (possibly torn) shadow image when the
crash landed inside the persistence write window, recovers through the
real mount path, and verifies the recovered state three ways:

1. the full :func:`repro.analysis.auditor.audit_sim` invariant audit
   (bitmap popcounts, keeper totals, cache bins, delayed-free
   conservation, FlexVol map accounting);
2. a WAFL-Iron scan (:func:`repro.fs.iron.scan`) — zero leaked and
   zero double-allocated blocks against the map/snapshot/pending
   references;
3. byte-equality: re-serializing the recovered file systems must
   reproduce the committed image's sealed pages bit for bit.

Only after the whole sweep does the *real* CP run and the persistence
model commit, so every crash point of CP *n* is explored against the
committed image of CP *n-1* — exactly the state WAFL guarantees a
crash recovers to.  Everything is seeded: the same seed replays the
same matrix byte-identically (:meth:`CrashMatrix.digest`).
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from .. import obs
from ..analysis.auditor import audit_sim
from ..common.errors import CrashError
from ..fs import iron
from ..fs.cp import CPBatch
from ..fs.filesystem import WaflSim
from .persistence import PersistenceModel, capture_image
from .registry import (
    CrashPoint,
    CrashTracer,
    boundary_enter_index,
    commit_edge_index,
    record_crash_points,
)

__all__ = [
    "CrashOutcome",
    "CrashMatrix",
    "sweep_crash_points",
    "explore_cps",
    "explore_aging",
    "explore_noisy_neighbor",
]


@dataclass(frozen=True)
class CrashOutcome:
    """One crash point explored: where it crashed and how recovery went."""

    #: Index the interrupted CP would have committed as (recovery lands
    #: on the committed CP ``cp_index - 1``).
    cp_index: int
    point: CrashPoint
    #: Crash landed at/after the ``cp.boundary`` enter edge, so shadow
    #: pages (and in-place TopAA pages) were mid-write and may be torn.
    in_write_window: bool
    #: Crash landed *after* the modeled superblock switch (possible when
    #: the step wraps ``run_cp``, e.g. a traffic step): the shadow was
    #: adopted, so recovery must land on the new CP, not the old one.
    post_commit: bool
    #: The injected CrashError actually fired (sanity: always True).
    crashed: bool
    #: Shadow pages whose checksum envelope detected the torn write.
    torn_pages: tuple[str, ...]
    #: Instances restored from the committed image.
    restored: int
    #: Retries consumed by the recovery's shared budget.
    retries: int
    #: Modeled time from crash to allocatable caches (us).
    recovery_us: float
    #: Everything that went wrong (empty == verified recovery).
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.crashed and not self.violations

    def row(self) -> str:
        """Canonical one-line form (feeds the matrix digest)."""
        status = "ok" if self.ok else "FAIL"
        torn = ",".join(self.torn_pages) if self.torn_pages else "-"
        return (
            f"cp={self.cp_index} {self.point.label} "
            f"window={int(self.in_write_window)} post={int(self.post_commit)} "
            f"torn={torn} restored={self.restored} retries={self.retries} {status}"
        )


@dataclass
class CrashMatrix:
    """Every explored crash point of one workload, plus per-CP digests."""

    workload: str
    seed: int
    outcomes: list[CrashOutcome] = field(default_factory=list)
    #: Committed-image digest after each real CP (tracks the timeline
    #: the crashes were explored against).
    committed_digests: list[str] = field(default_factory=list)

    @property
    def cps_swept(self) -> int:
        return len(self.committed_digests)

    @property
    def crash_points(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> list[CrashOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def torn_write_cases(self) -> int:
        return sum(1 for o in self.outcomes if o.torn_pages)

    @property
    def ok(self) -> bool:
        return self.cps_swept > 0 and not self.violations

    def digest(self) -> str:
        """Content hash of the whole matrix; same seed => same digest."""
        h = hashlib.sha256()
        h.update(f"{self.workload}:{self.seed}".encode())
        for o in self.outcomes:
            h.update(o.row().encode())
            h.update(b"|".join(v.encode() for v in o.violations))
        for d in self.committed_digests:
            h.update(d.encode())
        return h.hexdigest()

    def extend(self, other: "CrashMatrix") -> None:
        self.outcomes.extend(other.outcomes)
        self.committed_digests.extend(other.committed_digests)


# ----------------------------------------------------------------------
# Core sweep
# ----------------------------------------------------------------------
def _verify_recovered(model: PersistenceModel, sim: WaflSim) -> list[str]:
    """All three recovery checks; returns violation strings."""
    problems = [str(v) for v in audit_sim(sim).violations]
    iron_report = iron.scan(sim)
    problems.extend(str(f) for f in iron_report.findings)
    committed = model.committed
    if sim.engine.cp_index != committed.cp_index:
        problems.append(
            f"[engine] cp_index: recovered to {sim.engine.cp_index}, "
            f"committed image is CP {committed.cp_index}"
        )
    recaptured = capture_image(sim, cp_index=committed.cp_index)
    for where in sorted(set(committed.pages) | set(recaptured.pages)):
        a = committed.pages.get(where)
        b = recaptured.pages.get(where)
        if a is None or b is None:
            problems.append(f"[{where}] image: instance missing from one side")
        elif a != b:
            problems.append(
                f"[{where}] image: recovered state re-serializes differently "
                f"from the committed page"
            )
    return problems


def sweep_crash_points(
    state,
    run_step: Callable[[object], object],
    model: PersistenceModel,
    *,
    sim_of: Callable[[object], WaflSim] = lambda s: s,
) -> list[CrashOutcome]:
    """Explore every span edge of one step against ``model.committed``.

    ``state`` is the pristine pre-step driver (a :class:`WaflSim` or a
    :class:`~repro.traffic.engine.TrafficEngine`); it is deep-copied
    per trial and **never mutated** — the caller runs the real step
    afterwards.  ``run_step`` executes the step on a copy; ``sim_of``
    extracts the :class:`WaflSim` to recover and audit.
    """
    probe = copy.deepcopy(state)
    edges = record_crash_points(lambda: run_step(probe))
    window_start = boundary_enter_index(edges)
    commit_idx = commit_edge_index(edges)
    cp_index = model.committed.cp_index + 1
    outcomes: list[CrashOutcome] = []
    for point in edges:
        trial = copy.deepcopy(state)
        tracer = CrashTracer(crash_at=point.index)
        prev = obs.install_tracer(tracer)
        crashed = False
        try:
            run_step(trial)
        except CrashError:
            crashed = True
        finally:
            obs.install_tracer(prev)
        sim = sim_of(trial)
        post_commit = commit_idx is not None and point.index > commit_idx
        in_window = (
            not post_commit
            and window_start is not None
            and point.index >= window_start
        )
        report, violations = crash_recover_verify(
            model, sim, in_window=in_window, post_commit=post_commit
        )
        if not crashed:
            violations.append(
                f"[{point.label}] crash: injected CrashError never fired"
            )
        outcomes.append(
            CrashOutcome(
                cp_index=cp_index,
                point=point,
                in_write_window=in_window,
                post_commit=post_commit,
                crashed=crashed,
                torn_pages=tuple(report.torn_pages),
                restored=len(report.restored),
                retries=report.mount.total_retries,
                recovery_us=report.modeled_recovery_us,
                violations=tuple(violations),
            )
        )
    return outcomes


def crash_recover_verify(
    model: PersistenceModel,
    sim: WaflSim,
    *,
    in_window: bool,
    post_commit: bool,
):
    """Recover a crashed sim and run all three verification passes.

    Pre-commit crashes recover against ``model.committed`` (with a torn
    shadow captured first when the crash was inside the write window).
    Post-commit crashes model a crash after the superblock switch: the
    shadow was adopted, so the crashed sim's *own* post-CP state is the
    committed image recovery must reproduce.  Returns ``(RecoveryReport,
    violations)``.
    """
    if post_commit:
        adopted = PersistenceModel(sim, seed=model.committed.cp_index)
        report = adopted.recover(sim)
        return report, _verify_recovered(adopted, sim)
    model.shadow = None
    model.shadow_topaa = None
    if in_window:
        model.capture_shadow(sim)
    report = model.recover(sim)
    return report, _verify_recovered(model, sim)


# ----------------------------------------------------------------------
# Workload-level sweeps
# ----------------------------------------------------------------------
def explore_cps(
    sim: WaflSim,
    batches: Iterable[CPBatch],
    *,
    seed: int = 0,
    max_cps: int | None = None,
    workload: str = "custom",
    model: PersistenceModel | None = None,
) -> CrashMatrix:
    """Sweep every crash point of every CP ``batches`` yields.

    Each batch is swept against the previous CP's committed image, then
    run for real and committed — so the timeline the crashes interrupt
    is the same one an uncrashed run would produce.
    """
    if model is None:
        model = PersistenceModel(sim, seed=seed)
    matrix = CrashMatrix(workload=workload, seed=seed)
    it: Iterator[CPBatch] = iter(batches)
    n = 0
    while max_cps is None or n < max_cps:
        try:
            batch = next(it)
        except StopIteration:
            break
        matrix.outcomes.extend(
            sweep_crash_points(sim, lambda s: s.engine.run_cp(batch), model)
        )
        sim.engine.run_cp(batch)
        matrix.committed_digests.append(model.commit().digest())
        n += 1
    return matrix


def _small_aged_sim(*, blocks_per_disk: int, seed: int) -> WaflSim:
    """A small aged all-SSD sim sized for exhaustive crash sweeps."""
    from ..common.config import AggregateSpec, TierSpec, VolumeDecl
    from ..workloads.aging import age_filesystem, reset_measurement_state

    tier = TierSpec(
        label="ssd",
        media="ssd",
        ndata=3,
        blocks_per_disk=blocks_per_disk,
        stripes_per_aa=256,
    )
    phys = 3 * blocks_per_disk
    spec = AggregateSpec(
        tiers=(tier,),
        volumes=(
            VolumeDecl("volA", logical_blocks=phys // 4),
            VolumeDecl("volB", logical_blocks=phys // 8),
        ),
    )
    sim = WaflSim.build(spec, seed=seed)
    age_filesystem(sim, churn_factor=1.0, ops_per_cp=2048, seed=seed)
    reset_measurement_state(sim)
    return sim


def explore_aging(
    *,
    cps: int = 3,
    seed: int = 0,
    blocks_per_disk: int = 8192,
    ops_per_cp: int = 512,
) -> CrashMatrix:
    """Acceptance sweep #1: random-overwrite churn on an aged system.

    Ages a small sim (fill + churn, so the delayed-free logs and AA
    caches carry real history), then sweeps every crash point of
    ``cps`` consecutive overwrite CPs.
    """
    from ..workloads.random_overwrite import RandomOverwriteWorkload

    sim = _small_aged_sim(blocks_per_disk=blocks_per_disk, seed=seed)
    wl = RandomOverwriteWorkload(sim, ops_per_cp=ops_per_cp, seed=seed + 1)
    return explore_cps(
        sim, iter(wl), seed=seed, max_cps=cps, workload="aging"
    )


def explore_noisy_neighbor(
    *,
    cps: int = 3,
    seed: int = 0,
    n_tenants: int = 3,
    blocks_per_disk: int = 16384,
) -> CrashMatrix:
    """Acceptance sweep #2: crash points under multi-tenant contention.

    Builds the ``noisy-neighbor`` traffic scenario (aggressor saturating
    the backend, QoS-capped victim) and sweeps every span edge of
    ``cps`` consecutive engine steps — each step admits tenant ops and
    runs their CP, so the swept edges include the whole admission +
    allocation + boundary pipeline under contention.
    """
    from ..traffic.engine import TrafficEngine
    from ..traffic.scenarios import (
        build_scenario,
        build_traffic_sim,
        calibrate_capacity,
    )

    sim = build_traffic_sim(
        n_tenants, blocks_per_disk=blocks_per_disk, seed=seed + 40
    )
    cal = calibrate_capacity(sim, seed=seed + 41)
    tenants = build_scenario(
        "noisy-neighbor", sim, cal.capacity_ops, n_tenants=n_tenants, seed=seed + 42
    )
    engine = TrafficEngine(sim, tenants)
    model = PersistenceModel(sim, seed=seed)
    matrix = CrashMatrix(workload="noisy-neighbor", seed=seed)
    for _ in range(cps):
        matrix.outcomes.extend(
            sweep_crash_points(
                engine, lambda e: e.step(), model, sim_of=lambda e: e.sim
            )
        )
        engine.step()
        matrix.committed_digests.append(model.commit().digest())
    return matrix
