"""Crash-point registry: every CP span edge is an injectable crash.

The CP engine already instruments itself with ``repro.obs`` spans —
``cp`` around the whole consistency point, ``cp.allocate`` per volume,
``cp.boundary`` around the flush (see :meth:`repro.fs.cp.CPEngine.
run_cp`).  Rather than adding crash hooks to the engine, the registry
*is* a tracer: :class:`CrashTracer` subclasses the obs
:class:`~repro.obs.tracer.Tracer` and counts span **edges** (an enter
when a span opens, an exit when it closes).  Installed via
:func:`repro.obs.install_tracer`, it either records every edge of a
dry run (enumerating the crash sites of one CP with zero new
instrumentation) or raises the typed
:class:`~repro.common.errors.CrashError` at a chosen edge — killing
the CP exactly there, since ``run_cp`` holds no handler between its
spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .. import obs
from ..common.config import ObsConfig
from ..common.errors import CrashError
from ..obs.tracer import Span, Tracer

__all__ = ["CrashPoint", "CrashTracer", "record_crash_points", "BOUNDARY_SPAN"]

#: Span whose enter-edge opens the CP's persistence write window: a
#: crash at or after it lands while the shadow image is being written,
#: so pages may be torn.  Earlier crashes lose only in-memory state.
BOUNDARY_SPAN = "cp.boundary"

EDGE_ENTER = "enter"
EDGE_EXIT = "exit"


@dataclass(frozen=True)
class CrashPoint:
    """One injectable crash site: the k-th span edge of a CP."""

    #: Ordinal of this edge in the CP's span stream (0-based).
    index: int
    #: Span name at the edge ("cp", "cp.allocate", "cp.boundary", ...).
    name: str
    #: "enter" or "exit".
    edge: str
    #: Sorted span tags at the edge (volume name, block count, ...).
    tags: tuple[tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        return f"#{self.index} {self.name}:{self.edge}"


class CrashTracer(Tracer):
    """An obs tracer that records — or crashes at — span edges.

    With ``crash_at=None`` (recording mode) it behaves as a normal
    tracer while appending every span edge to :attr:`edges`.  With
    ``crash_at=k`` it raises :class:`CrashError` the instant the k-th
    edge occurs: *before* the span opens for an enter edge (the work
    the span would cover never starts) and *after* it closes for an
    exit edge (the work completed, the CP died immediately after).
    """

    def __init__(
        self, *, crash_at: int | None = None, config: ObsConfig | None = None
    ) -> None:
        super().__init__(config if config is not None else ObsConfig())
        self.crash_at = crash_at
        self.edges: list[CrashPoint] = []
        #: The crash point that fired, when ``crash_at`` was reached.
        self.crashed: CrashPoint | None = None

    def _edge(self, name: str, edge: str, tags: tuple) -> None:
        point = CrashPoint(index=len(self.edges), name=name, edge=edge, tags=tags)
        self.edges.append(point)
        if self.crash_at is not None and point.index == self.crash_at:
            self.crashed = point
            raise CrashError(f"injected crash at span edge {point.label}")

    def span(self, name: str, **tags: Any) -> Span:
        self._edge(name, EDGE_ENTER, tuple(sorted(tags.items())))
        return super().span(name, **tags)

    def _close_span(self, sp: Span) -> None:
        super()._close_span(sp)
        self._edge(sp.name, EDGE_EXIT, sp.tags)


def record_crash_points(run: Callable[[], Any]) -> list[CrashPoint]:
    """Enumerate every span edge ``run`` emits (a dry run of one CP).

    Installs a recording :class:`CrashTracer` around ``run`` and
    restores whatever tracer was active before, even if ``run`` raises.
    """
    tracer = CrashTracer()
    prev = obs.install_tracer(tracer)
    try:
        run()
    finally:
        obs.install_tracer(prev)
    return tracer.edges


def boundary_enter_index(edges: list[CrashPoint]) -> int | None:
    """Index of the first :data:`BOUNDARY_SPAN` enter edge, if any."""
    for point in edges:
        if point.name == BOUNDARY_SPAN and point.edge == EDGE_ENTER:
            return point.index
    return None


def commit_edge_index(edges: list[CrashPoint]) -> int | None:
    """Index of the ``cp`` exit edge — the modeled superblock switch.

    ``run_cp`` increments its CP counter right after closing the ``cp``
    span, so a crash *at* this edge still recovers to the previous CP,
    while a crash at any later edge (e.g. the enclosing
    ``traffic.step`` exit) lands after the switch: the shadow image has
    been adopted and recovery must land on the *new* CP.
    """
    for point in edges:
        if point.name == "cp" and point.edge == EDGE_EXIT:
            return point.index
    return None
