"""Crashes mid-CP under live multi-tenant traffic.

The explorer sweeps crash points against a quiesced timeline; this
module answers the operational question on top of it: when the system
dies mid-CP *while tenants are still submitting*, what happens to the
ops the QoS layer already admitted but the crashed CP never committed?

The model mirrors a filer's NVRAM-backed op log: admission is durable,
CP commitment is not.  At each crash step the run

1. deep-copies the whole traffic engine *before* the step — the
   pre-crash admission state (queued arrivals, token buckets, QoS
   rejections) that survives in the op log;
2. crashes the live engine at a seeded crash point inside the step via
   :class:`~repro.crash.registry.CrashTracer`;
3. recovers the crashed sim to the last committed CP through the real
   mount path and audits it (invariants + Iron scan + byte-equality);
4. replays the step **twice** from two independent copies of the
   pre-crash state and requires bit-identical outcomes — same admitted
   op counts per tenant, same QoS rejections, same dirtied blocks,
   same CP stats — i.e. every admitted-but-uncommitted op is
   deterministically replayed and every shed op is deterministically
   rejected again;
5. adopts one replay as the continuing timeline and commits.

A nonzero :attr:`CrashUnderLoadReport.ok` failure means either a
recovery violation or a nondeterministic replay, and the ``repro
crash`` CLI exits nonzero on it.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field

from .. import obs
from ..common.errors import CrashError
from ..common.rng import make_rng
from .explorer import crash_recover_verify
from .persistence import PersistenceModel
from .registry import (
    CrashTracer,
    boundary_enter_index,
    commit_edge_index,
    record_crash_points,
)

__all__ = ["CrashUnderLoadReport", "run_crash_under_load"]


@dataclass
class CrashRecord:
    """One mid-step crash: where it hit and how recovery + replay went."""

    step: int
    point_label: str
    in_write_window: bool
    #: Crash landed after the CP's superblock switch within the step.
    post_commit: bool
    torn_pages: tuple[str, ...]
    #: Recovery violations (audit / Iron / byte-equality), empty == clean.
    violations: tuple[str, ...]
    #: Both replays of the pre-crash step produced identical admitted /
    #: rejected / dirtied-block outcomes.
    replay_consistent: bool
    #: Per-tenant ops the replayed CP carried (the admitted-but-
    #: uncommitted ops, now deterministically re-applied).
    replayed_ops: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.replay_consistent and not self.violations

    def row(self) -> str:
        ops = ",".join(f"{k}={v}" for k, v in sorted(self.replayed_ops.items()))
        status = "ok" if self.ok else "FAIL"
        return (
            f"step={self.step} {self.point_label} "
            f"window={int(self.in_write_window)} post={int(self.post_commit)} "
            f"torn={','.join(self.torn_pages) or '-'} ops={ops or '-'} {status}"
        )


@dataclass
class CrashUnderLoadReport:
    """A finished crash-under-load run."""

    scenario: str
    seed: int
    steps: int = 0
    crashes: list[CrashRecord] = field(default_factory=list)
    committed_digests: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.crashes) and all(c.ok for c in self.crashes)

    def digest(self) -> str:
        h = hashlib.sha256()
        h.update(f"{self.scenario}:{self.seed}:{self.steps}".encode())
        for c in self.crashes:
            h.update(c.row().encode())
            h.update(b"|".join(v.encode() for v in c.violations))
        for d in self.committed_digests:
            h.update(d.encode())
        return h.hexdigest()


def _step_fingerprint(engine, stats) -> tuple:
    """Everything a replayed step must reproduce exactly."""
    admitted = {st.spec.name: st.admitted for st in engine.states}
    rejected = {st.spec.name: st.rejected_count() for st in engine.states}
    if stats is None:
        cp = None
    else:
        cp = (
            stats.ops,
            stats.physical_blocks,
            stats.virtual_blocks,
            stats.blocks_freed,
            tuple(sorted(stats.ops_by_source.items())),
        )
    return (tuple(sorted(admitted.items())), tuple(sorted(rejected.items())), cp)


def run_crash_under_load(
    *,
    scenario: str = "noisy-neighbor",
    steps: int = 6,
    crash_every: int = 2,
    seed: int = 0,
    n_tenants: int = 3,
    blocks_per_disk: int = 16384,
) -> CrashUnderLoadReport:
    """Drive a traffic scenario, crashing mid-CP every ``crash_every``
    steps, and verify recovery plus deterministic replay (see module
    docstring).  Fully seeded: same seed, same report digest.
    """
    from ..traffic.engine import TrafficEngine
    from ..traffic.scenarios import (
        build_scenario,
        build_traffic_sim,
        calibrate_capacity,
    )

    if steps <= 0 or crash_every <= 0:
        raise ValueError("steps and crash_every must be positive")
    rng = make_rng(seed)
    sim = build_traffic_sim(n_tenants, blocks_per_disk=blocks_per_disk, seed=seed + 50)
    cal = calibrate_capacity(sim, seed=seed + 51)
    tenants = build_scenario(
        scenario, sim, cal.capacity_ops, n_tenants=n_tenants, seed=seed + 52
    )
    engine = TrafficEngine(sim, tenants)
    model = PersistenceModel(sim, seed=seed)
    report = CrashUnderLoadReport(scenario=scenario, seed=seed)

    for step in range(steps):
        if (step + 1) % crash_every:
            engine.step()
            report.committed_digests.append(model.commit().digest())
            report.steps += 1
            continue

        # The durable pre-crash state: admission queues as the op log
        # left them the instant before the fatal step began.
        pre = copy.deepcopy(engine)
        probe = copy.deepcopy(engine)
        edges = record_crash_points(probe.step)
        window_start = boundary_enter_index(edges)
        commit_idx = commit_edge_index(edges)
        k = int(rng.integers(0, len(edges)))
        point = edges[k]

        tracer = CrashTracer(crash_at=k)
        prev = obs.install_tracer(tracer)
        crashed = False
        try:
            engine.step()
        except CrashError:
            crashed = True
        finally:
            obs.install_tracer(prev)

        post_commit = commit_idx is not None and k > commit_idx
        in_window = (
            not post_commit and window_start is not None and k >= window_start
        )
        recovery, violations = crash_recover_verify(
            model, engine.sim, in_window=in_window, post_commit=post_commit
        )
        if not crashed:
            violations.append(
                f"[{point.label}] crash: injected CrashError never fired under load"
            )

        # Replay the lost step twice from the durable pre-crash state;
        # a deterministic op log must reproduce it bit-identically.
        replay = copy.deepcopy(pre)
        shadow_replay = copy.deepcopy(pre)
        stats = replay.step()
        shadow_stats = shadow_replay.step()
        fp = _step_fingerprint(replay, stats)
        consistent = fp == _step_fingerprint(shadow_replay, shadow_stats)
        replayed_ops = dict(stats.ops_by_source) if stats is not None else {}

        report.crashes.append(
            CrashRecord(
                step=step,
                point_label=point.label,
                in_write_window=in_window,
                post_commit=post_commit,
                torn_pages=tuple(recovery.torn_pages),
                violations=tuple(violations),
                replay_consistent=consistent,
                replayed_ops=replayed_ops,
            )
        )
        # The replayed timeline continues; the crashed engine (recovered
        # but with its in-flight admissions consumed) is discarded.
        engine = replay
        model.sim = engine.sim
        report.committed_digests.append(model.commit().digest())
        report.steps += 1
    return report
