"""One fleet shard: an aggregate-scale simulator driven in epochs.

A :class:`ShardRuntime` wraps a small :class:`~repro.fs.filesystem
.WaflSim` (two SSD RAID groups by default) and drives its tenant
FlexVols with the vectorized multi-tenant traffic engine, one
*scheduling epoch* at a time.  Epoch boundaries are the cluster's
quiesce points: every epoch builds a fresh :class:`~repro.traffic
.engine.TrafficEngine` over the persistent simulator, so volumes can
join (placement), leave (migration), or carry replayed operations in
between — while the CP/allocator substrate ages continuously.

Determinism is the load-bearing property.  A shard's whole history is
a pure function of ``(ShardSpec, placements, epochs)``:

* the testbed build, fill, and calibration derive from the spec seed;
* each tenant's arrival/mix streams derive from
  ``derive_seed(spec.seed, f"{volume}/e{epoch}/...")`` — independent
  of co-tenants, so placing another volume on the shard never perturbs
  an existing tenant's stream;
* admitted-but-unridden operations at an epoch boundary are counted
  into ``carryover`` and re-injected (as already-admitted riders) into
  the next epoch's first CP — on whatever shard the tenant lives by
  then, which is what lets migration drain and replay them exactly.

:func:`_run_shard_task` is the module-level, picklable pool entry
point: it rebuilds the shard from scratch and replays its placements,
so results are byte-identical across process-pool sizes.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from ..analysis import arm_global, disarm_global
from ..common.config import AggregateSpec, SimConfig, TierSpec, VolumeDecl
from ..common.errors import GeometryError
from ..fs.aggregate import PolicyKind
from ..fs.filesystem import WaflSim
from ..fs.flexvol import FlexVol, VolSpec
from ..tiering import media_role
from ..traffic.arrivals import OnOffArrivals, PoissonArrivals
from ..traffic.engine import TenantSpec, TrafficEngine, TrafficResult
from ..traffic.qos import QosLimits
from ..traffic.scenarios import CalibratedService, calibrate_capacity
from ..workloads.aging import fill_volumes, reset_measurement_state
from ..workloads.mixes import UniformOverwriteMix, ZipfOverwriteMix
from .stats import ShardSpec, ShardStats, derive_seed
from .volumes import VolumeRequest

__all__ = ["TENANT_AA_BLOCKS", "ShardRuntime", "digest_of", "_run_shard_task"]

#: RAID-agnostic AA size for cluster FlexVols.  The library default is
#: one whole bitmap block (32768 blocks) — bigger than an entire small
#: tenant volume — so cluster volumes use page-scale AAs instead.
TENANT_AA_BLOCKS = 4096

#: Ops per CP the per-epoch engines target (smaller than the figure
#: benches: cluster shards are deliberately miniature).
_TARGET_OPS_PER_CP = 1024


def digest_of(payload: dict) -> str:
    """Canonical digest of a deterministic JSON payload."""
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class ShardRuntime:
    """One live shard: simulator + calibration + tenant registry."""

    def __init__(self, spec: ShardSpec, *, config: SimConfig | None = None) -> None:
        self.spec = spec
        self.config = config if config is not None else SimConfig.default()
        ssd = spec.media == "ssd"
        tier = TierSpec(
            label=spec.media,
            media=spec.media,
            n_groups=spec.n_groups,
            ndata=spec.ndata,
            blocks_per_disk=spec.blocks_per_disk,
            stripes_per_aa=256,
            erase_block_blocks=512 if ssd else 0,
            program_us_per_block=16.0 if ssd else 0.0,
        )
        phys = spec.physical_blocks
        agg = AggregateSpec(
            tiers=(tier,),
            # The calibration volume: filled at build so the shard has
            # a working set to measure against; never a scheduling
            # target.
            volumes=(
                VolumeDecl(
                    "_sys0",
                    logical_blocks=phys // 4,
                    blocks_per_aa=TENANT_AA_BLOCKS,
                ),
            ),
        )
        self.sim = WaflSim.build(agg, config=self.config, seed=spec.seed)
        fill_volumes(self.sim, ops_per_cp=8192, seed=derive_seed(spec.seed, "fill"))
        self.calibration: CalibratedService = calibrate_capacity(
            self.sim,
            cores=self.config.traffic.cores,
            n_cps=4,
            ops_per_cp=_TARGET_OPS_PER_CP,
            seed=derive_seed(spec.seed, "calibrate"),
        )
        for vol in self.sim.vols.values():
            vol.metafile.bitmap.check = False
        for group in self.sim.store.groups:
            group.metafile.bitmap.check = False
        self._logical_committed = agg.volumes[0].logical_blocks
        #: volume name -> the request that placed it here.
        self.tenants: dict[str, VolumeRequest] = {}
        #: volume name -> admitted ops awaiting replay in the next epoch
        #: (epoch-boundary leftovers and migrated-in drains).
        self.carryover: dict[str, int] = {}
        self.epochs_run = 0
        self.results: list[TrafficResult | None] = []
        self.alive = True

    # ------------------------------------------------------------------
    # Volume lifecycle
    # ------------------------------------------------------------------
    def add_volume(self, request: VolumeRequest) -> FlexVol:
        """Create the tenant's FlexVol live in the running simulator.

        The CP engine shares the ``vols`` dict, so the volume is
        eligible for the next epoch's consistency points immediately.
        """
        if request.name in self.sim.vols:
            raise GeometryError(
                f"shard {self.spec.shard_id}: volume {request.name!r} exists"
            )
        committed = self._logical_committed + request.logical_blocks
        if committed > self.sim.store.nblocks:
            raise GeometryError(
                f"shard {self.spec.shard_id}: volumes would address "
                f"{committed} blocks but the aggregate has only "
                f"{self.sim.store.nblocks}"
            )
        vol = FlexVol(
            VolSpec(
                request.name,
                logical_blocks=request.logical_blocks,
                blocks_per_aa=TENANT_AA_BLOCKS,
            ),
            policy=PolicyKind.CACHE,
            config=self.config,
            seed=derive_seed(self.spec.seed, f"vol/{request.name}"),
        )
        vol.metafile.bitmap.check = False
        self.sim.vols[request.name] = vol
        self._logical_committed = committed
        self.tenants[request.name] = request
        return vol

    def remove_volume(self, name: str) -> VolumeRequest:
        """Drop a tenant (after migration freed its blocks)."""
        request = self.tenants.pop(name)
        del self.sim.vols[name]
        self._logical_committed -= request.logical_blocks
        self.carryover.pop(name, None)
        return request

    # ------------------------------------------------------------------
    # Epoch traffic
    # ------------------------------------------------------------------
    def _tenant_specs(self, epoch: int) -> list[TenantSpec]:
        cap = self.calibration.capacity_ops
        specs: list[TenantSpec] = []
        for name in sorted(self.tenants):
            req = self.tenants[name]
            offered = req.offered_fraction * cap
            arr_seed = derive_seed(self.spec.seed, f"{name}/e{epoch}/arrivals")
            mix_seed = derive_seed(self.spec.seed, f"{name}/e{epoch}/mix")
            if req.profile == "onoff":
                arrivals = OnOffArrivals(
                    offered,
                    mean_on_us=300_000.0,
                    mean_off_us=300_000.0,
                    seed=arr_seed,
                )
            elif req.profile == "victim":
                # Short hard bursts at the ON rate (~8% duty cycle):
                # the burst outruns the SFQ fair share only when the
                # shard also hosts a backlogged aggressor.
                arrivals = OnOffArrivals(
                    offered,
                    mean_on_us=100_000.0,
                    mean_off_us=1_100_000.0,
                    seed=arr_seed,
                )
            else:
                arrivals = PoissonArrivals(offered, seed=arr_seed)
            if req.profile == "victim":
                mix = ZipfOverwriteMix(req.logical_blocks, seed=mix_seed)
            else:
                mix = UniformOverwriteMix(req.logical_blocks, seed=mix_seed)
            qos = (
                QosLimits(iops=req.qos_fraction * cap, iops_burst=32.0)
                if req.qos_fraction is not None
                else None
            )
            specs.append(
                TenantSpec(
                    name=name,
                    volume=name,
                    arrivals=arrivals,
                    mix=mix,
                    qos=qos,
                    queue_depth=req.queue_depth,
                )
            )
        return specs

    def run_epoch(self, n_cps: int | None = None) -> TrafficResult | None:
        """Drive one scheduling epoch of traffic (None if no tenants)."""
        if n_cps is None:
            n_cps = self.config.cluster.epoch_cps
        if not self.tenants:
            self.epochs_run += 1
            self.results.append(None)
            return None
        reset_measurement_state(self.sim)
        engine = TrafficEngine(
            self.sim,
            self._tenant_specs(self.epochs_run),
            target_ops_per_cp=_TARGET_OPS_PER_CP,
            cores=self.config.traffic.cores,
        )
        # Re-inject carried operations as already-admitted riders of the
        # first CP window (arrival/admit at the epoch origin): replayed
        # work is served before the epoch's own arrivals, and its wait
        # shows up in the tenant's latency tail — migration is not free.
        for st in engine.states:
            n = self.carryover.pop(st.spec.name, 0)
            if n:
                st.arrival_chunks.append(np.zeros(n, dtype=np.float64))
                st.deferred_arrays.append(
                    (np.zeros(n, dtype=np.float64), np.zeros(n, dtype=np.float64))
                )
                st.admitted += n
        engine.run(n_cps)
        result = engine.summary()
        # Admitted ops whose CP window never came carry into the next
        # epoch (possibly on another shard, if the tenant migrates).
        for st in engine.states:
            left = int(sum(ts.size for ts, _ in st.deferred_arrays))
            left += len(st.deferred)
            if left:
                self.carryover[st.spec.name] = (
                    self.carryover.get(st.spec.name, 0) + left
                )
        self.epochs_run += 1
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> ShardStats:
        """The scheduler-visible snapshot of this shard right now."""
        store = self.sim.store
        fracs: list[float] = []
        for g in store.groups:
            score = g.cache.best_available_score() if g.cache is not None else None
            fracs.append((score or 0) / g.topology.aa_blocks)
        last = next((r for r in reversed(self.results) if r is not None), None)
        worst = (
            max(t.p99_ms for t in last.tenants.values()) if last is not None else 0.0
        )
        free = int(store.free_count)
        return ShardStats(
            shard_id=self.spec.shard_id,
            total_blocks=int(store.nblocks),
            free_blocks=free,
            projected_free_blocks=free,
            committed_fraction=sum(
                r.offered_fraction for r in self.tenants.values()
            ),
            n_volumes=len(self.tenants),
            media=tuple(m.value for m in store.media_kinds),
            tiers=tuple(
                sorted({media_role(m.value).value for m in store.media_kinds})
            ),
            ndata=self.spec.ndata,
            capacity_ops=self.calibration.capacity_ops,
            aa_free_fraction=sum(fracs) / len(fracs) if fracs else 0.0,
            worst_p99_ms=worst,
            alive=self.alive,
        )

    def payload(self) -> dict:
        """Everything deterministic about this shard's history (the
        unit of the cluster digest; no wall clocks, no host state)."""
        cal = self.calibration
        return {
            "shard": self.spec.shard_id,
            "seed": self.spec.seed,
            "epochs": [
                r.as_dict() if r is not None else None for r in self.results
            ],
            "free_blocks": int(self.sim.store.free_count),
            "used_by_volume": {
                name: int(v.used_blocks)
                for name, v in sorted(self.sim.vols.items())
            },
            "carryover": dict(sorted(self.carryover.items())),
            "calibration": {
                "cpu_us_per_op": cal.cpu_us_per_op,
                "device_us_per_op": cal.device_us_per_op,
                "capacity_ops": cal.capacity_ops,
            },
            "stats": self.stats().as_dict(),
        }

    def digest(self) -> str:
        return digest_of(self.payload())


def _run_shard_task(args: tuple) -> tuple[int, dict]:
    """Picklable pool entry point: rebuild one shard from its spec and
    replay its placement history for ``epochs`` epochs.

    ``args`` is ``(spec, placements, epochs, epoch_cps, audit)`` where
    ``placements`` is a tuple of ``(VolumeRequest, placed_at_epoch)``.
    Shards are fully independent, so byte-identical results across any
    pool size follow from rebuilding rather than sharing state.
    """
    spec, placements, epochs, epoch_cps, audit = args
    if audit:
        arm_global()
    try:
        rt = ShardRuntime(spec)
        for epoch in range(epochs):
            for request, placed_at in placements:
                if placed_at == epoch:
                    rt.add_volume(request)
            rt.run_epoch(epoch_cps)
        payload = rt.payload()
        payload["digest"] = digest_of(payload)
    finally:
        if audit:
            disarm_global()
    return spec.shard_id, payload
