"""Fleet-scale multi-aggregate cluster simulation.

Tens to hundreds of aggregate-scale simulators ("shards") run as
independent members of one fleet, hosting thousands of tenant FlexVols
driven by the vectorized traffic engine.  The package layers on top of
everything below it:

* :mod:`~repro.cluster.stats` — shard identities (picklable specs) and
  the scheduler-visible stats snapshot, with the fleet seed derivation.
* :mod:`~repro.cluster.volumes` — tenant volume requests and
  deterministic fleet builders (including the noisy-neighbor fleet).
* :mod:`~repro.cluster.scheduler` — the Cinder-style filter/weigher
  volume scheduler and the seeded random control arm.
* :mod:`~repro.cluster.shard` — one live shard: simulator, calibration,
  epoch traffic, carryover, and the picklable pool replay task.
* :mod:`~repro.cluster.cluster` — the fleet: scheduling rounds with
  stats refreshes, full-replay evaluation (byte-identical across
  worker counts), and the ``cluster`` bench experiment.
* :mod:`~repro.cluster.migration` — online volume migration with drain
  and replay, block-conservation checks, audits, and Iron scans.
* :mod:`~repro.cluster.chaos` — the aggregate-kill drill: evacuate a
  dead shard through the scheduler under live traffic.
"""

from .chaos import ChaosReport, run_cluster_chaos
from .cluster import Cluster, ClusterResult, make_shard_specs, run_cluster_bench
from .migration import MigrationReport, migrate_volume, run_rebalance
from .scheduler import (
    AAPressureWeigher,
    CapacityFilter,
    FilterScheduler,
    FreeSpaceWeigher,
    HeadroomWeigher,
    MediaTypeFilter,
    TierFilter,
    Placement,
    QosHeadroomFilter,
    RaidGeometryFilter,
    RandomPlacer,
    TailLatencyWeigher,
)
from .shard import ShardRuntime
from .stats import ShardSpec, ShardStats, derive_seed
from .volumes import VolumeRequest, fleet_requests, noisy_fleet_requests

__all__ = [
    "AAPressureWeigher",
    "CapacityFilter",
    "ChaosReport",
    "Cluster",
    "ClusterResult",
    "FilterScheduler",
    "FreeSpaceWeigher",
    "HeadroomWeigher",
    "MediaTypeFilter",
    "TierFilter",
    "MigrationReport",
    "Placement",
    "QosHeadroomFilter",
    "RaidGeometryFilter",
    "RandomPlacer",
    "ShardRuntime",
    "ShardSpec",
    "ShardStats",
    "TailLatencyWeigher",
    "VolumeRequest",
    "derive_seed",
    "fleet_requests",
    "make_shard_specs",
    "migrate_volume",
    "noisy_fleet_requests",
    "run_cluster_bench",
    "run_cluster_chaos",
    "run_rebalance",
]
