"""Online volume migration between live shards.

Migration happens at an epoch boundary — the cluster's quiesce point.
By then every operation the tenant admitted has either ridden a CP
(its writes are durable in the source volume's ``l2v`` map) or sits in
the shard's ``carryover`` counter (admitted, not yet served).  Moving
a volume is therefore exact:

1. **Drain**: take the tenant's carryover off the source shard; those
   operations replay on the target in its next epoch, paying their
   queueing delay there.
2. **Copy**: one CP on the target writes every *mapped* logical block
   of the source volume into a fresh FlexVol — new physical homes via
   the target's own write allocator, like any other CP traffic.
3. **Release**: one CP on the source deletes the same logical blocks;
   the CP boundary applies the delayed frees, so the source's free
   count rises by exactly the mapped block count.

Step 3's equality is *block conservation* and is always checked; with
``audit=True`` the cross-layer invariant auditor and a WAFL Iron scan
additionally vouch for both aggregates afterwards.

:func:`run_rebalance` is the CLI-facing demo: run a small fleet hot,
pick the worst-loaded shard's heaviest tenant, let the filter/weigher
scheduler choose a better home, migrate under live traffic, and report
before/after tails.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..analysis import audit_sim
from ..common.config import SimConfig
from ..fs import iron
from ..fs.cp import CPBatch
from .scheduler import FilterScheduler
from .shard import ShardRuntime

__all__ = ["MigrationReport", "migrate_volume", "run_rebalance"]


@dataclass(frozen=True)
class MigrationReport:
    """What one migration did, and the evidence it was safe."""

    volume: str
    source_shard: int
    target_shard: int
    #: Mapped logical blocks written into the target volume.
    blocks_copied: int
    #: Physical blocks the source aggregate got back (must equal
    #: ``blocks_copied`` — block conservation).
    blocks_freed: int
    #: Admitted-but-unserved ops drained from the source...
    ops_drained: int
    #: ...and queued for replay in the target's next epoch.
    ops_replayed: int
    #: Iron findings across both aggregates after the move (0 = clean).
    iron_findings: int
    #: Invariant-auditor checks passed across both sims (0 if skipped).
    audit_checks: int

    def as_dict(self) -> dict:
        return asdict(self)


def migrate_volume(
    source: ShardRuntime,
    target: ShardRuntime,
    name: str,
    *,
    audit: bool = True,
) -> MigrationReport:
    """Move tenant ``name`` from ``source`` to ``target`` at an epoch
    boundary, verifying block conservation (and optionally auditing
    both aggregates)."""
    if name not in source.tenants:
        raise KeyError(f"shard {source.spec.shard_id} hosts no volume {name!r}")
    request = source.tenants[name]
    vol = source.sim.vols[name]
    drain = source.carryover.get(name, 0)
    mapped = np.nonzero(vol.l2v >= 0)[0]

    target.add_volume(request)
    target.sim.engine.run_cp(
        CPBatch(writes={name: mapped}, ops=int(mapped.size))
    )

    free_before = int(source.sim.store.free_count)
    source.sim.engine.run_cp(CPBatch(writes={}, deletes={name: mapped}))
    freed = int(source.sim.store.free_count) - free_before
    source.remove_volume(name)
    if freed != int(mapped.size):
        raise AssertionError(
            f"block conservation violated migrating {name!r}: copied "
            f"{int(mapped.size)} blocks but source freed {freed}"
        )
    if drain:
        target.carryover[name] = target.carryover.get(name, 0) + drain

    checks = 0
    findings = 0
    if audit:
        for rt in (source, target):
            report = audit_sim(rt.sim)
            report.raise_if_failed()
            checks += report.checks_run
            findings += len(iron.scan(rt.sim).findings)
        target.sim.vols[name].verify_consistency()
    return MigrationReport(
        volume=name,
        source_shard=source.spec.shard_id,
        target_shard=target.spec.shard_id,
        blocks_copied=int(mapped.size),
        blocks_freed=freed,
        ops_drained=drain,
        ops_replayed=drain,
        iron_findings=findings,
        audit_checks=checks,
    )


def run_rebalance(
    *,
    n_shards: int = 4,
    tenants_per_shard: int = 3,
    seed: int = 77,
    epoch_cps: int | None = None,
    config: SimConfig | None = None,
) -> dict:
    """Hot-spot rebalancing demo on in-process shards.

    Builds a small fleet, front-loads every tenant onto the low shards
    (a deliberately bad initial placement), runs an epoch, then moves
    the busiest shard's heaviest tenant to the shard the filter/weigher
    scheduler picks, and runs another epoch.  Returns a deterministic
    report: the migration evidence plus worst-p99 per shard before and
    after."""
    from .cluster import make_shard_specs
    from .volumes import noisy_fleet_requests
    from .stats import derive_seed

    cfg = config if config is not None else SimConfig.default()
    if epoch_cps is None:
        epoch_cps = cfg.cluster.epoch_cps
    specs = make_shard_specs(n_shards, seed=seed, config=cfg)
    shards = {s.shard_id: ShardRuntime(s, config=cfg) for s in specs}
    requests = noisy_fleet_requests(
        n_shards * tenants_per_shard, seed=derive_seed(seed, "fleet")
    )
    # Bad placement on purpose: pack sequentially, so aggressors and
    # victims pile onto the first shards.
    packed = n_shards // 2 or 1
    for i, request in enumerate(requests):
        shards[i % packed].add_volume(request)
    for rt in shards.values():
        rt.run_epoch(epoch_cps)

    before = {sid: rt.stats() for sid, rt in shards.items()}
    busiest = max(before.values(), key=lambda s: (s.worst_p99_ms, -s.shard_id))
    source = shards[busiest.shard_id]
    mover_name = max(
        source.tenants, key=lambda n: (source.tenants[n].offered_fraction, n)
    )
    candidates = [
        before[sid] for sid in sorted(shards) if sid != source.spec.shard_id
    ]
    scheduler = FilterScheduler(config=cfg)
    decision = scheduler.place(source.tenants[mover_name], candidates)
    report = migrate_volume(source, shards[decision.shard_id], mover_name)

    for rt in shards.values():
        rt.run_epoch(epoch_cps)
    after = {sid: rt.stats() for sid, rt in shards.items()}
    return {
        "migration": report.as_dict(),
        "worst_p99_before": {
            sid: before[sid].worst_p99_ms for sid in sorted(before)
        },
        "worst_p99_after": {
            sid: after[sid].worst_p99_ms for sid in sorted(after)
        },
        "free_blocks_after": {
            sid: shards[sid].stats().free_blocks for sid in sorted(shards)
        },
    }
