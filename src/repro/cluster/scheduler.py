"""Cinder-style filter/weigher volume scheduler.

Placement runs in two pluggable stages, the same architecture
OpenStack Cinder uses for its volume scheduler:

1. **Filters** prune: every candidate shard must pass every filter
   (capacity with slack, media family, service-tier role, RAID
   geometry, QoS headroom).
2. **Weighers** rank: each weigher scores the survivors, the scores
   are min–max normalized to [0, 1] per weigher, and a weighted sum
   (per-weigher multipliers from :class:`~repro.common.config
   .ClusterConfig`) orders the candidates.

The winner is the highest-weight survivor; ties break on the lower
``shard_id``, so a placement is a pure function of the request and the
stats snapshot — independent of candidate iteration order, worker
count, or dict ordering.  :class:`RandomPlacer` is the control arm for
the placement-quality experiment: seeded uniform choice among the
shards that merely *fit* the volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..common.config import ClusterConfig, SimConfig
from ..common.errors import PlacementError
from ..common.rng import make_rng
from .stats import ShardStats
from .volumes import VolumeRequest

__all__ = [
    "Filter",
    "Weigher",
    "CapacityFilter",
    "MediaTypeFilter",
    "TierFilter",
    "RaidGeometryFilter",
    "QosHeadroomFilter",
    "FreeSpaceWeigher",
    "AAPressureWeigher",
    "HeadroomWeigher",
    "TailLatencyWeigher",
    "Placement",
    "FilterScheduler",
    "RandomPlacer",
]


class Filter(Protocol):
    """Prunes candidate shards; all filters must pass."""

    name: str

    def passes(self, request: VolumeRequest, stats: ShardStats) -> bool: ...


class Weigher(Protocol):
    """Scores surviving shards; higher raw score = better candidate."""

    name: str

    def weigh(self, request: VolumeRequest, stats: ShardStats) -> float: ...


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------


class CapacityFilter:
    """The volume's logical size must fit in the shard's projected free
    space, with slack held back for COW churn and metadata."""

    name = "capacity"

    def __init__(self, slack: float = 0.9) -> None:
        self.slack = float(slack)

    def passes(self, request: VolumeRequest, stats: ShardStats) -> bool:
        return request.logical_blocks <= stats.projected_free_blocks * self.slack


class MediaTypeFilter:
    """A requested media family must be present on the shard."""

    name = "media"

    def passes(self, request: VolumeRequest, stats: ShardStats) -> bool:
        return request.media is None or request.media in stats.media


class TierFilter:
    """A requested service-tier role (:class:`repro.tiering.Tier`) must
    be among the roles the shard's media can fill (what the shard
    advertises via :func:`repro.tiering.serviceable_tiers`)."""

    name = "tier"

    def passes(self, request: VolumeRequest, stats: ShardStats) -> bool:
        return request.tier is None or request.tier in stats.tiers


class RaidGeometryFilter:
    """The shard's RAID groups must be at least ``min_ndata`` wide."""

    name = "raid"

    def passes(self, request: VolumeRequest, stats: ShardStats) -> bool:
        return stats.ndata >= request.min_ndata


class QosHeadroomFilter:
    """Total committed offered load (fractions of calibrated capacity)
    must stay under the oversubscription headroom after placement."""

    name = "qos-headroom"

    def __init__(self, headroom: float = 3.0) -> None:
        self.headroom = float(headroom)

    def passes(self, request: VolumeRequest, stats: ShardStats) -> bool:
        return (
            stats.committed_fraction + request.offered_fraction <= self.headroom
        )


# ----------------------------------------------------------------------
# Weighers (raw scores; the scheduler normalizes per weigher)
# ----------------------------------------------------------------------


class FreeSpaceWeigher:
    """Prefer shards with more projected free space (fraction of total,
    so differently sized shards compare fairly)."""

    name = "free-space"

    def weigh(self, request: VolumeRequest, stats: ShardStats) -> float:
        if stats.total_blocks <= 0:
            return 0.0
        return stats.projected_free_blocks / stats.total_blocks


class AAPressureWeigher:
    """Prefer shards whose AA caches still surface emptier allocation
    areas (the TopAA/HBPS best-available score): low scores mean every
    write pays the fragmented-AA tax regardless of load."""

    name = "aa-pressure"

    def weigh(self, request: VolumeRequest, stats: ShardStats) -> float:
        return stats.aa_free_fraction


class HeadroomWeigher:
    """Prefer shards with less committed offered load.  Commitment is
    *provisioned*, not measured, so this steers placements away from a
    shard the moment an aggressor lands on it — one refresh earlier
    than any measured signal can."""

    name = "headroom"

    def weigh(self, request: VolumeRequest, stats: ShardStats) -> float:
        return -stats.committed_fraction


class TailLatencyWeigher:
    """Prefer shards with a low measured worst-tenant p99 from the last
    epoch — the direct noisy-neighbor signal: a shard hosting a
    saturating tenant shows it here before free space moves at all."""

    name = "tail-latency"

    def weigh(self, request: VolumeRequest, stats: ShardStats) -> float:
        return -stats.worst_p99_ms


@dataclass(frozen=True)
class Placement:
    """One scheduling decision, with its audit trail."""

    volume: str
    shard_id: int
    #: Final combined weight of the winner.
    weight: float
    #: Shards that survived filtering (sorted ids).
    candidates: tuple[int, ...]
    #: ``filter name -> shard ids it rejected`` (sorted).
    rejected: dict[str, tuple[int, ...]]


def _default_filters(cfg: ClusterConfig) -> list:
    return [
        CapacityFilter(cfg.capacity_slack),
        MediaTypeFilter(),
        TierFilter(),
        RaidGeometryFilter(),
        QosHeadroomFilter(cfg.headroom_fraction),
    ]


def _default_weighers(cfg: ClusterConfig) -> list[tuple[object, float]]:
    return [
        (FreeSpaceWeigher(), cfg.free_space_weight),
        (AAPressureWeigher(), cfg.aa_pressure_weight),
        (HeadroomWeigher(), cfg.headroom_weight),
        (TailLatencyWeigher(), cfg.tail_latency_weight),
    ]


class FilterScheduler:
    """Filter then weigh; deterministic tie-break on ``shard_id``."""

    name = "filter-weigher"

    def __init__(
        self,
        filters: Sequence[Filter] | None = None,
        weighers: Sequence[tuple[Weigher, float]] | None = None,
        *,
        config: SimConfig | None = None,
    ) -> None:
        cfg = (config if config is not None else SimConfig.default()).cluster
        self.filters = list(filters) if filters is not None else _default_filters(cfg)
        self.weighers = (
            list(weighers) if weighers is not None else _default_weighers(cfg)
        )

    def place(
        self, request: VolumeRequest, stats: Sequence[ShardStats]
    ) -> Placement:
        """Pick the shard for one request and project the placement
        into the winner's stats snapshot."""
        ordered = sorted(
            (s for s in stats if s.alive), key=lambda s: s.shard_id
        )
        rejected: dict[str, list[int]] = {f.name: [] for f in self.filters}
        survivors: list[ShardStats] = []
        for s in ordered:
            ok = True
            for f in self.filters:
                if not f.passes(request, s):
                    rejected[f.name].append(s.shard_id)
                    ok = False
                    break
            if ok:
                survivors.append(s)
        if not survivors:
            detail = ", ".join(
                f"{name} rejected {ids}" for name, ids in rejected.items() if ids
            )
            raise PlacementError(
                f"no shard passes all filters for {request.name!r} "
                f"({detail or 'no live shards'})"
            )
        # Min–max normalize each weigher across the survivors (the
        # Cinder convention: a weigher with no spread contributes
        # equally to everyone), then combine with multipliers.
        weights = [0.0] * len(survivors)
        for weigher, mult in self.weighers:
            raw = [weigher.weigh(request, s) for s in survivors]
            lo, hi = min(raw), max(raw)
            span = hi - lo
            for i, r in enumerate(raw):
                norm = (r - lo) / span if span > 0.0 else 1.0
                weights[i] += mult * norm
        best_i = min(
            range(len(survivors)),
            key=lambda i: (-weights[i], survivors[i].shard_id),
        )
        winner = survivors[best_i]
        winner.note_placement(request)
        return Placement(
            volume=request.name,
            shard_id=winner.shard_id,
            weight=weights[best_i],
            candidates=tuple(s.shard_id for s in survivors),
            rejected={
                name: tuple(ids) for name, ids in rejected.items() if ids
            },
        )


class RandomPlacer:
    """Control arm: seeded uniform choice among shards that merely fit
    (capacity filter only).  Deterministic given seed and call order."""

    name = "random"

    def __init__(
        self, *, seed: int = 0, config: SimConfig | None = None
    ) -> None:
        cfg = (config if config is not None else SimConfig.default()).cluster
        self._fit = CapacityFilter(cfg.capacity_slack)
        self.rng = make_rng(seed)

    def place(
        self, request: VolumeRequest, stats: Sequence[ShardStats]
    ) -> Placement:
        survivors = sorted(
            (s for s in stats if s.alive and self._fit.passes(request, s)),
            key=lambda s: s.shard_id,
        )
        if not survivors:
            raise PlacementError(
                f"no live shard has capacity for {request.name!r}"
            )
        winner = survivors[int(self.rng.integers(len(survivors)))]
        winner.note_placement(request)
        return Placement(
            volume=request.name,
            shard_id=winner.shard_id,
            weight=0.0,
            candidates=tuple(s.shard_id for s in survivors),
            rejected={},
        )
