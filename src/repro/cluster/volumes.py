"""Tenant volume requests and fleet request builders.

A :class:`VolumeRequest` is what arrives at the cluster scheduler: a
named FlexVol of a given size with a traffic *profile* (which arrival
process and op mix the tenant will run), an offered-load fraction, and
optional placement constraints (media family, minimum RAID width, QoS
contract).  Requests are frozen dataclasses of primitives so they
pickle across the shard process pool and serialize into result JSON.

The builders produce deterministic fleets from one seed: a plain
mixed fleet (:func:`fleet_requests`) and the noisy-neighbor fleet
(:func:`noisy_fleet_requests`) the placement-quality experiment uses —
unthrottled aggressors that saturate whatever shard they land on,
QoS-protected victims whose tail latency measures placement quality,
and bursty/moderate bystanders filling out the population.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..common.rng import make_rng
from ..tiering import Tier

__all__ = ["PROFILES", "VolumeRequest", "fleet_requests", "noisy_fleet_requests"]

#: Tenant traffic shapes a shard knows how to drive (see
#: :meth:`repro.cluster.shard.ShardRuntime._tenant_specs`).
PROFILES = ("uniform", "aggressor", "victim", "onoff")


@dataclass(frozen=True)
class VolumeRequest:
    """One tenant volume awaiting placement on some shard."""

    name: str
    logical_blocks: int
    #: Offered load as a fraction of the *hosting* shard's calibrated
    #: capacity (an aggressor offers >1: it saturates any shard).
    offered_fraction: float = 0.05
    profile: str = "uniform"
    #: Required media family (``None`` = any).
    media: str | None = None
    #: Required service-tier role (a :class:`repro.tiering.Tier`
    #: value string, e.g. ``Tier.FAST.value``; ``None`` = any role).
    tier: str | None = None
    #: Minimum data disks per RAID group on the hosting shard.
    min_ndata: int = 0
    #: IOPS cap as a fraction of the hosting shard's capacity
    #: (``None`` = unthrottled).
    qos_fraction: float | None = None
    #: Bounded admission queue depth (``None`` = unbounded).
    queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; pick one of {PROFILES}"
            )
        if self.logical_blocks <= 0:
            raise ValueError("logical_blocks must be positive")
        if self.offered_fraction <= 0:
            raise ValueError("offered_fraction must be positive")
        if self.tier is not None and self.tier not in {t.value for t in Tier}:
            raise ValueError(
                f"unknown tier role {self.tier!r}; pick a "
                f"repro.tiering.Tier value"
            )

    def as_dict(self) -> dict:
        return asdict(self)


def fleet_requests(
    n: int, *, logical_blocks: int = 640, seed: int = 0
) -> list[VolumeRequest]:
    """``n`` plain tenants with deterministically varied sizes/loads.

    Sizes vary ±25% and offered loads span 2–8% of shard capacity, so
    capacity and headroom weighing have real differences to act on.
    """
    rng = make_rng(seed)
    sizes = rng.integers(
        int(logical_blocks * 0.75), int(logical_blocks * 1.25) + 1, size=n
    )
    loads = rng.uniform(0.02, 0.08, size=n)
    return [
        VolumeRequest(
            name=f"vol{i:04d}",
            logical_blocks=int(sizes[i]),
            offered_fraction=float(loads[i]),
        )
        for i in range(n)
    ]


def noisy_fleet_requests(
    n: int, *, logical_blocks: int = 640, seed: int = 0
) -> list[VolumeRequest]:
    """The placement-quality fleet: one aggressor and one victim per
    eight tenants, one on/off burster per eight, moderates in between.

    The aggressor offers 1.2x whatever shard hosts it (unthrottled),
    so a shard with two aggressors is deeply saturated while a shard
    with none idles — exactly the contrast where filter/weigher
    placement beats random placement on the victims' p99.
    """
    rng = make_rng(seed)
    sizes = rng.integers(
        int(logical_blocks * 0.75), int(logical_blocks * 1.25) + 1, size=n
    )
    loads = rng.uniform(0.02, 0.06, size=n)
    out: list[VolumeRequest] = []
    for i in range(n):
        name = f"vol{i:04d}"
        size = int(sizes[i])
        slot = i % 8
        if slot == 0:
            out.append(
                VolumeRequest(
                    name=name,
                    logical_blocks=size,
                    offered_fraction=1.2,
                    profile="aggressor",
                )
            )
        elif slot == 1:
            # Victims burst: offered_fraction is the ON-period rate
            # (~8% duty cycle, so the mean load is modest).  The burst
            # exceeds the SFQ fair share only on a shard that also
            # hosts a persistently backlogged aggressor, so victim p99
            # measures exactly what placement controls.  The bounded
            # admission queue caps the damage (and gives the chaos
            # drill its p99 bound).
            out.append(
                VolumeRequest(
                    name=name,
                    logical_blocks=size,
                    offered_fraction=0.6,
                    profile="victim",
                    queue_depth=64,
                )
            )
        elif slot == 2:
            out.append(
                VolumeRequest(
                    name=name,
                    logical_blocks=size,
                    offered_fraction=0.15,
                    profile="onoff",
                )
            )
        else:
            out.append(
                VolumeRequest(
                    name=name,
                    logical_blocks=size,
                    offered_fraction=float(loads[i]),
                )
            )
    return out
