"""Shard descriptions and the per-shard statistics the scheduler reads.

A *shard* is one aggregate-scale simulator (a :class:`~repro.fs
.filesystem.WaflSim` with its own RAID groups, calibration volume, and
tenant FlexVols) running as an independent member of a fleet.  Two
shapes cross the process boundary:

* :class:`ShardSpec` — the immutable, picklable identity of a shard.
  A pool worker rebuilds the *entire* shard from its spec plus the
  placement list, so results are byte-identical regardless of which
  worker (or how many workers) ran it.
* :class:`ShardStats` — the mutable snapshot the filter/weigher
  scheduler consumes: capacity, free space, allocation-area pressure
  (the AA cache's best available score), QoS commitment, and the worst
  measured tenant tail from the last scheduling epoch.  The Cinder
  analogy: what a volume driver reports to the scheduler between
  placement rounds.

Seeds derive with the same crc32 construction the bench runner uses,
so a shard's stream depends only on its own identity — never on which
co-tenants landed elsewhere in the fleet.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, field

__all__ = ["derive_seed", "ShardSpec", "ShardStats"]


def derive_seed(base: int, key: str) -> int:
    """Deterministic child seed: stable across processes and runs
    (same construction as the bench runner's per-unit seeds)."""
    return (base * 1_000_003 + zlib.crc32(key.encode())) & 0x7FFFFFFF


@dataclass(frozen=True)
class ShardSpec:
    """Immutable, picklable identity of one fleet shard."""

    shard_id: int
    #: Root seed of everything stochastic on this shard (build, fill,
    #: calibration, tenant streams) via :func:`derive_seed`.
    seed: int
    blocks_per_disk: int = 4096
    n_groups: int = 2
    ndata: int = 4
    #: Media family of every RAID group (a :class:`~repro.fs.aggregate
    #: .MediaType` value string, kept primitive for pickling).
    media: str = "ssd"

    @property
    def physical_blocks(self) -> int:
        return self.n_groups * self.ndata * self.blocks_per_disk


@dataclass
class ShardStats:
    """One shard's scheduler-visible state between placement rounds."""

    shard_id: int
    total_blocks: int
    #: Measured free blocks at the last stats refresh.
    free_blocks: int
    #: Free blocks net of placements made since the refresh (the
    #: scheduler decrements this as it places within a round).
    projected_free_blocks: int
    #: Sum of placed tenants' offered load, as a fraction of this
    #: shard's calibrated capacity (the QoS-headroom commitment).
    committed_fraction: float
    n_volumes: int
    media: tuple[str, ...]
    ndata: int
    #: Calibrated backend saturation throughput (ops/s).
    capacity_ops: float
    #: Best available AA score across the aggregate's caches, as a
    #: fraction of AA size — the TopAA/HBPS view of allocation-area
    #: pressure (lower = more fragmented).
    aa_free_fraction: float
    #: Service-tier roles this shard's media can fill (sorted
    #: :class:`repro.tiering.Tier` value strings).
    tiers: tuple[str, ...] = ()
    #: Worst per-tenant p99 measured in the last epoch (ms; 0 = idle).
    worst_p99_ms: float = 0.0
    #: Dead shards (chaos kills) are never scheduling candidates.
    alive: bool = True
    #: Volumes placed here, in placement order (scheduler bookkeeping).
    placed: list[str] = field(default_factory=list)

    def note_placement(self, request) -> None:
        """Project a placement into this snapshot so later placements
        in the same round see the shard as fuller and busier."""
        self.projected_free_blocks -= request.logical_blocks
        self.committed_fraction += request.offered_fraction
        self.n_volumes += 1
        self.placed.append(request.name)

    def as_dict(self) -> dict:
        d = asdict(self)
        d["media"] = list(self.media)
        d["tiers"] = list(self.tiers)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ShardStats":
        d = dict(d)
        d["media"] = tuple(d["media"])
        d["tiers"] = tuple(d.get("tiers", ()))
        return cls(**d)
