"""Shard-level chaos: kill an aggregate mid-run, reschedule its tenants.

The fleet-scale fault drill, riding on :mod:`repro.faults`-style disk
failures: after an epoch of live traffic, one shard hosting an
aggressor "dies" — a disk fails in every RAID group (within the parity
budget, so its data stays reconstructible) and the shard is marked
dead, which removes it from every future scheduling decision.  Its
tenants evacuate through the ordinary machinery: the filter/weigher
scheduler picks new homes among the *surviving* shards and
:func:`~repro.cluster.migration.migrate_volume` moves each volume —
reads off the degraded groups reconstruct through parity, block
conservation is checked per move, and both aggregates are audited and
Iron-scanned.  A final epoch then shows the fleet absorbed the loss:
the QoS-protected victims' p99 stays under their admission-queue bound
(``queue_depth / qos_iops``), even for victims that just moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.config import SimConfig
from ..common.errors import PlacementError
from .cluster import make_shard_specs
from .migration import MigrationReport, migrate_volume
from .scheduler import FilterScheduler
from .shard import ShardRuntime
from .stats import derive_seed
from .volumes import VolumeRequest, noisy_fleet_requests

__all__ = ["ChaosReport", "run_cluster_chaos"]


@dataclass
class ChaosReport:
    """One aggregate-kill drill, end to end."""

    n_shards: int
    killed_shard: int
    #: volume -> new hosting shard for every evacuated tenant.
    evacuated: dict[str, int]
    migrations: list[MigrationReport]
    #: Per-victim p99 (ms) in the epoch after the kill...
    victim_p99_ms: dict[str, float]
    #: ...and each victim's admission-queue bound (with 20% slack).
    victim_bound_ms: dict[str, float]
    iron_findings: int
    audit_checks: int
    #: Volumes that could not be rehomed (no surviving shard passed
    #: the filters); empty on a healthy drill.
    stranded: list[str] = field(default_factory=list)

    @property
    def victims_bounded(self) -> bool:
        return all(
            self.victim_p99_ms[v] <= self.victim_bound_ms[v]
            for v in self.victim_p99_ms
        )

    def as_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "killed_shard": self.killed_shard,
            "evacuated": dict(sorted(self.evacuated.items())),
            "migrations": [m.as_dict() for m in self.migrations],
            "victim_p99_ms": dict(sorted(self.victim_p99_ms.items())),
            "victim_bound_ms": dict(sorted(self.victim_bound_ms.items())),
            "victims_bounded": self.victims_bounded,
            "iron_findings": self.iron_findings,
            "audit_checks": self.audit_checks,
            "stranded": sorted(self.stranded),
        }


def _pick_kill_shard(
    shards: dict[int, ShardRuntime], requests: list[VolumeRequest]
) -> int:
    """The shard to kill: hosts an aggressor (so the drill moves real
    load), prefers one without a victim (so the bound assertion isolates
    rescheduling effects); deterministic tie-break on shard id."""
    profile = {r.name: r.profile for r in requests}

    def counts(rt: ShardRuntime) -> tuple[int, int]:
        n_agg = sum(1 for n in rt.tenants if profile.get(n) == "aggressor")
        n_vic = sum(1 for n in rt.tenants if profile.get(n) == "victim")
        return n_agg, n_vic

    ranked = sorted(
        (sid for sid, rt in shards.items() if counts(rt)[0] > 0),
        key=lambda sid: (counts(shards[sid])[1], sid),
    )
    if ranked:
        return ranked[0]
    return min(shards)


def run_cluster_chaos(
    *,
    n_shards: int = 6,
    tenants_per_shard: int = 2,
    seed: int = 77,
    epoch_cps: int | None = None,
    config: SimConfig | None = None,
) -> ChaosReport:
    """Kill one aggregate under live traffic and rebalance the fleet."""
    cfg = config if config is not None else SimConfig.default()
    if epoch_cps is None:
        epoch_cps = cfg.cluster.epoch_cps
    specs = make_shard_specs(n_shards, seed=seed, config=cfg)
    shards = {s.shard_id: ShardRuntime(s, config=cfg) for s in specs}
    requests = noisy_fleet_requests(
        n_shards * tenants_per_shard, seed=derive_seed(seed, "fleet")
    )
    scheduler = FilterScheduler(config=cfg)

    # Initial placement against fresh-build stats.
    stats = [shards[sid].stats() for sid in sorted(shards)]
    for request in requests:
        decision = scheduler.place(request, stats)
        shards[decision.shard_id].add_volume(request)
    for sid in sorted(shards):
        shards[sid].run_epoch(epoch_cps)

    # Kill: one disk per RAID group (reconstructible), shard leaves the
    # scheduling pool.
    kill_id = _pick_kill_shard(shards, requests)
    dead = shards[kill_id]
    for g in range(len(dead.sim.store.groups)):
        dead.sim.store.fail_disk(g, 0)
    dead.alive = False

    # Evacuate through the scheduler, heaviest tenants first so the
    # hardest placements see the emptiest fleet.
    survivor_stats = [
        shards[sid].stats() for sid in sorted(shards) if sid != kill_id
    ]
    movers = sorted(
        dead.tenants,
        key=lambda n: (-dead.tenants[n].offered_fraction, n),
    )
    migrations: list[MigrationReport] = []
    evacuated: dict[str, int] = {}
    stranded: list[str] = []
    for name in movers:
        try:
            decision = scheduler.place(dead.tenants[name], survivor_stats)
        except PlacementError:
            stranded.append(name)
            continue
        migrations.append(
            migrate_volume(dead, shards[decision.shard_id], name)
        )
        evacuated[name] = decision.shard_id

    # The fleet runs on without the dead shard.
    for sid in sorted(shards):
        if sid != kill_id:
            shards[sid].run_epoch(epoch_cps)

    victim_p99: dict[str, float] = {}
    victim_bound: dict[str, float] = {}
    for request in requests:
        if request.profile != "victim":
            continue
        home = next(
            (sid for sid, rt in shards.items() if request.name in rt.tenants),
            None,
        )
        if home is None or home == kill_id:
            continue
        rt = shards[home]
        last = next((r for r in reversed(rt.results) if r is not None), None)
        if last is None or request.name not in last.tenants:
            continue
        victim_p99[request.name] = last.tenants[request.name].p99_ms
        # Worst-case drain of a full admission queue at the victim's
        # SFQ fair share (everyone on the shard backlogged), +20%.
        share_ops = rt.calibration.capacity_ops / max(1, len(rt.tenants))
        victim_bound[request.name] = 1.2 * (request.queue_depth / share_ops) * 1e3

    return ChaosReport(
        n_shards=n_shards,
        killed_shard=kill_id,
        evacuated=evacuated,
        migrations=migrations,
        victim_p99_ms=victim_p99,
        victim_bound_ms=victim_bound,
        iron_findings=sum(m.iron_findings for m in migrations),
        audit_checks=sum(m.audit_checks for m in migrations),
        stranded=stranded,
    )
