"""The fleet: shard specs, scheduling rounds, and the cluster bench.

A :class:`Cluster` owns a set of :class:`~repro.cluster.stats
.ShardSpec` identities and a *placement history* — for each shard, the
list of ``(VolumeRequest, placed_at_epoch)`` decisions made so far.
That history is the cluster's entire mutable state: every evaluation
(:meth:`Cluster._run_all`) rebuilds each shard from scratch in a pool
worker and replays its placements, so the fleet digest is a pure
function of ``(specs, placements, epochs)`` — byte-identical across 1,
2, or 8 workers, which the determinism suite asserts.

Scheduling runs in rounds, Cinder style: place a chunk of requests
against the current stats snapshots (the scheduler projects each
placement into its winner so a round is internally consistent), then
*refresh* — run the fleet one more epoch and read back measured stats
(free space after COW churn, AA-cache pressure, worst tenant p99) —
and place the next chunk against reality instead of projections.

:func:`run_cluster_bench` is the ``cluster`` bench experiment: the
same noisy-neighbor fleet placed by the filter/weigher scheduler and
by seeded random placement, comparing victim-tenant p99 (the paper's
noisy-neighbor question at fleet scale), plus a worker-scaling curve
on the deterministic digest.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from ..common.config import SimConfig
from .scheduler import FilterScheduler, Placement, RandomPlacer
from .shard import _run_shard_task, digest_of
from .stats import ShardSpec, ShardStats, derive_seed
from .volumes import VolumeRequest, noisy_fleet_requests

__all__ = ["make_shard_specs", "Cluster", "ClusterResult", "run_cluster_bench"]


def make_shard_specs(
    n_shards: int, *, seed: int, config: SimConfig | None = None
) -> list[ShardSpec]:
    """Shard identities for a fleet: geometry from config, per-shard
    seeds derived from the fleet seed."""
    cfg = (config if config is not None else SimConfig.default()).cluster
    return [
        ShardSpec(
            shard_id=i,
            seed=derive_seed(seed, f"shard{i}"),
            blocks_per_disk=cfg.blocks_per_disk,
            n_groups=cfg.groups_per_shard,
            ndata=cfg.ndata,
        )
        for i in range(n_shards)
    ]


@dataclass
class ClusterResult:
    """A finished fleet evaluation (deterministic payload only)."""

    n_shards: int
    seed: int
    scheduler: str
    epochs: int
    epoch_cps: int
    #: volume name -> hosting shard id.
    placements: dict[str, int]
    #: sha256 over the sorted per-shard digests: the fleet fingerprint.
    digest: str
    shard_digests: dict[int, str]
    #: Final measured stats per shard (``ShardStats.as_dict()``).
    shard_stats: dict[int, dict]
    #: Last-epoch p99 per tenant volume (ms).
    tenant_p99_ms: dict[str, float]
    #: Full per-shard payloads (large; excluded from ``as_dict``).
    payloads: dict[int, dict] = field(repr=False, default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "epochs": self.epochs,
            "epoch_cps": self.epoch_cps,
            "placements": dict(sorted(self.placements.items())),
            "digest": self.digest,
            "shard_digests": {
                str(k): v for k, v in sorted(self.shard_digests.items())
            },
            "tenant_p99_ms": dict(sorted(self.tenant_p99_ms.items())),
        }


def _last_p99s(payloads: dict[int, dict]) -> dict[str, float]:
    """Each tenant's p99 from the last epoch it actually ran in."""
    out: dict[str, float] = {}
    for payload in payloads.values():
        for epoch in payload["epochs"]:
            if epoch is None:
                continue
            for name, summary in epoch["tenants"].items():
                out[name] = summary["p99_ms"]
    return out


class Cluster:
    """A fleet of shards plus its placement history."""

    def __init__(
        self,
        specs: list[ShardSpec],
        *,
        scheduler=None,
        config: SimConfig | None = None,
        workers: int | None = None,
        audit: bool = True,
    ) -> None:
        self.specs = list(specs)
        self.config = config if config is not None else SimConfig.default()
        self.scheduler = (
            scheduler
            if scheduler is not None
            else FilterScheduler(config=self.config)
        )
        self.workers = workers
        self.audit = audit
        self.epoch_cps = self.config.cluster.epoch_cps
        #: shard id -> [(request, placed_at_epoch), ...]
        self.placements: dict[int, list[tuple[VolumeRequest, int]]] = {
            s.shard_id: [] for s in self.specs
        }
        #: volume name -> hosting shard id.
        self.volume_home: dict[str, int] = {}
        self.decisions: list[Placement] = []

    # ------------------------------------------------------------------
    # Evaluation (full replay)
    # ------------------------------------------------------------------
    def _run_all(
        self, epochs: int, workers: int | None = None
    ) -> dict[int, dict]:
        """Rebuild and replay every shard for ``epochs`` epochs."""
        if workers is None:
            workers = self.workers
        tasks = [
            (
                spec,
                tuple(self.placements[spec.shard_id]),
                epochs,
                self.epoch_cps,
                self.audit,
            )
            for spec in self.specs
        ]
        if workers is None or workers <= 1:
            pairs = [_run_shard_task(t) for t in tasks]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                pairs = list(pool.map(_run_shard_task, tasks))
        return dict(sorted(pairs))

    def current_stats(self, epochs: int) -> tuple[list[ShardStats], dict[int, dict]]:
        """Measured stats after replaying ``epochs`` epochs."""
        payloads = self._run_all(epochs)
        stats = [
            ShardStats.from_dict(p["stats"]) for p in payloads.values()
        ]
        return stats, payloads

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _place_one(
        self, request: VolumeRequest, stats: list[ShardStats], epoch: int
    ) -> Placement:
        decision = self.scheduler.place(request, stats)
        self.placements[decision.shard_id].append((request, epoch))
        self.volume_home[request.name] = decision.shard_id
        self.decisions.append(decision)
        return decision

    def schedule(
        self, requests: list[VolumeRequest], *, rounds: int | None = None
    ) -> ClusterResult:
        """Place ``requests`` over ``rounds`` scheduling rounds, with a
        stats refresh (one fleet epoch) between rounds, then run the
        full history and return the deterministic fleet result."""
        if rounds is None:
            rounds = self.config.cluster.rounds
        rounds = max(1, min(rounds, len(requests)))
        stats, _ = self.current_stats(0)
        chunk = (len(requests) + rounds - 1) // rounds
        for k in range(rounds):
            batch = requests[k * chunk : (k + 1) * chunk]
            if k > 0:
                stats, _ = self.current_stats(k)
            for request in batch:
                self._place_one(request, stats, k)
        return self.evaluate(rounds)

    def evaluate(self, epochs: int) -> ClusterResult:
        """Run the placement history for ``epochs`` epochs and package
        the fleet result."""
        payloads = self._run_all(epochs)
        shard_digests = {sid: p["digest"] for sid, p in payloads.items()}
        fleet_digest = digest_of(
            {str(sid): d for sid, d in sorted(shard_digests.items())}
        )
        return ClusterResult(
            n_shards=len(self.specs),
            seed=min(s.seed for s in self.specs) if self.specs else 0,
            scheduler=getattr(self.scheduler, "name", "custom"),
            epochs=epochs,
            epoch_cps=self.epoch_cps,
            placements=dict(self.volume_home),
            digest=fleet_digest,
            shard_digests=shard_digests,
            shard_stats={sid: p["stats"] for sid, p in payloads.items()},
            tenant_p99_ms=_last_p99s(payloads),
            payloads=payloads,
        )


def _victim_mean_p99(
    requests: list[VolumeRequest], result: ClusterResult
) -> float:
    victims = [r.name for r in requests if r.profile == "victim"]
    p99s = [
        result.tenant_p99_ms[v] for v in victims if v in result.tenant_p99_ms
    ]
    return sum(p99s) / len(p99s) if p99s else 0.0


def run_cluster_bench(
    *,
    quick: bool = False,
    seed: int = 77,
    workers: int | None = None,
    audit: bool = True,
    config: SimConfig | None = None,
) -> dict:
    """The ``cluster`` bench experiment payload.

    Places one noisy-neighbor fleet twice — filter/weigher scheduler vs
    seeded random — and compares victim p99; then re-evaluates the
    scheduled fleet at several worker counts, asserting the digest is
    identical while recording the wall-clock scaling curve (the only
    nondeterministic output, reported under ``timing``).
    """
    cfg = config if config is not None else SimConfig.default()
    if quick:
        n_shards, per_shard, worker_points = 8, 3, (1, 2)
    else:
        n_shards, per_shard, worker_points = 64, 16, (1, 8)
    n_volumes = n_shards * per_shard
    requests = noisy_fleet_requests(
        n_volumes, seed=derive_seed(seed, "fleet")
    )
    # The full-size fleet deliberately oversubscribes (every 8-slot
    # cycle offers ~2.2x one shard's capacity); widen the QoS admission
    # bound so the run measures placement quality, not admission
    # control.  The quick fleet stays under the configured bound.
    offered_per_shard = sum(r.offered_fraction for r in requests) / n_shards
    if offered_per_shard * 1.5 > cfg.cluster.headroom_fraction:
        cfg = replace(
            cfg,
            cluster=replace(
                cfg.cluster, headroom_fraction=offered_per_shard * 1.5
            ),
        )
    specs = make_shard_specs(n_shards, seed=seed, config=cfg)

    scheduled_cluster = Cluster(
        specs,
        scheduler=FilterScheduler(config=cfg),
        config=cfg,
        workers=workers,
        audit=audit,
    )
    scheduled = scheduled_cluster.schedule(requests)
    random_cluster = Cluster(
        specs,
        scheduler=RandomPlacer(seed=derive_seed(seed, "random"), config=cfg),
        config=cfg,
        workers=workers,
        audit=audit,
    )
    random_result = random_cluster.schedule(requests, rounds=1)

    scaling = []
    saved_workers = scheduled_cluster.workers
    for w in worker_points:
        scheduled_cluster.workers = w
        t0 = time.perf_counter()
        check = scheduled_cluster.evaluate(scheduled.epochs)
        wall = time.perf_counter() - t0
        if check.digest != scheduled.digest:
            raise AssertionError(
                f"fleet digest changed under workers={w}: "
                f"{check.digest} != {scheduled.digest}"
            )
        total_cps = n_shards * scheduled.epochs * scheduled.epoch_cps
        scaling.append(
            {
                "shards": n_shards,
                "workers": w,
                "wall_s": wall,
                "cps_per_s": total_cps / wall if wall > 0 else 0.0,
            }
        )
    scheduled_cluster.workers = saved_workers
    metrics = {
        "n_shards": n_shards,
        "n_volumes": n_volumes,
        "epochs": scheduled.epochs,
        "epoch_cps": scheduled.epoch_cps,
        "digest": scheduled.digest,
        "digest_random": random_result.digest,
        "placements": scheduled.as_dict()["placements"],
        "victim_p99_ms": _victim_mean_p99(requests, scheduled),
        "victim_p99_ms_random": _victim_mean_p99(requests, random_result),
        "max_volumes_per_shard": max(
            len(v) for v in scheduled_cluster.placements.values()
        ),
    }
    return {"metrics": metrics, "timing": {"scaling": scaling}}
