"""Reproduction of "Efficient Search for Free Blocks in the WAFL File
System" (Kesavan, Curtis-Maury, Bhattacharjee; ICPP 2018).

The public API re-exports the pieces most users need:

* the novel data structures — :class:`~repro.core.hbps.HBPS`, the
  RAID-aware and RAID-agnostic AA caches, TopAA (de)serialization;
* the WAFL-like simulator — :class:`~repro.fs.filesystem.WaflSim` with
  RAID-group / object-store builders, FlexVols, and the CP engine;
* workloads and the aging harness;
* the measurement layer (CPU model, latency-throughput curves).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every evaluation figure.
"""

from .common import (
    BLOCK_SIZE,
    RAID_AGNOSTIC_AA_BLOCKS,
    TETRIS_STRIPES,
    DegradedError,
    FaultError,
    MediaError,
    TransientIOError,
)
from .faults import (
    ChaosScenario,
    FaultInjector,
    FaultKind,
    RecoveryMetrics,
    default_scenario,
    run_chaos,
)
from .core import (
    HBPS,
    AggregateAllocator,
    LinearAATopology,
    LinearAllocator,
    RAIDAgnosticAACache,
    RAIDAwareAACache,
    RAIDGroupAllocator,
    ScoreKeeper,
    StripeAATopology,
    aa_size_for_hdd,
    aa_size_for_smr,
    aa_size_for_ssd,
    aa_size_raid_agnostic,
)
from .fs import (
    CPBatch,
    FlexVol,
    MediaType,
    PolicyKind,
    RAIDGroupConfig,
    VolSpec,
    WaflSim,
    background_rebuild,
    export_topaa,
    simulate_mount,
)
from .sim import CpuModel, MetricsLog, latency_throughput_curve, peak_throughput, system_curve
from .workloads import (
    FileChurnWorkload,
    OLTPWorkload,
    RandomOverwriteWorkload,
    SequentialWriteWorkload,
    age_filesystem,
    reset_measurement_state,
)

__version__ = "1.0.0"

__all__ = [
    "BLOCK_SIZE",
    "RAID_AGNOSTIC_AA_BLOCKS",
    "TETRIS_STRIPES",
    "DegradedError",
    "FaultError",
    "MediaError",
    "TransientIOError",
    "ChaosScenario",
    "FaultInjector",
    "FaultKind",
    "RecoveryMetrics",
    "default_scenario",
    "run_chaos",
    "HBPS",
    "AggregateAllocator",
    "LinearAATopology",
    "LinearAllocator",
    "RAIDAgnosticAACache",
    "RAIDAwareAACache",
    "RAIDGroupAllocator",
    "ScoreKeeper",
    "StripeAATopology",
    "aa_size_for_hdd",
    "aa_size_for_smr",
    "aa_size_for_ssd",
    "aa_size_raid_agnostic",
    "CPBatch",
    "FlexVol",
    "MediaType",
    "PolicyKind",
    "RAIDGroupConfig",
    "VolSpec",
    "WaflSim",
    "background_rebuild",
    "export_topaa",
    "simulate_mount",
    "CpuModel",
    "MetricsLog",
    "latency_throughput_curve",
    "peak_throughput",
    "system_curve",
    "FileChurnWorkload",
    "OLTPWorkload",
    "RandomOverwriteWorkload",
    "SequentialWriteWorkload",
    "age_filesystem",
    "reset_measurement_state",
]
