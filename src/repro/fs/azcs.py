"""Advanced zone checksum (AZCS) device layout.

When a device's sector size aligns exactly to 4 KiB, WAFL cannot tuck
the 64-byte block identifier into per-sector slack; instead "63
consecutive blocks use the 64th as a checksum block" (paper section
3.2.4).  Checksum blocks are not addressable VBNs — they are an
artifact of the device LBA layout: data DBN ``d`` lands at device LBA
``d + d // 63``, and the checksum block of region ``r`` sits at LBA
``64 r + 63``.

Every CP write set must therefore be *expanded*: writing any data
block of a region also writes that region's checksum block.  When an
allocation area is a multiple of 63 data blocks (AZCS-aligned, Figure
4C), a region's data and checksum are always written together in one
sequential pass; otherwise the region straddling the AA boundary gets
its checksum block rewritten later — a random write behind the SMR
zone pointer, which is the cost Figure 9 measures.
"""

from __future__ import annotations

import numpy as np

from ..common.constants import AZCS_DATA_BLOCKS, AZCS_REGION_BLOCKS

__all__ = ["azcs_expand", "azcs_device_blocks"]


def azcs_expand(dbns: np.ndarray) -> np.ndarray:
    """Map sorted data DBNs to the device LBAs written, including the
    checksum block of every touched AZCS region.

    Returns a sorted, unique LBA array.
    """
    dbns = np.asarray(dbns, dtype=np.int64)
    if dbns.size == 0:
        return dbns
    lbas = dbns + dbns // AZCS_DATA_BLOCKS
    regions = np.unique(dbns // AZCS_DATA_BLOCKS)
    checksum_lbas = regions * AZCS_REGION_BLOCKS + (AZCS_REGION_BLOCKS - 1)
    return np.unique(np.concatenate((lbas, checksum_lbas)))


def azcs_device_blocks(data_blocks: int) -> int:
    """Device capacity (in blocks/LBAs) needed to store ``data_blocks``
    data blocks under the AZCS layout."""
    regions = -(-data_blocks // AZCS_DATA_BLOCKS)
    return data_blocks + regions
