"""The consistency point (CP) engine.

"WAFL collects the results of thousands of ... modifying operations and
efficiently flushes the changes to persistent storage ... as one single
transaction known as a consistency point" (paper section 2.1).  The
engine drives one CP at a time:

1. For every volume's batch of dirtied logical blocks: allocate virtual
   VBNs (volume allocator), allocate physical VBNs (store allocator),
   install the new mappings, and log the superseded virtual/physical
   blocks as delayed frees.
2. At the CP boundary: price the CP's device writes, apply delayed
   frees (with SSD trims), flush batched AA-score deltas into the AA
   caches, and drain metafile dirty-block counts — producing one
   :class:`~repro.sim.stats.CPStats` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..common.arrayops import sorted_unique
from ..common.errors import OutOfSpaceError
from ..sim.cpu import CpuModel
from ..sim.stats import CPStats, MetricsLog
from .flexvol import FlexVol

__all__ = ["CPBatch", "CPEngine"]


@dataclass
class CPBatch:
    """One CP's worth of client activity, produced by a workload."""

    #: Per-volume logical block ids dirtied during the interval
    #: (duplicates allowed; overwrites of the same block coalesce).
    writes: dict[str, np.ndarray] = field(default_factory=dict)
    #: Client operations represented by this batch (an 8 KiB op dirties
    #: two 4 KiB blocks, so ops != blocks in general).
    ops: int = 0
    #: Random client read operations during the interval.
    reads: int = 0
    #: Per-volume logical block ids deleted (unmapped without rewrite).
    deletes: dict[str, np.ndarray] = field(default_factory=dict)
    #: Client operations by traffic source (tenant name); empty for
    #: single-source workloads.  Copied verbatim into the CP's
    #: :class:`~repro.sim.stats.CPStats` so multi-tenant schedulers can
    #: charge CP service time back to the tenants that rode in it.
    ops_by_source: dict[str, int] = field(default_factory=dict)


class CPEngine:
    """Runs consistency points against one store and its volumes."""

    #: When set (by :func:`repro.analysis.auditor.arm_global`), every
    #: newly constructed engine calls it to obtain a CP-time auditor.
    #: Kept as a plain class attribute so this module never imports
    #: ``repro.analysis`` (which sits above ``fs`` in the package DAG).
    default_auditor_factory = None

    def __init__(
        self,
        store,
        vols: dict[str, FlexVol],
        *,
        cpu_model: CpuModel | None = None,
        metrics: MetricsLog | None = None,
        auditor=None,
    ) -> None:
        self.store = store
        self.vols = vols
        self.cpu_model = cpu_model or CpuModel()
        self.metrics = metrics if metrics is not None else MetricsLog()
        self._cp_index = 0
        #: CPU spent on AA-cache maintenance alone (0.002%-claim metric).
        self.cache_maintenance_us = 0.0
        #: Optional CP-time auditor with before_cp(engine) /
        #: after_cp(engine, stats) hooks (duck-typed; see
        #: :class:`repro.analysis.auditor.InvariantAuditor`).
        factory = type(self).default_auditor_factory
        self.auditor = auditor if auditor is not None else (
            factory() if factory is not None else None
        )

    # ------------------------------------------------------------------
    @property
    def cp_index(self) -> int:
        """Index the *next* consistency point will run as (== CPs
        committed so far).  The crash-consistency subsystem versions
        its committed metadata images by this counter."""
        return self._cp_index

    def run_cp(self, batch: CPBatch) -> CPStats:
        """Execute one consistency point and record its statistics."""
        obs.set_cp(self._cp_index)
        # The sentinel is the FIRST record appended for this CP: the
        # ring evicts FIFO, so its presence guarantees the CP's records
        # are complete (see repro.obs.report).
        obs.count("cp.begin")
        cp_span = obs.span("cp", cp=self._cp_index, ops=batch.ops)
        cp_span.__enter__()
        if self.auditor is not None:
            self.auditor.before_cp(self)
        virtual_blocks = 0
        tier_policy = self.store.tier_policy
        for name, ids in batch.writes.items():
            vol = self.vols[name]
            ids = sorted_unique(np.asarray(ids, dtype=np.int64))
            if ids.size == 0:
                continue
            with obs.span("cp.allocate", vol=name, blocks=int(ids.size)):
                was_mapped = vol.l2v[ids] >= 0
                new_v, old_v, old_p = vol.stage_writes(ids)
                if tier_policy is not None:
                    # The store's tier policy decides where each block
                    # lands (e.g. Flash Pool: overwritten blocks to the
                    # SSD tier, first writes to the capacity tier).  It
                    # raises OutOfSpaceError itself on shortfall.
                    new_p = tier_policy.place(self.store, name, ids, was_mapped)
                else:
                    new_p = self.store.allocate(int(ids.size))
                    if new_p.size < ids.size:
                        raise OutOfSpaceError(
                            f"aggregate out of space: {new_p.size} of {ids.size} "
                            f"physical blocks allocated for volume {name}"
                        )
                vol.commit_writes(ids, new_v, new_p, old_v)
                self.store.log_free(old_p)
            obs.count("cp.virtual_blocks", int(ids.size), vol=name)
            virtual_blocks += int(ids.size)

        for name, ids in batch.deletes.items():
            vol = self.vols[name]
            ids = sorted_unique(np.asarray(ids, dtype=np.int64))
            if ids.size == 0:
                continue
            old_p = vol.stage_deletes(ids)
            self.store.log_free(old_p)

        if batch.reads:
            self.store.charge_reads(batch.reads)

        # ---- CP boundary -------------------------------------------------
        with obs.span("cp.boundary"):
            store_report = self.store.cp_boundary()
            vol_reports = [vol.cp_boundary() for vol in self.vols.values()]
        if obs.active():
            self._trace_boundary(store_report, zip(self.vols.keys(), vol_reports))

        metafile_blocks = store_report.metafile_blocks + sum(
            r.metafile_blocks for r in vol_reports
        )
        cache_ops = store_report.cache_ops + sum(r.cache_ops for r in vol_reports)
        aa_switches = store_report.aa_switches + sum(r.aa_switches for r in vol_reports)
        spanned = store_report.spanned_blocks + sum(r.spanned_blocks for r in vol_reports)

        stats = CPStats(
            cp_index=self._cp_index,
            ops=batch.ops,
            physical_blocks=store_report.blocks_written,
            virtual_blocks=virtual_blocks,
            blocks_freed=store_report.blocks_freed
            + sum(r.blocks_freed for r in vol_reports),
            metafile_blocks_dirtied=metafile_blocks,
            full_stripes=store_report.full_stripes,
            partial_stripes=store_report.partial_stripes,
            tetrises=store_report.tetrises,
            write_chains=store_report.chains,
            parity_reads=store_report.parity_reads,
            reconstruction_reads=store_report.reconstruction_reads,
            degraded_stripes=store_report.degraded_stripes,
            device_busy_us=store_report.device_busy_us,
            device_total_us=store_report.device_total_us,
            cache_ops=cache_ops,
            aa_switches=aa_switches,
            spanned_blocks=spanned,
            ops_by_source=dict(batch.ops_by_source),
            blocks_by_tier={
                t: r.blocks_written for t, r in store_report.by_tier.items()
            },
            freed_by_tier={
                t: r.blocks_freed for t, r in store_report.by_tier.items()
            },
        )
        stats.cpu_us = self.cpu_model.cp_cpu_us(
            ops=batch.ops,
            blocks=stats.physical_blocks + stats.virtual_blocks,
            metafile_blocks=metafile_blocks,
            aa_switches=aa_switches,
            cache_ops=cache_ops,
            spanned_blocks=spanned,
        )
        self.cache_maintenance_us += self.cpu_model.cache_maintenance_us(cache_ops)
        obs.advance_us(stats.cpu_us)
        cp_span.__exit__(None, None, None)
        self.metrics.add(stats)
        self._cp_index += 1
        if self.auditor is not None:
            self.auditor.after_cp(self, stats)
        return stats

    @staticmethod
    def _trace_boundary(store_report, vol_reports) -> None:
        """Emit the reconciled per-CP counters, attributed by source.

        These intentionally re-count what :class:`CPStats` sums from
        the same reports; the auditor cross-checks the two so a
        drifting instrumentation site fails the audit.
        """
        obs.count("cp.physical_blocks", store_report.blocks_written, where="store")
        obs.count("cp.blocks_freed", store_report.blocks_freed, where="store")
        obs.count("cp.metafile_blocks", store_report.metafile_blocks, where="store")
        obs.count("cp.cache_ops", store_report.cache_ops, where="store")
        obs.count("cp.aa_switches", store_report.aa_switches, where="store")
        obs.count("cp.spanned_blocks", store_report.spanned_blocks, where="store")
        for label, tr in store_report.by_tier.items():
            # Distinct metric names so aggregate-wide sums over the
            # cp.* counters above never double-count the tier slices.
            where = f"tier:{label}"
            obs.count("cp.tier_blocks", tr.blocks_written, where=where)
            obs.count("cp.tier_freed", tr.blocks_freed, where=where)
            obs.count("cp.tier_device_busy_us", int(tr.device_busy_us), where=where)
        for name, r in vol_reports:
            where = f"vol:{name}"
            obs.count("cp.blocks_freed", r.blocks_freed, where=where)
            obs.count("cp.metafile_blocks", r.metafile_blocks, where=where)
            obs.count("cp.cache_ops", r.cache_ops, where=where)
            obs.count("cp.aa_switches", r.aa_switches, where=where)
            obs.count("cp.spanned_blocks", r.spanned_blocks, where=where)
