"""Mount and failover: TopAA-seeded versus full-rebuild cache builds.

"When an aggregate or FlexVol volume is mounted, write allocation
cannot begin until an AA is selected, which in turn requires that AA
caches be operational.  Rebuilding AA caches requires a linear walk of
the bitmap metafiles ... this may take multiple seconds.  Instead,
each WAFL file system instance stores the AA cache structure in a
TopAA metafile." (paper section 3.4)

This module implements both mount paths against a simulator whose
bitmaps represent the persisted state:

* :func:`export_topaa` captures the TopAA metafile image (one 4 KiB
  block per RAID-aware cache with the 512 best AAs; two blocks per
  RAID-agnostic cache embedding the HBPS).
* :func:`simulate_mount` rebuilds every AA cache either from the TopAA
  image (reading 1-2 blocks per file system) or by walking all bitmap
  metafile blocks, swaps the fresh caches into the simulator, and
  reports both measured wall time and modeled read I/O — the
  quantities behind Figure 10's "time for the first CP after boot".
* :func:`background_rebuild` completes a seeded mount: it populates
  the remaining heap-cache AAs and replenishes the HBPS caches with
  exact scores, as WAFL's background scan does while "client
  operations and CPs are sustained for dozens of seconds using the
  seeded AAs".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.heap_cache import RAIDAwareAACache
from ..core.topaa import (
    seed_heap_cache,
    serialize_heap_seed,
    serialize_hbps_cache,
    load_hbps_cache,
)
from .aggregate import RAIDStore
from .filesystem import WaflSim

__all__ = ["TopAAImage", "MountReport", "export_topaa", "simulate_mount", "background_rebuild"]

#: Modeled time to read one 4 KiB metafile block at mount (random read
#: from an HDD/SSD pool amortized over readahead).
DEFAULT_METAFILE_READ_US = 250.0


@dataclass
class TopAAImage:
    """Persisted TopAA metafile contents for one aggregate."""

    #: One 4 KiB block per RAID group (512 best AAs each).
    group_blocks: list[bytes] = field(default_factory=list)
    #: Two 4 KiB blocks per FlexVol (embedded HBPS), by volume name.
    vol_pages: dict[str, bytes] = field(default_factory=dict)
    #: Two blocks for a linear physical store, when present.
    store_pages: bytes | None = None

    @property
    def total_blocks(self) -> int:
        n = len(self.group_blocks) + 2 * len(self.vol_pages)
        if self.store_pages is not None:
            n += 2
        return n


@dataclass
class MountReport:
    """Cost breakdown of one simulated mount."""

    used_topaa: bool = False
    #: 4 KiB blocks read to build the caches (TopAA blocks or the full
    #: bitmap metafile walk).
    blocks_read: int = 0
    #: Wall-clock seconds spent building caches (real work in this
    #: process: bitmap popcount walks vs page decoding).
    build_wall_s: float = 0.0
    #: Modeled read-I/O time for those blocks.
    modeled_read_us: float = 0.0
    #: Caches built (RAID groups + volumes + linear store).
    caches_built: int = 0

    @property
    def modeled_total_us(self) -> float:
        """Modeled time-to-first-CP contribution of cache building."""
        return self.modeled_read_us


def export_topaa(sim: WaflSim) -> TopAAImage:
    """Capture the TopAA metafile image of a running system.

    WAFL updates these blocks as part of normal CPs; capturing at an
    arbitrary CP boundary is therefore representative.
    """
    image = TopAAImage()
    store = sim.store
    if isinstance(store, RAIDStore):
        for g in store.groups:
            image.group_blocks.append(serialize_heap_seed(g.keeper.scores))
    elif getattr(store, "cache", None) is not None:
        image.store_pages = serialize_hbps_cache(store.cache)
    for name, vol in sim.vols.items():
        if vol.cache is not None:
            image.vol_pages[name] = serialize_hbps_cache(vol.cache)
    return image


def simulate_mount(
    sim: WaflSim,
    image: TopAAImage | None,
    *,
    metafile_read_us: float = DEFAULT_METAFILE_READ_US,
) -> MountReport:
    """Rebuild all AA caches as a mount would and install them.

    With ``image`` the TopAA path is taken (read 1 block per RAID
    group, 2 per volume); with ``None`` every bitmap metafile block is
    walked to recompute scores.  Only cache-backed stores/volumes are
    rebuilt (baseline policies have no mount cost).
    """
    report = MountReport(used_topaa=image is not None)
    t0 = time.perf_counter()
    store = sim.store
    if isinstance(store, RAIDStore):
        for gi, g in enumerate(store.groups):
            if g.cache is None:
                continue
            if image is not None:
                cache = seed_heap_cache(g.topology.num_aas, image.group_blocks[gi])
                report.blocks_read += 1
            else:
                report.blocks_read += g.metafile.note_scan_read()
                scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
                cache = RAIDAwareAACache(g.topology.num_aas, scores)
            g.adopt_cache(cache)
            report.caches_built += 1
        store.rebind_allocators()
    for name, vol in sim.vols.items():
        if vol.cache is None:
            continue
        if image is not None:
            cache = load_hbps_cache(image.vol_pages[name], vol.topology.num_aas)
            report.blocks_read += 2
        else:
            report.blocks_read += vol.metafile.note_scan_read()
            scores = vol.topology.scores_from_bitmap(vol.metafile.bitmap)
            from ..core.hbps_cache import RAIDAgnosticAACache

            cache = RAIDAgnosticAACache(
                vol.topology.num_aas, vol.topology.aa_blocks, scores
            )
        vol.adopt_cache(cache)
        report.caches_built += 1
    report.build_wall_s = time.perf_counter() - t0
    report.modeled_read_us = report.blocks_read * metafile_read_us
    return report


def background_rebuild(sim: WaflSim) -> dict[str, int]:
    """Complete a TopAA-seeded mount: populate the heap caches' unknown
    AAs and replenish HBPS caches with exact scores (the background
    bitmap walk).  Returns counts of AAs populated / caches refreshed.
    """
    populated = 0
    refreshed = 0
    store = sim.store
    if isinstance(store, RAIDStore):
        for g in store.groups:
            cache = g.cache
            if cache is None or cache.fully_populated:
                continue
            g.metafile.note_scan_read()
            scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
            for aa in range(g.topology.num_aas):
                if cache.score_of(aa) < 0 and aa not in cache.checked_out:
                    cache.populate(aa, int(scores[aa]))
                    populated += 1
            g.keeper.recompute(g.metafile.bitmap)
    for vol in sim.vols.values():
        if vol.cache is None or not vol.cache.seeded:
            continue
        vol.metafile.note_scan_read()
        scores = vol.topology.scores_from_bitmap(vol.metafile.bitmap)
        vol.cache.replenish(scores)
        vol.keeper.recompute(vol.metafile.bitmap)
        refreshed += 1
    return {"heap_aas_populated": populated, "hbps_caches_refreshed": refreshed}
