"""Mount and failover: TopAA-seeded versus full-rebuild cache builds.

"When an aggregate or FlexVol volume is mounted, write allocation
cannot begin until an AA is selected, which in turn requires that AA
caches be operational.  Rebuilding AA caches requires a linear walk of
the bitmap metafiles ... this may take multiple seconds.  Instead,
each WAFL file system instance stores the AA cache structure in a
TopAA metafile." (paper section 3.4)

This module implements both mount paths against a simulator whose
bitmaps represent the persisted state:

* :func:`export_topaa` captures the TopAA metafile image (one 4 KiB
  block per RAID-aware cache with the 512 best AAs; two blocks per
  RAID-agnostic cache embedding the HBPS).  Every page is *sealed*
  with a CRC32 checksum header (:func:`repro.core.topaa.seal_page`) so
  damage is detected at mount instead of seeding garbage.
* :func:`simulate_mount` rebuilds every AA cache either from the TopAA
  image (reading 1-2 blocks per file system) or by walking all bitmap
  metafile blocks, swaps the fresh caches into the simulator, and
  reports both measured wall time and modeled read I/O — the
  quantities behind Figure 10's "time for the first CP after boot".

  The mount is *self-healing*: a corrupt, truncated, stale, or missing
  TopAA page makes only that file system fall back to the bitmap walk
  (recorded in :attr:`MountReport.fallbacks`); transient read failures
  are retried with bounded backoff; and a walk that hits metafile
  damage RAID cannot reconstruct escalates to a scoped
  :func:`repro.fs.iron.repair` of exactly that file system.  A page
  that fails verification can never install a cache.
* :func:`background_rebuild` completes a seeded mount: it populates
  the remaining heap-cache AAs and replenishes the HBPS caches with
  exact scores, as WAFL's background scan does while "client
  operations and CPs are sustained for dozens of seconds using the
  seeded AAs".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..common.errors import MediaError, SerializationError
from ..common.retry import RetryBudget, retry_with_backoff
from ..core.cache import make_aa_cache
from ..core.topaa import (
    PAGE_KIND_HBPS,
    PAGE_KIND_HEAP_SEED,
    seal_page,
    seed_heap_cache,
    serialize_heap_seed,
    serialize_hbps_cache,
    load_hbps_cache,
    unseal_page,
)
from .aggregate import LinearStore, RAIDStore
from .filesystem import WaflSim

__all__ = ["TopAAImage", "MountReport", "export_topaa", "simulate_mount", "background_rebuild"]

#: Modeled time to read one 4 KiB metafile block at mount (random read
#: from an HDD/SSD pool amortized over readahead).
DEFAULT_METAFILE_READ_US = 250.0

#: Total transient-read retries budgeted for one recovery (shared by
#: the mount walk and the background rebuild) before the typed
#: :class:`~repro.common.errors.RecoveryExhaustedError` is raised.
DEFAULT_MOUNT_RETRIES = 3

_UNSEAL_REASONS = ("bad-magic", "bad-version", "wrong-kind", "bad-crc", "stale", "truncated")


@dataclass
class TopAAImage:
    """Persisted TopAA metafile contents for one aggregate.

    Every entry is a sealed page: payload prefixed by the CRC32
    checksum header of :func:`repro.core.topaa.seal_page`.  The header
    models the block's per-block checksum area (BCS/AZCS), so the
    *modeled* read cost stays 1 block per RAID group and 2 per
    FlexVol/linear store.
    """

    #: One 4 KiB block per RAID group (512 best AAs each).
    group_blocks: list[bytes] = field(default_factory=list)
    #: Two 4 KiB blocks per FlexVol (embedded HBPS), by volume name.
    vol_pages: dict[str, bytes] = field(default_factory=dict)
    #: Two blocks for a linear physical store, when present.
    store_pages: bytes | None = None

    @property
    def total_blocks(self) -> int:
        n = len(self.group_blocks) + 2 * len(self.vol_pages)
        if self.store_pages is not None:
            n += 2
        return n


@dataclass
class MountReport:
    """Cost breakdown of one simulated mount."""

    used_topaa: bool = False
    #: 4 KiB blocks read to build the caches (TopAA blocks or the full
    #: bitmap metafile walk).
    blocks_read: int = 0
    #: Wall-clock seconds spent building caches (real work in this
    #: process: bitmap popcount walks vs page decoding).
    build_wall_s: float = 0.0
    #: Modeled read-I/O time for those blocks (plus retry backoff).
    modeled_read_us: float = 0.0
    #: Caches built (RAID groups + volumes + linear store).
    caches_built: int = 0
    #: File systems whose TopAA page was unusable, mapped to the reason
    #: ("missing-page", "bad-crc", "stale", "truncated", ...); each
    #: fell back to its own bitmap walk.
    fallbacks: dict[str, str] = field(default_factory=dict)
    #: File systems whose bitmap walk hit unreconstructable damage and
    #: were repaired in place by a scoped Iron pass.
    repairs: list[str] = field(default_factory=list)
    #: Transient read failures absorbed by retry (mount walk phase).
    transient_retries: int = 0
    #: Modeled backoff time spent on those retries.
    retry_backoff_us: float = 0.0
    #: Transient retries absorbed by the background rebuild when it was
    #: handed this report (see :func:`background_rebuild`).
    rebuild_retries: int = 0
    #: Size of the shared recovery retry budget this mount drew from.
    retry_budget_limit: int = 0

    @property
    def total_retries(self) -> int:
        """All transient retries charged to the shared budget."""
        return self.transient_retries + self.rebuild_retries

    @property
    def modeled_total_us(self) -> float:
        """Modeled time-to-first-CP contribution of cache building."""
        return self.modeled_read_us


def export_topaa(sim: WaflSim) -> TopAAImage:
    """Capture the TopAA metafile image of a running system.

    WAFL updates these blocks as part of normal CPs; capturing at an
    arbitrary CP boundary is therefore representative.  Pages are
    sealed with their checksum header and the exporting topology's AA
    count (stale detection).
    """
    image = TopAAImage()
    store = sim.store
    if isinstance(store, RAIDStore):
        for g in store.groups:
            image.group_blocks.append(
                seal_page(
                    serialize_heap_seed(g.keeper.scores),
                    PAGE_KIND_HEAP_SEED,
                    g.topology.num_aas,
                )
            )
    elif getattr(store, "cache", None) is not None:
        image.store_pages = seal_page(
            serialize_hbps_cache(store.cache), PAGE_KIND_HBPS, store.topology.num_aas
        )
    for name, vol in sim.vols.items():
        if vol.cache is not None:
            image.vol_pages[name] = seal_page(
                serialize_hbps_cache(vol.cache), PAGE_KIND_HBPS, vol.topology.num_aas
            )
    return image


def _unseal_reason(exc: SerializationError) -> str:
    msg = str(exc)
    for token in _UNSEAL_REASONS:
        if token in msg:
            return token
    return "invalid"


def _walk_bitmap(
    sim: WaflSim,
    fs,
    report: MountReport,
    *,
    budget: RetryBudget,
    backoff_us: float,
) -> bool:
    """Charge one fault-guarded bitmap-metafile walk of ``fs``.

    Transient failures retry with linear backoff (charged to the
    report) from the recovery-wide ``budget``; damage RAID cannot
    reconstruct escalates to a scoped Iron repair of exactly this file
    system.  Returns True when Iron repaired (and rebuilt the cache of)
    the file system in place, so the caller must not install a cache of
    its own.
    """
    try:
        blocks, retries, spent_us = retry_with_backoff(
            fs.read_metafile,
            budget=budget,
            base_backoff_us=backoff_us,
            where=fs.where,
        )
    except MediaError:
        from .iron import repair as iron_repair

        iron_repair(sim, scope={fs.where})
        # The repair pass recomputed everything from the reference
        # maps — charge the walk it performed.
        report.blocks_read += fs.metafile.note_scan_read()
        report.repairs.append(fs.where)
        return True
    report.blocks_read += blocks
    report.transient_retries += retries
    report.retry_backoff_us += spent_us
    return False


def simulate_mount(
    sim: WaflSim,
    image: TopAAImage | None,
    *,
    metafile_read_us: float = DEFAULT_METAFILE_READ_US,
    max_retries: int = DEFAULT_MOUNT_RETRIES,
    retry_backoff_us: float | None = None,
    budget: RetryBudget | None = None,
) -> MountReport:
    """Rebuild all AA caches as a mount would and install them.

    With ``image`` the TopAA path is taken (read 1 block per RAID
    group, 2 per volume); with ``None`` every bitmap metafile block is
    walked to recompute scores.  Only cache-backed stores/volumes are
    rebuilt (baseline policies have no mount cost).

    Every TopAA page is verified (CRC32, magic, version, kind, AA
    count) before anything is built from it; any failure — including a
    file system present in the simulator but absent from the image —
    downgrades that one file system to the bitmap walk and is recorded
    in :attr:`MountReport.fallbacks`.  The walk itself is fault-guarded
    (see :func:`_walk_bitmap`).

    ``budget`` bounds transient-read retries for the *whole* recovery:
    pass the same :class:`~repro.common.retry.RetryBudget` here and to
    :func:`background_rebuild` and both phases draw from one pool (a
    fresh ``RetryBudget(max_retries)`` is created when omitted).
    """
    if retry_backoff_us is None:
        retry_backoff_us = 4 * metafile_read_us
    if budget is None:
        budget = RetryBudget(max_retries)
    report = MountReport(used_topaa=image is not None)
    report.retry_budget_limit = budget.limit
    t0 = time.perf_counter()
    store = sim.store
    if isinstance(store, RAIDStore):
        for gi, g in enumerate(store.groups):
            if g.cache is None and not g.degraded_alloc:
                continue
            cache = None
            if image is not None:
                blob = image.group_blocks[gi] if gi < len(image.group_blocks) else None
                if blob is None:
                    report.fallbacks[g.where] = "missing-page"
                else:
                    try:
                        payload = unseal_page(
                            blob, PAGE_KIND_HEAP_SEED, g.topology.num_aas
                        )
                    except SerializationError as exc:
                        report.fallbacks[g.where] = _unseal_reason(exc)
                    else:
                        cache = seed_heap_cache(g.topology.num_aas, payload)
                        report.blocks_read += 1
            if cache is None:
                if _walk_bitmap(
                    sim, g, report, budget=budget, backoff_us=retry_backoff_us
                ):
                    report.caches_built += 1
                    continue
                scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
                cache = make_aa_cache(g.topology, scores)
            g.adopt_cache(cache)
            report.caches_built += 1
        store.rebind_allocators()
    elif isinstance(store, LinearStore) and (
        store.cache is not None or store.degraded_alloc
    ):
        cache = None
        if image is not None:
            if image.store_pages is None:
                report.fallbacks[store.where] = "missing-page"
            else:
                try:
                    payload = unseal_page(
                        image.store_pages, PAGE_KIND_HBPS, store.topology.num_aas
                    )
                except SerializationError as exc:
                    report.fallbacks[store.where] = _unseal_reason(exc)
                else:
                    cache = load_hbps_cache(payload, store.topology.num_aas)
                    report.blocks_read += 2
        if cache is None:
            if _walk_bitmap(
                sim, store, report, budget=budget, backoff_us=retry_backoff_us
            ):
                report.caches_built += 1
                cache = None
            else:
                scores = store.topology.scores_from_bitmap(store.metafile.bitmap)
                cache = make_aa_cache(store.topology, scores)
        if cache is not None:
            store.adopt_cache(cache)
            report.caches_built += 1
    for name, vol in sim.vols.items():
        if vol.cache is None and not vol.degraded_alloc:
            continue
        cache = None
        if image is not None:
            blob = image.vol_pages.get(name)
            if blob is None:
                report.fallbacks[vol.where] = "missing-page"
            else:
                try:
                    payload = unseal_page(blob, PAGE_KIND_HBPS, vol.topology.num_aas)
                except SerializationError as exc:
                    report.fallbacks[vol.where] = _unseal_reason(exc)
                else:
                    cache = load_hbps_cache(payload, vol.topology.num_aas)
                    report.blocks_read += 2
        if cache is None:
            if _walk_bitmap(
                sim, vol, report, budget=budget, backoff_us=retry_backoff_us
            ):
                report.caches_built += 1
                continue
            scores = vol.topology.scores_from_bitmap(vol.metafile.bitmap)
            cache = make_aa_cache(vol.topology, scores)
        vol.adopt_cache(cache)
        report.caches_built += 1
    report.build_wall_s = time.perf_counter() - t0
    report.modeled_read_us = (
        report.blocks_read * metafile_read_us + report.retry_backoff_us
    )
    return report


def background_rebuild(
    sim: WaflSim,
    *,
    max_retries: int = DEFAULT_MOUNT_RETRIES,
    budget: RetryBudget | None = None,
    report: MountReport | None = None,
) -> dict[str, int]:
    """Complete a TopAA-seeded mount: populate the heap caches' unknown
    AAs and replenish HBPS caches with exact scores (the background
    bitmap walk).  Returns counts of AAs populated / caches refreshed.

    The walks go through each file system's fault-guarded
    ``read_metafile`` with bounded retries, so an injector's transient
    faults delay rather than kill the background scan.  Pass the
    ``budget`` used by :func:`simulate_mount` to bound the whole
    recovery by one retry pool, and its :class:`MountReport` to have
    the rebuild's retries counted (``rebuild_retries``).
    """
    if budget is None:
        budget = RetryBudget(max_retries)

    def _read(fs) -> None:
        _, retries, _ = retry_with_backoff(
            fs.read_metafile, budget=budget, base_backoff_us=0.0, where=fs.where
        )
        if report is not None:
            report.rebuild_retries += retries

    populated = 0
    refreshed = 0
    store = sim.store
    if isinstance(store, RAIDStore):
        for g in store.groups:
            cache = g.cache
            if cache is None or cache.fully_populated:
                continue
            _read(g)
            scores = g.topology.scores_from_bitmap(g.metafile.bitmap)
            for aa in range(g.topology.num_aas):
                if cache.score_of(aa) < 0 and aa not in cache.checked_out:
                    cache.populate(aa, int(scores[aa]))
                    populated += 1
            g.keeper.recompute(g.metafile.bitmap)
    for vol in sim.vols.values():
        if vol.cache is None or not vol.cache.seeded:
            continue
        _read(vol)
        scores = vol.topology.scores_from_bitmap(vol.metafile.bitmap)
        vol.cache.replenish(scores)
        vol.keeper.recompute(vol.metafile.bitmap)
        refreshed += 1
    return {"heap_aas_populated": populated, "hbps_caches_refreshed": refreshed}
