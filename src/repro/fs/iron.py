"""Iron: an online file-system checker and repair tool (extension).

Paper section 3.4: "In rare cases, if the metafile blocks are damaged
in the physical media and RAID is unable to reconstruct them, the
online WAFL repair tool — WAFL Iron — is used to recompute and recover
them."  The insight Iron relies on is that bitmap metafiles, AA scores,
and AA caches are all *derived* state: the references in the file
trees and container maps are the ground truth from which everything
else can be recomputed.

This module implements that recompute path for the simulator:

* :func:`scan` cross-checks each volume's bitmap against its reference
  truth (active ``l2v``/``v2p`` mappings plus snapshot-held blocks and
  pending delayed frees) and each RAID group's bitmap against the union
  of container-map physical references, reporting leaked blocks (marked
  allocated but unreferenced) and corruptions (referenced but marked
  free), plus AA-score divergence.
* :func:`repair` rewrites the bitmaps to match the reference truth,
  recomputes every score keeper, and rebuilds the AA caches — after
  which :func:`scan` reports clean.

Run it between consistency points (delayed-free logs drained), like
the real tool's file-system-consistent checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.cache import make_aa_cache
from .aggregate import RAIDGroupRuntime
from .filesystem import WaflSim

__all__ = ["IronFinding", "IronReport", "scan", "repair"]


@dataclass(frozen=True)
class IronFinding:
    """One class of inconsistency in one file-system instance."""

    #: "leaked" (allocated, unreferenced), "corrupt" (referenced,
    #: marked free), or "score-divergence".
    kind: str
    #: "vol:<name>" or "group:<index>" / "store".
    where: str
    count: int

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.kind} x{self.count} in {self.where}"


@dataclass
class IronReport:
    """Outcome of a scan or repair pass."""

    findings: list[IronFinding] = field(default_factory=list)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def count(self, kind: str) -> int:
        return sum(f.count for f in self.findings if f.kind == kind)

    def by_where(self) -> dict[str, list[IronFinding]]:
        """Findings grouped by file-system instance (``where`` label).

        The recovery path uses this to scope escalation: only the
        volumes/groups that actually have findings are put into
        degraded allocation and repaired.
        """
        grouped: dict[str, list[IronFinding]] = {}
        for f in self.findings:
            grouped.setdefault(f.where, []).append(f)
        return grouped


def _vol_reference_virtual(vol) -> np.ndarray:
    """Ground-truth allocated virtual VBNs of one volume."""
    refs = [vol.l2v[vol.l2v >= 0]]
    for held in vol._snapshots.values():
        refs.append(held)
    pending = vol.delayed_frees.pending_vbns()
    if pending.size:
        refs.append(pending)
    if not refs:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(refs))


def _store_reference_physical(sim: WaflSim) -> np.ndarray:
    """Ground-truth allocated physical VBNs (container-map union plus
    pending physical delayed frees)."""
    refs = []
    for vol in sim.vols.values():
        p = vol.v2p[vol.v2p >= 0]
        if p.size:
            refs.append(p)
    for _, fs, base in sim.store.physical_instances():
        pending = fs.delayed_frees.pending_vbns()
        if pending.size:
            refs.append(pending + base)
    if not refs:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(refs))


def _diff_bitmap(bitmap, reference: np.ndarray) -> tuple[int, int]:
    """(leaked, corrupt) counts for a bitmap vs sorted reference VBNs."""
    mask = np.zeros(bitmap.nblocks, dtype=bool)
    if reference.size:
        mask[reference] = True
    allocated = np.zeros(bitmap.nblocks, dtype=bool)
    alloc_idx = bitmap.allocated_in_range(0, bitmap.nblocks)
    allocated[alloc_idx] = True
    leaked = int(np.count_nonzero(allocated & ~mask))
    corrupt = int(np.count_nonzero(~allocated & mask))
    return leaked, corrupt


def _in_scope(where: str, scope) -> bool:
    return scope is None or where in scope


def scan(sim: WaflSim, scope=None) -> IronReport:
    """Read-only cross-check of bitmaps, references, and scores.

    ``scope`` — optional collection of ``where`` labels ("vol:<name>",
    "group:<i>", "store"); file systems outside it are not checked.
    None checks everything.
    """
    report = IronReport()
    for name, vol in sim.vols.items():
        if not _in_scope(f"vol:{name}", scope):
            continue
        ref = _vol_reference_virtual(vol)
        leaked, corrupt = _diff_bitmap(vol.metafile.bitmap, ref)
        if leaked:
            report.findings.append(IronFinding("leaked", f"vol:{name}", leaked))
        if corrupt:
            report.findings.append(IronFinding("corrupt", f"vol:{name}", corrupt))
        truth = vol.topology.scores_from_bitmap(vol.metafile.bitmap)
        diverged = int(np.count_nonzero(truth != vol.keeper.scores))
        if diverged:
            report.findings.append(
                IronFinding("score-divergence", f"vol:{name}", diverged)
            )

    phys_ref = _store_reference_physical(sim)
    for where, fs, base in sim.store.physical_instances():
        if not _in_scope(where, scope):
            continue
        lo, hi = base, base + fs.topology.nblocks
        local_ref = phys_ref[(phys_ref >= lo) & (phys_ref < hi)] - lo
        leaked, corrupt = _diff_bitmap(fs.metafile.bitmap, local_ref)
        if leaked:
            report.findings.append(IronFinding("leaked", where, leaked))
        if corrupt:
            report.findings.append(IronFinding("corrupt", where, corrupt))
        if isinstance(fs, RAIDGroupRuntime):
            # Linear stores keep no group-level score pin (their HBPS
            # cache is refreshed from bitmap walks), so score
            # divergence is only a finding for RAID groups.
            truth = fs.topology.scores_from_bitmap(fs.metafile.bitmap)
            diverged = int(np.count_nonzero(truth != fs.keeper.scores))
            if diverged:
                report.findings.append(
                    IronFinding("score-divergence", where, diverged)
                )
    return report


def repair(sim: WaflSim, scope=None, *, rebuild_caches: bool = True) -> IronReport:
    """Recompute bitmaps, scores, and caches from the reference maps.

    Returns only the findings that were actually fixed — with ``scope``
    set, file systems outside it are neither scanned nor touched, so
    escalation driven by :meth:`IronReport.by_where` repairs exactly
    the damaged instances.

    ``rebuild_caches=False`` repairs bitmaps and score keepers but
    leaves the AA caches offline: each repaired file system is put into
    (or kept in) degraded allocation — the bitmap walk — so the caller
    controls when caches come back (see :mod:`repro.faults.recovery`).

    Note: blocks reported as *leaked* on the physical side that
    belonged to data not tracked by any container map (e.g. synthetic
    aging fills) are reclaimed — Iron trusts the file trees, exactly
    like the real tool.
    """
    report = scan(sim, scope)
    # Volumes: rewrite virtual bitmaps to reference truth.
    for name, vol in sim.vols.items():
        if not _in_scope(f"vol:{name}", scope):
            continue
        ref = _vol_reference_virtual(vol)
        bm = vol.metafile.bitmap
        vol.allocator.release()
        bm.clear_range(0, bm.nblocks)
        bm.allocate(ref)
        vol.metafile.drain_dirty()
        vol.keeper.recompute(bm)
        if rebuild_caches:
            if vol.cache is not None or vol.degraded_alloc:
                vol.adopt_cache(make_aa_cache(vol.topology, vol.keeper.scores))
        elif not vol.degraded_alloc:
            vol.enter_degraded()
    # Physical stores: rewrite to container-map truth.
    phys_ref = _store_reference_physical(sim)
    store = sim.store
    touched = False
    for where, fs, base in store.physical_instances():
        if not _in_scope(where, scope):
            continue
        touched = True
        lo, hi = base, base + fs.topology.nblocks
        local_ref = phys_ref[(phys_ref >= lo) & (phys_ref < hi)] - lo
        bm = fs.metafile.bitmap
        fs.allocator.release()
        bm.clear_range(0, bm.nblocks)
        bm.allocate(local_ref)
        fs.metafile.drain_dirty()
        fs.keeper.recompute(bm)
        if isinstance(fs, RAIDGroupRuntime):
            if rebuild_caches:
                if fs.cache is not None or fs.degraded_alloc:
                    fs.adopt_cache(make_aa_cache(fs.topology, fs.keeper.scores))
            elif not fs.degraded_alloc:
                fs.enter_degraded()
        elif not rebuild_caches:
            if not fs.degraded_alloc:
                fs.enter_degraded()
        elif fs.cache is not None:
            # A linear store's live HBPS cache is refilled in place;
            # adopt_cache is only for coming back from degraded mode.
            fs.cache.refill(fs.keeper.scores)
        elif fs.degraded_alloc:
            fs.adopt_cache(make_aa_cache(fs.topology, fs.keeper.scores))
    if touched:
        store.rebind_allocators()
    report.repaired = True
    return report
