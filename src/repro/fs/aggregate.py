"""Physical stores: RAID-group aggregates and linear (object) stores.

An ONTAP aggregate is a pool of physical storage hosting FlexVols
(paper section 2.1).  Its physical VBN space is the concatenation of
its RAID groups' spaces (each group owns a contiguous global range),
or a single linear range when the backing store is natively redundant.

This module binds together, per store:

* geometry and AA topology (:mod:`repro.raid`, :mod:`repro.core.aa`),
* the bitmap metafile and delayed-free log (:mod:`repro.bitmap`),
* the score keeper and AA cache/source (:mod:`repro.core`),
* the write allocator (:mod:`repro.core.allocator`),
* device models with time costs (:mod:`repro.devices`),

and implements the CP-boundary sequence: price the CP's writes on the
devices, apply delayed frees (with SSD trims), flush batched AA-score
deltas into the caches, and drain metafile dirty-block counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..bitmap.delayed_frees import DelayedFreeLog
from ..bitmap.metafile import BitmapMetafile
from ..common.constants import RAID_AGNOSTIC_AA_BLOCKS
from ..common.errors import GeometryError
from ..common.rng import make_rng
from ..core.aa import LinearAATopology, StripeAATopology
from ..core.allocator import AggregateAllocator, LinearAllocator, RAIDGroupAllocator
from ..core.hbps_cache import RAIDAgnosticAACache
from ..core.heap_cache import RAIDAwareAACache
from ..core.policies import (
    AASource,
    HBPSSource,
    HeapSource,
    LinearScanSource,
    RandomSource,
)
from ..core.score import ScoreKeeper
from ..core.sizing import aa_size_for_hdd, aa_size_for_smr, aa_size_for_ssd
from ..devices.base import Device
from ..devices.hdd import HDD, HDDConfig
from ..devices.objectstore import ObjectStore, ObjectStoreConfig
from ..devices.smr import SMRConfig, SMRDrive
from ..devices.ssd import SSD, SSDConfig
from ..raid.geometry import RAIDGeometry
from ..raid.parity import StripeWriteStats, analyze_raid_writes
from .azcs import azcs_device_blocks, azcs_expand

__all__ = [
    "MediaType",
    "PolicyKind",
    "RAIDGroupConfig",
    "RAIDGroupRuntime",
    "GroupCPReport",
    "StoreCPReport",
    "RAIDStore",
    "LinearStore",
]


class MediaType(enum.Enum):
    """Storage media families the paper evaluates (section 2.1)."""

    HDD = "hdd"
    SSD = "ssd"
    SMR = "smr"
    OBJECT = "object"


class PolicyKind(enum.Enum):
    """AA selection policy for a store (section 4.1 comparisons)."""

    #: The paper's AA cache (max-heap or HBPS depending on topology).
    CACHE = "cache"
    #: "AA cache disabled": random AA selection.
    RANDOM = "random"
    #: First-fit cursor baseline (extension).
    LINEAR_SCAN = "linear"


@dataclass
class RAIDGroupConfig:
    """Static configuration of one RAID group."""

    ndata: int = 6
    nparity: int = 1
    blocks_per_disk: int = 262144  # 1 GiB of 4 KiB blocks per device
    media: MediaType = MediaType.SSD
    #: Stripes per AA; None selects the media-appropriate default
    #: (4k stripes for HDD, erase-block multiples for SSD, ...).
    stripes_per_aa: int | None = None
    #: Store AZCS checksum blocks (SMR deployments; section 3.2.4).
    azcs: bool = False
    #: Device timing overrides.
    hdd_config: HDDConfig | None = None
    ssd_config: SSDConfig | None = None
    smr_config: SMRConfig | None = None

    def resolve_stripes_per_aa(self, geometry: RAIDGeometry) -> int:
        if self.stripes_per_aa is not None:
            return self.stripes_per_aa
        if self.media is MediaType.HDD:
            return aa_size_for_hdd(geometry).size
        if self.media is MediaType.SSD:
            eb = (self.ssd_config or SSDConfig()).erase_block_blocks
            return aa_size_for_ssd(geometry, eb).size
        if self.media is MediaType.SMR:
            zone = (self.smr_config or SMRConfig()).zone_blocks
            return aa_size_for_smr(geometry, zone, azcs=self.azcs).size
        raise GeometryError(f"media {self.media} cannot form RAID groups")


@dataclass
class GroupCPReport:
    """Per-RAID-group slice of one CP (feeds Figure 7)."""

    blocks: int = 0
    stripes: int = 0
    full_stripes: int = 0
    partial_stripes: int = 0
    tetrises: int = 0
    chains: int = 0
    parity_reads: int = 0
    blocks_per_disk: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    busy_us: float = 0.0


@dataclass
class StoreCPReport:
    """Aggregated CP-boundary outcome for one physical store."""

    #: Bottleneck device busy time (devices operate in parallel).
    device_busy_us: float = 0.0
    #: Sum of device busy times (for utilization accounting).
    device_total_us: float = 0.0
    metafile_blocks: int = 0
    blocks_written: int = 0
    blocks_freed: int = 0
    full_stripes: int = 0
    partial_stripes: int = 0
    tetrises: int = 0
    chains: int = 0
    parity_reads: int = 0
    cache_ops: int = 0
    aa_switches: int = 0
    #: VBN span covered by this CP's allocations (bitmap bits examined;
    #: ~blocks / selected-AA density — see CpuModel.us_per_spanned_block).
    spanned_blocks: int = 0
    groups: list[GroupCPReport] = field(default_factory=list)


def _make_linear_source(
    kind: PolicyKind,
    topology: LinearAATopology,
    metafile: BitmapMetafile,
    keeper: ScoreKeeper,
    seed: int | np.random.Generator | None,
) -> tuple[AASource, RAIDAgnosticAACache | None]:
    if kind is PolicyKind.CACHE:
        cache = RAIDAgnosticAACache(topology.num_aas, topology.aa_blocks, keeper.scores)

        def replenisher() -> np.ndarray:
            # The background replenish walks every bitmap metafile block.
            metafile.note_scan_read()
            return topology.scores_from_bitmap(metafile.bitmap)

        return HBPSSource(cache, replenisher), cache
    if kind is PolicyKind.RANDOM:
        return RandomSource(topology.num_aas, seed), None
    return LinearScanSource(topology.num_aas), None


class RAIDGroupRuntime:
    """One live RAID group: devices, metafile, cache, allocator."""

    def __init__(
        self,
        config: RAIDGroupConfig,
        *,
        offset: int,
        policy: PolicyKind = PolicyKind.CACHE,
        seed: int | np.random.Generator | None = None,
        name: str = "rg",
    ) -> None:
        self.config = config
        self.name = name
        self.geometry = RAIDGeometry(config.ndata, config.nparity, config.blocks_per_disk)
        stripes_per_aa = config.resolve_stripes_per_aa(self.geometry)
        self.topology = StripeAATopology(self.geometry, stripes_per_aa)
        self.metafile = BitmapMetafile(self.geometry.data_blocks)
        self.delayed_frees = DelayedFreeLog()
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.policy = policy
        self.cache: RAIDAwareAACache | None = None
        if policy is PolicyKind.CACHE:
            self.cache = RAIDAwareAACache(self.topology.num_aas, self.keeper.scores)
            self.source: AASource = HeapSource(self.cache)
        elif policy is PolicyKind.RANDOM:
            self.source = RandomSource(self.topology.num_aas, seed)
        else:
            self.source = LinearScanSource(self.topology.num_aas)
        self.allocator = RAIDGroupAllocator(
            self.topology, self.metafile, self.source, self.keeper, store_offset=offset
        )
        self.offset = offset
        self.azcs = config.azcs
        self.data_devices = [self._make_device(f"{name}.d{d}") for d in range(config.ndata)]
        self.parity_devices = [
            self._make_device(f"{name}.p{p}") for p in range(config.nparity)
        ]
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.free_budget_blocks: int | None = None

    # ------------------------------------------------------------------
    def _make_device(self, name: str) -> Device:
        cfg = self.config
        blocks = cfg.blocks_per_disk
        if cfg.media is MediaType.HDD:
            return HDD(blocks, cfg.hdd_config, name)
        if cfg.media is MediaType.SSD:
            return SSD(blocks, cfg.ssd_config, name)
        if cfg.media is MediaType.SMR:
            cap = azcs_device_blocks(blocks) if cfg.azcs else blocks
            return SMRDrive(cap, cfg.smr_config, name)
        raise GeometryError(f"media {cfg.media} cannot form RAID groups")

    @property
    def devices(self) -> list[Device]:
        return self.data_devices + self.parity_devices

    def adopt_cache(self, cache: RAIDAwareAACache) -> None:
        """Install a freshly built (possibly TopAA-seeded) cache after a
        remount, with a new allocator bound to it.

        The score keeper is rebuilt from the bitmap as a side effect;
        in WAFL that bookkeeping is restored lazily per-AA and does not
        gate the first CP, so mount-time measurements charge only the
        cache-build I/O (see :mod:`repro.fs.mount`).
        """
        self.cache = cache
        self.source = HeapSource(cache)
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.allocator = RAIDGroupAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            store_offset=self.offset,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0

    def cache_ops_total(self) -> int:
        if self.cache is not None:
            return self.cache.pushes + self.cache.pops
        return 0

    # ------------------------------------------------------------------
    # CP boundary pieces
    # ------------------------------------------------------------------
    def price_cp_writes(self, local_vbns: np.ndarray) -> GroupCPReport:
        """Charge devices for one CP's writes to this group and return
        the per-group report (stripe/tetris/chain accounting)."""
        report = GroupCPReport(
            blocks_per_disk=np.zeros(self.geometry.ndata, dtype=np.int64)
        )
        if local_vbns.size == 0:
            return report
        stats: StripeWriteStats = analyze_raid_writes(self.geometry, local_vbns)
        report.blocks = stats.data_blocks
        report.stripes = stats.stripes_written
        report.full_stripes = stats.full_stripes
        report.partial_stripes = stats.partial_stripes
        report.tetrises = stats.tetrises
        report.chains = stats.total_chains
        report.parity_reads = stats.parity_blocks_read
        report.blocks_per_disk = stats.blocks_per_disk

        disks = self.geometry.disk_of(local_vbns)
        dbns = self.geometry.dbn_of(local_vbns)
        busy: list[float] = []
        # Parity reads are spread uniformly across the group's devices.
        reads_per_dev = stats.parity_blocks_read // max(len(self.devices), 1)
        for d, dev in enumerate(self.data_devices):
            mine = np.sort(dbns[disks == d])
            us = self._issue_writes(dev, mine)
            us += dev.read_blocks(reads_per_dev)
            busy.append(us)
        touched_stripes = np.unique(dbns)
        for dev in self.parity_devices:
            us = self._issue_writes(dev, touched_stripes)
            us += dev.read_blocks(reads_per_dev)
            busy.append(us)
        report.busy_us = max(busy) if busy else 0.0
        return report

    def _issue_writes(self, dev: Device, dbns: np.ndarray) -> float:
        """Issue one disk's CP writes in allocation order.

        WAFL writes each allocation area "fully from beginning to end"
        (section 3.2.4), so the device sees one I/O stream per AA
        segment.  With AZCS, each segment is expanded with its touched
        regions' checksum blocks; a region straddling a misaligned AA
        boundary therefore gets its checksum block written again by the
        next AA's stream — the random rewrite Figure 4C eliminates.
        """
        if dbns.size == 0:
            return 0.0
        if not self.azcs:
            return dev.write_blocks(dbns)
        us = 0.0
        aa_ids = dbns // self.topology.stripes_per_aa
        boundaries = np.flatnonzero(np.diff(aa_ids) != 0) + 1
        for seg in np.split(dbns, boundaries):
            us += dev.write_blocks(azcs_expand(seg))
        return us

    def apply_frees(self) -> int:
        """Apply this group's delayed frees; trim SSDs; return count."""
        if self.free_budget_blocks is None:
            freed = self.delayed_frees.apply_all(self.metafile)
        else:
            freed = self.delayed_frees.apply_best(
                self.metafile, self.free_budget_blocks
            )
        if freed.size == 0:
            return 0
        self.keeper.note_free(freed)
        if self.config.media is MediaType.SSD:
            disks = self.geometry.disk_of(freed)
            dbns = self.geometry.dbn_of(freed)
            for d, dev in enumerate(self.data_devices):
                dev.trim(dbns[disks == d])
        return int(freed.size)

    def drain_counters(self) -> tuple[int, int, int]:
        """(cache_ops, aa_switches, spanned_blocks) since the last CP."""
        ops = self.cache_ops_total()
        switches = len(self.allocator.selected_aa_scores)
        spans = self.allocator.spanned_blocks
        d_ops = ops - self._last_cache_ops
        d_sw = switches - self._last_aa_switches
        d_sp = spans - self._last_spans
        self._last_cache_ops = ops
        self._last_aa_switches = switches
        self._last_spans = spans
        return d_ops, d_sw, d_sp


class RAIDStore:
    """Aggregate physical store backed by one or more RAID groups."""

    def __init__(
        self,
        group_configs: list[RAIDGroupConfig],
        *,
        policy: PolicyKind = PolicyKind.CACHE,
        threshold_fraction: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not group_configs:
            raise GeometryError("an aggregate needs at least one RAID group")
        rng = make_rng(seed)
        self.groups: list[RAIDGroupRuntime] = []
        self.offsets: list[int] = []
        offset = 0
        for i, cfg in enumerate(group_configs):
            self.offsets.append(offset)
            self.groups.append(
                RAIDGroupRuntime(cfg, offset=offset, policy=policy, seed=rng, name=f"rg{i}")
            )
            offset += cfg.ndata * cfg.blocks_per_disk
        self.nblocks = offset
        self.allocator = AggregateAllocator(
            [g.allocator for g in self.groups], threshold_fraction=threshold_fraction
        )
        self._bounds = np.asarray(self.offsets + [self.nblocks], dtype=np.int64)
        self._pending_read_us: list[float] = [0.0] * len(self.groups)

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return sum(g.metafile.free_count for g in self.groups)

    @property
    def devices(self) -> list[Device]:
        return [d for g in self.groups for d in g.devices]

    def group_of(self, vbns: np.ndarray) -> np.ndarray:
        """RAID-group index owning each global VBN."""
        return np.searchsorted(self._bounds, vbns, side="right") - 1

    @property
    def media_kinds(self) -> list[MediaType]:
        """Media type of each RAID group."""
        return [g.config.media for g in self.groups]

    @property
    def supports_tiering(self) -> bool:
        """True for Flash Pool-style mixed-media aggregates (paper
        section 2.1: SSD RAID groups caching for HDD RAID groups)."""
        kinds = set(self.media_kinds)
        return MediaType.SSD in kinds and len(kinds) > 1

    def _tier_groups(self, fast: bool) -> list[int]:
        return [
            i
            for i, m in enumerate(self.media_kinds)
            if (m is MediaType.SSD) == fast
        ]

    def allocate(self, n: int, tier: str | None = None) -> np.ndarray:
        """Allocate ``n`` physical blocks across RAID groups.

        ``tier`` ("fast" or "capacity") restricts allocation to SSD or
        non-SSD groups first, falling back to the other tier when the
        preferred one runs dry — the Flash Pool placement policy.
        """
        if tier is None or not self.supports_tiering:
            return self.allocator.allocate(n)
        preferred = self._tier_groups(fast=(tier == "fast"))
        got = self.allocator.allocate(n, only=preferred)
        if got.size < n:
            rest = self.allocator.allocate(
                n - got.size, only=self._tier_groups(fast=(tier != "fast"))
            )
            got = np.concatenate([got, rest]) if got.size else rest
        return got

    def log_free(self, vbns: np.ndarray) -> None:
        """Log global VBNs for freeing at the next CP boundary."""
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        gids = self.group_of(vbns)
        for gi in np.unique(gids):
            local = vbns[gids == gi] - self.offsets[gi]
            self.groups[gi].delayed_frees.add(local)

    def charge_reads(self, n_random: int) -> None:
        """Queue client random reads to be priced at the CP boundary,
        spread uniformly across data devices."""
        if n_random <= 0:
            return
        per_group = n_random / len(self.groups)
        for gi, g in enumerate(self.groups):
            per_dev = per_group / max(len(g.data_devices), 1)
            us = 0.0
            for dev in g.data_devices:
                us = max(us, dev.read_blocks(int(round(per_dev))))
            self._pending_read_us[gi] += us

    def cp_boundary(self) -> StoreCPReport:
        """Run the store-side CP boundary; see module docstring."""
        report = StoreCPReport()
        per_group_writes = self.allocator.drain_cp_writes()
        busy: list[float] = []
        for gi, (g, local) in enumerate(zip(self.groups, per_group_writes)):
            grp = g.price_cp_writes(local)
            grp.busy_us += self._pending_read_us[gi]
            self._pending_read_us[gi] = 0.0
            report.groups.append(grp)
            report.blocks_written += grp.blocks
            report.full_stripes += grp.full_stripes
            report.partial_stripes += grp.partial_stripes
            report.tetrises += grp.tetrises
            report.chains += grp.chains
            report.parity_reads += grp.parity_reads
            busy.append(grp.busy_us)
            report.blocks_freed += g.apply_frees()
        # Flush batched score deltas into the caches (rebalancing).
        self.allocator.cp_flush()
        for g in self.groups:
            report.metafile_blocks += g.metafile.drain_dirty()
            d_ops, d_sw, d_sp = g.drain_counters()
            report.cache_ops += d_ops
            report.aa_switches += d_sw
            report.spanned_blocks += d_sp
        report.device_busy_us = max(busy) if busy else 0.0
        report.device_total_us = float(sum(busy))
        return report

    def rebind_allocators(self) -> None:
        """Recreate the aggregate allocator after group-level cache
        adoption (remount path)."""
        self.allocator = AggregateAllocator(
            [g.allocator for g in self.groups],
            threshold_fraction=self.allocator.threshold_fraction,
            stripes_per_round=self.allocator.stripes_per_round,
        )

    def selected_aa_free_fractions(self) -> np.ndarray:
        """Free fraction of every AA at the moment it was selected
        (the section 4.1 trace)."""
        fracs: list[float] = []
        for g in self.groups:
            cap = g.topology.aa_blocks
            fracs.extend(s / cap for s in g.allocator.selected_aa_scores)
        return np.asarray(fracs, dtype=np.float64)


class LinearStore:
    """Physical store with native redundancy (object store): linear
    AAs, HBPS cache, a single device model."""

    def __init__(
        self,
        nblocks: int,
        *,
        blocks_per_aa: int = RAID_AGNOSTIC_AA_BLOCKS,
        policy: PolicyKind = PolicyKind.CACHE,
        object_config: ObjectStoreConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.topology = LinearAATopology(nblocks, blocks_per_aa)
        self.nblocks = nblocks
        self.metafile = BitmapMetafile(nblocks)
        self.delayed_frees = DelayedFreeLog()
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.source, self.cache = _make_linear_source(
            policy, self.topology, self.metafile, self.keeper, seed
        )
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper
        )
        self.device = ObjectStore(nblocks, object_config)
        self._cp_writes: list[np.ndarray] = []
        self._pending_read_us = 0.0
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        #: When set, each CP applies delayed frees for at most this many
        #: metafile blocks, chosen fullest-first by the log's HBPS (the
        #: paper's "delayed-free scores" use of HBPS); None = apply all.
        self.free_budget_blocks: int | None = None

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return self.metafile.free_count

    @property
    def devices(self) -> list[Device]:
        return [self.device]

    def allocate(self, n: int) -> np.ndarray:
        vbns = self.allocator.allocate(n)
        if vbns.size:
            self._cp_writes.append(vbns)
        return vbns

    def log_free(self, vbns: np.ndarray) -> None:
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size:
            self.delayed_frees.add(vbns)

    def charge_reads(self, n_random: int) -> None:
        if n_random > 0:
            self._pending_read_us += self.device.read_blocks(n_random)

    def _cache_ops_total(self) -> int:
        if self.cache is None:
            return 0
        h = self.cache.hbps
        return h.pops + h.updates + h.evictions

    def cp_boundary(self) -> StoreCPReport:
        report = StoreCPReport()
        if self._cp_writes:
            vbns = np.sort(np.concatenate(self._cp_writes))
            self._cp_writes = []
            report.blocks_written = int(vbns.size)
            report.chains = Device.chains_of(vbns)
            report.device_busy_us = self.device.write_blocks(vbns)
        report.device_busy_us += self._pending_read_us
        self._pending_read_us = 0.0
        if self.free_budget_blocks is None:
            freed = self.delayed_frees.apply_all(self.metafile)
        else:
            freed = self.delayed_frees.apply_best(
                self.metafile, self.free_budget_blocks
            )
        if freed.size:
            self.keeper.note_free(freed)
            report.blocks_freed = int(freed.size)
        self.allocator.cp_flush()
        report.metafile_blocks = self.metafile.drain_dirty()
        ops = self._cache_ops_total()
        report.cache_ops = ops - self._last_cache_ops
        self._last_cache_ops = ops
        switches = len(self.allocator.selected_aa_scores)
        report.aa_switches = switches - self._last_aa_switches
        self._last_aa_switches = switches
        report.spanned_blocks = self.allocator.spanned_blocks - self._last_spans
        self._last_spans = self.allocator.spanned_blocks
        report.device_total_us = report.device_busy_us
        return report

    def selected_aa_free_fractions(self) -> np.ndarray:
        cap = self.topology.aa_blocks
        return np.asarray(
            [s / cap for s in self.allocator.selected_aa_scores], dtype=np.float64
        )
