"""Physical stores: RAID-group aggregates and linear (object) stores.

An ONTAP aggregate is a pool of physical storage hosting FlexVols
(paper section 2.1).  Its physical VBN space is the concatenation of
its RAID groups' spaces (each group owns a contiguous global range),
or a single linear range when the backing store is natively redundant.

This module binds together, per store:

* geometry and AA topology (:mod:`repro.raid`, :mod:`repro.core.aa`),
* the bitmap metafile and delayed-free log (:mod:`repro.bitmap`),
* the score keeper and AA cache/source (:mod:`repro.core`),
* the write allocator (:mod:`repro.core.allocator`),
* device models with time costs (:mod:`repro.devices`),

and implements the CP-boundary sequence: price the CP's writes on the
devices, apply delayed frees (with SSD trims), flush batched AA-score
deltas into the caches, and drain metafile dirty-block counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from .. import obs
from ..bitmap.metafile import BitmapMetafile
from ..core.delayed_frees import DelayedFreeLog
from ..common.config import SimConfig
from ..common.constants import RAID_AGNOSTIC_AA_BLOCKS
from ..common.errors import DegradedError, GeometryError, MediaError, TransientIOError
from ..common.rng import make_rng
from ..core.aa import LinearAATopology, StripeAATopology
from ..core.allocator import AggregateAllocator, LinearAllocator, RAIDGroupAllocator
from ..core.cache import CacheSource, make_aa_cache
from ..core.hbps_cache import RAIDAgnosticAACache
from ..core.heap_cache import RAIDAwareAACache
from ..core.policies import (
    AASource,
    LinearScanSource,
    RandomSource,
)
from ..core.score import ScoreKeeper
from ..core.sizing import aa_size_for_hdd, aa_size_for_smr, aa_size_for_ssd
from ..devices.base import Device, MediaType
from ..devices.hdd import HDD, HDDConfig
from ..devices.objectstore import ObjectStore, ObjectStoreConfig
from ..devices.smr import SMRConfig, SMRDrive
from ..devices.ssd import SSD, SSDConfig
from ..raid.geometry import RAIDGeometry
from ..raid.parity import StripeWriteStats, analyze_raid_writes
from .azcs import azcs_device_blocks, azcs_expand

__all__ = [
    "MediaType",
    "PolicyKind",
    "TierPolicy",
    "RAIDGroupConfig",
    "RAIDGroupRuntime",
    "GroupCPReport",
    "StoreCPReport",
    "RAIDStore",
    "LinearStore",
]


@runtime_checkable
class TierPolicy(Protocol):
    """Data-placement policy a store may carry (``store.tier_policy``).

    The CP engine consults it instead of calling ``store.allocate``
    directly: :meth:`place` returns one physical VBN per staged block,
    aligned with ``ids``, routed to whatever tier the policy chooses
    (Flash Pool hot/cold splitting, per-volume static pinning, ...).
    This protocol is structural on purpose — concrete policies live in
    :mod:`repro.tiering`, which sits far above ``fs`` in the layer DAG.
    """

    def place(
        self,
        store: object,
        vol_name: str,
        ids: np.ndarray,
        was_mapped: np.ndarray,
    ) -> np.ndarray:
        """Allocate physical VBNs for ``ids`` (``was_mapped[i]`` is True
        for overwrites); raises ``OutOfSpaceError`` on shortfall."""
        ...


class PolicyKind(enum.Enum):
    """AA selection policy for a store (section 4.1 comparisons)."""

    #: The paper's AA cache (max-heap or HBPS depending on topology).
    CACHE = "cache"
    #: "AA cache disabled": random AA selection.
    RANDOM = "random"
    #: First-fit cursor baseline (extension).
    LINEAR_SCAN = "linear"


@dataclass
class RAIDGroupConfig:
    """Static configuration of one RAID group."""

    ndata: int = 6
    nparity: int = 1
    blocks_per_disk: int = 262144  # 1 GiB of 4 KiB blocks per device
    media: MediaType = MediaType.SSD
    #: Mirrored group (each data device paired with a copy) — requires
    #: ``nparity == ndata``; see :class:`~repro.raid.geometry.RAIDGeometry`.
    mirrored: bool = False
    #: Stripes per AA; None selects the media-appropriate default
    #: (4k stripes for HDD, erase-block multiples for SSD, ...).
    stripes_per_aa: int | None = None
    #: Store AZCS checksum blocks (SMR deployments; section 3.2.4).
    azcs: bool = False
    #: Device timing overrides.
    hdd_config: HDDConfig | None = None
    ssd_config: SSDConfig | None = None
    smr_config: SMRConfig | None = None

    def resolve_stripes_per_aa(self, geometry: RAIDGeometry) -> int:
        if self.stripes_per_aa is not None:
            return self.stripes_per_aa
        if self.media is MediaType.HDD:
            return aa_size_for_hdd(geometry).size
        if self.media is MediaType.SSD:
            eb = (self.ssd_config or SSDConfig()).erase_block_blocks
            return aa_size_for_ssd(geometry, eb).size
        if self.media is MediaType.SMR:
            zone = (self.smr_config or SMRConfig()).zone_blocks
            return aa_size_for_smr(geometry, zone, azcs=self.azcs).size
        raise GeometryError(f"media {self.media} cannot form RAID groups")


@dataclass
class GroupCPReport:
    """Per-RAID-group slice of one CP (feeds Figure 7)."""

    blocks: int = 0
    stripes: int = 0
    full_stripes: int = 0
    partial_stripes: int = 0
    tetrises: int = 0
    chains: int = 0
    parity_reads: int = 0
    #: Reads issued to surviving devices to stand in for failed ones
    #: (degraded writes, degraded metafile/client reads).
    reconstruction_reads: int = 0
    #: Stripes written while the group was degraded.
    degraded_stripes: int = 0
    blocks_per_disk: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    busy_us: float = 0.0


@dataclass
class StoreCPReport:
    """Aggregated CP-boundary outcome for one physical store."""

    #: Bottleneck device busy time (devices operate in parallel).
    device_busy_us: float = 0.0
    #: Sum of device busy times (for utilization accounting).
    device_total_us: float = 0.0
    metafile_blocks: int = 0
    blocks_written: int = 0
    blocks_freed: int = 0
    full_stripes: int = 0
    partial_stripes: int = 0
    tetrises: int = 0
    chains: int = 0
    parity_reads: int = 0
    reconstruction_reads: int = 0
    degraded_stripes: int = 0
    cache_ops: int = 0
    aa_switches: int = 0
    #: VBN span covered by this CP's allocations (bitmap bits examined;
    #: ~blocks / selected-AA density — see CpuModel.us_per_spanned_block).
    spanned_blocks: int = 0
    groups: list[GroupCPReport] = field(default_factory=list)
    #: Tiered aggregates only: this CP's outcome sliced per tier label
    #: (each value is a plain single-tier report; empty otherwise).
    by_tier: dict[str, "StoreCPReport"] = field(default_factory=dict)


def _make_linear_source(
    kind: PolicyKind,
    topology: LinearAATopology,
    metafile: BitmapMetafile,
    keeper: ScoreKeeper,
    seed: int | np.random.Generator | None,
    config: SimConfig | None = None,
) -> tuple[AASource, RAIDAgnosticAACache | None]:
    if kind is PolicyKind.CACHE:
        cache = make_aa_cache(topology, keeper.scores, config=config)

        def replenisher() -> np.ndarray:
            # The background replenish walks every bitmap metafile block.
            metafile.note_scan_read()
            return topology.scores_from_bitmap(metafile.bitmap)

        return CacheSource(cache, replenisher), cache
    if kind is PolicyKind.RANDOM:
        return RandomSource(topology.num_aas, seed), None
    return LinearScanSource(topology.num_aas), None


class RAIDGroupRuntime:
    """One live RAID group: devices, metafile, cache, allocator."""

    def __init__(
        self,
        config: RAIDGroupConfig,
        *,
        offset: int,
        policy: PolicyKind = PolicyKind.CACHE,
        seed: int | np.random.Generator | None = None,
        name: str = "rg",
        batch_flush: bool = True,
    ) -> None:
        self.config = config
        self.name = name
        self._batch_flush = bool(batch_flush)
        self.geometry = RAIDGeometry(
            config.ndata, config.nparity, config.blocks_per_disk,
            mirrored=config.mirrored,
        )
        stripes_per_aa = config.resolve_stripes_per_aa(self.geometry)
        self.topology = StripeAATopology(self.geometry, stripes_per_aa)
        self.metafile = BitmapMetafile(self.geometry.data_blocks)
        self.delayed_frees = DelayedFreeLog()
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.policy = policy
        self.cache: RAIDAwareAACache | None = None
        if policy is PolicyKind.CACHE:
            self.cache = make_aa_cache(self.topology, self.keeper.scores)
            self.source: AASource = CacheSource(self.cache)
        elif policy is PolicyKind.RANDOM:
            self.source = RandomSource(self.topology.num_aas, seed)
        else:
            self.source = LinearScanSource(self.topology.num_aas)
        self.allocator = RAIDGroupAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            store_offset=offset, batch_flush=self._batch_flush,
        )
        self.offset = offset
        self.azcs = config.azcs
        self.data_devices = [self._make_device(f"{name}.d{d}") for d in range(config.ndata)]
        self.parity_devices = [
            self._make_device(f"{name}.p{p}") for p in range(config.nparity)
        ]
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.free_budget_blocks: int | None = None
        #: Iron/faults addressing label; rewritten to ``group:<index>``
        #: by :class:`RAIDStore` so injector targets match Iron's
        #: ``where`` strings.
        self.where = f"group:{name}"
        #: Attached :class:`repro.faults.FaultInjector` (None = no faults).
        self.injector = None
        #: True while allocation runs on the direct bitmap walk
        #: (cache offline during repair; see :meth:`enter_degraded`).
        self.degraded_alloc = False
        #: Aging-phase fast path: issue every device write (FTL state
        #: must advance exactly as priced CPs would) but skip the
        #: stripe/tetris/chain classification and parity-read charging,
        #: whose only outputs are CPStats fields and device timing stats
        #: that :func:`repro.workloads.aging.reset_measurement_state`
        #: discards.  Only honored for healthy all-SSD groups, where
        #: devices carry no positional state a skipped read could move.
        self.unpriced = False
        # Degraded-read accounting (recovery metrics).
        self.reconstruction_reads = 0
        self.degraded_reads = 0
        self.blocks_reconstructed = 0
        self._pending_recon_us = 0.0
        self._pending_recon_reads = 0

    # ------------------------------------------------------------------
    def _make_device(self, name: str) -> Device:
        cfg = self.config
        blocks = cfg.blocks_per_disk
        if cfg.media is MediaType.HDD:
            return HDD(blocks, cfg.hdd_config, name)
        if cfg.media is MediaType.SSD:
            return SSD(blocks, cfg.ssd_config, name)
        if cfg.media is MediaType.SMR:
            cap = azcs_device_blocks(blocks) if cfg.azcs else blocks
            return SMRDrive(cap, cfg.smr_config, name)
        raise GeometryError(f"media {cfg.media} cannot form RAID groups")

    @property
    def devices(self) -> list[Device]:
        return self.data_devices + self.parity_devices

    # ------------------------------------------------------------------
    # Fault injection and degraded mode (:mod:`repro.faults`)
    # ------------------------------------------------------------------
    def attach_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this group's
        read paths."""
        self.injector = injector

    @property
    def failed_disks(self) -> int:
        """Number of failed member devices (data + parity)."""
        return sum(1 for d in self.devices if d.failed)

    @property
    def within_parity_budget(self) -> bool:
        """True while the group can still reconstruct any single block
        (failed members do not exceed the parity count)."""
        return self.failed_disks <= self.geometry.nparity

    @property
    def survivor_count(self) -> int:
        return len(self.devices) - self.failed_disks

    def fail_disk(self, index: int, *, parity: bool = False) -> None:
        """Inject a whole-device failure (data disk ``index``, or a
        parity disk with ``parity=True``)."""
        devs = self.parity_devices if parity else self.data_devices
        if not 0 <= index < len(devs):
            raise GeometryError(f"no {'parity' if parity else 'data'} disk {index}")
        devs[index].fail()

    def replace_disk(self, index: int, *, parity: bool = False) -> float:
        """Replace a failed device and reconstruct its contents from the
        survivors.  Charges one full-disk read on every surviving member
        plus the rebuild write; returns the modeled busy time and counts
        the reconstructed blocks."""
        devs = self.parity_devices if parity else self.data_devices
        if not 0 <= index < len(devs):
            raise GeometryError(f"no {'parity' if parity else 'data'} disk {index}")
        if not self.within_parity_budget:
            raise DegradedError(
                f"{self.where}: {self.failed_disks} failed disks exceed "
                f"parity budget {self.geometry.nparity}; cannot rebuild"
            )
        blocks = self.config.blocks_per_disk
        busy: list[float] = []
        for dev in self.devices:
            if not dev.failed:
                busy.append(dev.read_blocks(0, blocks))
                self.reconstruction_reads += blocks
        devs[index].revive()
        busy.append(devs[index].write_blocks(np.arange(blocks, dtype=np.int64)))
        self.blocks_reconstructed += blocks
        us = max(busy) if busy else 0.0
        self._pending_recon_us += us
        return us

    def _reconstruct_blocks(self, n: int) -> None:
        """Charge a degraded read of ``n`` blocks: each is rebuilt from
        the surviving members (``survivors - 1`` extra reads per block,
        spread uniformly), or raises when beyond the parity budget."""
        if n <= 0:
            return
        if not self.within_parity_budget:
            raise DegradedError(
                f"{self.where}: cannot reconstruct reads with "
                f"{self.failed_disks} failed disks (parity budget "
                f"{self.geometry.nparity})"
            )
        survivors = [d for d in self.devices if not d.failed]
        extra = n * max(len(survivors) - 1, 0)
        per_dev = extra // max(len(survivors), 1)
        us = 0.0
        for dev in survivors:
            us = max(us, dev.read_blocks(per_dev))
        self.degraded_reads += n
        self.reconstruction_reads += extra
        self.blocks_reconstructed += n
        self._pending_recon_reads += extra
        self._pending_recon_us += us

    def read_metafile(self, nblocks: int | None = None) -> int:
        """Fault-aware bitmap-metafile read (cache rebuild walks, scrub).

        Consults the attached injector: armed transient faults raise
        :class:`TransientIOError` (the caller retries with backoff);
        latent sector errors are reconstructed from parity when within
        the group's budget (charging the reconstruction reads) and
        raise :class:`MediaError` when they cannot be — the signal that
        escalates to Iron.  Returns the metafile blocks read.
        """
        n = nblocks if nblocks is not None else self.metafile.metafile_block_count
        inj = self.injector
        if inj is not None and inj.consume(self.where, "transient-read"):
            raise TransientIOError(f"{self.where}: transient metafile read failure")
        # Reads landing on failed members are always degraded.
        degraded = 0
        if self.failed_disks:
            degraded = (n * self.failed_disks) // len(self.devices)
        if inj is not None:
            degraded += inj.roll(self.where, "latent-sector-error", n)
            degraded = min(degraded, n)
        if degraded:
            if not self.within_parity_budget or (
                inj is not None and inj.consume(self.where, "unreconstructable")
            ):
                raise MediaError(
                    f"{self.where}: metafile blocks damaged beyond RAID "
                    f"reconstruction"
                )
            self._reconstruct_blocks(degraded)
        return self.metafile.note_scan_read(n)

    def enter_degraded(self) -> None:
        """Serve allocations from a direct bitmap walk while the AA
        cache is offline (being rebuilt after damage).  The current AA
        is released; no allocation fails while degraded."""
        from ..core.policies import BitmapWalkSource

        self.allocator.release()
        self.source = BitmapWalkSource(self.topology, self.metafile)
        self.cache = None
        self.allocator = RAIDGroupAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            store_offset=self.offset, batch_flush=self._batch_flush,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.degraded_alloc = True

    def adopt_cache(self, cache: RAIDAwareAACache) -> None:
        """Install a freshly built (possibly TopAA-seeded) cache after a
        remount, with a new allocator bound to it.

        The score keeper is rebuilt from the bitmap as a side effect;
        in WAFL that bookkeeping is restored lazily per-AA and does not
        gate the first CP, so mount-time measurements charge only the
        cache-build I/O (see :mod:`repro.fs.mount`).
        """
        self.cache = cache
        self.source = CacheSource(cache)
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.allocator = RAIDGroupAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            store_offset=self.offset, batch_flush=self._batch_flush,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.degraded_alloc = False

    def cache_ops_total(self) -> int:
        if self.cache is not None:
            return self.cache.maintenance_ops
        return 0

    # ------------------------------------------------------------------
    # CP boundary pieces
    # ------------------------------------------------------------------
    def price_cp_writes(self, local_vbns: np.ndarray) -> GroupCPReport:
        """Charge devices for one CP's writes to this group and return
        the per-group report (stripe/tetris/chain accounting)."""
        if (
            self.unpriced
            and self.config.media is MediaType.SSD
            and not self.failed_disks
            and not self.azcs
            and not self.geometry.mirrored
        ):
            return self._price_cp_writes_unpriced(local_vbns)
        with obs.span(
            "rg.price_writes", group=self.where, blocks=int(local_vbns.size)
        ):
            report = self._price_cp_writes(local_vbns)
            obs.advance_us(report.busy_us)
        if obs.active():
            obs.count("raid.full_stripes", report.full_stripes, group=self.where)
            obs.count("raid.partial_stripes", report.partial_stripes, group=self.where)
            obs.count("raid.parity_reads", report.parity_reads, group=self.where)
        return report

    def _price_cp_writes_unpriced(self, local_vbns: np.ndarray) -> GroupCPReport:
        """Issue one CP's device writes without pricing them.

        The per-device data streams and parity-stripe writes are byte
        for byte the ones :meth:`_price_cp_writes` derives from the full
        ``analyze_raid_writes`` pass, so FTL state (valid maps, open
        units, erase counts) evolves identically; everything skipped —
        classification, parity-read charging, busy-time maxing — only
        feeds statistics the measurement reset clears.
        """
        report = GroupCPReport(
            blocks_per_disk=np.zeros(self.geometry.ndata, dtype=np.int64)
        )
        report.reconstruction_reads += self._pending_recon_reads
        report.busy_us += self._pending_recon_us
        self._pending_recon_reads = 0
        self._pending_recon_us = 0.0
        if local_vbns.size == 0:
            return report
        bpd = self.geometry.blocks_per_disk
        sv = np.sort(local_vbns)
        sb = sv % bpd
        dmin = int(sb.min())
        occupancy = np.bincount(sb - dmin)
        touched = np.flatnonzero(occupancy) + dmin
        bounds = np.searchsorted(sv, np.arange(self.geometry.ndata + 1) * bpd)
        for d, dev in enumerate(self.data_devices):
            dev.write_blocks(sb[bounds[d] : bounds[d + 1]])
        for dev in self.parity_devices:
            dev.write_blocks(touched)
        report.blocks = int(local_vbns.size)
        report.stripes = int(touched.size)
        return report

    def _price_cp_writes(self, local_vbns: np.ndarray) -> GroupCPReport:
        report = GroupCPReport(
            blocks_per_disk=np.zeros(self.geometry.ndata, dtype=np.int64)
        )
        # Drain degraded reads accumulated since the last CP into this
        # CP's accounting so reconstruction I/O is visible per CP.
        report.reconstruction_reads += self._pending_recon_reads
        report.busy_us += self._pending_recon_us
        self._pending_recon_reads = 0
        self._pending_recon_us = 0.0
        if local_vbns.size == 0:
            return report
        stats: StripeWriteStats = analyze_raid_writes(
            self.geometry, local_vbns, failed_disks=self.failed_disks
        )
        report.blocks = stats.data_blocks
        report.stripes = stats.stripes_written
        report.full_stripes = stats.full_stripes
        report.partial_stripes = stats.partial_stripes
        report.tetrises = stats.tetrises
        report.chains = stats.total_chains
        report.parity_reads = stats.parity_blocks_read
        report.reconstruction_reads += stats.reconstruction_reads
        report.degraded_stripes = stats.degraded_stripes
        report.blocks_per_disk = stats.blocks_per_disk
        self.reconstruction_reads += stats.reconstruction_reads

        # The analysis already lexsorted the writes disk-major; slice
        # each device's sorted DBN run out of that single sort.
        sd, sb = stats.sorted_disks, stats.sorted_dbns
        bounds = np.searchsorted(sd, np.arange(self.geometry.ndata + 1))
        busy: list[float] = []
        # Parity reads are spread uniformly across the group's surviving
        # devices (failed devices absorb no I/O).
        live = max(self.survivor_count, 1)
        reads_per_dev = stats.parity_blocks_read // live
        for d, dev in enumerate(self.data_devices):
            mine = sb[bounds[d] : bounds[d + 1]]
            us = self._issue_writes(dev, mine)
            us += dev.read_blocks(reads_per_dev)
            busy.append(us)
        for p, dev in enumerate(self.parity_devices):
            if self.geometry.mirrored:
                # Mirror device p copies data device p's written DBNs.
                mine = sb[bounds[p] : bounds[p + 1]]
            else:
                mine = stats.touched_stripes
            us = self._issue_writes(dev, mine)
            us += dev.read_blocks(reads_per_dev)
            busy.append(us)
        report.busy_us += max(busy) if busy else 0.0
        return report

    def _issue_writes(self, dev: Device, dbns: np.ndarray) -> float:
        """Issue one disk's CP writes in allocation order.

        WAFL writes each allocation area "fully from beginning to end"
        (section 3.2.4), so the device sees one I/O stream per AA
        segment.  With AZCS, each segment is expanded with its touched
        regions' checksum blocks; a region straddling a misaligned AA
        boundary therefore gets its checksum block written again by the
        next AA's stream — the random rewrite Figure 4C eliminates.
        """
        if dbns.size == 0:
            return 0.0
        if not self.azcs:
            return dev.write_blocks(dbns)
        us = 0.0
        aa_ids = dbns // self.topology.stripes_per_aa
        boundaries = np.flatnonzero(np.diff(aa_ids) != 0) + 1
        for seg in np.split(dbns, boundaries):
            us += dev.write_blocks(azcs_expand(seg))
        return us

    def apply_frees(self) -> int:
        """Apply this group's delayed frees; trim SSDs; return count."""
        if self.free_budget_blocks is None:
            freed = self.delayed_frees.apply_all(self.metafile)
        else:
            freed = self.delayed_frees.apply_best(
                self.metafile, self.free_budget_blocks
            )
        if freed.size == 0:
            return 0
        self.keeper.note_free(freed)
        if self.config.media is MediaType.SSD:
            disks = self.geometry.disk_of(freed)
            dbns = self.geometry.dbn_of(freed)
            for d, dev in enumerate(self.data_devices):
                if not dev.failed:
                    dev.trim(dbns[disks == d])
        return int(freed.size)

    def drain_counters(self) -> tuple[int, int, int]:
        """(cache_ops, aa_switches, spanned_blocks) since the last CP."""
        ops = self.cache_ops_total()
        switches = len(self.allocator.selected_aa_scores)
        spans = self.allocator.spanned_blocks
        d_ops = ops - self._last_cache_ops
        d_sw = switches - self._last_aa_switches
        d_sp = spans - self._last_spans
        self._last_cache_ops = ops
        self._last_aa_switches = switches
        self._last_spans = spans
        return d_ops, d_sw, d_sp


class RAIDStore:
    """Aggregate physical store backed by one or more RAID groups."""

    #: Optional :class:`TierPolicy` the CP engine consults for data
    #: placement; None means plain aggregate-wide allocation.  Builders
    #: attach policies (:mod:`repro.tiering`); plain stores carry none.
    tier_policy: TierPolicy | None = None

    def __init__(
        self,
        group_configs: list[RAIDGroupConfig],
        *,
        policy: PolicyKind = PolicyKind.CACHE,
        config: SimConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not group_configs:
            raise GeometryError("an aggregate needs at least one RAID group")
        alloc_cfg = (
            config if config is not None else SimConfig.default()
        ).allocator
        threshold = alloc_cfg.threshold_fraction
        stripes_per_round = alloc_cfg.stripes_per_round
        batch_flush = not alloc_cfg.scalar_bitmap_flush
        rng = make_rng(seed)
        self.groups: list[RAIDGroupRuntime] = []
        self.offsets: list[int] = []
        offset = 0
        for i, cfg in enumerate(group_configs):
            self.offsets.append(offset)
            g = RAIDGroupRuntime(
                cfg, offset=offset, policy=policy, seed=rng, name=f"rg{i}",
                batch_flush=batch_flush,
            )
            g.where = f"group:{i}"
            self.groups.append(g)
            offset += cfg.ndata * cfg.blocks_per_disk
        self.nblocks = offset
        self.allocator = AggregateAllocator(
            [g.allocator for g in self.groups],
            threshold_fraction=threshold,
            stripes_per_round=stripes_per_round,
        )
        self._bounds = np.asarray(self.offsets + [self.nblocks], dtype=np.int64)
        self._pending_read_us: list[float] = [0.0] * len(self.groups)

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return sum(
            g.metafile.free_count - g.allocator.pending_count for g in self.groups
        )

    @property
    def devices(self) -> list[Device]:
        return [d for g in self.groups for d in g.devices]

    def group_of(self, vbns: np.ndarray) -> np.ndarray:
        """RAID-group index owning each global VBN."""
        return self._bounds.searchsorted(vbns, side="right") - 1

    def attach_injector(self, injector) -> None:
        """Attach a fault injector to every RAID group's read paths."""
        for g in self.groups:
            g.attach_injector(injector)

    def fail_disk(self, group_index: int, disk_index: int, *, parity: bool = False) -> None:
        """Inject a whole-device failure into one RAID group."""
        self.groups[group_index].fail_disk(disk_index, parity=parity)

    @property
    def media_kinds(self) -> list[MediaType]:
        """Media type of each RAID group."""
        return [g.config.media for g in self.groups]

    def physical_instances(self) -> list[tuple[str, object, int]]:
        """The store's fault-addressable file-system instances as
        ``(where, instance, global_vbn_base)`` triples — the structural
        API Iron, the invariant auditor, and the recovery orchestrator
        walk instead of dispatching on store type."""
        return [(g.where, g, g.offset) for g in self.groups]

    def allocate(self, n: int, groups: list[int] | None = None) -> np.ndarray:
        """Allocate ``n`` physical blocks across RAID groups.

        ``groups`` restricts allocation to the given group indices (how
        a :class:`TierPolicy` routes data to one tier's groups); None
        allocates aggregate-wide.
        """
        return self.allocator.allocate(n, groups=groups)

    def log_free(self, vbns: np.ndarray) -> None:
        """Log global VBNs for freeing at the next CP boundary."""
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        if len(self.groups) == 1:
            self.groups[0].delayed_frees.add(vbns)
            return
        gids = self.group_of(vbns)
        for gi, g in enumerate(self.groups):
            mask = gids == gi
            if mask.any():
                g.delayed_frees.add(vbns[mask] - self.offsets[gi])

    def charge_reads(self, n_random: int) -> None:
        """Queue client random reads to be priced at the CP boundary,
        spread uniformly across data devices."""
        if n_random <= 0:
            return
        per_group = n_random / len(self.groups)
        for gi, g in enumerate(self.groups):
            per_dev = per_group / max(len(g.data_devices), 1)
            us = 0.0
            degraded = 0
            for dev in g.data_devices:
                share = int(round(per_dev))
                if dev.failed:
                    # Reads aimed at a failed member are reconstructed
                    # from the survivors (charged via the group).
                    degraded += share
                    continue
                us = max(us, dev.read_blocks(share))
            if degraded:
                g._reconstruct_blocks(degraded)
            self._pending_read_us[gi] += us

    def cp_boundary(self) -> StoreCPReport:
        """Run the store-side CP boundary; see module docstring."""
        report = StoreCPReport()
        per_group_writes = self.allocator.drain_cp_writes()
        busy: list[float] = []
        for gi, (g, local) in enumerate(zip(self.groups, per_group_writes)):
            # Sync the group allocator's pending span before applying
            # frees (a same-CP write-then-delete frees a just-allocated
            # VBN).
            g.allocator.flush_pending()
            grp = g.price_cp_writes(local)
            grp.busy_us += self._pending_read_us[gi]
            self._pending_read_us[gi] = 0.0
            report.groups.append(grp)
            report.blocks_written += grp.blocks
            report.full_stripes += grp.full_stripes
            report.partial_stripes += grp.partial_stripes
            report.tetrises += grp.tetrises
            report.chains += grp.chains
            report.parity_reads += grp.parity_reads
            report.reconstruction_reads += grp.reconstruction_reads
            report.degraded_stripes += grp.degraded_stripes
            busy.append(grp.busy_us)
            report.blocks_freed += g.apply_frees()
        # Flush batched score deltas into the caches (rebalancing).
        with obs.span("cp.cache_flush"):
            self.allocator.cp_flush()
        for g in self.groups:
            report.metafile_blocks += g.metafile.drain_dirty()
            d_ops, d_sw, d_sp = g.drain_counters()
            report.cache_ops += d_ops
            report.aa_switches += d_sw
            report.spanned_blocks += d_sp
        report.device_busy_us = max(busy) if busy else 0.0
        report.device_total_us = float(sum(busy))
        return report

    def rebind_allocators(self) -> None:
        """Recreate the aggregate allocator after group-level cache
        adoption (remount path)."""
        self.allocator = AggregateAllocator(
            [g.allocator for g in self.groups],
            threshold_fraction=self.allocator.threshold_fraction,
            stripes_per_round=self.allocator.stripes_per_round,
        )

    def selected_aa_free_fractions(self) -> np.ndarray:
        """Free fraction of every AA at the moment it was selected
        (the section 4.1 trace)."""
        fracs: list[float] = []
        for g in self.groups:
            cap = g.topology.aa_blocks
            fracs.extend(s / cap for s in g.allocator.selected_aa_scores)
        return np.asarray(fracs, dtype=np.float64)


class LinearStore:
    """Physical store with native redundancy (object store): linear
    AAs, HBPS cache, a single device model."""

    #: See :attr:`RAIDStore.tier_policy`.
    tier_policy: TierPolicy | None = None

    def __init__(
        self,
        nblocks: int,
        *,
        blocks_per_aa: int = RAID_AGNOSTIC_AA_BLOCKS,
        policy: PolicyKind = PolicyKind.CACHE,
        object_config: ObjectStoreConfig | None = None,
        config: SimConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.topology = LinearAATopology(nblocks, blocks_per_aa)
        self.nblocks = nblocks
        self._batch_flush = not (
            config if config is not None else SimConfig.default()
        ).allocator.scalar_bitmap_flush
        self.metafile = BitmapMetafile(nblocks)
        self.delayed_frees = DelayedFreeLog()
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.source, self.cache = _make_linear_source(
            policy, self.topology, self.metafile, self.keeper, seed, config
        )
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            batch_flush=self._batch_flush,
        )
        self.device = ObjectStore(nblocks, object_config)
        self._cp_writes: list[np.ndarray] = []
        self._pending_read_us = 0.0
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        #: When set, each CP applies delayed frees for at most this many
        #: metafile blocks, chosen fullest-first by the log's HBPS (the
        #: paper's "delayed-free scores" use of HBPS); None = apply all.
        self.free_budget_blocks: int | None = None
        #: Iron/faults addressing label.
        self.where = "store"
        self.injector = None
        self.degraded_alloc = False

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return self.metafile.free_count - self.allocator.pending_count

    @property
    def devices(self) -> list[Device]:
        return [self.device]

    def attach_injector(self, injector) -> None:
        """Attach a fault injector to this store's read paths."""
        self.injector = injector

    def physical_instances(self) -> list[tuple[str, object, int]]:
        """See :meth:`RAIDStore.physical_instances`; a linear store is
        its own (single) fault-addressable instance."""
        return [(self.where, self, 0)]

    def rebind_allocators(self) -> None:
        """No-op: :meth:`adopt_cache` already rebinds this store's
        allocator (there is no aggregate-level allocator to refresh)."""

    def read_metafile(self, nblocks: int | None = None) -> int:
        """Fault-aware metafile read.  A natively redundant object store
        has no local parity: armed transient faults raise
        :class:`TransientIOError`, and any latent sector error is
        immediately unrecoverable (:class:`MediaError` — Iron's case).
        """
        n = nblocks if nblocks is not None else self.metafile.metafile_block_count
        inj = self.injector
        if inj is not None:
            if inj.consume(self.where, "transient-read"):
                raise TransientIOError(f"{self.where}: transient metafile read failure")
            if inj.roll(self.where, "latent-sector-error", n) or inj.consume(
                self.where, "unreconstructable"
            ):
                raise MediaError(
                    f"{self.where}: metafile blocks damaged (no local RAID to "
                    f"reconstruct them)"
                )
        return self.metafile.note_scan_read(n)

    def enter_degraded(self) -> None:
        """Serve allocations from a direct bitmap walk while the AA
        cache is offline (being rebuilt after damage)."""
        from ..core.policies import BitmapWalkSource

        self.allocator.release()
        self.source = BitmapWalkSource(self.topology, self.metafile)
        self.cache = None
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            batch_flush=self._batch_flush,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.degraded_alloc = True

    def adopt_cache(self, cache: RAIDAgnosticAACache) -> None:
        """Install a freshly built HBPS cache with a new allocator bound
        to it (remount / exit-degraded path)."""
        self.cache = cache
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)

        def replenisher() -> np.ndarray:
            self.metafile.note_scan_read()
            return self.topology.scores_from_bitmap(self.metafile.bitmap)

        self.source = CacheSource(cache, replenisher)
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            batch_flush=self._batch_flush,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.degraded_alloc = False

    def allocate(self, n: int) -> np.ndarray:
        vbns = self.allocator.allocate(n)
        if vbns.size:
            self._cp_writes.append(vbns)
        return vbns

    def log_free(self, vbns: np.ndarray) -> None:
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size:
            self.delayed_frees.add(vbns)

    def charge_reads(self, n_random: int) -> None:
        if n_random > 0:
            self._pending_read_us += self.device.read_blocks(n_random)

    def _cache_ops_total(self) -> int:
        if self.cache is None:
            return 0
        return self.cache.maintenance_ops

    def cp_boundary(self) -> StoreCPReport:
        report = StoreCPReport()
        if self._cp_writes:
            vbns = np.sort(np.concatenate(self._cp_writes))
            self._cp_writes = []
            report.blocks_written = int(vbns.size)
            report.chains = Device.chains_of(vbns)
            with obs.span("store.write", blocks=int(vbns.size)):
                report.device_busy_us = self.device.write_blocks(vbns)
                obs.advance_us(report.device_busy_us)
        report.device_busy_us += self._pending_read_us
        self._pending_read_us = 0.0
        # Sync the allocator's pending span before applying frees (a
        # same-CP write-then-delete frees a just-allocated VBN).
        self.allocator.flush_pending()
        if self.free_budget_blocks is None:
            freed = self.delayed_frees.apply_all(self.metafile)
        else:
            freed = self.delayed_frees.apply_best(
                self.metafile, self.free_budget_blocks
            )
        if freed.size:
            self.keeper.note_free(freed)
            report.blocks_freed = int(freed.size)
        with obs.span("cp.cache_flush"):
            self.allocator.cp_flush()
        report.metafile_blocks = self.metafile.drain_dirty()
        ops = self._cache_ops_total()
        report.cache_ops = ops - self._last_cache_ops
        self._last_cache_ops = ops
        switches = len(self.allocator.selected_aa_scores)
        report.aa_switches = switches - self._last_aa_switches
        self._last_aa_switches = switches
        report.spanned_blocks = self.allocator.spanned_blocks - self._last_spans
        self._last_spans = self.allocator.spanned_blocks
        report.device_total_us = report.device_busy_us
        return report

    def selected_aa_free_fractions(self) -> np.ndarray:
        cap = self.topology.aa_blocks
        return np.asarray(
            [s / cap for s in self.allocator.selected_aa_scores], dtype=np.float64
        )
