"""WAFL-like COW file-system layer: aggregates, FlexVols, CPs, mount
(paper sections 2-3)."""

from .aggregate import (
    GroupCPReport,
    LinearStore,
    MediaType,
    PolicyKind,
    RAIDGroupConfig,
    RAIDGroupRuntime,
    RAIDStore,
    StoreCPReport,
)
from .azcs import azcs_device_blocks, azcs_expand
from .cp import CPBatch, CPEngine
from .flexvol import FlexVol, VolSpec
from .filesystem import WaflSim
from .mount import (
    MountReport,
    TopAAImage,
    background_rebuild,
    export_topaa,
    simulate_mount,
)

__all__ = [
    "GroupCPReport",
    "LinearStore",
    "MediaType",
    "PolicyKind",
    "RAIDGroupConfig",
    "RAIDGroupRuntime",
    "RAIDStore",
    "StoreCPReport",
    "azcs_device_blocks",
    "azcs_expand",
    "CPBatch",
    "CPEngine",
    "FlexVol",
    "VolSpec",
    "WaflSim",
    "MountReport",
    "TopAAImage",
    "background_rebuild",
    "export_topaa",
    "simulate_mount",
]
